//! # Prescient
//!
//! A from-scratch reproduction of *Compiler-directed Shared-Memory
//! Communication for Iterative Parallel Applications* (Viswanathan &
//! Larus, Supercomputing 1996): a fine-grain software distributed shared
//! memory with a **predictive cache-coherence protocol**, driven by a
//! data-parallel **mini-C\*\* compiler** that places protocol directives
//! at parallel phases with potentially repetitive communication.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tempest`] — the DSM substrate (blocks, access control, messaging,
//!   virtual-time cost model);
//! * [`stache`] — the default sequentially-consistent write-invalidate
//!   protocol;
//! * [`predictive`] — the paper's contribution: communication-schedule
//!   recording and pre-sending;
//! * [`runtime`] — machines, node contexts, distributed aggregates,
//!   reductions;
//! * [`cstar`] — the mini-C\*\* language, the compiler analyses of §4, and
//!   the DSM-backed interpreter;
//! * [`apps`] — the paper's evaluation applications (Adaptive, Barnes,
//!   Water) with sequential references and baselines.
//!
//! ## Quickstart
//!
//! ```
//! use prescient::runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx};
//!
//! // A 4-node machine with 32-byte blocks running the predictive protocol.
//! let mut machine = Machine::new(MachineConfig::predictive(4, 32));
//! let src = Agg1D::<f64>::new(&machine, 64, Dist1D::Block);
//! let dst = Agg1D::<f64>::new(&machine, 64, Dist1D::Block);
//!
//! let (_, report) = machine.run(|ctx: &mut NodeCtx| {
//!     for _iter in 0..4 {
//!         // Phase 1: read neighbors of `src` (crosses partitions at the
//!         // edges), write own elements of `dst`.
//!         ctx.phase_begin(1); // compiler directive: pre-send + record
//!         for i in src.my_range(ctx.me()) {
//!             let left = if i > 0 { ctx.read::<f64>(src.addr(i - 1)) } else { 0.0 };
//!             ctx.write(dst.addr(i), left + 1.0);
//!         }
//!         ctx.phase_end();
//!         // Phase 2: copy back (owner writes invalidate cached copies —
//!         // recorded, then pre-invalidated in later iterations).
//!         ctx.phase_begin(2);
//!         for i in src.my_range(ctx.me()) {
//!             let v = ctx.read::<f64>(dst.addr(i));
//!             ctx.write(src.addr(i), v);
//!         }
//!         ctx.phase_end();
//!     }
//! });
//! // After the first (recording) iteration the boundary reads are
//! // pre-sent and hit locally.
//! assert!(report.local_fraction() > 0.99);
//! ```

pub use prescient_apps as apps;
pub use prescient_core as predictive;
pub use prescient_cstar as cstar;
pub use prescient_runtime as runtime;
pub use prescient_stache as stache;
pub use prescient_tempest as tempest;
