//! The Adaptive application end to end: a refining mesh whose
//! communication pattern grows incrementally, comparing the unoptimized
//! and predictive runs and validating both against the sequential
//! reference.
//!
//! Run with: `cargo run --example adaptive_mesh`

use prescient::apps::adaptive::{run_adaptive_full, seq_adaptive, AdaptiveConfig};
use prescient::runtime::MachineConfig;

fn main() {
    let cfg = AdaptiveConfig { n: 24, iters: 10, tau: 0.5, max_depth: 3, flush_every: None };
    println!(
        "Adaptive mesh: {}x{} cells, {} iterations, refinement up to depth {}\n",
        cfg.n, cfg.iters, cfg.iters, cfg.max_depth
    );

    let seq = seq_adaptive(&cfg);
    let refined = seq.depths.iter().filter(|&&d| d > 0).count();
    println!(
        "sequential reference: {refined} of {} cells refined ({} at max depth)\n",
        cfg.n * cfg.n,
        seq.depths.iter().filter(|&&d| d == cfg.max_depth).count()
    );

    for mcfg in [MachineConfig::stache(8, 32), MachineConfig::predictive(8, 32)] {
        let name = if mcfg.protocol.is_predictive() {
            "predictive (optimized)"
        } else {
            "write-invalidate"
        };
        let (run, roots, depths) = run_adaptive_full(mcfg, &cfg);

        // Validate against the reference.
        let mut max_err: f64 = 0.0;
        for k in 0..cfg.n * cfg.n {
            assert_eq!(depths[k], seq.depths[k], "refinement pattern must match");
            max_err = max_err.max((roots[k] - seq.roots[k]).abs());
        }

        let t = run.report.total_stats();
        println!("{name}:");
        println!("  max |field error| vs sequential: {max_err:.3e}");
        println!("  remote misses: {}  pre-sent blocks: {}", t.misses(), t.presend_blocks_out);
        println!("  {}", run.report.bar_line());
        println!();
    }

    println!("note how the optimized run converts demand misses into pre-sends,");
    println!("and how new refinements keep extending the schedule (incremental");
    println!("growth, §3.3) — one fault per new boundary block, then pre-sent.");
}
