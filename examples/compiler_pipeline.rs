//! The full compiler pipeline on the paper's own examples: parse the
//! mini-C\*\* programs of Figures 2 and 3, show the access summaries
//! (§4.2), the reaching-unstructured-accesses dataflow, the placed
//! directives (§4.3) — then actually execute the unstructured-mesh program
//! on an emulated machine under both protocols.
//!
//! Run with: `cargo run --example compiler_pipeline`

use prescient::cstar::compile::compile;
use prescient::cstar::directives::render_plan;
use prescient::cstar::interp::{materialize, read_aggregate_f64, run_program, AggStore};
use prescient::runtime::{Machine, MachineConfig};

/// Figure 2: the 4-point stencil.
const STENCIL: &str = r#"
    aggregate Grid[32][32] of float;
    aggregate Next[32][32] of float;

    parallel fn sweep(g, h) {
        if #0 > 0 { if #0 < 31 { if #1 > 0 { if #1 < 31 {
            h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
        } } } }
    }

    fn main() {
        for it in 0 .. 10 {
            sweep(Grid, Next);
            sweep(Next, Grid);
        }
    }
"#;

/// Figure 3: the unstructured bipartite-mesh update, with indirection.
const UNSTRUCTURED: &str = r#"
    aggregate Primal[128] of float;
    aggregate Dual[128] of float;
    aggregate Nbr[128] of int;

    parallel fn update(primal, dual, nbr) {
        let k = nbr[#0];
        primal[#0] = primal[#0] + 0.5 * dual[k];
    }

    parallel fn relax(dual, primal, nbr) {
        let k = nbr[#0];
        dual[#0] = 0.9 * dual[#0] + 0.1 * primal[k];
    }

    fn main() {
        for t in 0 .. 6 {
            update(Primal, Dual, Nbr);
            relax(Dual, Primal, Nbr);
        }
    }
"#;

fn show(name: &str, src: &str) -> prescient::cstar::compile::CompiledProgram {
    let prog = compile(src).expect("compiles");
    println!("=== {name} ===\n");
    println!("access summaries (§4.2):");
    for (f, sum) in &prog.summaries {
        for (param, pa) in &sum.params {
            if pa.any() {
                println!("  {f}({param}): {}", pa.describe());
            }
        }
    }
    println!("\ndirective placement (§4.3): {} phase(s)", prog.plan.assignment.n_phases);
    print!("{}", render_plan(&prog.cfg, &prog.plan));
    println!();
    prog
}

fn main() {
    show("Figure 2: stencil", STENCIL);
    let prog = show("Figure 3: unstructured mesh update", UNSTRUCTURED);

    // Execute the unstructured program for real.
    println!("=== executing the Figure-3 program on 4 emulated nodes ===\n");
    let scramble = |i: usize| ((i * 53 + 17) % 128) as i64;
    for cfg in [MachineConfig::stache(4, 32), MachineConfig::predictive(4, 32)] {
        let predictive = cfg.protocol.is_predictive();
        let mut machine = Machine::new(cfg);
        let aggs = materialize(&machine, &prog);
        let report = run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
            if let AggStore::F1(a) = &aggs["Primal"] {
                for i in a.my_range(ctx.me()) {
                    ctx.write(a.addr(i), i as f64);
                }
            }
            if let AggStore::F1(a) = &aggs["Dual"] {
                for i in a.my_range(ctx.me()) {
                    ctx.write(a.addr(i), (i % 13) as f64);
                }
            }
            if let AggStore::I1(a) = &aggs["Nbr"] {
                for i in a.my_range(ctx.me()) {
                    ctx.write(a.addr(i), scramble(i));
                }
            }
        });
        let primal = read_aggregate_f64(&mut machine, &aggs, "Primal");
        let checksum: f64 = primal.iter().sum();
        println!(
            "{}: misses={} presend={} local={:.2}%  checksum={checksum:.6}",
            if predictive { "predictive " } else { "unoptimized" },
            report.total_stats().misses(),
            report.total_stats().presend_blocks_out,
            report.local_fraction() * 100.0,
        );
    }
    println!("\nidentical checksums, far fewer misses: the protocol learned the");
    println!("indirection pattern at run time — no inspector/executor needed.");
}
