//! Quickstart: build a small emulated DSM machine, run an iterative
//! producer–consumer computation under the plain write-invalidate protocol
//! and under the predictive protocol, and watch the remote misses vanish
//! after the first (recording) iteration.
//!
//! Run with: `cargo run --example quickstart`

use prescient::runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx};

fn simulate(cfg: MachineConfig) -> prescient::runtime::RunReport {
    let mut machine = Machine::new(cfg);
    let n = 256;
    // A distributed array: each of the nodes owns a contiguous partition.
    let a = Agg1D::<f64>::new(&machine, n, Dist1D::Block);
    let b = Agg1D::<f64>::new(&machine, n, Dist1D::Block);

    // Initialize (owners write their own elements; not measured).
    machine.run(|ctx: &mut NodeCtx| {
        for i in a.my_range(ctx.me()) {
            ctx.write(a.addr(i), i as f64);
            ctx.write(b.addr(i), 0.0);
        }
        ctx.barrier();
    });

    // The measured main loop: a double-buffered nearest-neighbor sweep.
    // `phase_begin`/`phase_end` are the compiler directives of the paper:
    // under plain Stache they degrade to the ordinary end-of-phase
    // barrier, under the predictive protocol they record a communication
    // schedule in iteration 1 and pre-send data from iteration 2 on.
    let (_, report) = machine.run(|ctx: &mut NodeCtx| {
        for _iter in 0..8 {
            ctx.phase_begin(1);
            for i in a.my_range(ctx.me()) {
                let left = if i > 0 { ctx.read::<f64>(a.addr(i - 1)) } else { 0.0 };
                let right = if i + 1 < n { ctx.read::<f64>(a.addr(i + 1)) } else { 0.0 };
                ctx.work(2);
                ctx.write(b.addr(i), 0.5 * (left + right));
            }
            ctx.phase_end();

            ctx.phase_begin(2);
            for i in a.my_range(ctx.me()) {
                let v = ctx.read::<f64>(b.addr(i));
                ctx.write(a.addr(i), v);
            }
            ctx.phase_end();
        }
    });
    report
}

fn main() {
    println!("quickstart: 4 nodes, 32-byte cache blocks, 8 iterations\n");

    let unopt = simulate(MachineConfig::stache(4, 32));
    let opt = simulate(MachineConfig::predictive(4, 32));

    for (name, r) in [("write-invalidate (unoptimized)", &unopt), ("predictive (optimized)", &opt)]
    {
        let t = r.total_stats();
        println!("{name}:");
        println!("  remote misses        : {}", t.misses());
        println!("  blocks pre-sent      : {}", t.presend_blocks_out);
        println!("  local hit fraction   : {:.3}%", r.local_fraction() * 100.0);
        println!("  virtual time         : {}", r.bar_line());
        println!();
    }

    let speedup = unopt.exec_time_ns() as f64 / opt.exec_time_ns() as f64;
    println!(
        "the predictive protocol eliminated {:.0}% of misses → {speedup:.2}x faster",
        (1.0 - opt.total_stats().misses() as f64 / unopt.total_stats().misses() as f64) * 100.0
    );
}
