//! Barnes-Hut N-body on the DSM: oct-trees rebuilt every step in
//! stable-address arenas, force traversals reading remote tree cells, and
//! the predictive protocol learning the (slowly changing) traversal
//! pattern. Also demonstrates the hand-optimized SPMD baseline with a
//! manual write-update schedule.
//!
//! Run with: `cargo run --example nbody` (add `--release` for bigger n)

use prescient::apps::barnes::{
    barnes_final_positions, run_barnes, run_barnes_spmd, seq_barnes, BarnesConfig,
};
use prescient::runtime::MachineConfig;

fn main() {
    let cfg = BarnesConfig { n: 512, steps: 3, ..Default::default() };
    println!("Barnes-Hut: {} bodies, {} steps, theta={}\n", cfg.n, cfg.steps, cfg.theta);

    // Validate the DSM run against the sequential reference.
    let expect = seq_barnes(&cfg);
    let got = barnes_final_positions(MachineConfig::predictive(8, 32), &cfg);
    let mut max_err: f64 = 0.0;
    for (g, e) in got.iter().zip(&expect) {
        for k in 0..3 {
            max_err = max_err.max((g[k] - e[k]).abs());
        }
    }
    println!("max |position error| vs sequential reference: {max_err:.3e}\n");

    for (name, run) in [
        ("write-invalidate (unopt)", run_barnes(MachineConfig::stache(8, 32), &cfg)),
        ("predictive (opt)", run_barnes(MachineConfig::predictive(8, 32), &cfg)),
        ("SPMD write-update (manual)", run_barnes_spmd(MachineConfig::predictive(8, 32), &cfg)),
    ] {
        let t = run.report.total_stats();
        println!("{name}:");
        println!(
            "  misses={}  pre-sent={}  schedule-records={}  local={:.2}%",
            t.misses(),
            t.presend_blocks_out,
            t.sched_records,
            run.report.local_fraction() * 100.0
        );
        println!("  {}", run.report.bar_line());
        println!();
    }
}
