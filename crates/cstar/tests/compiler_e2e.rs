//! End-to-end compiler tests: parse → analyze → place directives →
//! interpret on a live DSM machine, under both protocols, checking results
//! against sequential expectations and checking that the *compiler-placed*
//! directives (not hand annotations) drive the predictive protocol.

use prescient_cstar::compile::compile;
use prescient_cstar::interp::{materialize, read_aggregate_f64, run_program};
use prescient_runtime::{Machine, MachineConfig};

const JACOBI: &str = r#"
    aggregate G[16][16] of float;
    aggregate H[16][16] of float;

    parallel fn sweep(g, h) {
        if #0 > 0 {
            if #0 < 15 {
                if #1 > 0 {
                    if #1 < 15 {
                        h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
                    }
                }
            }
        }
    }

    fn main() {
        for it in 0 .. 4 {
            sweep(G, H);
            sweep(H, G);
        }
    }
"#;

/// Sequential reference for the Jacobi program above (interior sweeps,
/// boundary held at its initial values; note H starts equal to G so
/// untouched boundary cells agree).
fn jacobi_reference(n: usize, iters: usize, init: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let mut g: Vec<f64> = (0..n * n).map(|k| init(k / n, k % n)).collect();
    let mut h = g.clone();
    for _ in 0..iters {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                h[i * n + j] = 0.25
                    * (g[(i - 1) * n + j]
                        + g[(i + 1) * n + j]
                        + g[i * n + j - 1]
                        + g[i * n + j + 1]);
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                g[i * n + j] = 0.25
                    * (h[(i - 1) * n + j]
                        + h[(i + 1) * n + j]
                        + h[i * n + j - 1]
                        + h[i * n + j + 1]);
            }
        }
    }
    g
}

fn init_value(i: usize, j: usize) -> f64 {
    (i * 31 + j * 7) as f64 % 17.0
}

fn run_jacobi(cfg: MachineConfig) -> (Vec<f64>, prescient_runtime::RunReport) {
    let prog = compile(JACOBI).expect("compiles");
    let mut machine = Machine::new(cfg);
    let aggs = materialize(&machine, &prog);
    let report = run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
        // Owners initialize both grids identically.
        use prescient_cstar::interp::AggStore;
        for name in ["G", "H"] {
            if let AggStore::F2(a) = &aggs[name] {
                for i in a.my_rows(ctx.me()) {
                    for j in 0..a.cols() {
                        ctx.write(a.addr(i, j), init_value(i, j));
                    }
                }
            }
        }
    });
    let vals = read_aggregate_f64(&mut machine, &aggs, "G");
    (vals, report)
}

#[test]
fn compiled_jacobi_matches_reference_under_both_protocols() {
    let expect = jacobi_reference(16, 4, init_value);
    for cfg in [MachineConfig::stache(4, 32), MachineConfig::predictive(4, 32)] {
        let predictive = cfg.protocol.is_predictive();
        let (got, _) = run_jacobi(cfg);
        for (k, (&g, &e)) in got.iter().zip(&expect).enumerate() {
            assert!((g - e).abs() < 1e-12, "cell {k}: {g} vs {e} (predictive={predictive})");
        }
    }
}

#[test]
fn compiled_directives_drive_presend() {
    let (_, unopt) = run_jacobi(MachineConfig::stache(4, 32));
    let (_, opt) = run_jacobi(MachineConfig::predictive(4, 32));
    let mu = unopt.total_stats().misses();
    let mo = opt.total_stats().misses();
    assert!(mo < mu, "compiler-placed directives must reduce misses: {mo} vs {mu}");
    assert!(opt.total_stats().presend_blocks_out > 0, "pre-sends must have happened");
    assert!(opt.mean_breakdown().wait_ns < unopt.mean_breakdown().wait_ns);
}

/// Figure 3's unstructured bipartite-mesh update, with an indirection
/// array: the compiler cannot see the pattern, but the predictive
/// protocol learns it at run time.
#[test]
fn unstructured_mesh_update_via_indirection() {
    let src = r#"
        aggregate Primal[64] of float;
        aggregate Dual[64] of float;
        aggregate Nbr[64] of int;

        parallel fn update(primal, dual, nbr) {
            let k = nbr[#0];
            primal[#0] = primal[#0] + 0.5 * dual[k];
        }

        parallel fn relax_dual(dual, primal, nbr) {
            let k = nbr[#0];
            dual[#0] = 0.9 * dual[#0] + 0.1 * primal[k];
        }

        fn main() {
            for t in 0 .. 5 {
                update(Primal, Dual, Nbr);
                relax_dual(Dual, Primal, Nbr);
            }
        }
    "#;
    let prog = compile(src).unwrap();
    // Both calls are unstructured: two phases.
    assert_eq!(prog.plan.assignment.n_phases, 2);

    let n = 64usize;
    // A fixed scrambled neighbor map (deterministic, crosses partitions).
    let nbr = |i: usize| -> i64 { ((i * 37 + 11) % n) as i64 };

    let run = |cfg: MachineConfig| -> (Vec<f64>, prescient_runtime::RunReport) {
        let mut machine = Machine::new(cfg);
        let aggs = materialize(&machine, &prog);
        let report = run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
            use prescient_cstar::interp::AggStore;
            if let AggStore::F1(a) = &aggs["Primal"] {
                for i in a.my_range(ctx.me()) {
                    ctx.write(a.addr(i), i as f64);
                }
            }
            if let AggStore::F1(a) = &aggs["Dual"] {
                for i in a.my_range(ctx.me()) {
                    ctx.write(a.addr(i), (2 * i) as f64);
                }
            }
            if let AggStore::I1(a) = &aggs["Nbr"] {
                for i in a.my_range(ctx.me()) {
                    ctx.write(a.addr(i), nbr(i));
                }
            }
        });
        let vals = read_aggregate_f64(&mut machine, &aggs, "Primal");
        (vals, report)
    };

    // Sequential reference.
    let mut primal: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut dual: Vec<f64> = (0..n).map(|i| (2 * i) as f64).collect();
    for _ in 0..5 {
        let d0 = dual.clone();
        for i in 0..n {
            primal[i] += 0.5 * d0[nbr(i) as usize];
        }
        let p0 = primal.clone();
        for i in 0..n {
            dual[i] = 0.9 * dual[i] + 0.1 * p0[nbr(i) as usize];
        }
    }

    let (got_u, rep_u) = run(MachineConfig::stache(4, 32));
    let (got_o, rep_o) = run(MachineConfig::predictive(4, 32));
    for k in 0..n {
        assert!((got_u[k] - primal[k]).abs() < 1e-9, "unopt cell {k}");
        assert!((got_o[k] - primal[k]).abs() < 1e-9, "opt cell {k}");
    }
    // The learned schedule must shrink misses for the irregular pattern.
    assert!(
        rep_o.total_stats().misses() < rep_u.total_stats().misses(),
        "{} vs {}",
        rep_o.total_stats().misses(),
        rep_u.total_stats().misses()
    );
}

/// A home-only program needs no directives at all, and both protocols
/// behave identically (no pre-sends, no misses after initialization).
#[test]
fn home_only_program_gets_no_directives() {
    let src = r#"
        aggregate A[32] of float;
        parallel fn scale(a) { a[#0] = a[#0] * 1.5; }
        fn main() {
            for t in 0 .. 3 { scale(A); }
        }
    "#;
    let prog = compile(src).unwrap();
    assert_eq!(prog.plan.assignment.n_phases, 0, "no communication, no phases");

    let mut machine = Machine::new(MachineConfig::predictive(2, 32));
    let aggs = materialize(&machine, &prog);
    let report = run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
        use prescient_cstar::interp::AggStore;
        if let AggStore::F1(a) = &aggs["A"] {
            for i in a.my_range(ctx.me()) {
                ctx.write(a.addr(i), 2.0);
            }
        }
    });
    assert_eq!(report.total_stats().misses(), 0, "home-only program never misses");
    assert_eq!(report.total_stats().presend_blocks_out, 0);
    let vals = read_aggregate_f64(&mut machine, &aggs, "A");
    assert!(vals.iter().all(|&v| (v - 2.0 * 1.5f64.powi(3)).abs() < 1e-12));
}

/// Integer aggregates work end to end (the indirection arrays of adaptive
/// codes).
#[test]
fn integer_aggregates_roundtrip() {
    let src = r#"
        aggregate P[16] of int;
        parallel fn bump(p) { p[#0] = p[#0] + 2; }
        fn main() { for t in 0 .. 4 { bump(P); } }
    "#;
    let prog = compile(src).unwrap();
    let mut machine = Machine::new(MachineConfig::stache(2, 32));
    let aggs = materialize(&machine, &prog);
    run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
        use prescient_cstar::interp::AggStore;
        if let AggStore::I1(a) = &aggs["P"] {
            for i in a.my_range(ctx.me()) {
                ctx.write(a.addr(i), i as i64);
            }
        }
    });
    let vals = read_aggregate_f64(&mut machine, &aggs, "P");
    for (i, v) in vals.iter().enumerate() {
        assert_eq!(*v, (i + 8) as f64);
    }
}

/// Control flow inside parallel functions: `for` loops and `if/else`
/// evaluate correctly through the DSM (a blur that only touches cells
/// above a threshold, with an inner smoothing loop).
#[test]
fn dsl_control_flow_executes() {
    let src = r#"
        aggregate A[24] of float;
        parallel fn sharpen(a) {
            if a[#0] > 4.0 {
                for t in 0 .. 3 {
                    a[#0] = a[#0] - 1.0;
                }
            } else {
                a[#0] = a[#0] + 0.5;
            }
        }
        fn main() { for it in 0 .. 2 { sharpen(A); } }
    "#;
    let prog = compile(src).unwrap();
    let mut machine = Machine::new(MachineConfig::stache(3, 32));
    let aggs = materialize(&machine, &prog);
    run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
        use prescient_cstar::interp::AggStore;
        if let AggStore::F1(a) = &aggs["A"] {
            for i in a.my_range(ctx.me()) {
                ctx.write(a.addr(i), i as f64);
            }
        }
    });
    let got = read_aggregate_f64(&mut machine, &aggs, "A");
    // Sequential model.
    let mut a: Vec<f64> = (0..24).map(|i| i as f64).collect();
    for _ in 0..2 {
        for v in a.iter_mut() {
            if *v > 4.0 {
                *v -= 3.0;
            } else {
                *v += 0.5;
            }
        }
    }
    for (k, (&g, &e)) in got.iter().zip(&a).enumerate() {
        assert!((g - e).abs() < 1e-12, "cell {k}: {g} vs {e}");
    }
}

/// Modulo, comparisons and builtins through the interpreter.
#[test]
fn dsl_builtins_and_mod() {
    let src = r#"
        aggregate A[16] of int;
        parallel fn f(a) {
            let v = a[#0];
            a[#0] = max(v % 5, min(v, 3)) + abs(0 - 1);
        }
        fn main() { f(A); }
    "#;
    let prog = compile(src).unwrap();
    let mut machine = Machine::new(MachineConfig::stache(2, 32));
    let aggs = materialize(&machine, &prog);
    run_program(&mut machine, &prog, &aggs, |ctx, aggs| {
        use prescient_cstar::interp::AggStore;
        if let AggStore::I1(a) = &aggs["A"] {
            for i in a.my_range(ctx.me()) {
                ctx.write(a.addr(i), i as i64);
            }
        }
    });
    let got = read_aggregate_f64(&mut machine, &aggs, "A");
    for (i, &g) in got.iter().enumerate() {
        let v = i as i64;
        let expect = (v % 5).max(v.min(3)) + 1;
        assert_eq!(g, expect as f64, "cell {i}");
    }
}
