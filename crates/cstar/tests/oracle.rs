//! Schedule-oracle integration tests: the unmodified compiler passes the
//! oracle on the paper's mini-apps with zero soundness errors, and the
//! mutation hook (deliberately weakened Home/NonHome classification) is
//! caught as an E007 naming the aggregate and the phase.

use std::fs;
use std::path::Path;

use prescient_cstar::sema::ClassifyRules;
use prescient_cstar::{run_oracle, Diagnostic, OracleConfig};

fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}.cstar"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn cfg() -> OracleConfig {
    OracleConfig { nodes: 4, block_size: 8, seed: 0x5eed }
}

#[test]
fn mini_apps_pass_the_oracle_with_sound_summaries() {
    for name in ["jacobi", "relax", "transport"] {
        let report = run_oracle(&example(name), &cfg(), ClassifyRules::default())
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        assert!(
            report.observed_events > 0,
            "{name}: the oracle run must actually observe communication"
        );
        assert_eq!(
            report.soundness_errors(),
            0,
            "{name}: sound compiler must have no E007s: {:#?}",
            report.diagnostics
        );
    }
}

#[test]
fn weakened_classification_is_caught_as_unsound() {
    // The mutation hook: `g[#0-1]` misclassified as a Home access. The
    // compiler then predicts no non-home reads and places no directives;
    // the dynamic boundary traffic must surface as E007.
    let rules = ClassifyRules { const_offset_is_home: true, ..ClassifyRules::default() };
    let report = run_oracle(&example("jacobi"), &cfg(), rules).expect("compiles");
    assert!(
        report.soundness_errors() > 0,
        "weakened sema must be flagged: {:#?}",
        report.diagnostics
    );
    let e = report.diagnostics.iter().find(|d| d.code == "E007").expect("an E007 diagnostic");
    assert!(
        e.message.contains("`G`") || e.message.contains("`H`"),
        "E007 must name the aggregate: {}",
        e.message
    );
    assert!(e.message.contains("phase"), "E007 must name the phase: {}", e.message);
    assert!(e.message.contains("sweep"), "E007 must name the call: {}", e.message);
}

#[test]
fn histogram_merge_passes_the_oracle() {
    // The annotated histogram compiles to a CommutativeMerge plan; the
    // merge oracle's privatize-and-replay must agree with serialized
    // execution bit for bit.
    let report =
        run_oracle(&example("histogram"), &cfg(), ClassifyRules::default()).expect("compiles");
    assert_eq!(
        report.soundness_errors(),
        0,
        "sound merge must validate clean: {:#?}",
        report.diagnostics
    );
}

#[test]
fn weakened_commutativity_is_caught_as_unsound_merge() {
    // The commute mutation hook: `assume_commutative` declares every
    // aggregate update mergeable, so an annotated non-commutative update
    // (`h = 2h + 1` through a colliding index table) reaches the plan as a
    // CommutativeMerge. The dynamic merge oracle must catch the divergence
    // between privatized replay and serialized execution as an E008 with a
    // witness block.
    let src = "aggregate H[16] of float;\n\
               aggregate X[16] of int;\n\
               parallel fn scale(h, x) {\n\
                   h[x[#0]] = 2.0 * h[x[#0]] + 1.0;\n\
               }\n\
               fn main() { commute scale(H, X); }\n";
    let rules = ClassifyRules { assume_commutative: true, ..ClassifyRules::default() };
    let report = run_oracle(src, &cfg(), rules).expect("compiles");
    let e = report.diagnostics.iter().find(|d| d.code == "E008").expect("an E008 diagnostic");
    assert!(e.message.contains("`H`"), "E008 must name the aggregate: {}", e.message);
    assert!(e.message.contains("scale"), "E008 must name the call: {}", e.message);
    assert!(
        e.notes.iter().any(|n| n.contains("witness block")),
        "E008 must carry a witness block: {e:#?}"
    );
    // The same program under honest rules never emits the merge, so the
    // static E008 fires instead and the dynamic oracle stays quiet.
    let honest = run_oracle(src, &cfg(), ClassifyRules::default()).expect("compiles");
    assert!(
        honest.diagnostics.iter().all(|d| d.code != "E008"),
        "honest rules place no merge: {:#?}",
        honest.diagnostics
    );
}

#[test]
fn oracle_diagnostics_round_trip_through_json() {
    let rules = ClassifyRules { const_offset_is_home: true, ..ClassifyRules::default() };
    let report = run_oracle(&example("jacobi"), &cfg(), rules).expect("compiles");
    assert!(!report.diagnostics.is_empty());
    let json = Diagnostic::json_array(&report.diagnostics);
    let back = Diagnostic::from_json_array(&json).expect("parse back");
    assert_eq!(back, report.diagnostics);
}

#[test]
fn oracle_reports_precision_statistics() {
    let report = run_oracle(&example("relax"), &cfg(), ClassifyRules::default()).expect("compiles");
    assert!(report.predictions > 0, "relax predicts non-home traffic");
    let r = report.imprecision_ratio();
    assert!((0.0..=1.0).contains(&r), "ratio in [0,1]: {r}");
    assert_eq!(
        report.diagnostics.iter().filter(|d| d.code == "W006").count(),
        report.unobserved,
        "one W006 per unobserved prediction"
    );
}
