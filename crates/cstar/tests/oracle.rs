//! Schedule-oracle integration tests: the unmodified compiler passes the
//! oracle on the paper's mini-apps with zero soundness errors, and the
//! mutation hook (deliberately weakened Home/NonHome classification) is
//! caught as an E007 naming the aggregate and the phase.

use std::fs;
use std::path::Path;

use prescient_cstar::sema::ClassifyRules;
use prescient_cstar::{run_oracle, Diagnostic, OracleConfig};

fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}.cstar"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn cfg() -> OracleConfig {
    OracleConfig { nodes: 4, block_size: 8, seed: 0x5eed }
}

#[test]
fn mini_apps_pass_the_oracle_with_sound_summaries() {
    for name in ["jacobi", "relax", "transport"] {
        let report = run_oracle(&example(name), &cfg(), ClassifyRules::default())
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        assert!(
            report.observed_events > 0,
            "{name}: the oracle run must actually observe communication"
        );
        assert_eq!(
            report.soundness_errors(),
            0,
            "{name}: sound compiler must have no E007s: {:#?}",
            report.diagnostics
        );
    }
}

#[test]
fn weakened_classification_is_caught_as_unsound() {
    // The mutation hook: `g[#0-1]` misclassified as a Home access. The
    // compiler then predicts no non-home reads and places no directives;
    // the dynamic boundary traffic must surface as E007.
    let rules = ClassifyRules { const_offset_is_home: true };
    let report = run_oracle(&example("jacobi"), &cfg(), rules).expect("compiles");
    assert!(
        report.soundness_errors() > 0,
        "weakened sema must be flagged: {:#?}",
        report.diagnostics
    );
    let e = report.diagnostics.iter().find(|d| d.code == "E007").expect("an E007 diagnostic");
    assert!(
        e.message.contains("`G`") || e.message.contains("`H`"),
        "E007 must name the aggregate: {}",
        e.message
    );
    assert!(e.message.contains("phase"), "E007 must name the phase: {}", e.message);
    assert!(e.message.contains("sweep"), "E007 must name the call: {}", e.message);
}

#[test]
fn oracle_diagnostics_round_trip_through_json() {
    let rules = ClassifyRules { const_offset_is_home: true };
    let report = run_oracle(&example("jacobi"), &cfg(), rules).expect("compiles");
    assert!(!report.diagnostics.is_empty());
    let json = Diagnostic::json_array(&report.diagnostics);
    let back = Diagnostic::from_json_array(&json).expect("parse back");
    assert_eq!(back, report.diagnostics);
}

#[test]
fn oracle_reports_precision_statistics() {
    let report = run_oracle(&example("relax"), &cfg(), ClassifyRules::default()).expect("compiles");
    assert!(report.predictions > 0, "relax predicts non-home traffic");
    let r = report.imprecision_ratio();
    assert!((0.0..=1.0).contains(&r), "ratio in [0,1]: {r}");
    assert_eq!(
        report.diagnostics.iter().filter(|d| d.code == "W006").count(),
        report.unobserved,
        "one W006 per unobserved prediction"
    );
}
