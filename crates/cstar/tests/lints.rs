//! Golden UI tests for the diagnostics engine and the lint suite.
//!
//! Every fixture under `tests/lints/` pairs a `.cstar` source with a
//! `.expected` file holding the rendered diagnostics, compared **verbatim**.
//! Diagnostics without a natural source fixture (W002, E005, E006 — they
//! arise from hand-built CFGs or generated programs) are constructed
//! in-test and still golden-compared. Regenerate all expected files with
//! `BLESS=1 cargo test -p prescient-cstar --test lints`.

use std::fs;
use std::path::{Path, PathBuf};

use prescient_cstar::cfg::CfgBuilder;
use prescient_cstar::directives::{place_directives, CallDecision};
use prescient_cstar::sema::ClassifyRules;
use prescient_cstar::{audit_plan, compile_diag, lint_program, Diagnostic, ReachingUnstructured};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lints")
}

/// Compare `rendered` against `tests/lints/{name}.expected` verbatim, or
/// rewrite the expected file under `BLESS=1`.
fn check_rendered(name: &str, rendered: &str) {
    let path = fixture_dir().join(format!("{name}.expected"));
    if std::env::var_os("BLESS").is_some() {
        fs::write(&path, rendered).expect("write blessed expectation");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing {}: {e}\nrun with BLESS=1 to create it", path.display())
    });
    assert_eq!(rendered, expected, "golden mismatch for `{name}` (rerun with BLESS=1 to accept)");
}

/// Diagnostics of a source fixture: the compile error, or the lints.
fn fixture_diags(name: &str) -> (String, Vec<Diagnostic>) {
    let src =
        fs::read_to_string(fixture_dir().join(format!("{name}.cstar"))).expect("fixture source");
    let ds = match compile_diag(&src, true, ClassifyRules::default()) {
        Err(d) => vec![d],
        Ok(prog) => lint_program(&prog),
    };
    (src, ds)
}

fn check_fixture(name: &str, expect_codes: &[&str]) {
    let (src, ds) = fixture_diags(name);
    let got: Vec<&str> = ds.iter().map(|d| d.code.as_str()).collect();
    assert_eq!(got, expect_codes, "{name}: {ds:#?}");
    let file = format!("tests/lints/{name}.cstar");
    check_rendered(name, &Diagnostic::render_all(&ds, &src, &file));
}

#[test]
fn w001_phase_conflict() {
    check_fixture("w001", &["W001"]);
}

#[test]
fn w003_static_out_of_bounds() {
    check_fixture("w003", &["W003", "W003"]);
}

#[test]
fn w004_unused_aggregates() {
    check_fixture("w004", &["W004", "W004"]);
}

#[test]
fn w005_remote_fed_index() {
    check_fixture("w005", &["W005"]);
}

#[test]
fn w007_commutable_conflict() {
    // W007's primary span (the reduction write target) precedes W001's
    // (the conflicting read) in source order.
    check_fixture("w007", &["W007", "W001"]);
}

#[test]
fn e008_unsound_commute_annotation() {
    check_fixture("e008", &["E008", "W001"]);
}

#[test]
fn e001_lex_error() {
    check_fixture("e001", &["E001"]);
}

#[test]
fn e002_parse_error() {
    check_fixture("e002", &["E002"]);
}

#[test]
fn e003_name_error() {
    check_fixture("e003", &["E003"]);
}

#[test]
fn e004_bad_call() {
    check_fixture("e004", &["E004"]);
}

#[test]
fn w002_dead_directive_from_forced_plan() {
    // Home-only program: the compiler never schedules it; force a schedule
    // by hand, as a buggy compiler pass would.
    let mut b = CfgBuilder::new(["A".to_string()]);
    b.call("scale", &[("A", true, true, false, false)]);
    let cfg = b.finish();
    let sol = ReachingUnstructured::solve(&cfg).unwrap();
    let mut plan = place_directives(&cfg, &sol, true);
    plan.assignment.calls.insert(0, CallDecision { needs: true, home_only: true, phase: Some(1) });
    plan.assignment.n_phases = 1;
    let ds = audit_plan(&cfg, &sol, &plan.assignment);
    assert_eq!(ds.len(), 1, "{ds:#?}");
    assert_eq!(ds[0].code, "W002");
    check_rendered("w002", &Diagnostic::render_all(&ds, "", "<hand-built cfg>"));
}

#[test]
fn e005_universe_mismatch() {
    // A call accessing an aggregate outside the CFG's universe. The
    // builder refuses to construct this, so shrink the universe after the
    // fact — the inconsistency a buggy compiler pass would introduce.
    let mut b = CfgBuilder::new(["A".to_string(), "B".to_string()]);
    b.call("f", &[("B", false, false, true, false)]);
    let mut cfg = b.finish();
    cfg.aggs = vec!["A".to_string()];
    let err = ReachingUnstructured::solve(&cfg).unwrap_err();
    assert_eq!(err.code, "E005");
    check_rendered("e005", &err.render("", "<hand-built cfg>"));
}

#[test]
fn e006_aggregate_limit() {
    let mut src = String::new();
    for i in 0..65 {
        src.push_str(&format!("aggregate A{i}[8] of float;\n"));
    }
    src.push_str("parallel fn f(a) { a[#0] = 0.0; }\nfn main() { f(A0); }\n");
    let err = compile_diag(&src, true, ClassifyRules::default()).unwrap_err();
    assert_eq!(err.code, "E006");
    check_rendered("e006", &err.render(&src, "<generated>"));
}

#[test]
fn clean_examples_are_silent() {
    for name in ["jacobi", "relax", "transport", "histogram"] {
        let path =
            Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/{name}.cstar"));
        let src = fs::read_to_string(&path).expect("example source");
        let prog = compile_diag(&src, true, ClassifyRules::default())
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let ds = lint_program(&prog);
        assert!(ds.is_empty(), "{name} should be lint-clean: {ds:#?}");
    }
}

#[test]
fn fixture_diagnostics_round_trip_through_json() {
    let mut all = Vec::new();
    for name in ["w001", "w003", "w004", "w005", "w007", "e001", "e003", "e008"] {
        let (_, mut ds) = fixture_diags(name);
        for d in &mut ds {
            *d = d.clone().with_file(format!("tests/lints/{name}.cstar"));
        }
        all.extend(ds);
    }
    assert!(!all.is_empty());
    let json = Diagnostic::json_array(&all);
    let back = Diagnostic::from_json_array(&json).expect("parse back");
    assert_eq!(back, all, "JSON round-trip must be lossless");
}
