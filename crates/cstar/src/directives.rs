//! Directive placement (§4.3): which parallel calls need communication
//! schedules, grouped into phases, with the coalescing/hoisting
//! optimization.
//!
//! **Placement rule.** A parallel call requires a communication schedule
//! (and a preceding predictive-protocol pre-send) if, for any aggregate,
//!
//! 1. the call is reached by unstructured accesses *and* includes owner
//!    write accesses (its invalidations are predictable), or
//! 2. the call itself includes unstructured accesses.
//!
//! **Coalescing/hoisting.** An inside-out pass over the program structure
//! merges neighboring phases when at least one side is home-only, and
//! absorbs home-only calls and loops (e.g. Barnes' `center_of_mass` loop)
//! into an enclosing phase instead of giving them their own — amortizing
//! the pre-send overhead over multiple parallel functions, analogous to
//! schedule coalescing in the inspector-executor model.
//!
//! Merging is additionally guarded against *conflicts*: two calls may not
//! share a phase if one communicates writes to an aggregate the other
//! communicates reads (or writes) from — the predictive protocol would mark
//! all such blocks conflict and disable itself (§3.4).

use std::collections::BTreeMap;

use prescient_core::PhaseId;

use crate::cfg::{Cfg, RegionItem};
use crate::dataflow::ReachingUnstructured;
use crate::diag::{json_str, Json, JsonParser};

/// What the planner decided per call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallDecision {
    /// The call needs a schedule (rule 1 or 2).
    pub needs: bool,
    /// Every access of the call is a home access.
    pub home_only: bool,
    /// The phase this call executes under, if any.
    pub phase: Option<PhaseId>,
}

/// The phase structure computed for a program.
#[derive(Debug, Clone, Default)]
pub struct PhaseAssignment {
    /// Decisions per call-site id.
    pub calls: BTreeMap<usize, CallDecision>,
    /// Number of phases allocated.
    pub n_phases: u32,
}

impl PhaseAssignment {
    /// Calls assigned to `phase`, in program order.
    pub fn calls_of_phase(&self, phase: PhaseId) -> Vec<usize> {
        self.calls.iter().filter(|(_, d)| d.phase == Some(phase)).map(|(id, _)| *id).collect()
    }
}

/// The executable plan: the program in operation order with phase
/// directives spliced in.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOp {
    /// Pre-send + arm recording for a phase (compiler directive).
    PhaseBegin(PhaseId),
    /// Stop recording for a phase (compiler directive).
    PhaseEnd(PhaseId),
    /// Run one parallel call (by call-site id), with its implicit
    /// end-of-call barrier.
    Call(usize),
    /// Enter a counted loop `lo..hi`.
    LoopBegin {
        /// Loop label.
        label: String,
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (exclusive).
        hi: i64,
    },
    /// Close the innermost loop.
    LoopEnd,
    /// Merge privatized per-node deltas of one aggregate at the phase
    /// barrier (emitted right after the `Call` it belongs to, for each
    /// written aggregate the commutativity analysis proved mergeable on an
    /// annotated call). The runtime runs the call against private buffers
    /// and bulk-installs the merged state instead of migrating ownership
    /// per block.
    CommutativeMerge {
        /// Phase the merged call executes under (0 if scheduleless).
        phase: PhaseId,
        /// Aggregate to merge, by declaration name.
        agg: String,
        /// Call-site id whose updates are privatized.
        call: usize,
    },
}

/// Placement result: assignment plus the executable op sequence.
#[derive(Debug, Clone)]
pub struct DirectivePlan {
    /// Per-call decisions and phase ids.
    pub assignment: PhaseAssignment,
    /// Operation sequence for the interpreter.
    pub ops: Vec<ExecOp>,
}

impl DirectivePlan {
    /// Serialize the plan losslessly as JSON (the `--emit-directives`
    /// payload). Booleans are encoded as `0`/`1`; an absent `phase` field
    /// means "no phase assigned".
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{");
        write!(s, "\"n_phases\":{},\"calls\":[", self.assignment.n_phases).unwrap();
        for (i, (id, d)) in self.assignment.calls.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "{{\"id\":{id},\"needs\":{},\"home_only\":{}",
                d.needs as u8, d.home_only as u8
            )
            .unwrap();
            if let Some(p) = d.phase {
                write!(s, ",\"phase\":{p}").unwrap();
            }
            s.push('}');
        }
        s.push_str("],\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match op {
                ExecOp::PhaseBegin(p) => {
                    write!(s, "{{\"op\":\"phase_begin\",\"phase\":{p}}}").unwrap()
                }
                ExecOp::PhaseEnd(p) => write!(s, "{{\"op\":\"phase_end\",\"phase\":{p}}}").unwrap(),
                ExecOp::Call(id) => write!(s, "{{\"op\":\"call\",\"id\":{id}}}").unwrap(),
                ExecOp::LoopBegin { label, lo, hi } => {
                    s.push_str("{\"op\":\"loop_begin\",\"label\":");
                    json_str(&mut s, label);
                    write!(s, ",\"lo\":{lo},\"hi\":{hi}}}").unwrap();
                }
                ExecOp::LoopEnd => s.push_str("{\"op\":\"loop_end\"}"),
                ExecOp::CommutativeMerge { phase, agg, call } => {
                    s.push_str("{\"op\":\"commutative_merge\",\"agg\":");
                    json_str(&mut s, agg);
                    write!(s, ",\"phase\":{phase},\"call\":{call}}}").unwrap();
                }
            }
        }
        s.push_str("]}");
        s
    }

    /// Parse a plan produced by [`DirectivePlan::to_json`].
    pub fn from_json(src: &str) -> Result<DirectivePlan, String> {
        let v = JsonParser::parse(src)?;
        let n_phases = v.field_i64("n_phases")? as u32;
        let mut calls = BTreeMap::new();
        for c in v.field("calls").and_then(Json::as_array).ok_or("missing `calls` array")? {
            let id = c.field_i64("id")? as usize;
            let phase = match c.field("phase") {
                Some(Json::Num(n)) if *n >= 0.0 => Some(*n as PhaseId),
                _ => None,
            };
            calls.insert(
                id,
                CallDecision {
                    needs: c.field_i64("needs")? != 0,
                    home_only: c.field_i64("home_only")? != 0,
                    phase,
                },
            );
        }
        let mut ops = Vec::new();
        for o in v.field("ops").and_then(Json::as_array).ok_or("missing `ops` array")? {
            let kind = o.field("op").and_then(Json::as_str).ok_or("missing `op` tag")?;
            ops.push(match kind {
                "phase_begin" => ExecOp::PhaseBegin(o.field_i64("phase")? as PhaseId),
                "phase_end" => ExecOp::PhaseEnd(o.field_i64("phase")? as PhaseId),
                "call" => ExecOp::Call(o.field_i64("id")? as usize),
                "loop_begin" => ExecOp::LoopBegin {
                    label: o
                        .field("label")
                        .and_then(Json::as_str)
                        .ok_or("missing `label`")?
                        .to_string(),
                    lo: o.field_i64("lo")?,
                    hi: o.field_i64("hi")?,
                },
                "loop_end" => ExecOp::LoopEnd,
                "commutative_merge" => ExecOp::CommutativeMerge {
                    phase: o.field_i64("phase")? as PhaseId,
                    agg: o.field("agg").and_then(Json::as_str).ok_or("missing `agg`")?.to_string(),
                    call: o.field_i64("call")? as usize,
                },
                other => return Err(format!("unknown op tag `{other}`")),
            });
        }
        Ok(DirectivePlan { assignment: PhaseAssignment { calls, n_phases }, ops })
    }
}

/// Per-phase (or per-call) communication footprint, for the conflict guard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CommSet {
    /// Aggregates with communication-inducing reads (unstructured reads).
    reads: u64,
    /// Aggregates with communication-inducing writes (owner writes of
    /// reached aggregates, or unstructured writes).
    writes: u64,
}

impl CommSet {
    fn union(self, o: CommSet) -> CommSet {
        CommSet { reads: self.reads | o.reads, writes: self.writes | o.writes }
    }

    /// Would co-scheduling these two footprints create conflict blocks?
    fn conflicts(self, o: CommSet) -> bool {
        (self.writes & (o.reads | o.writes)) != 0 || (o.writes & self.reads) != 0
    }
}

/// Compute the directive plan for an annotated CFG (with its dataflow
/// solution). `coalesce` enables the §4.3 optimization (on by default; off
/// for the ablation).
pub fn place_directives(cfg: &Cfg, sol: &ReachingUnstructured, coalesce: bool) -> DirectivePlan {
    let mut calls: BTreeMap<usize, CallDecision> = BTreeMap::new();
    let mut comm: BTreeMap<usize, CommSet> = BTreeMap::new();

    for &node in &cfg.call_nodes() {
        let c = cfg.call(node).expect("call node");
        let mut needs = false;
        let mut cs = CommSet::default();
        for (agg, pa) in &c.access {
            let bit = cfg.agg_bit(agg).expect("aggregate in universe");
            let reached = sol.reaches(node, bit);
            // Rule 1: reached by unstructured accesses + owner writes.
            if reached && pa.home_write {
                needs = true;
                cs.writes |= 1 << bit;
            }
            // Rule 2: the call itself is unstructured.
            if pa.unstructured() {
                needs = true;
                if pa.nonhome_read {
                    cs.reads |= 1 << bit;
                }
                if pa.nonhome_write {
                    cs.writes |= 1 << bit;
                }
            }
        }
        calls.insert(c.id, CallDecision { needs, home_only: c.home_only(), phase: None });
        comm.insert(c.id, cs);
    }

    let mut planner = Planner { calls, comm, next_phase: 1, coalesce };
    let ops = planner.plan_seq(cfg, &cfg.regions);
    let calls = planner.calls;

    // Splice merge directives: each `commute`-annotated call whose written
    // aggregates the commutativity analysis accepted gets one
    // CommutativeMerge per such aggregate, right after the call. Aggregates
    // the analysis rejected get nothing here — the E008 lint owns them.
    let mut spliced = Vec::with_capacity(ops.len());
    for op in ops {
        let merges: Vec<ExecOp> = match &op {
            ExecOp::Call(id) => cfg
                .call_node
                .get(*id)
                .and_then(|&n| cfg.call(n))
                .filter(|c| c.commute_annotated)
                .map(|c| {
                    let phase = calls.get(id).and_then(|d| d.phase).unwrap_or(0);
                    c.commute_aggs()
                        .into_iter()
                        .map(|agg| ExecOp::CommutativeMerge {
                            phase,
                            agg: agg.to_string(),
                            call: *id,
                        })
                        .collect()
                })
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        spliced.push(op);
        spliced.extend(merges);
    }

    DirectivePlan {
        assignment: PhaseAssignment { calls, n_phases: planner.next_phase - 1 },
        ops: spliced,
    }
}

struct Planner {
    calls: BTreeMap<usize, CallDecision>,
    comm: BTreeMap<usize, CommSet>,
    next_phase: u32,
    coalesce: bool,
}

/// A group of consecutive items forming one phase (or none).
struct Group {
    ops: Vec<ExecOp>,
    comm: CommSet,
    /// All needs-calls in the group are home-only.
    home_only: bool,
    /// Contains at least one needs-call.
    has_needs: bool,
}

impl Planner {
    /// Plan one item sequence; returns its op stream.
    #[allow(clippy::only_used_in_recursion)]
    fn plan_seq(&mut self, cfg: &Cfg, items: &[RegionItem]) -> Vec<ExecOp> {
        let mut out: Vec<ExecOp> = Vec::new();
        let mut cur: Option<Group> = None;

        for item in items {
            match item {
                RegionItem::Call(id) => {
                    let d = self.calls[id];
                    if !d.needs {
                        // Transparent: ride along inside the open group (the
                        // hoisting/absorption case) or emit plain.
                        match (&mut cur, self.coalesce) {
                            (Some(g), true) => g.ops.push(ExecOp::Call(*id)),
                            _ => {
                                self.flush(&mut cur, &mut out);
                                out.push(ExecOp::Call(*id));
                            }
                        }
                        continue;
                    }
                    let cs = self.comm[id];
                    let mergeable = self.coalesce
                        && matches!(&cur, Some(g) if (g.home_only || d.home_only)
                            && !g.comm.conflicts(cs));
                    if mergeable {
                        let g = cur.as_mut().expect("checked above");
                        g.ops.push(ExecOp::Call(*id));
                        g.comm = g.comm.union(cs);
                        g.home_only &= d.home_only;
                        g.has_needs = true;
                    } else {
                        self.flush(&mut cur, &mut out);
                        cur = Some(Group {
                            ops: vec![ExecOp::Call(*id)],
                            comm: cs,
                            home_only: d.home_only,
                            has_needs: true,
                        });
                    }
                }
                RegionItem::Loop { label, trip, body } => {
                    let (all_home_only, any_needs, loop_comm) = self.loop_summary(body);
                    let begin = ExecOp::LoopBegin {
                        label: label.clone(),
                        lo: trip.map_or(0, |t| t.0),
                        hi: trip.map_or(0, |t| t.1),
                    };
                    if all_home_only && !any_needs {
                        // Fully transparent loop: absorb it whole into the
                        // open group or emit plain.
                        let mut ops = vec![begin];
                        self.emit_plain(body, &mut ops);
                        ops.push(ExecOp::LoopEnd);
                        match (&mut cur, self.coalesce) {
                            (Some(g), true) => g.ops.extend(ops),
                            _ => {
                                self.flush(&mut cur, &mut out);
                                out.extend(ops);
                            }
                        }
                    } else if all_home_only && self.coalesce {
                        // Home-only loop with schedulable calls inside:
                        // hoist — one schedule/directive covers the whole
                        // loop (the paper's center_of_mass case), merging
                        // with an adjacent phase when the guard allows.
                        let mut ops = vec![begin];
                        self.emit_plain(body, &mut ops);
                        ops.push(ExecOp::LoopEnd);
                        let mergeable = matches!(&cur, Some(g) if !g.comm.conflicts(loop_comm));
                        if mergeable {
                            let g = cur.as_mut().expect("checked above");
                            g.ops.extend(ops);
                            g.comm = g.comm.union(loop_comm);
                            g.has_needs = true;
                        } else {
                            self.flush(&mut cur, &mut out);
                            cur = Some(Group {
                                ops,
                                comm: loop_comm,
                                home_only: true,
                                has_needs: true,
                            });
                        }
                    } else {
                        // Opaque loop: phases live inside it.
                        self.flush(&mut cur, &mut out);
                        out.push(begin);
                        let inner = self.plan_seq(cfg, body);
                        out.extend(inner);
                        out.push(ExecOp::LoopEnd);
                    }
                }
            }
        }
        self.flush(&mut cur, &mut out);
        out
    }

    /// Summarize a loop body: `(all calls home-only, any call needs a
    /// schedule, union of communication footprints)`.
    fn loop_summary(&self, body: &[RegionItem]) -> (bool, bool, CommSet) {
        let mut all_home = true;
        let mut any_needs = false;
        let mut comm = CommSet::default();
        for item in body {
            match item {
                RegionItem::Call(id) => {
                    let d = self.calls[id];
                    all_home &= d.home_only;
                    any_needs |= d.needs;
                    if d.needs {
                        comm = comm.union(self.comm[id]);
                    }
                }
                RegionItem::Loop { body, .. } => {
                    let (h, n, c) = self.loop_summary(body);
                    all_home &= h;
                    any_needs |= n;
                    comm = comm.union(c);
                }
            }
        }
        (all_home, any_needs, comm)
    }

    /// Emit items without any directives (all transparent).
    fn emit_plain(&self, items: &[RegionItem], out: &mut Vec<ExecOp>) {
        for item in items {
            match item {
                RegionItem::Call(id) => out.push(ExecOp::Call(*id)),
                RegionItem::Loop { label, trip, body } => {
                    out.push(ExecOp::LoopBegin {
                        label: label.clone(),
                        lo: trip.map_or(0, |t| t.0),
                        hi: trip.map_or(0, |t| t.1),
                    });
                    self.emit_plain(body, out);
                    out.push(ExecOp::LoopEnd);
                }
            }
        }
    }

    /// Close the open group: allocate its phase id and wrap its ops in
    /// directives.
    fn flush(&mut self, cur: &mut Option<Group>, out: &mut Vec<ExecOp>) {
        let Some(g) = cur.take() else { return };
        debug_assert!(g.has_needs);
        let phase = self.next_phase;
        self.next_phase += 1;
        for op in &g.ops {
            if let ExecOp::Call(id) = op {
                if let Some(d) = self.calls.get_mut(id) {
                    if d.needs {
                        d.phase = Some(phase);
                    }
                }
            }
        }
        out.push(ExecOp::PhaseBegin(phase));
        out.extend(g.ops);
        out.push(ExecOp::PhaseEnd(phase));
    }
}

/// Pretty-print a plan (used by the Figure 4 harness binary).
pub fn render_plan(cfg: &Cfg, plan: &DirectivePlan) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let mut indent = 0usize;
    for op in &plan.ops {
        let pad = "  ".repeat(indent);
        match op {
            ExecOp::PhaseBegin(p) => {
                writeln!(s, "{pad}phase_begin({p})   // presend + arm recording").unwrap()
            }
            ExecOp::PhaseEnd(p) => writeln!(s, "{pad}phase_end({p})").unwrap(),
            ExecOp::Call(id) => {
                let node = cfg.call_node[*id];
                let c = cfg.call(node).expect("call");
                let d = plan.assignment.calls[id];
                let accesses: Vec<String> = c
                    .access
                    .iter()
                    .filter(|(_, pa)| pa.any())
                    .map(|(a, pa)| format!("{a}: {}", pa.describe()))
                    .collect();
                writeln!(
                    s,
                    "{pad}{}({})   // {}",
                    c.func,
                    accesses.join("; "),
                    if d.needs { "needs schedule" } else { "home accesses only" }
                )
                .unwrap();
            }
            ExecOp::LoopBegin { label, lo, hi } => {
                writeln!(s, "{pad}for {label} in {lo}..{hi} {{").unwrap();
                indent += 1;
            }
            ExecOp::LoopEnd => {
                indent -= 1;
                writeln!(s, "{}}}", "  ".repeat(indent)).unwrap();
            }
            ExecOp::CommutativeMerge { phase, agg, .. } => {
                writeln!(s, "{pad}merge({agg})        // phase {phase}: install privatized deltas")
                    .unwrap()
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;
    use crate::dataflow::ReachingUnstructured;

    fn plan_of(b: CfgBuilder, coalesce: bool) -> (Cfg, DirectivePlan) {
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        let plan = place_directives(&cfg, &sol, coalesce);
        (cfg, plan)
    }

    fn universe(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// Rule 2: an unstructured call always needs a schedule.
    #[test]
    fn unstructured_call_needs_schedule() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        b.call("gather", &[("A", false, false, true, false)]);
        let (_, plan) = plan_of(b, true);
        let d = plan.assignment.calls[&0];
        assert!(d.needs);
        assert_eq!(d.phase, Some(1));
        assert_eq!(plan.assignment.n_phases, 1);
    }

    /// Rule 1: owner writes need a schedule only when reached.
    #[test]
    fn owner_write_needs_schedule_only_when_reached() {
        // writer alone: no directive.
        let mut b = CfgBuilder::new(universe(&["A"]));
        b.call("writer", &[("A", false, true, false, false)]);
        let (_, plan) = plan_of(b, true);
        assert!(!plan.assignment.calls[&0].needs);
        assert_eq!(plan.assignment.n_phases, 0);

        // reader then writer in a loop: the writer is reached via the back
        // edge (repetitive invalidations), so it needs a schedule.
        let mut b = CfgBuilder::new(universe(&["A"]));
        b.begin_loop("it");
        b.call("reader", &[("A", false, false, true, false)]);
        b.call("writer", &[("A", false, true, false, false)]);
        b.end_loop();
        let (_, plan) = plan_of(b, true);
        assert!(plan.assignment.calls[&0].needs, "reader is unstructured");
        assert!(plan.assignment.calls[&1].needs, "writer is reached");
    }

    /// Conflict guard: reader and writer of the same aggregate must not
    /// share a phase even though the writer is home-only.
    #[test]
    fn no_merge_across_conflicting_aggregates() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        b.begin_loop("it");
        b.call("reader", &[("A", false, false, true, false)]);
        b.call("writer", &[("A", false, true, false, false)]);
        b.end_loop();
        let (_, plan) = plan_of(b, true);
        let p0 = plan.assignment.calls[&0].phase;
        let p1 = plan.assignment.calls[&1].phase;
        assert!(p0.is_some() && p1.is_some());
        assert_ne!(p0, p1, "read and write of A must be separate phases");
        assert_eq!(plan.assignment.n_phases, 2);
    }

    /// Coalescing: two home-only needs-calls on unrelated aggregates merge.
    #[test]
    fn homeonly_neighbors_coalesce() {
        let mut b = CfgBuilder::new(universe(&["A", "B"]));
        b.begin_loop("it");
        b.call("reader", &[("A", false, false, true, false), ("B", false, false, true, false)]);
        b.call("writerA", &[("A", false, true, false, false)]);
        b.call("writerB", &[("B", false, true, false, false)]);
        b.end_loop();
        let (_, plan) = plan_of(b, true);
        let pa = plan.assignment.calls[&1].phase.unwrap();
        let pb = plan.assignment.calls[&2].phase.unwrap();
        assert_eq!(pa, pb, "the two owner-write phases coalesce");
        assert_eq!(plan.assignment.n_phases, 2);

        // Without coalescing: three phases.
        let mut b = CfgBuilder::new(universe(&["A", "B"]));
        b.begin_loop("it");
        b.call("reader", &[("A", false, false, true, false), ("B", false, false, true, false)]);
        b.call("writerA", &[("A", false, true, false, false)]);
        b.call("writerB", &[("B", false, true, false, false)]);
        b.end_loop();
        let (_, plan) = plan_of(b, false);
        assert_eq!(plan.assignment.n_phases, 3);
    }

    /// Hoisting: a home-only loop whose calls need schedules (Barnes'
    /// `center_of_mass`: owner writes reached by the tree build) gets ONE
    /// directive outside the loop, not one per call inside.
    #[test]
    fn homeonly_loop_hoisted_single_directive() {
        let mut b = CfgBuilder::new(universe(&["tree"]));
        b.begin_loop("step");
        b.call("load", &[("tree", false, false, false, true)]);
        b.begin_loop("com");
        b.call("center_of_mass", &[("tree", true, true, false, false)]);
        b.end_loop();
        b.end_loop();
        let (_, plan) = plan_of(b, true);
        // center_of_mass needs a schedule (rule 1: reached + owner write)
        // but may not share load's phase (conflict on tree) — two phases.
        assert!(plan.assignment.calls[&1].needs);
        assert_eq!(plan.assignment.n_phases, 2);
        let ops: Vec<String> = plan.ops.iter().map(|o| format!("{o:?}")).collect();
        // The com phase's directive sits OUTSIDE the com loop.
        let pb2 = ops.iter().position(|o| o.contains("PhaseBegin(2)")).unwrap();
        let com_loop = ops.iter().position(|o| o.contains("\"com\"")).unwrap();
        let pe2 = ops.iter().position(|o| o.contains("PhaseEnd(2)")).unwrap();
        assert!(pb2 < com_loop && com_loop < pe2, "directive hoisted out of the loop: {ops:?}");
        // Without coalescing, the directive stays inside the loop.
        let mut b = CfgBuilder::new(universe(&["tree"]));
        b.begin_loop("step");
        b.call("load", &[("tree", false, false, false, true)]);
        b.begin_loop("com");
        b.call("center_of_mass", &[("tree", true, true, false, false)]);
        b.end_loop();
        b.end_loop();
        let (_, plan) = plan_of(b, false);
        let ops: Vec<String> = plan.ops.iter().map(|o| format!("{o:?}")).collect();
        let com_loop = ops.iter().position(|o| o.contains("\"com\"")).unwrap();
        let pb2 = ops.iter().position(|o| o.contains("PhaseBegin(2)")).unwrap();
        assert!(pb2 > com_loop, "unoptimized directive stays inside the loop: {ops:?}");
    }

    /// A loop with a needs-call inside keeps its directives inside the
    /// loop (they repeat per iteration — that is what makes the schedule
    /// repetitive).
    #[test]
    fn opaque_loop_keeps_directives_inside() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        b.begin_loop("it");
        b.call("gather", &[("A", false, false, true, false)]);
        b.end_loop();
        let (_, plan) = plan_of(b, true);
        let ops: Vec<String> = plan.ops.iter().map(|o| format!("{o:?}")).collect();
        let lb = ops.iter().position(|o| o.contains("LoopBegin")).unwrap();
        let pb = ops.iter().position(|o| o.contains("PhaseBegin")).unwrap();
        let le = ops.iter().position(|o| o.contains("LoopEnd")).unwrap();
        assert!(lb < pb && pb < le, "directive inside the loop: {ops:?}");
    }

    /// The Figure-4 Barnes main loop: four phases, with the
    /// center-of-mass loop covered by a single hoisted directive.
    #[test]
    fn barnes_main_loop_phases() {
        let mut b = CfgBuilder::new(universe(&["tree", "pos", "acc"]));
        b.begin_loop("step");
        // load_tree: insert bodies (unstructured writes into the tree).
        b.call(
            "load_tree",
            &[("tree", false, false, true, true), ("pos", true, false, false, false)],
        );
        // center-of-mass: home-only upward pass, in a loop per level
        // (needs a schedule by rule 1: owner writes of the tree reached by
        // load_tree's unstructured writes).
        b.begin_loop("level");
        b.call("center_of_mass", &[("tree", true, true, false, false)]);
        b.end_loop();
        // forces: unstructured tree+position reads, home accel writes.
        b.call(
            "forces",
            &[
                ("tree", false, false, true, false),
                ("pos", false, false, true, false),
                ("acc", false, true, false, false),
            ],
        );
        // advance: owner-writes positions (reached by forces' reads).
        b.call(
            "advance",
            &[("pos", false, true, false, false), ("acc", true, false, false, false)],
        );
        b.end_loop();
        let (cfg, plan) = plan_of(b, true);

        // Every call needs a schedule (load/forces by rule 2; com and
        // advance by rule 1).
        for id in [0usize, 1, 2, 3] {
            assert!(plan.assignment.calls[&id].needs, "call {id} needs a schedule");
        }
        // Four phases, as the paper reports for Barnes.
        assert_eq!(plan.assignment.n_phases, 4);
        // No two calls share a phase (tree and pos conflicts prevent all
        // merges) — but the com loop still has a single hoisted directive
        // covering every iteration of the level loop: phase 2.
        let ops: Vec<String> = plan.ops.iter().map(|o| format!("{o:?}")).collect();
        let pb2 = ops.iter().position(|o| o.contains("PhaseBegin(2)")).unwrap();
        let lvl = ops.iter().position(|o| o.contains("\"level\"")).unwrap();
        let pe2 = ops.iter().position(|o| o.contains("PhaseEnd(2)")).unwrap();
        assert!(pb2 < lvl && lvl < pe2, "single directive for the com phase: {ops:?}");
        let rendered = render_plan(&cfg, &plan);
        assert!(rendered.contains("for level"), "rendered plan:\n{rendered}");
    }

    /// An annotated call with a provably commutative write gets a merge
    /// directive spliced right after it; unannotated calls do not.
    #[test]
    fn commute_annotation_splices_merge_op() {
        let mut b = CfgBuilder::new(universe(&["tree", "pos"]));
        b.begin_loop("step");
        b.call_commuting(
            "load_tree",
            &[("tree", false, false, true, true), ("pos", true, false, false, false)],
            &["tree"],
            true,
        );
        b.call("forces", &[("tree", false, false, true, false)]);
        b.end_loop();
        let (cfg, plan) = plan_of(b, true);
        let merge_pos = plan
            .ops
            .iter()
            .position(
                |o| matches!(o, ExecOp::CommutativeMerge { agg, call: 0, .. } if agg == "tree"),
            )
            .expect("merge op spliced");
        let call_pos =
            plan.ops.iter().position(|o| matches!(o, ExecOp::Call(0))).expect("call present");
        assert_eq!(merge_pos, call_pos + 1, "merge follows its call: {:?}", plan.ops);
        assert_eq!(
            plan.ops.iter().filter(|o| matches!(o, ExecOp::CommutativeMerge { .. })).count(),
            1,
            "only the annotated call merges"
        );
        let rendered = render_plan(&cfg, &plan);
        assert!(rendered.contains("merge(tree)"), "rendered plan:\n{rendered}");
    }

    /// Annotation without a commutative write (the analysis said no) emits
    /// no merge op — the lint layer owns the E008 instead.
    #[test]
    fn annotation_without_commutative_write_is_inert() {
        let mut b = CfgBuilder::new(universe(&["tree"]));
        b.call_commuting("load", &[("tree", false, false, true, true)], &[], true);
        let (_, plan) = plan_of(b, true);
        assert!(
            !plan.ops.iter().any(|o| matches!(o, ExecOp::CommutativeMerge { .. })),
            "{:?}",
            plan.ops
        );
    }

    /// The JSON codec round-trips the full op vocabulary and decisions.
    #[test]
    fn plan_json_round_trip() {
        let mut b = CfgBuilder::new(universe(&["tree", "pos", "acc"]));
        b.begin_loop("step");
        b.call_commuting(
            "load_tree",
            &[("tree", false, false, true, true), ("pos", true, false, false, false)],
            &["tree"],
            true,
        );
        b.call(
            "forces",
            &[("tree", false, false, true, false), ("acc", false, true, false, false)],
        );
        b.call("advance", &[("acc", true, false, false, false)]);
        b.end_loop();
        let (_, plan) = plan_of(b, true);
        assert!(plan.ops.iter().any(|o| matches!(o, ExecOp::CommutativeMerge { .. })));

        let json = plan.to_json();
        let back = DirectivePlan::from_json(&json).expect("parse back");
        assert_eq!(back.ops, plan.ops);
        assert_eq!(format!("{:?}", back.assignment), format!("{:?}", plan.assignment));
        // Stability: re-serializing the parsed plan is bit-identical.
        assert_eq!(back.to_json(), json);
    }

    /// Bad payloads fail with errors, not panics.
    #[test]
    fn plan_json_rejects_malformed() {
        assert!(DirectivePlan::from_json("{}").is_err());
        assert!(DirectivePlan::from_json(
            "{\"n_phases\":1,\"calls\":[],\"ops\":[{\"op\":\"nope\"}]}"
        )
        .is_err());
        assert!(DirectivePlan::from_json("not json").is_err());
    }
}
