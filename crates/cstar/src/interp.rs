//! DSM-backed interpreter for compiled mini-C\*\* programs.
//!
//! Executes the directive-annotated op sequence on a `prescient-runtime`
//! machine, SPMD style: every node runs `main` (replicated sequential
//! control flow); a parallel call runs its body once per *owned* element of
//! the parallel aggregate, with `#0`/`#1` bound to the element position,
//! and ends with the data-parallel barrier. The compiler-placed
//! `phase_begin`/`phase_end` directives drive the predictive protocol.

use std::collections::BTreeMap;
use std::sync::Arc;

use prescient_core::AccessTap;
use prescient_runtime::{Agg1D, Agg2D, Dist1D, Dist2D, Machine, NodeCtx, RunReport};
use prescient_tempest::GAddr;

use crate::ast::{BinOp, Builtin, ElemTy, Expr, ParFn, Stmt};
use crate::compile::CompiledProgram;
use crate::directives::ExecOp;

/// A scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Float.
    F(f64),
    /// Integer.
    I(i64),
}

impl Value {
    /// As float (ints promote).
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => v as f64,
        }
    }

    /// As integer index (floats are a runtime error).
    pub fn as_index(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => panic!("float {v} used as index"),
        }
    }

    /// Truthiness (nonzero).
    pub fn truthy(self) -> bool {
        match self {
            Value::F(v) => v != 0.0,
            Value::I(v) => v != 0,
        }
    }
}

/// A materialized aggregate on the machine.
pub enum AggStore {
    /// 1-D float.
    F1(Agg1D<f64>),
    /// 1-D int.
    I1(Agg1D<i64>),
    /// 2-D float.
    F2(Agg2D<f64>),
    /// 2-D int.
    I2(Agg2D<i64>),
}

impl AggStore {
    /// Dimensions.
    pub fn dims(&self) -> Vec<usize> {
        match self {
            AggStore::F1(a) => vec![a.len()],
            AggStore::I1(a) => vec![a.len()],
            AggStore::F2(a) => vec![a.rows(), a.cols()],
            AggStore::I2(a) => vec![a.rows(), a.cols()],
        }
    }

    /// Element type.
    pub fn ty(&self) -> ElemTy {
        match self {
            AggStore::F1(_) | AggStore::F2(_) => ElemTy::Float,
            AggStore::I1(_) | AggStore::I2(_) => ElemTy::Int,
        }
    }

    pub(crate) fn addr(&self, idx: &[i64]) -> GAddr {
        let dims = self.dims();
        assert_eq!(idx.len(), dims.len(), "aggregate rank mismatch");
        for (k, (&i, &d)) in idx.iter().zip(&dims).enumerate() {
            assert!(
                i >= 0 && (i as usize) < d,
                "index {i} out of bounds for dimension {k} of size {d}"
            );
        }
        match self {
            AggStore::F1(a) => a.addr(idx[0] as usize),
            AggStore::I1(a) => a.addr(idx[0] as usize),
            AggStore::F2(a) => a.addr(idx[0] as usize, idx[1] as usize),
            AggStore::I2(a) => a.addr(idx[0] as usize, idx[1] as usize),
        }
    }

    fn read(&self, ctx: &mut NodeCtx, idx: &[i64]) -> Value {
        let addr = self.addr(idx);
        match self.ty() {
            ElemTy::Float => Value::F(ctx.read::<f64>(addr)),
            ElemTy::Int => Value::I(ctx.read::<i64>(addr)),
        }
    }

    fn write(&self, ctx: &mut NodeCtx, idx: &[i64], v: Value) {
        let addr = self.addr(idx);
        match self.ty() {
            ElemTy::Float => ctx.write(addr, v.as_f()),
            ElemTy::Int => ctx.write(addr, v.as_index()),
        }
    }

    /// Element positions owned by `node`, as index vectors.
    fn owned(&self, node: prescient_tempest::NodeId) -> Vec<Vec<i64>> {
        match self {
            AggStore::F1(a) => a.my_range(node).map(|i| vec![i as i64]).collect(),
            AggStore::I1(a) => a.my_range(node).map(|i| vec![i as i64]).collect(),
            AggStore::F2(a) => {
                let cols = a.cols();
                a.my_rows(node)
                    .flat_map(|i| (0..cols).map(move |j| vec![i as i64, j as i64]))
                    .collect()
            }
            AggStore::I2(a) => {
                let cols = a.cols();
                a.my_rows(node)
                    .flat_map(|i| (0..cols).map(move |j| vec![i as i64, j as i64]))
                    .collect()
            }
        }
    }
}

/// All of a program's aggregates, materialized.
pub type AggMap = BTreeMap<String, AggStore>;

/// Allocate every aggregate of `prog` on `machine` (1-D: block
/// distribution; 2-D: row-block).
pub fn materialize(machine: &Machine, prog: &CompiledProgram) -> AggMap {
    let mut m = AggMap::new();
    for d in &prog.program.aggs {
        let store = match (d.dims.len(), d.ty) {
            (1, ElemTy::Float) => AggStore::F1(Agg1D::new(machine, d.dims[0], Dist1D::Block)),
            (1, ElemTy::Int) => AggStore::I1(Agg1D::new(machine, d.dims[0], Dist1D::Block)),
            (2, ElemTy::Float) => {
                AggStore::F2(Agg2D::new(machine, d.dims[0], d.dims[1], Dist2D::RowBlock))
            }
            (2, ElemTy::Int) => {
                AggStore::I2(Agg2D::new(machine, d.dims[0], d.dims[1], Dist2D::RowBlock))
            }
            _ => unreachable!("parser enforces 1-D/2-D"),
        };
        m.insert(d.name.clone(), store);
    }
    m
}

/// Run a compiled program on `machine`.
///
/// `init` runs SPMD before `main` (each node initializes the elements it
/// owns); it may be a no-op. Returns the run report of the `main`
/// execution only.
pub fn run_program<F>(
    machine: &mut Machine,
    prog: &CompiledProgram,
    aggs: &AggMap,
    init: F,
) -> RunReport
where
    F: Fn(&mut NodeCtx, &AggMap) + Sync,
{
    // Initialization run (not measured).
    machine.run(|ctx| {
        init(ctx, aggs);
        ctx.barrier();
    });

    let (_, report) = machine.run(|ctx| exec_main(ctx, prog, aggs, None));
    report
}

/// Run a compiled program with the schedule-oracle tap attached: every
/// home-node request during `main` is logged into `tap`, labeled with the
/// call-site id the interpreter was executing. The tap is installed after
/// the (unlabeled) `init` run and removed before returning.
pub fn run_program_traced<F>(
    machine: &mut Machine,
    prog: &CompiledProgram,
    aggs: &AggMap,
    init: F,
    tap: &Arc<AccessTap>,
) -> RunReport
where
    F: Fn(&mut NodeCtx, &AggMap) + Sync,
{
    machine.run(|ctx| {
        init(ctx, aggs);
        ctx.barrier();
    });

    machine.install_tap(tap);
    let (_, report) = machine.run(|ctx| exec_main(ctx, prog, aggs, Some(tap)));
    machine.remove_tap();
    tap.clear_call();
    report
}

/// Execute the op sequence on one node. With a tap, the shared call label
/// is set before each parallel call; all nodes write the same value, and
/// the per-call barrier orders label changes against the next call's
/// requests (the label is deliberately *not* cleared between calls — a
/// slow node's clear could race a fast node's next set).
///
/// The label *is* cleared at each `phase_begin`: the directive's schedule
/// replay (ownership prefetches, recalls) goes through the ordinary fault
/// path and would otherwise be attributed to the previous call. Clearing
/// there is race-free — the post-call barrier has retired every labeled
/// request, and the directive's own stability barrier retires the replay
/// fetches before any node can set the next call's label.
fn exec_main(ctx: &mut NodeCtx, prog: &CompiledProgram, aggs: &AggMap, tap: Option<&AccessTap>) {
    let ops = &prog.plan.ops;
    // Precompute matching LoopEnd for each LoopBegin.
    let mut match_end = vec![usize::MAX; ops.len()];
    let mut stack = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            ExecOp::LoopBegin { .. } => stack.push(i),
            ExecOp::LoopEnd => {
                let b = stack.pop().expect("unbalanced loops");
                match_end[b] = i;
            }
            _ => {}
        }
    }

    let mut pc = 0usize;
    let mut loops: Vec<(usize, i64, i64)> = Vec::new(); // (begin pc, cur, hi)
    while pc < ops.len() {
        match &ops[pc] {
            ExecOp::PhaseBegin(p) => {
                if let Some(t) = tap {
                    t.clear_call();
                }
                ctx.phase_begin(*p);
            }
            ExecOp::PhaseEnd(_) => ctx.phase_end(),
            ExecOp::Call(id) => {
                if let Some(t) = tap {
                    t.set_call(*id as u64);
                }
                let (func, args) = &prog.call_sites[*id];
                let f = prog.program.func(func).expect("checked at compile time");
                run_parallel_call(ctx, prog, aggs, f, args);
                ctx.barrier(); // implicit end-of-parallel-phase barrier
            }
            ExecOp::LoopBegin { lo, hi, .. } => {
                if lo >= hi {
                    pc = match_end[pc];
                } else {
                    loops.push((pc, *lo, *hi));
                }
            }
            ExecOp::LoopEnd => {
                let (begin, cur, hi) = loops.pop().expect("loop stack underflow");
                let next = cur + 1;
                if next < hi {
                    loops.push((begin, next, hi));
                    pc = begin;
                }
            }
            // The DSM interpreter executes calls serialized per node, so
            // the merge point has nothing to install; the directive is
            // consumed by the runtime's commutative protocol mode and the
            // merge oracle.
            ExecOp::CommutativeMerge { .. } => {}
        }
        pc += 1;
    }
}

/// Run one parallel call over this node's owned elements.
fn run_parallel_call(
    ctx: &mut NodeCtx,
    _prog: &CompiledProgram,
    aggs: &AggMap,
    f: &ParFn,
    args: &[String],
) {
    // Bind parameter names to aggregate stores.
    let bind: BTreeMap<&str, &AggStore> =
        f.params.iter().zip(args).map(|(p, a)| (p.as_str(), &aggs[a])).collect();
    let par_agg = bind[f.params[0].as_str()];
    for pos in par_agg.owned(ctx.me()) {
        let mut env = Env { bind: &bind, pos: &pos, locals: Vec::new(), ctx };
        env.stmts(&f.body);
    }
}

struct Env<'a, 'c> {
    bind: &'a BTreeMap<&'a str, &'a AggStore>,
    pos: &'a [i64],
    locals: Vec<(String, Value)>,
    ctx: &'c mut NodeCtx,
}

impl Env<'_, '_> {
    fn lookup(&self, name: &str) -> Value {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("unknown local `{name}`"))
    }

    fn set(&mut self, name: &str, v: Value) {
        if let Some(slot) = self.locals.iter_mut().rev().find(|(n, _)| n == name) {
            slot.1 = v;
        } else {
            panic!("assignment to unbound local `{name}`");
        }
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let(name, e) => {
                let v = self.eval(e);
                self.locals.push((name.clone(), v));
            }
            Stmt::AssignLocal(name, e) => {
                let v = self.eval(e);
                self.set(name, v);
            }
            Stmt::AssignAgg { agg, idx, value, .. } => {
                let idxs: Vec<i64> = idx.iter().map(|e| self.eval(e).as_index()).collect();
                let v = self.eval(value);
                self.bind[agg.as_str()].write(self.ctx, &idxs, v);
            }
            Stmt::If(c, t, e) => {
                let depth = self.locals.len();
                if self.eval(c).truthy() {
                    self.stmts(t);
                } else {
                    self.stmts(e);
                }
                self.locals.truncate(depth);
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self.eval(lo).as_index();
                let hi = self.eval(hi).as_index();
                let depth = self.locals.len();
                self.locals.push((var.clone(), Value::I(lo)));
                for i in lo..hi {
                    let slot = self.locals.len() - 1;
                    self.locals[slot].1 = Value::I(i);
                    let inner = self.locals.len();
                    self.stmts(body);
                    self.locals.truncate(inner);
                }
                self.locals.truncate(depth);
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Value {
        match e {
            Expr::Num(v) => Value::F(*v),
            Expr::Int(v) => Value::I(*v),
            Expr::Var(name) => self.lookup(name),
            Expr::Pos(k) => {
                assert!(*k < self.pos.len(), "#{k} used in a {}-D context", self.pos.len());
                Value::I(self.pos[*k])
            }
            Expr::AggRead { agg, idx, .. } => {
                let idxs: Vec<i64> = idx.iter().map(|e| self.eval(e).as_index()).collect();
                self.bind[agg.as_str()].read(self.ctx, &idxs)
            }
            Expr::Neg(a) => {
                self.ctx.work(1);
                match self.eval(a) {
                    Value::F(v) => Value::F(-v),
                    Value::I(v) => Value::I(-v),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a);
                let vb = self.eval(b);
                self.ctx.work(1);
                eval_bin(*op, va, vb)
            }
            Expr::Builtin(b, args) => {
                let vs: Vec<Value> = args.iter().map(|a| self.eval(a)).collect();
                self.ctx.work(1);
                match b {
                    Builtin::Abs => match vs[0] {
                        Value::F(v) => Value::F(v.abs()),
                        Value::I(v) => Value::I(v.abs()),
                    },
                    Builtin::Sqrt => Value::F(vs[0].as_f().sqrt()),
                    Builtin::Min => num2(vs[0], vs[1], f64::min, i64::min),
                    Builtin::Max => num2(vs[0], vs[1], f64::max, i64::max),
                }
            }
        }
    }
}

fn num2(a: Value, b: Value, ff: fn(f64, f64) -> f64, fi: fn(i64, i64) -> i64) -> Value {
    match (a, b) {
        (Value::I(x), Value::I(y)) => Value::I(fi(x, y)),
        _ => Value::F(ff(a.as_f(), b.as_f())),
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => match (a, b) {
            (Value::I(x), Value::I(y)) => Value::I(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                _ => unreachable!(),
            }),
            _ => {
                let (x, y) = (a.as_f(), b.as_f());
                Value::F(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                })
            }
        },
        Mod => Value::I(a.as_index() % b.as_index()),
        Lt | Le | Gt | Ge | Eq | Ne => {
            let (x, y) = (a.as_f(), b.as_f());
            let r = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                Eq => x == y,
                Ne => x != y,
                _ => unreachable!(),
            };
            Value::I(r as i64)
        }
    }
}

/// A deterministic SPMD initializer: each node fills the elements it owns
/// from a splitmix64 stream keyed by `seed`, the aggregate's position in
/// the map, and the element index — contents are independent of node count
/// and run order. Floats land in `[0, 1)`; ints are reduced modulo the
/// aggregate's leading extent, so int aggregates can safely be used as
/// index tables (the schedule oracle's default workload).
pub fn seeded_init(seed: u64) -> impl Fn(&mut NodeCtx, &AggMap) + Sync {
    move |ctx, aggs| {
        for (k, store) in aggs.values().enumerate() {
            let extent = store.dims()[0] as u64;
            for pos in store.owned(ctx.me()) {
                let lin = pos
                    .iter()
                    .fold(0u64, |acc, &i| acc.wrapping_mul(0x100_0003).wrapping_add(i as u64));
                let r = splitmix64(seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ lin);
                let v = match store.ty() {
                    ElemTy::Float => Value::F((r >> 11) as f64 / (1u64 << 53) as f64),
                    ElemTy::Int => Value::I((r % extent.max(1)) as i64),
                };
                store.write(ctx, &pos, v);
            }
        }
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Gather a float aggregate's contents (row-major) by reading it from node
/// 0 — a testing/diagnostic convenience.
pub fn read_aggregate_f64(machine: &mut Machine, aggs: &AggMap, name: &str) -> Vec<f64> {
    let store = &aggs[name];
    let dims = store.dims();
    let (results, _) = machine.run(|ctx| {
        let mut out = Vec::new();
        if ctx.me() == 0 {
            match dims.len() {
                1 => {
                    for i in 0..dims[0] {
                        out.push(store.read(ctx, &[i as i64]).as_f());
                    }
                }
                _ => {
                    for i in 0..dims[0] {
                        for j in 0..dims[1] {
                            out.push(store.read(ctx, &[i as i64, j as i64]).as_f());
                        }
                    }
                }
            }
        }
        ctx.barrier();
        out
    });
    results.into_iter().next().expect("node 0 result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_semantics() {
        assert_eq!(Value::I(3).as_f(), 3.0);
        assert_eq!(Value::F(2.5).as_f(), 2.5);
        assert!(Value::I(1).truthy());
        assert!(!Value::F(0.0).truthy());
    }

    #[test]
    fn bin_promotion() {
        assert_eq!(eval_bin(BinOp::Add, Value::I(1), Value::I(2)), Value::I(3));
        assert_eq!(eval_bin(BinOp::Add, Value::I(1), Value::F(2.5)), Value::F(3.5));
        assert_eq!(eval_bin(BinOp::Div, Value::I(7), Value::I(2)), Value::I(3));
        assert_eq!(eval_bin(BinOp::Lt, Value::I(1), Value::F(2.0)), Value::I(1));
        assert_eq!(eval_bin(BinOp::Mod, Value::I(7), Value::I(3)), Value::I(1));
    }

    #[test]
    #[should_panic(expected = "used as index")]
    fn float_index_rejected() {
        Value::F(1.5).as_index();
    }
}
