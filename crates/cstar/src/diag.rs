//! Span-carrying diagnostics for the mini-C\*\* compiler.
//!
//! Every front-end error and lint is a [`Diagnostic`]: a stable code
//! (`E0xx` hard errors, `W0xx` lints), a severity, a primary message, zero
//! or more labeled source spans, and free-form notes. Diagnostics render
//! two ways: a rustc-style caret-annotated text form ([`Diagnostic::render`])
//! and a line-oriented JSON form ([`Diagnostic::to_json`]) that
//! [`Diagnostic::from_json_array`] parses back losslessly (the round-trip
//! the `cstar-lint --json` mode relies on). The JSON codec is hand-rolled
//! so the compiler crate stays dependency-free.
//!
//! # Code catalog
//!
//! | Code | Meaning | Paper anchor |
//! |------|---------|--------------|
//! | E001 | lexical error | — |
//! | E002 | syntax error | — |
//! | E003 | name error inside a parallel function | §4.2 |
//! | E004 | invalid parallel call site (arity, unknown callee/aggregate) | §4.2 |
//! | E005 | aggregate missing from the dataflow universe | §4.3 |
//! | E006 | aggregate-universe overflow (> 64 aggregates) | §4.3 |
//! | E007 | schedule-oracle soundness violation (dynamic access not covered statically) | §4.2 |
//! | W001 | phase-conflict: one phase both reads and writes an aggregate | §3.4 |
//! | W002 | dead directive: scheduled call no unstructured access reaches | §4.3 |
//! | W003 | constant neighbor offset exceeds the aggregate extents | §4.2 |
//! | W004 | unused aggregate / written but never read | — |
//! | W005 | index expression fed by a non-home read | §3.3 |
//! | W006 | schedule-oracle precision: a predicted access was never observed | §3.4 |
//! | W007 | conflict phase is commutative-mergeable; suggest `commute` directive | §3.4 |
//! | E008 | unsound `commute` annotation: a same-phase read observes the privatized aggregate | §3.4 |

use std::fmt;

use crate::lexer::ParseError;

/// Stable diagnostic codes (see the module-level catalog).
pub mod codes {
    /// Lexical error.
    pub const LEX: &str = "E001";
    /// Syntax error.
    pub const PARSE: &str = "E002";
    /// Name error inside a parallel function.
    pub const NAME: &str = "E003";
    /// Invalid parallel call site.
    pub const CALL: &str = "E004";
    /// Aggregate missing from the dataflow universe.
    pub const DATAFLOW_UNIVERSE: &str = "E005";
    /// More than 64 aggregates (bit-vector overflow).
    pub const AGG_LIMIT: &str = "E006";
    /// Schedule-oracle soundness violation.
    pub const ORACLE_SOUNDNESS: &str = "E007";
    /// Phase jointly reads and writes one aggregate.
    pub const PHASE_CONFLICT: &str = "W001";
    /// Directive placed at a call nothing unstructured reaches.
    pub const DEAD_DIRECTIVE: &str = "W002";
    /// Constant neighbor offset exceeds the declared extents.
    pub const STATIC_OOB: &str = "W003";
    /// Unused aggregate, or written but never read.
    pub const UNUSED_AGG: &str = "W004";
    /// Index expression fed by a non-home read.
    pub const UNSTRUCTURED_INDEX: &str = "W005";
    /// Statically predicted access never observed dynamically.
    pub const ORACLE_PRECISION: &str = "W006";
    /// Conflict phase whose updates are commutative-mergeable.
    pub const COMMUTE_SUGGEST: &str = "W007";
    /// Unsound `commute` annotation (order-dependent update, or a
    /// same-phase read observing the privatized aggregate).
    pub const COMMUTE_UNSOUND: &str = "E008";
}

/// A source region in character offsets (the lexer works on `char`
/// indices), with the 1-based line of its start for span-less consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Span {
    /// Start offset (inclusive, in chars).
    pub lo: u32,
    /// End offset (exclusive, in chars).
    pub hi: u32,
    /// 1-based source line of `lo`.
    pub line: u32,
}

impl Span {
    /// A span covering `lo..hi` starting on `line`.
    pub fn new(lo: usize, hi: usize, line: u32) -> Span {
        Span { lo: lo as u32, hi: hi.max(lo) as u32, line }
    }

    /// A single-character span.
    pub fn point(at: usize, line: u32) -> Span {
        Span::new(at, at + 1, line)
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            line: if self.lo <= other.lo { self.line } else { other.line },
        }
    }
}

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A lint: the program compiles, but is suspicious.
    Warning,
    /// A hard error: the program is rejected.
    Error,
}

impl Severity {
    /// Lower-case keyword used in rendered and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One labeled source span of a diagnostic. The first label is primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Where.
    pub span: Span,
    /// What to say under the carets (may be empty).
    pub text: String,
}

/// A compiler diagnostic: code, severity, message, labeled spans, notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`E0xx` / `W0xx`, see [`codes`]).
    pub code: String,
    /// Error or warning.
    pub severity: Severity,
    /// Primary message.
    pub message: String,
    /// Labeled spans; the first, if any, is the primary location.
    pub labels: Vec<Label>,
    /// Free-form notes rendered after the snippet.
    pub notes: Vec<String>,
    /// Source file the spans refer to, when known.
    pub file: Option<String>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity: Severity::Error,
            message: message.into(),
            labels: Vec::new(),
            notes: Vec::new(),
            file: None,
        }
    }

    /// A new warning (lint) diagnostic.
    pub fn warning(code: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic { severity: Severity::Warning, ..Diagnostic::error(code, message) }
    }

    /// Attach an unlabeled span.
    pub fn with_span(self, span: Span) -> Diagnostic {
        self.with_label(span, "")
    }

    /// Attach a labeled span.
    pub fn with_label(mut self, span: Span, text: impl Into<String>) -> Diagnostic {
        self.labels.push(Label { span, text: text.into() });
        self
    }

    /// Attach a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Attach the source-file name.
    pub fn with_file(mut self, file: impl Into<String>) -> Diagnostic {
        self.file = Some(file.into());
        self
    }

    /// The primary span, if any.
    pub fn primary_span(&self) -> Option<Span> {
        self.labels.first().map(|l| l.span)
    }

    /// 1-based line of the primary span (0 when span-less) — what the
    /// legacy [`ParseError`] shim reports.
    pub fn line(&self) -> u32 {
        self.primary_span().map_or(0, |s| s.line)
    }

    /// Is this a hard error?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Render the rustc-style caret form against the source text. `file`
    /// is used when the diagnostic carries no file name of its own.
    pub fn render(&self, src: &str, file: &str) -> String {
        let file = self.file.as_deref().unwrap_or(file);
        let mut out = format!("{}[{}]: {}\n", self.severity.as_str(), self.code, self.message);
        let lines = SourceLines::new(src);
        for label in &self.labels {
            lines.render_label(&mut out, file, label);
        }
        for note in &self.notes {
            out.push_str("  = note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Render a batch of diagnostics, blank-line separated.
    pub fn render_all(diags: &[Diagnostic], src: &str, file: &str) -> String {
        let mut out = String::new();
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&d.render(src, file));
        }
        out
    }

    /// The JSON object form (one line, stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        json_kv(&mut s, "code", &self.code);
        s.push(',');
        json_kv(&mut s, "severity", self.severity.as_str());
        s.push(',');
        json_kv(&mut s, "message", &self.message);
        if let Some(f) = &self.file {
            s.push(',');
            json_kv(&mut s, "file", f);
        }
        s.push_str(",\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"lo\":{},\"hi\":{},\"line\":{},",
                l.span.lo, l.span.hi, l.span.line
            ));
            json_kv(&mut s, "text", &l.text);
            s.push('}');
        }
        s.push_str("],\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_str(&mut s, n);
        }
        s.push_str("]}");
        s
    }

    /// A JSON array of diagnostics.
    pub fn json_array(diags: &[Diagnostic]) -> String {
        let mut s = String::from("[");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push(']');
        s
    }

    /// Parse a JSON array produced by [`Diagnostic::json_array`] back into
    /// diagnostics (the `--json` round-trip).
    pub fn from_json_array(input: &str) -> Result<Vec<Diagnostic>, String> {
        let value = JsonParser::parse(input)?;
        let arr = value.as_array().ok_or("expected a top-level array")?;
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            out.push(Diagnostic::from_json_value(v)?);
        }
        Ok(out)
    }

    fn from_json_value(v: &Json) -> Result<Diagnostic, String> {
        let obj = v.as_object().ok_or("expected a diagnostic object")?;
        let get_str = |k: &str| -> Result<String, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .and_then(|(_, v)| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let severity = match get_str("severity")?.as_str() {
            "warning" => Severity::Warning,
            "error" => Severity::Error,
            other => return Err(format!("unknown severity `{other}`")),
        };
        let mut d = Diagnostic {
            code: get_str("code")?,
            severity,
            message: get_str("message")?,
            labels: Vec::new(),
            notes: Vec::new(),
            file: obj
                .iter()
                .find(|(k, _)| k == "file")
                .and_then(|(_, v)| v.as_str())
                .map(str::to_string),
        };
        if let Some((_, labels)) = obj.iter().find(|(k, _)| k == "labels") {
            for l in labels.as_array().ok_or("`labels` must be an array")? {
                let lo = l.field_u32("lo")?;
                let hi = l.field_u32("hi")?;
                let line = l.field_u32("line")?;
                let text = l
                    .as_object()
                    .and_then(|o| o.iter().find(|(k, _)| k == "text"))
                    .and_then(|(_, v)| v.as_str())
                    .unwrap_or("")
                    .to_string();
                d.labels.push(Label { span: Span { lo, hi, line }, text });
            }
        }
        if let Some((_, notes)) = obj.iter().find(|(k, _)| k == "notes") {
            for n in notes.as_array().ok_or("`notes` must be an array")? {
                d.notes.push(n.as_str().ok_or("notes must be strings")?.to_string());
            }
        }
        Ok(d)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.as_str(), self.code, self.message)?;
        if let Some(s) = self.primary_span() {
            write!(f, " (line {})", s.line)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// The legacy stringly error shim: existing `parse`/`compile` callers keep
/// compiling while new code consumes [`Diagnostic`] directly.
impl From<Diagnostic> for ParseError {
    fn from(d: Diagnostic) -> ParseError {
        ParseError { line: d.line(), msg: d.message }
    }
}

/// Lift a legacy error into the diagnostics engine (span-less).
impl From<ParseError> for Diagnostic {
    fn from(e: ParseError) -> Diagnostic {
        let mut d = Diagnostic::error(codes::PARSE, e.msg);
        if e.line > 0 {
            d = d.with_note(format!("at line {}", e.line));
        }
        d
    }
}

// ---------------------------------------------------------------------
// Caret rendering
// ---------------------------------------------------------------------

/// Char-offset index of a source text's line starts.
struct SourceLines {
    chars: Vec<char>,
    /// Char offset at which each 0-based line starts.
    starts: Vec<usize>,
}

impl SourceLines {
    fn new(src: &str) -> SourceLines {
        let chars: Vec<char> = src.chars().collect();
        let mut starts = vec![0usize];
        for (i, &c) in chars.iter().enumerate() {
            if c == '\n' {
                starts.push(i + 1);
            }
        }
        SourceLines { chars, starts }
    }

    /// The text of 1-based line `n` (no trailing newline).
    fn line_text(&self, n: u32) -> Option<(usize, String)> {
        let idx = (n as usize).checked_sub(1)?;
        let &start = self.starts.get(idx)?;
        let end = self
            .chars
            .iter()
            .skip(start)
            .position(|&c| c == '\n')
            .map_or(self.chars.len(), |p| start + p);
        Some((start, self.chars[start..end].iter().collect()))
    }

    fn render_label(&self, out: &mut String, file: &str, label: &Label) {
        let span = label.span;
        let Some((line_start, text)) = self.line_text(span.line) else {
            // Spanless or out-of-range: emit the location header only.
            out.push_str(&format!("  --> {file}\n"));
            if !label.text.is_empty() {
                out.push_str(&format!("   = {}\n", label.text));
            }
            return;
        };
        let col = (span.lo as usize).saturating_sub(line_start) + 1;
        let width = ((span.hi as usize).min(line_start + text.chars().count()))
            .saturating_sub(span.lo as usize)
            .max(1);
        let num = span.line.to_string();
        let gutter = " ".repeat(num.len());
        out.push_str(&format!("  --> {file}:{}:{col}\n", span.line));
        out.push_str(&format!("{gutter} |\n"));
        out.push_str(&format!("{num} | {text}\n"));
        out.push_str(&format!(
            "{gutter} | {}{}{}{}\n",
            " ".repeat(col - 1),
            "^".repeat(width),
            if label.text.is_empty() { "" } else { " " },
            label.text
        ));
    }
}

// ---------------------------------------------------------------------
// Minimal JSON codec (emit + parse of the subset this module produces)
// ---------------------------------------------------------------------

pub(crate) fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_kv(out: &mut String, key: &str, val: &str) {
    json_str(out, key);
    out.push(':');
    json_str(out, val);
}

/// A parsed JSON value (only what the emitter produces). Shared with the
/// directive-plan codec in [`crate::directives`].
pub(crate) enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub(crate) fn field(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key)).map(|(_, v)| v)
    }

    /// Numeric object field as `i64` (the plan codec's loop bounds).
    pub(crate) fn field_i64(&self, key: &str) -> Result<i64, String> {
        self.field(key)
            .and_then(|v| match v {
                Json::Num(n) => Some(*n as i64),
                _ => None,
            })
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    }

    fn field_u32(&self, key: &str) -> Result<u32, String> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key))
            .and_then(|(_, v)| match v {
                Json::Num(n) if *n >= 0.0 => Some(*n as u32),
                _ => None,
            })
            .ok_or_else(|| format!("missing numeric field `{key}`"))
    }
}

pub(crate) struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    pub(crate) fn parse(input: &str) -> Result<Json, String> {
        let mut p = JsonParser { chars: input.chars().collect(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing garbage at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<char, String> {
        self.skip_ws();
        self.chars.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Json::Str(self.string()?)),
            't' => self.keyword("true", Json::Bool),
            'f' => self.keyword("false", Json::Bool),
            'n' => self.keyword("null", Json::Null),
            c if c == '-' || c.is_ascii_digit() => self.number(),
            c => Err(format!("unexpected `{c}` at offset {}", self.pos)),
        }
    }

    fn keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        for c in kw.chars() {
            if self.chars.get(self.pos) != Some(&c) {
                return Err(format!("bad keyword at offset {}", self.pos));
            }
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            let c = *self.chars.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = *self
                        .chars
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            if self.pos + 4 > self.chars.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex: String = self.chars[self.pos..self.pos + 4].iter().collect();
                            self.pos += 4;
                            let cp = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat('[')?;
        let mut out = Vec::new();
        if self.peek()? == ']' {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                ',' => self.pos += 1,
                ']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                c => return Err(format!("expected `,` or `]`, found `{c}`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat('{')?;
        let mut out = Vec::new();
        if self.peek()? == '}' {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(':')?;
            let val = self.value()?;
            out.push((key, val));
            match self.peek()? {
                ',' => self.pos += 1,
                '}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                c => return Err(format!("expected `,` or `}}`, found `{c}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_caret_under_span() {
        let src = "aggregate A[4] of float;\nbogus here\n";
        let d = Diagnostic::error(codes::PARSE, "expected a declaration, found `bogus`")
            .with_label(Span::new(25, 30, 2), "not a declaration");
        let r = d.render(src, "t.cstar");
        assert!(r.contains("error[E002]"), "{r}");
        assert!(r.contains("t.cstar:2:1"), "{r}");
        assert!(r.contains("2 | bogus here"), "{r}");
        assert!(r.contains("^^^^^ not a declaration"), "{r}");
    }

    #[test]
    fn json_round_trip() {
        let d1 = Diagnostic::warning(codes::PHASE_CONFLICT, "phase 1 reads and writes `A`")
            .with_label(Span::new(3, 9, 1), "read \"here\"")
            .with_label(Span::new(12, 14, 2), "write here\nand there")
            .with_note("the predictive protocol will self-disable (§3.4)")
            .with_file("x.cstar");
        let d2 = Diagnostic::error(codes::LEX, "unexpected character `$`");
        let json = Diagnostic::json_array(&[d1.clone(), d2.clone()]);
        let back = Diagnostic::from_json_array(&json).unwrap();
        assert_eq!(back, vec![d1, d2]);
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(Diagnostic::from_json_array("{").is_err());
        assert!(Diagnostic::from_json_array("[1]").is_err());
        assert!(Diagnostic::from_json_array("[] trailing").is_err());
    }

    #[test]
    fn parse_error_shim_carries_line() {
        let d =
            Diagnostic::error(codes::NAME, "unknown variable `y`").with_span(Span::new(10, 11, 7));
        let e: ParseError = d.into();
        assert_eq!(e.line, 7);
        assert_eq!(e.msg, "unknown variable `y`");
    }

    #[test]
    fn spanless_renders_header_only() {
        let d = Diagnostic::warning(codes::DEAD_DIRECTIVE, "dead directive at call `f`");
        let r = d.render("", "t.cstar");
        assert_eq!(r, "warning[W002]: dead directive at call `f`\n");
    }
}
