//! The static↔dynamic schedule oracle.
//!
//! Runs a compiled program on a small predictive-protocol machine with a
//! recording [`AccessTap`] installed, then folds the observed home-node
//! request stream back onto the compiler's static access summaries:
//!
//! * a dynamic access the summaries do not cover is a **hard soundness
//!   error** ([`codes::ORACLE_SOUNDNESS`], E007) — the compiler would have
//!   placed directives that miss real communication;
//! * a statically predicted access class that is never observed is a
//!   **precision warning** ([`codes::ORACLE_PRECISION`], W006) — the
//!   schedule carries entries that never fire, the §3.4 overscheduling
//!   the paper tolerates but a compiler writer wants to see measured.
//!
//! Degradation is disabled for the oracle run so the protocol's
//! self-defense cannot mask a bad schedule; the tap records every request
//! regardless of the protocol's recording state.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use prescient_core::{AccessTap, PhaseId};
use prescient_runtime::{Machine, MachineConfig, ProtocolKind};

use crate::compile::{compile_diag, CompiledProgram};
use crate::diag::{codes, Diagnostic};
use crate::directives::ExecOp;
use crate::interp::{materialize, run_program_traced, seeded_init};
use crate::sema::{AccessKind, ClassifyRules, Locality};

/// Oracle machine parameters. The default machine is small and the block
/// size is one element (8 bytes), so the block→aggregate mapping is exact.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Nodes in the oracle machine.
    pub nodes: usize,
    /// Cache-block size in bytes (power of two, ≥ 8).
    pub block_size: usize,
    /// Seed for the deterministic aggregate initializer.
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig { nodes: 4, block_size: 8, seed: 0x5eed }
    }
}

/// One statically predicted or dynamically observed access class.
type AccessKey = (usize, String, AccessKind, Locality);

/// What the oracle run produced.
#[derive(Debug)]
pub struct OracleReport {
    /// Soundness errors (E007) followed by precision warnings (W006).
    pub diagnostics: Vec<Diagnostic>,
    /// Tap events observed during `main` (labeled with a call site).
    pub observed_events: usize,
    /// Access classes the static summaries predict to communicate.
    pub predictions: usize,
    /// Predicted classes never observed dynamically.
    pub unobserved: usize,
}

impl OracleReport {
    /// Number of hard soundness violations.
    pub fn soundness_errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Fraction of predicted access classes that never fired (0 when
    /// nothing was predicted).
    pub fn imprecision_ratio(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.unobserved as f64 / self.predictions as f64
        }
    }
}

/// Compile `src` under `rules` and run the oracle. Compilation errors come
/// back as the `Err` diagnostic.
pub fn run_oracle(
    src: &str,
    cfg: &OracleConfig,
    rules: ClassifyRules,
) -> Result<OracleReport, Diagnostic> {
    let prog = compile_diag(src, true, rules)?;
    Ok(run_oracle_compiled(&prog, cfg))
}

/// Run the oracle over an already-compiled program.
pub fn run_oracle_compiled(prog: &CompiledProgram, cfg: &OracleConfig) -> OracleReport {
    // Predictive machine with degradation off: the oracle wants the raw
    // schedule behavior, not the protocol's self-defense.
    let mut mc = MachineConfig::predictive(cfg.nodes, cfg.block_size);
    if let ProtocolKind::Predictive(ref mut p) = mc.protocol {
        p.degrade.enabled = false;
    }
    let mut machine = Machine::new(mc);
    let aggs = materialize(&machine, prog);
    let layout = machine.layout();

    // Exact block→aggregate map from every element's address.
    let mut block_agg: BTreeMap<u64, String> = BTreeMap::new();
    for (name, store) in &aggs {
        for pos in element_positions(&store.dims()) {
            block_agg
                .entry(store.addr(&pos).block(cfg.block_size).0)
                .or_insert_with(|| name.clone());
        }
    }

    let phase_of_call = phase_map(&prog.plan.ops);
    let spans = crate::lint::call_spans(prog);

    let tap = Arc::new(AccessTap::new());
    run_program_traced(&mut machine, prog, &aggs, seeded_init(cfg.seed), &tap);
    let events = tap.take();

    // Merged per-call, per-aggregate summaries (from the annotated CFG).
    let access_of =
        |id: usize| prog.cfg.call_node.get(id).and_then(|&n| prog.cfg.call(n)).map(|c| &c.access);

    // --- Soundness: every observed class must be statically covered. ---
    let mut observed: BTreeSet<AccessKey> = BTreeSet::new();
    let mut violations: BTreeSet<AccessKey> = BTreeSet::new();
    let mut witness: BTreeMap<AccessKey, (u64, u16, u16)> = BTreeMap::new();
    let mut observed_events = 0usize;
    for ev in &events {
        let Some(call) = ev.call else { continue };
        let id = call as usize;
        let Some(agg) = block_agg.get(&ev.block.0) else { continue };
        observed_events += 1;
        let home = layout.home_of_block(ev.block);
        let kind = if ev.excl { AccessKind::Write } else { AccessKind::Read };
        let loc = if ev.requester == home { Locality::Home } else { Locality::NonHome };
        let key = (id, agg.clone(), kind, loc);
        let covered = access_of(id).and_then(|a| a.get(agg)).is_some_and(|pa| match (kind, loc) {
            // A non-home request must be declared as such.
            (AccessKind::Read, Locality::NonHome) => pa.nonhome_read,
            (AccessKind::Write, Locality::NonHome) => pa.nonhome_write,
            // The home fetches through the protocol too (self-send on a
            // miss or upgrade), so either locality class covers it.
            (AccessKind::Read, Locality::Home) => pa.home_read || pa.nonhome_read,
            (AccessKind::Write, Locality::Home) => pa.home_write || pa.nonhome_write,
        });
        if covered {
            observed.insert(key);
        } else if violations.insert(key.clone()) {
            witness.insert(key, (ev.block.0, ev.requester, home));
        }
    }

    let mut diagnostics = Vec::new();
    for key in &violations {
        let (id, agg, kind, loc) = key;
        let (func, _) = call_site(prog, *id);
        let verb = match kind {
            AccessKind::Read => "read",
            AccessKind::Write => "wrote",
        };
        let where_ = match loc {
            Locality::Home => "its home node",
            Locality::NonHome => "a non-home node",
        };
        let phase = match phase_of_call.get(id).copied().flatten() {
            Some(p) => format!("phase {p}"),
            None => "an unscheduled region (no phase directive)".to_string(),
        };
        let mut d = Diagnostic::error(
            codes::ORACLE_SOUNDNESS,
            format!(
                "schedule-oracle soundness violation: call `{func}` (call {id}) dynamically \
                 {verb} aggregate `{agg}` from {where_} in {phase}, but the static summary \
                 predicts no such access"
            ),
        );
        if let Some(s) = spans.get(*id) {
            d = d.with_label(*s, "this call's static summary is incomplete");
        }
        if let Some((block, req, home)) = witness.get(key) {
            d = d.with_note(format!(
                "first observed at block {block}: node {req} requested it from home node {home}"
            ));
        }
        diagnostics.push(d.with_note(
            "the predictive protocol would carry traffic for this phase that the compiler \
             never declared; its schedule is unsound (§4.2)",
        ));
    }

    // --- Precision: predicted classes that never fired. ---
    let mut predicted: BTreeSet<AccessKey> = BTreeSet::new();
    for (id, _) in prog.call_sites.iter().enumerate() {
        let Some(access) = access_of(id) else { continue };
        let reached = prog.cfg.call_node.get(id).copied().map(|n| (n, &prog.reaching)).is_some_and(
            |(n, sol)| {
                access
                    .keys()
                    .any(|agg| prog.cfg.agg_bit(agg).is_some_and(|bit| sol.reaches(n, bit)))
            },
        );
        for (agg, pa) in access {
            if pa.nonhome_read {
                predicted.insert((id, agg.clone(), AccessKind::Read, Locality::NonHome));
            }
            if pa.nonhome_write {
                predicted.insert((id, agg.clone(), AccessKind::Write, Locality::NonHome));
            }
            if pa.home_write && reached {
                predicted.insert((id, agg.clone(), AccessKind::Write, Locality::Home));
            }
        }
    }

    let unobserved: Vec<&AccessKey> = predicted.iter().filter(|k| !observed.contains(*k)).collect();
    let (n_pred, n_unobs) = (predicted.len(), unobserved.len());
    for (id, agg, kind, loc) in unobserved {
        let (func, _) = call_site(prog, *id);
        let what = match (kind, loc) {
            (AccessKind::Read, _) => "non-home-read",
            (AccessKind::Write, Locality::NonHome) => "non-home-write",
            (AccessKind::Write, Locality::Home) => "owner-write",
        };
        let mut d = Diagnostic::warning(
            codes::ORACLE_PRECISION,
            format!(
                "schedule-oracle precision: call `{func}` (call {id}) is statically \
                 predicted to {what} aggregate `{agg}`, but no such request was observed"
            ),
        );
        if let Some(s) = spans.get(*id) {
            d = d.with_label(*s, "prediction never fired in this run");
        }
        diagnostics.push(d.with_note(format!(
            "measured imprecision: {n_unobs} of {n_pred} predicted access classes never \
             fired (the schedule overschedules, §3.4)"
        )));
    }

    // --- Merge soundness: every CommutativeMerge directive must produce
    // the serialized result under privatize-and-merge replay (E008). ---
    let merge_cfg = crate::commute::MergeOracleConfig {
        nodes: cfg.nodes,
        block_size: cfg.block_size,
        seed: cfg.seed,
    };
    diagnostics.extend(crate::commute::validate_merges(prog, &merge_cfg));

    OracleReport { diagnostics, observed_events, predictions: n_pred, unobserved: n_unobs }
}

/// The `(func, args)` of a call site, tolerating out-of-range ids.
fn call_site(prog: &CompiledProgram, id: usize) -> (&str, &[String]) {
    prog.call_sites.get(id).map_or(("<unknown>", &[][..]), |(f, a)| (f.as_str(), a.as_slice()))
}

/// Which phase (if any) each call executes under, from the op sequence.
/// Transparent calls riding inside a coalesced phase region count as
/// members of that phase (shared with the commute lint, which must see
/// them as same-phase readers).
pub(crate) fn phase_map(ops: &[ExecOp]) -> BTreeMap<usize, Option<PhaseId>> {
    let mut cur = None;
    let mut out = BTreeMap::new();
    for op in ops {
        match op {
            ExecOp::PhaseBegin(p) => cur = Some(*p),
            ExecOp::PhaseEnd(_) => cur = None,
            ExecOp::Call(id) => {
                out.insert(*id, cur);
            }
            ExecOp::LoopBegin { .. } | ExecOp::LoopEnd | ExecOp::CommutativeMerge { .. } => {}
        }
    }
    out
}

/// Every index vector of an aggregate with the given dimensions.
fn element_positions(dims: &[usize]) -> Vec<Vec<i64>> {
    match dims {
        [n] => (0..*n).map(|i| vec![i as i64]).collect(),
        [r, c] => (0..*r).flat_map(|i| (0..*c).map(move |j| vec![i as i64, j as i64])).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_positions_cover_all() {
        assert_eq!(element_positions(&[3]).len(), 3);
        assert_eq!(element_positions(&[2, 3]).len(), 6);
        assert_eq!(element_positions(&[2, 3])[5], vec![1, 2]);
    }

    #[test]
    fn phase_map_tracks_regions() {
        let ops = vec![
            ExecOp::Call(0),
            ExecOp::PhaseBegin(1),
            ExecOp::Call(1),
            ExecOp::PhaseEnd(1),
            ExecOp::Call(2),
        ];
        let m = phase_map(&ops);
        assert_eq!(m[&0], None);
        assert_eq!(m[&1], Some(1));
        assert_eq!(m[&2], None);
    }

    #[test]
    fn imprecision_ratio_handles_empty() {
        let r = OracleReport {
            diagnostics: Vec::new(),
            observed_events: 0,
            predictions: 0,
            unobserved: 0,
        };
        assert_eq!(r.imprecision_ratio(), 0.0);
        let r = OracleReport { predictions: 4, unobserved: 1, ..r };
        assert!((r.imprecision_ratio() - 0.25).abs() < 1e-12);
    }
}
