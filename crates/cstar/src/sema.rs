//! Parallel-function analysis: access-pattern summaries (§4.2).
//!
//! For each parallel function, the compiler compiles a context-insensitive
//! list of all aggregate member accesses that potentially require
//! communication. Each access is conservatively categorized as a **Home**
//! access — the invocation's *own* element, i.e. an index that is exactly
//! the position pseudo-variable in every dimension — or a **Non-Home**
//! access (neighbor offsets, indirection through values, loop variables —
//! anything else). Reads and writes are tracked separately.
//!
//! The paper's example (Figure 3's `update`): summary
//! `{(primal, Write, Home), (dual, Read, NonHome)}` — which this module's
//! tests reproduce verbatim.
//!
//! Besides the boolean per-parameter rollup ([`ParamAccess`]), the analyzer
//! records every individual access with its source span ([`AccessSite`]) —
//! the raw material for the lint suite and the schedule oracle's
//! static↔dynamic diff.

use std::collections::BTreeMap;

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Span};
use crate::lexer::ParseError;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Load of an aggregate element.
    Read,
    /// Store to an aggregate element.
    Write,
}

/// Home (own element) vs. Non-Home (anything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// The invocation's own element: never requires communication.
    Home,
    /// Potentially someone else's element: potentially unstructured
    /// communication.
    NonHome,
}

/// Summary of one parallel function's accesses to one aggregate
/// *parameter*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParamAccess {
    /// Home reads occur.
    pub home_read: bool,
    /// Home (owner) writes occur.
    pub home_write: bool,
    /// Unstructured (non-home) reads occur.
    pub nonhome_read: bool,
    /// Unstructured (non-home) writes occur.
    pub nonhome_write: bool,
    /// Commutativity verdict (see [`crate::commute`]): the parameter is
    /// written, every write is an associative-commutative reduction
    /// update, and no read observes it outside those updates — so the
    /// writes may be privatized and merged at the phase barrier.
    pub commute: bool,
}

impl ParamAccess {
    /// Any access at all?
    pub fn any(&self) -> bool {
        self.home_read || self.home_write || self.nonhome_read || self.nonhome_write
    }

    /// Any unstructured access?
    pub fn unstructured(&self) -> bool {
        self.nonhome_read || self.nonhome_write
    }

    /// Render as the paper's notation, e.g. `Write/Home, Read/NonHome`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.home_read {
            parts.push("Read/Home");
        }
        if self.home_write {
            parts.push("Write/Home");
        }
        if self.nonhome_read {
            parts.push("Read/NonHome");
        }
        if self.nonhome_write {
            parts.push("Write/NonHome");
        }
        parts.join(", ")
    }
}

/// One concrete aggregate access inside a parallel-function body, with its
/// source span — what the lints and the schedule oracle point at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessSite {
    /// Parameter name accessed.
    pub param: String,
    /// Read or write.
    pub kind: AccessKind,
    /// Home or non-home index.
    pub loc: Locality,
    /// Where in the source.
    pub span: Span,
}

/// Access summary of one parallel function: per parameter name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessSummary {
    /// Per-parameter access classification (ordered for stable output).
    pub params: BTreeMap<String, ParamAccess>,
    /// Every individual access, in body order, with spans.
    pub sites: Vec<AccessSite>,
}

impl AccessSummary {
    /// The access record for a parameter (default if absent).
    pub fn get(&self, param: &str) -> ParamAccess {
        self.params.get(param).copied().unwrap_or_default()
    }

    /// Does the function perform any unstructured access?
    pub fn any_unstructured(&self) -> bool {
        self.params.values().any(|p| p.unstructured())
    }

    /// Is every access a home access?
    pub fn home_only(&self) -> bool {
        !self.any_unstructured()
    }

    /// The first recorded site matching `param`, `kind`, `loc`, if any.
    pub fn site(&self, param: &str, kind: AccessKind, loc: Locality) -> Option<&AccessSite> {
        self.sites.iter().find(|s| s.param == param && s.kind == kind && s.loc == loc)
    }
}

/// Tunable classification rules — the oracle mutation test's hook.
///
/// The default rules are the paper's: an index is Home iff it is exactly
/// the position pseudo-variable in every dimension. Setting
/// [`ClassifyRules::const_offset_is_home`] deliberately *weakens* the
/// analysis (constant neighbor offsets like `g[#0-1]` get misclassified as
/// Home); the schedule oracle must catch the resulting unsoundness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyRules {
    /// TEST-ONLY weakening: treat `#k ± c` indices as Home accesses.
    pub const_offset_is_home: bool,
    /// TEST-ONLY weakening: treat every aggregate update as a
    /// commutative reduction, regardless of its shape. The dynamic merge
    /// oracle must catch the resulting unsoundness (`E008`).
    pub assume_commutative: bool,
}

impl ClassifyRules {
    /// Classify an index vector under these rules.
    pub fn classify(&self, idx: &[Expr]) -> Locality {
        let dim_ok = |k: usize, e: &Expr| -> bool {
            match e {
                Expr::Pos(p) => *p == k,
                Expr::Bin(BinOp::Add | BinOp::Sub, a, b) if self.const_offset_is_home => {
                    matches!(&**a, Expr::Pos(p) if *p == k) && matches!(&**b, Expr::Int(_))
                }
                _ => false,
            }
        };
        if idx.iter().enumerate().all(|(k, e)| dim_ok(k, e)) {
            Locality::Home
        } else {
            Locality::NonHome
        }
    }
}

/// Classify an index vector under the paper's (sound) default rules.
pub fn classify_index(idx: &[Expr]) -> Locality {
    ClassifyRules::default().classify(idx)
}

/// Analyze one parallel function (checking names along the way).
///
/// Legacy entry point; [`analyze_fn_with`] returns span-carrying
/// diagnostics and accepts [`ClassifyRules`].
pub fn analyze_fn(f: &ParFn) -> Result<AccessSummary, ParseError> {
    analyze_fn_with(f, ClassifyRules::default()).map_err(ParseError::from)
}

/// Analyze one parallel function under the given classification rules,
/// reporting name errors as `E003` diagnostics.
pub fn analyze_fn_with(f: &ParFn, rules: ClassifyRules) -> Result<AccessSummary, Diagnostic> {
    let mut an = Analyzer { f, rules, sum: AccessSummary::default(), locals: Vec::new() };
    for p in &f.params {
        an.sum.params.insert(p.clone(), ParamAccess::default());
    }
    an.stmts(&f.body)?;
    for (param, class) in crate::commute::classify_fn(f, rules) {
        if let Some(pa) = an.sum.params.get_mut(&param) {
            pa.commute = class.is_commutative();
        }
    }
    Ok(an.sum)
}

struct Analyzer<'a> {
    f: &'a ParFn,
    rules: ClassifyRules,
    sum: AccessSummary,
    locals: Vec<String>,
}

impl<'a> Analyzer<'a> {
    fn err<T>(&self, msg: impl Into<String>, span: Span) -> Result<T, Diagnostic> {
        Err(Diagnostic::error(codes::NAME, format!("in `{}`: {}", self.f.name, msg.into()))
            .with_span(if span == Span::default() { self.f.span } else { span }))
    }

    fn record(
        &mut self,
        agg: &str,
        kind: AccessKind,
        loc: Locality,
        span: Span,
    ) -> Result<(), Diagnostic> {
        let Some(p) = self.sum.params.get_mut(agg) else {
            return self.err(format!("`{agg}` is not a parameter"), span);
        };
        match (kind, loc) {
            (AccessKind::Read, Locality::Home) => p.home_read = true,
            (AccessKind::Write, Locality::Home) => p.home_write = true,
            (AccessKind::Read, Locality::NonHome) => p.nonhome_read = true,
            (AccessKind::Write, Locality::NonHome) => p.nonhome_write = true,
        }
        self.sum.sites.push(AccessSite { param: agg.to_string(), kind, loc, span });
        Ok(())
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), Diagnostic> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), Diagnostic> {
        match s {
            Stmt::Let(name, e) => {
                self.expr(e)?;
                self.locals.push(name.clone());
            }
            Stmt::AssignLocal(name, e) => {
                if !self.locals.iter().any(|l| l == name) {
                    return self
                        .err(format!("assignment to unknown local `{name}`"), Span::default());
                }
                self.expr(e)?;
            }
            Stmt::AssignAgg { agg, idx, value, span } => {
                for i in idx {
                    self.expr(i)?;
                }
                self.expr(value)?;
                let loc = self.rules.classify(idx);
                self.record(agg, AccessKind::Write, loc, *span)?;
            }
            Stmt::If(c, t, e) => {
                self.expr(c)?;
                self.stmts(t)?;
                self.stmts(e)?;
            }
            Stmt::For { var, lo, hi, body } => {
                self.expr(lo)?;
                self.expr(hi)?;
                self.locals.push(var.clone());
                self.stmts(body)?;
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), Diagnostic> {
        match e {
            Expr::Num(_) | Expr::Int(_) | Expr::Pos(_) => Ok(()),
            Expr::Var(name) => {
                if self.locals.iter().any(|l| l == name) {
                    Ok(())
                } else if self.sum.params.contains_key(name) {
                    self.err(format!("aggregate `{name}` used without an index"), Span::default())
                } else {
                    self.err(format!("unknown variable `{name}`"), Span::default())
                }
            }
            Expr::AggRead { agg, idx, span } => {
                for i in idx {
                    self.expr(i)?;
                }
                let loc = self.rules.classify(idx);
                self.record(agg, AccessKind::Read, loc, *span)
            }
            Expr::Bin(_, a, b) => {
                self.expr(a)?;
                self.expr(b)
            }
            Expr::Neg(a) => self.expr(a),
            Expr::Builtin(_, args) => {
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
        }
    }
}

/// Analyze every parallel function in a program and validate call sites
/// (arity, aggregate names; dimension agreement between the call's
/// aggregates and the function's index usage is checked dynamically by the
/// interpreter).
///
/// Legacy entry point; [`analyze_program_with`] returns span-carrying
/// diagnostics and accepts [`ClassifyRules`].
pub fn analyze_program(p: &Program) -> Result<BTreeMap<String, AccessSummary>, ParseError> {
    analyze_program_with(p, ClassifyRules::default()).map_err(ParseError::from)
}

/// Analyze a program under the given classification rules, reporting call
/// site errors as `E004` diagnostics with spans.
pub fn analyze_program_with(
    p: &Program,
    rules: ClassifyRules,
) -> Result<BTreeMap<String, AccessSummary>, Diagnostic> {
    let mut out = BTreeMap::new();
    for f in &p.funcs {
        out.insert(f.name.clone(), analyze_fn_with(f, rules)?);
    }
    // Validate main's call sites.
    fn walk(p: &Program, stmts: &[SeqStmt]) -> Result<(), Diagnostic> {
        for s in stmts {
            match s {
                SeqStmt::Call { func, args, span, .. } => {
                    let Some(f) = p.func(func) else {
                        return Err(Diagnostic::error(
                            codes::CALL,
                            format!("call to unknown parallel function `{func}`"),
                        )
                        .with_label(*span, "not a parallel function"));
                    };
                    if f.params.len() != args.len() {
                        return Err(Diagnostic::error(
                            codes::CALL,
                            format!(
                                "`{func}` takes {} aggregate(s), called with {}",
                                f.params.len(),
                                args.len()
                            ),
                        )
                        .with_span(*span)
                        .with_label(f.span, "declared here"));
                    }
                    for a in args {
                        if p.agg(a).is_none() {
                            return Err(Diagnostic::error(
                                codes::CALL,
                                format!("unknown aggregate `{a}` in call to `{func}`"),
                            )
                            .with_span(*span));
                        }
                    }
                }
                SeqStmt::For { body, .. } => walk(p, body)?,
            }
        }
        Ok(())
    }
    walk(p, &p.main)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn figure3_summary() {
        // The paper §4.2: "the summary access list of function update
        // contains two elements, (primal, Write, Home) and
        // (dual, Read, NonHome)".
        let src = r#"
            aggregate Primal[100] of float;
            aggregate Dual[100] of float;
            aggregate Nbr[100] of int;
            parallel fn update(primal, dual, nbr) {
                let k = nbr[#0];
                primal[#0] = primal[#0] + 0.5 * dual[k];
            }
            fn main() { update(Primal, Dual, Nbr); }
        "#;
        let p = parse(src).unwrap();
        let sums = analyze_program(&p).unwrap();
        let s = &sums["update"];
        let primal = s.get("primal");
        assert!(primal.home_write && primal.home_read);
        assert!(!primal.unstructured());
        let dual = s.get("dual");
        assert!(dual.nonhome_read);
        assert!(!dual.home_read && !dual.home_write && !dual.nonhome_write);
        assert_eq!(dual.describe(), "Read/NonHome");
        let nbr = s.get("nbr");
        assert!(nbr.home_read && !nbr.unstructured());
    }

    #[test]
    fn stencil_neighbors_are_nonhome() {
        let src = r#"
            aggregate G[8][8] of float;
            aggregate H[8][8] of float;
            parallel fn sweep(g, h) {
                h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
            }
            fn main() { sweep(G, H); }
        "#;
        let p = parse(src).unwrap();
        let s = &analyze_program(&p).unwrap()["sweep"];
        assert!(s.get("g").nonhome_read, "neighbor reads are unstructured");
        assert!(!s.get("g").home_write);
        assert!(s.get("h").home_write, "own-element store is an owner write");
        assert!(!s.get("h").unstructured());
    }

    #[test]
    fn swapped_positions_are_nonhome() {
        // g[#1][#0] is a transpose access, not the own element.
        let src = r#"
            aggregate G[8][8] of float;
            parallel fn t(g) { g[#0][#1] = g[#1][#0]; }
            fn main() { t(G); }
        "#;
        let p = parse(src).unwrap();
        let s = &analyze_program(&p).unwrap()["t"];
        assert!(s.get("g").nonhome_read);
        assert!(s.get("g").home_write);
    }

    #[test]
    fn indirect_write_is_unstructured() {
        let src = r#"
            aggregate A[16] of float;
            aggregate P[16] of int;
            parallel fn scatter(a, p) { a[p[#0]] = 1.0; }
            fn main() { scatter(A, P); }
        "#;
        let p = parse(src).unwrap();
        let s = &analyze_program(&p).unwrap()["scatter"];
        assert!(s.get("a").nonhome_write);
        assert!(s.get("p").home_read);
    }

    #[test]
    fn home_only_function() {
        let src = r#"
            aggregate A[16] of float;
            parallel fn scale(a) { a[#0] = a[#0] * 2.0; }
            fn main() { scale(A); }
        "#;
        let p = parse(src).unwrap();
        let s = &analyze_program(&p).unwrap()["scale"];
        assert!(s.home_only());
    }

    #[test]
    fn unknown_variable_rejected() {
        let src = r#"
            aggregate A[4] of float;
            parallel fn f(a) { a[#0] = y; }
            fn main() { f(A); }
        "#;
        let p = parse(src).unwrap();
        assert!(analyze_program(&p).is_err());
    }

    #[test]
    fn call_arity_checked() {
        let src = r#"
            aggregate A[4] of float;
            parallel fn f(a) { a[#0] = 1.0; }
            fn main() { f(A, A); }
        "#;
        let p = parse(src).unwrap();
        assert!(analyze_program(&p).is_err());
    }

    #[test]
    fn unknown_aggregate_in_call_rejected() {
        let src = r#"
            aggregate A[4] of float;
            parallel fn f(a) { a[#0] = 1.0; }
            fn main() { f(B); }
        "#;
        let p = parse(src).unwrap();
        assert!(analyze_program(&p).is_err());
    }

    #[test]
    fn loop_variable_usable_as_index() {
        let src = r#"
            aggregate A[8] of float;
            parallel fn f(a) {
                for i in 0 .. 3 {
                    a[i] = a[i] + 1.0;
                }
            }
            fn main() { f(A); }
        "#;
        let p = parse(src).unwrap();
        let s = &analyze_program(&p).unwrap()["f"];
        // Loop-indexed accesses are conservatively non-home.
        assert!(s.get("a").nonhome_read && s.get("a").nonhome_write);
    }

    #[test]
    fn sites_carry_spans() {
        let src = "aggregate G[8] of float;\nparallel fn f(g) { g[#0] = g[#0-1]; }\nfn main() { f(G); }\n";
        let p = parse(src).unwrap();
        let s = &analyze_program(&p).unwrap()["f"];
        let read = s.site("g", AccessKind::Read, Locality::NonHome).expect("read site");
        let chars: Vec<char> = src.chars().collect();
        let text: String = chars[read.span.lo as usize..read.span.hi as usize].iter().collect();
        assert_eq!(text, "g[#0-1]");
        assert!(s.site("g", AccessKind::Write, Locality::Home).is_some());
    }

    #[test]
    fn weakened_rules_misclassify_const_offsets() {
        let src = "aggregate G[8] of float;\nparallel fn f(g) { g[#0] = g[#0-1]; }\nfn main() { f(G); }\n";
        let p = parse(src).unwrap();
        let weak = ClassifyRules { const_offset_is_home: true, ..ClassifyRules::default() };
        let s = &analyze_program_with(&p, weak).unwrap()["f"];
        // The deliberately unsound rule hides the neighbor read.
        assert!(!s.get("g").nonhome_read);
        assert!(s.get("g").home_read);
    }

    #[test]
    fn call_site_errors_have_spans() {
        let src =
            "aggregate A[4] of float;\nparallel fn f(a) { a[#0] = 1.0; }\nfn main() { g(A); }\n";
        let p = parse(src).unwrap();
        let d = analyze_program_with(&p, ClassifyRules::default()).unwrap_err();
        assert_eq!(d.code, "E004");
        assert_eq!(d.primary_span().expect("span").line, 3);
    }
}
