//! Tokenizer for mini-C\*\*.

use std::fmt;

use crate::diag::{codes, Diagnostic, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (contains `.` or exponent).
    Float(f64),
    /// `#0`, `#1`, ... — position pseudo-variable.
    Pos(usize),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Pos(k) => write!(f, "#{k}"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source span (char offsets) and line, for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Source line (1-based; kept for span-less consumers).
    pub line: u32,
    /// Source region in char offsets.
    pub span: Span,
}

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Source line (1-based).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

const PUNCTS: &[&str] = &[
    "..", "<=", ">=", "==", "!=", "(", ")", "[", "]", "{", "}", ",", ";", ":", "=", "+", "-", "*",
    "/", "%", "<", ">",
];

/// Tokenize `src`. Comments run from `//` to end of line.
///
/// Legacy entry point; [`lex_diag`] returns span-carrying diagnostics.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    lex_diag(src).map_err(ParseError::from)
}

/// Tokenize `src`, reporting failures as `E001` diagnostics with spans.
pub fn lex_diag(src: &str) -> Result<Vec<SpannedTok>, Diagnostic> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let err = |msg: String, span: Span| Diagnostic::error(codes::LEX, msg).with_span(span);
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '#' {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            if j == i + 1 {
                return Err(err("expected digit after '#'".into(), Span::point(i, line)));
            }
            let k: usize = bytes[i + 1..j]
                .iter()
                .collect::<String>()
                .parse()
                .map_err(|_| err("bad position index".into(), Span::new(i, j, line)))?;
            out.push(SpannedTok { tok: Tok::Pos(k), line, span: Span::new(i, j, line) });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            let mut is_float = false;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || bytes[j] == '.'
                    || bytes[j] == 'e'
                    || bytes[j] == 'E'
                    || (is_float
                        && (bytes[j] == '+' || bytes[j] == '-')
                        && matches!(bytes[j - 1], 'e' | 'E')))
            {
                if bytes[j] == '.' {
                    // `..` is the range operator, not a float dot.
                    if j + 1 < bytes.len() && bytes[j + 1] == '.' {
                        break;
                    }
                    is_float = true;
                } else if bytes[j] == 'e' || bytes[j] == 'E' {
                    is_float = true;
                }
                j += 1;
            }
            let text: String = bytes[i..j].iter().collect();
            let span = Span::new(i, j, line);
            let tok = if is_float {
                Tok::Float(
                    text.parse().map_err(|_| err(format!("bad float literal `{text}`"), span))?,
                )
            } else {
                Tok::Int(text.parse().map_err(|_| err(format!("bad int literal `{text}`"), span))?)
            };
            out.push(SpannedTok { tok, line, span });
            i = j;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                j += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Ident(bytes[i..j].iter().collect()),
                line,
                span: Span::new(i, j, line),
            });
            i = j;
            continue;
        }
        let rest: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        let mut matched = false;
        for p in PUNCTS {
            if rest.starts_with(p) {
                out.push(SpannedTok {
                    tok: Tok::Punct(p),
                    line,
                    span: Span::new(i, i + p.len(), line),
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(err(format!("unexpected character `{c}`"), Span::point(i, line)));
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, line, span: Span::point(bytes.len(), line) });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_keywords() {
        assert_eq!(
            toks("aggregate Grid of float"),
            vec![
                Tok::Ident("aggregate".into()),
                Tok::Ident("Grid".into()),
                Tok::Ident("of".into()),
                Tok::Ident("float".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("0.25"), vec![Tok::Float(0.25), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
    }

    #[test]
    fn range_vs_float_dot() {
        assert_eq!(toks("0 .. 100"), vec![Tok::Int(0), Tok::Punct(".."), Tok::Int(100), Tok::Eof]);
        assert_eq!(toks("0..100"), vec![Tok::Int(0), Tok::Punct(".."), Tok::Int(100), Tok::Eof]);
    }

    #[test]
    fn position_pseudovars() {
        assert_eq!(
            toks("g[#0-1][#1]"),
            vec![
                Tok::Ident("g".into()),
                Tok::Punct("["),
                Tok::Pos(0),
                Tok::Punct("-"),
                Tok::Int(1),
                Tok::Punct("]"),
                Tok::Punct("["),
                Tok::Pos(1),
                Tok::Punct("]"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\n b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn two_char_ops() {
        assert_eq!(
            toks("a <= b != c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("!="),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn error_on_garbage() {
        assert!(lex("a $ b").is_err());
        assert!(lex("#x").is_err());
    }

    #[test]
    fn spans_cover_tokens() {
        let ts = lex("ab + #12").unwrap();
        assert_eq!((ts[0].span.lo, ts[0].span.hi), (0, 2));
        assert_eq!((ts[1].span.lo, ts[1].span.hi), (3, 4));
        assert_eq!((ts[2].span.lo, ts[2].span.hi), (5, 8));
    }

    #[test]
    fn lex_diag_spans_errors() {
        let d = lex_diag("a\n $").unwrap_err();
        assert_eq!(d.code, "E001");
        let s = d.primary_span().expect("span");
        assert_eq!((s.lo, s.line), (3, 2));
    }

    #[test]
    fn lines_tracked() {
        let ts = lex("a\nb\n\nc").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 4);
    }
}
