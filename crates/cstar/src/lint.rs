//! The `cstar-lint` suite: static phase-conflict and access-pattern lints
//! (W001–W005) over the AST, the annotated CFG, and the directive plan.
//!
//! Each lint is a [`Diagnostic`] with a stable `W0xx` code (catalog in
//! [`crate::diag`]). [`lint_program`] runs every lint over a compiled
//! program with full source spans; [`audit_plan`] runs the plan-level
//! subset (W001/W002) over hand-built analysis-only CFGs — the mode the
//! benchmark apps use to sanity-check their Figure-4-style phase models.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Expr, Stmt};
use crate::cfg::Cfg;
use crate::compile::CompiledProgram;
use crate::dataflow::ReachingUnstructured;
use crate::diag::{codes, Diagnostic, Span};
use crate::directives::PhaseAssignment;
use crate::sema::{classify_index, AccessKind, ClassifyRules, Locality, ParamAccess};

/// Run every lint over a compiled program. Returns warnings sorted by
/// source position (spanless findings first).
pub fn lint_program(c: &CompiledProgram) -> Vec<Diagnostic> {
    let comm = call_comms(&c.cfg, &c.reaching);
    let spans = call_spans(c);
    let mut out = Vec::new();
    for f in find_conflicts(&c.cfg, &comm, &c.plan.assignment) {
        let disp = conflict_commute_disposition(&c.cfg, &f);
        // An annotated, provably commutative self-conflict is exactly what
        // the merge protocol resolves: W001 would be noise.
        if !(disp.resolved() && f.reader == f.writer) {
            out.push(render_conflict(c, &spans, &f));
        }
        if disp.suggest() {
            out.push(render_commute_suggest(c, &spans, &f));
        }
    }
    for f in find_dead(&c.cfg, &comm, &c.plan.assignment) {
        out.push(render_dead(&f, spans.get(f.call).copied()));
    }
    out.extend(lint_static_oob(c));
    out.extend(lint_unused(c));
    out.extend(lint_unstructured_index(c));
    out.extend(lint_commute(c, &spans));
    out.sort_by_key(|d| {
        let s = d.primary_span().unwrap_or_default();
        (s.line, s.lo, d.code.clone())
    });
    out
}

/// Audit a (possibly hand-built) directive plan: W001 phase conflicts and
/// W002 dead directives, without source spans. This is the entry point for
/// analysis-only CFGs ([`crate::cfg::CfgBuilder`]), where no source text
/// exists.
pub fn audit_plan(
    cfg: &Cfg,
    sol: &ReachingUnstructured,
    assignment: &PhaseAssignment,
) -> Vec<Diagnostic> {
    let comm = call_comms(cfg, sol);
    let mut out = Vec::new();
    for f in find_conflicts(cfg, &comm, assignment) {
        let disp = conflict_commute_disposition(cfg, &f);
        if !(disp.resolved() && f.reader == f.writer) {
            out.push(
                Diagnostic::warning(
                    codes::PHASE_CONFLICT,
                    format!(
                        "phase {} both reads and writes aggregate `{}` through communication",
                        f.phase, f.agg
                    ),
                )
                .with_note(format!(
                    "communication reads from call `{}` (call {}); communication writes from \
                     call `{}` (call {})",
                    f.reader_func, f.reader, f.writer_func, f.writer
                ))
                .with_note(CONFLICT_NOTE),
            );
        }
        if disp.suggest() {
            out.push(
                Diagnostic::warning(
                    codes::COMMUTE_SUGGEST,
                    format!(
                        "conflict phase {} over aggregate `{}` is commutative-mergeable; \
                         annotate call `{}` (call {}) with `commute`",
                        f.phase, f.agg, f.writer_func, f.writer
                    ),
                )
                .with_note(format!(
                    "every write of `{}` in `{}` is an associative-commutative reduction; \
                     privatized per-node buffers merged at the phase barrier replace per-block \
                     ownership migration",
                    f.agg, f.writer_func
                ))
                .with_note(COMMUTE_NOTE),
            );
        }
    }
    for f in find_dead(cfg, &comm, assignment) {
        out.push(render_dead(&f, None));
    }
    out
}

const CONFLICT_NOTE: &str = "§3.4: blocks read and written within one phase instance become \
     conflict blocks; the predictive protocol takes no pre-send action for them";

const DEAD_NOTE: &str = "§4.3 placement rule: a schedule requires reaching unstructured \
     accesses plus owner writes, or unstructured accesses in the call itself";

const COMMUTE_NOTE: &str = "§3.4 leaves conflict blocks without protocol action (plain \
     ownership migration); a `commute` annotation lets the runtime privatize the updates \
     and bulk-install the merged state at the barrier instead";

// ---------------------------------------------------------------------
// Commutativity disposition of a conflict (W001 suppression + W007)
// ---------------------------------------------------------------------

/// How the commutativity analysis bears on one W001 conflict finding.
#[derive(Debug, Clone, Copy)]
struct CommuteDisposition {
    /// Every write of the conflicting aggregate in the writer call is a
    /// provably commutative reduction.
    commutative: bool,
    /// The writer call carries the `commute` annotation.
    annotated: bool,
}

impl CommuteDisposition {
    /// The conflict is handled by the merge protocol (annotated + proven).
    fn resolved(self) -> bool {
        self.commutative && self.annotated
    }

    /// W007 applies: mergeable but not yet annotated.
    fn suggest(self) -> bool {
        self.commutative && !self.annotated
    }
}

fn conflict_commute_disposition(cfg: &Cfg, f: &ConflictFinding) -> CommuteDisposition {
    let writer = cfg.call_node.get(f.writer).and_then(|&n| cfg.call(n));
    CommuteDisposition {
        commutative: writer
            .and_then(|w| w.access.get(&f.agg))
            .is_some_and(|pa| pa.commute && (pa.home_write || pa.nonhome_write)),
        annotated: writer.is_some_and(|w| w.commute_annotated),
    }
}

// ---------------------------------------------------------------------
// Communication footprints (shared by W001/W002)
// ---------------------------------------------------------------------

/// Which aggregates one call communicates on, and whether the §4.3
/// placement rule actually holds for it.
#[derive(Debug, Clone, Copy, Default)]
struct CallComm {
    /// Bits of aggregates with communication-inducing reads.
    reads: u64,
    /// Bits of aggregates with communication-inducing writes.
    writes: u64,
    /// The placement rule holds (the call legitimately needs a schedule).
    holds: bool,
}

fn call_comms(cfg: &Cfg, sol: &ReachingUnstructured) -> BTreeMap<usize, CallComm> {
    let mut out = BTreeMap::new();
    for &node in &cfg.call_nodes() {
        let Some(c) = cfg.call(node) else { continue };
        let mut cc = CallComm::default();
        for (agg, pa) in &c.access {
            let Some(bit) = cfg.agg_bit(agg) else { continue };
            if sol.reaches(node, bit) && pa.home_write {
                cc.holds = true;
                cc.writes |= 1 << bit;
            }
            if pa.nonhome_read {
                cc.holds = true;
                cc.reads |= 1 << bit;
            }
            if pa.nonhome_write {
                cc.holds = true;
                cc.writes |= 1 << bit;
            }
        }
        out.insert(c.id, cc);
    }
    out
}

// ---------------------------------------------------------------------
// W001 — phase conflict
// ---------------------------------------------------------------------

struct ConflictFinding {
    phase: u32,
    agg: String,
    reader: usize,
    reader_func: String,
    writer: usize,
    writer_func: String,
}

fn find_conflicts(
    cfg: &Cfg,
    comm: &BTreeMap<usize, CallComm>,
    asg: &PhaseAssignment,
) -> Vec<ConflictFinding> {
    let func_of = |id: usize| -> String {
        cfg.call_node.get(id).and_then(|&n| cfg.call(n)).map(|c| c.func.clone()).unwrap_or_default()
    };
    let mut out = Vec::new();
    for phase in 1..=asg.n_phases {
        let ids = asg.calls_of_phase(phase);
        for (bit, agg) in cfg.aggs.iter().enumerate() {
            let m = 1u64 << bit;
            let reader = ids.iter().find(|id| comm.get(*id).is_some_and(|c| c.reads & m != 0));
            let writer = ids.iter().find(|id| comm.get(*id).is_some_and(|c| c.writes & m != 0));
            if let (Some(&r), Some(&w)) = (reader, writer) {
                out.push(ConflictFinding {
                    phase,
                    agg: agg.clone(),
                    reader: r,
                    reader_func: func_of(r),
                    writer: w,
                    writer_func: func_of(w),
                });
            }
        }
    }
    out
}

fn render_conflict(c: &CompiledProgram, spans: &[Span], f: &ConflictFinding) -> Diagnostic {
    let mut d = Diagnostic::warning(
        codes::PHASE_CONFLICT,
        format!(
            "phase {} both reads and writes aggregate `{}` through communication",
            f.phase, f.agg
        ),
    );
    if f.reader == f.writer {
        // One call conflicts with itself: point at the two accesses.
        let (rs, ws) = access_spans_in_call(c, f.reader, &f.agg);
        match (rs, ws) {
            (Some(r), Some(w)) => {
                d = d
                    .with_label(r, format!("`{}` read here", f.agg))
                    .with_label(w, format!("`{}` written here", f.agg));
            }
            _ => {
                if let Some(&s) = spans.get(f.reader) {
                    d = d.with_label(s, "this call both reads and writes it");
                }
            }
        }
    } else {
        if let Some(&s) = spans.get(f.reader) {
            d = d.with_label(s, format!("communication reads of `{}` here", f.agg));
        }
        if let Some(&s) = spans.get(f.writer) {
            d = d.with_label(s, format!("communication writes of `{}` here", f.agg));
        }
    }
    d.with_note(CONFLICT_NOTE)
}

// ---------------------------------------------------------------------
// W007 — commutative-mergeable conflict, E008 — unsound annotation
// ---------------------------------------------------------------------

fn render_commute_suggest(c: &CompiledProgram, spans: &[Span], f: &ConflictFinding) -> Diagnostic {
    let mut d = Diagnostic::warning(
        codes::COMMUTE_SUGGEST,
        format!(
            "conflict phase {} over aggregate `{}` is commutative-mergeable; annotate call \
             `{}` (call {}) with `commute`",
            f.phase, f.agg, f.writer_func, f.writer
        ),
    );
    // Label both sides of the conflict: the reduction write and the read
    // that makes the phase conflicting.
    let (_, ws) = access_spans_in_call(c, f.writer, &f.agg);
    let (rs, _) = access_spans_in_call(c, f.reader, &f.agg);
    match (rs, ws) {
        (Some(r), Some(w)) => {
            d = d
                .with_label(w, format!("commutative reduction of `{}` here", f.agg))
                .with_label(r, format!("conflicting read of `{}` here", f.agg));
        }
        _ => {
            if let Some(&s) = spans.get(f.writer) {
                d = d.with_label(s, "this call's updates all commute");
            }
        }
    }
    d.with_note(format!(
        "every write of `{}` in `{}` is an associative-commutative reduction whose operand \
         does not observe the aggregate",
        f.agg, f.writer_func
    ))
    .with_note(COMMUTE_NOTE)
}

/// E008: `commute`-annotated calls whose annotation the analysis cannot
/// justify — a written aggregate fails the reduction classification, or a
/// same-phase call reads the privatized aggregate.
fn lint_commute(c: &CompiledProgram, spans: &[Span]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Phase membership from the op stream, so transparent calls coalesced
    // into a phase region count as same-phase readers.
    let phases = crate::oracle::phase_map(&c.plan.ops);
    let phase_of = |id: usize| phases.get(&id).copied().flatten();
    for &node in &c.cfg.call_nodes() {
        let Some(call) = c.cfg.call(node) else { continue };
        if !call.commute_annotated {
            continue;
        }
        let id = call.id;
        let Some((func, args)) = c.call_sites.get(id) else { continue };

        // (a) A written aggregate whose updates the analysis rejected.
        for (agg, pa) in &call.access {
            if !(pa.home_write || pa.nonhome_write) || pa.commute {
                continue;
            }
            let mut d = Diagnostic::error(
                codes::COMMUTE_UNSOUND,
                format!(
                    "unsound `commute` annotation: updates of aggregate `{agg}` in call \
                     `{func}` (call {id}) are not order-independent"
                ),
            );
            // Blame the offending access inside the callee.
            let blame = c.program.func(func).and_then(|f| {
                let rules = ClassifyRules::default();
                let classes = crate::commute::classify_fn(f, rules);
                f.params.iter().zip(args).filter(|(_, a)| *a == agg).find_map(|(p, _)| {
                    classes.get(p).and_then(|cl| cl.blame().map(|(r, s)| (r.to_string(), s)))
                })
            });
            if let Some((reason, span)) = blame {
                d = d.with_label(span, reason);
            } else if let Some(&s) = spans.get(id) {
                d = d.with_label(s, "annotated here");
            }
            out.push(d.with_note(COMMUTE_NOTE));
        }

        // (b) A same-phase sibling reads the privatized aggregate: it would
        // observe stale pre-merge state.
        let Some(phase) = phase_of(id) else { continue };
        for agg in call.commute_aggs() {
            for &onode in &c.cfg.call_nodes() {
                let Some(other) = c.cfg.call(onode) else { continue };
                if other.id == id || phase_of(other.id) != Some(phase) {
                    continue;
                }
                let reads = other.access.get(agg).is_some_and(|pa| pa.home_read || pa.nonhome_read);
                if !reads {
                    continue;
                }
                let mut d = Diagnostic::error(
                    codes::COMMUTE_UNSOUND,
                    format!(
                        "unsound `commute` annotation: call `{}` (call {}) reads aggregate \
                         `{agg}` in the same phase {phase} that call `{func}` (call {id}) \
                         updates it under privatization",
                        other.func, other.id
                    ),
                );
                let (rs, _) = access_spans_in_call(c, other.id, agg);
                if let Some(r) = rs {
                    d = d.with_label(r, "this read would observe the un-merged aggregate");
                } else if let Some(&s) = spans.get(other.id) {
                    d = d.with_label(s, "reads the privatized aggregate here");
                }
                if let Some(&s) = spans.get(id) {
                    d = d.with_label(s, "privatized updates originate here");
                }
                out.push(d.with_note(
                    "deltas are merged only at the phase barrier; same-phase readers see \
                     whatever their node's private copy holds",
                ));
            }
        }
    }
    out
}

/// Spans of a non-home read and a write of `agg` inside call `id`'s callee.
fn access_spans_in_call(c: &CompiledProgram, id: usize, agg: &str) -> (Option<Span>, Option<Span>) {
    let Some((func, args)) = c.call_sites.get(id) else { return (None, None) };
    let Some(f) = c.program.func(func) else { return (None, None) };
    let Some(sum) = c.summaries.get(func) else { return (None, None) };
    let mut read = None;
    let mut write = None;
    for (param, arg) in f.params.iter().zip(args) {
        if arg != agg {
            continue;
        }
        read =
            read.or_else(|| sum.site(param, AccessKind::Read, Locality::NonHome).map(|s| s.span));
        write = write
            .or_else(|| sum.site(param, AccessKind::Write, Locality::Home).map(|s| s.span))
            .or_else(|| sum.site(param, AccessKind::Write, Locality::NonHome).map(|s| s.span));
    }
    (read, write)
}

// ---------------------------------------------------------------------
// W002 — dead directive
// ---------------------------------------------------------------------

struct DeadFinding {
    call: usize,
    func: String,
}

fn find_dead(
    cfg: &Cfg,
    comm: &BTreeMap<usize, CallComm>,
    asg: &PhaseAssignment,
) -> Vec<DeadFinding> {
    let mut out = Vec::new();
    for (&id, d) in &asg.calls {
        if !d.needs || comm.get(&id).is_some_and(|c| c.holds) {
            continue;
        }
        let func = cfg
            .call_node
            .get(id)
            .and_then(|&n| cfg.call(n))
            .map(|c| c.func.clone())
            .unwrap_or_default();
        out.push(DeadFinding { call: id, func });
    }
    out
}

fn render_dead(f: &DeadFinding, span: Option<Span>) -> Diagnostic {
    let mut d = Diagnostic::warning(
        codes::DEAD_DIRECTIVE,
        format!(
            "dead directive: call `{}` (call {}) is scheduled but no unstructured access \
             reaches it and it performs none",
            f.func, f.call
        ),
    );
    if let Some(s) = span {
        d = d.with_label(s, "this call's schedule would never record anything");
    }
    d.with_note(DEAD_NOTE)
}

// ---------------------------------------------------------------------
// W003 — static out-of-bounds neighbor offsets
// ---------------------------------------------------------------------

/// One `#p ± c` index occurrence inside a function body.
struct OffsetHit {
    param: String,
    /// Dimension of the accessed aggregate this index selects.
    dim: usize,
    /// Which position pseudo-variable the offset applies to.
    pos: usize,
    /// Signed constant offset.
    offset: i64,
    span: Span,
    /// Mask of `#k` mentioned by enclosing `if` conditions.
    guard: u64,
}

fn lint_static_oob(c: &CompiledProgram) -> Vec<Diagnostic> {
    // Scan each function body once.
    let mut per_fn: BTreeMap<&str, Vec<OffsetHit>> = BTreeMap::new();
    for f in &c.program.funcs {
        let mut hits = Vec::new();
        scan_stmts_oob(&f.body, 0, &mut hits);
        per_fn.insert(f.name.as_str(), hits);
    }

    let mut seen: BTreeSet<(String, String, usize, i64)> = BTreeSet::new();
    let mut out = Vec::new();
    for (func, args) in &c.call_sites {
        let Some(f) = c.program.func(func) else { continue };
        let Some(par) = args.first().and_then(|a| c.program.agg(a)) else { continue };
        for hit in per_fn.get(func.as_str()).map_or(&[][..], |v| v) {
            if hit.guard & (1 << hit.pos) != 0 {
                continue; // an enclosing `if` mentions #pos: assumed guarded
            }
            let Some(pi) = f.params.iter().position(|p| *p == hit.param) else { continue };
            let Some(arg) = args.get(pi) else { continue };
            let Some(decl) = c.program.agg(arg) else { continue };
            let Some(&extent) = decl.dims.get(hit.dim) else { continue };
            let Some(&par_extent) = par.dims.get(hit.pos) else { continue };
            let worst = if hit.offset < 0 {
                hit.offset // position 0 underflows
            } else {
                par_extent as i64 - 1 + hit.offset // last position overflows
            };
            if worst >= 0 && (worst as usize) < extent {
                continue; // offset stays inside the extent for every position
            }
            if !seen.insert((func.clone(), arg.clone(), hit.dim, hit.offset)) {
                continue;
            }
            out.push(
                Diagnostic::warning(
                    codes::STATIC_OOB,
                    format!(
                        "constant offset can index `{}` out of bounds: reaches {}, but `{}` \
                         has extent 0..{} in dimension {}",
                        hit.param, worst, arg, extent, hit.dim
                    ),
                )
                .with_label(hit.span, "unguarded neighbor access")
                .with_note(format!(
                    "guard it with a condition on #{} (the interpreter aborts on \
                     out-of-range indices)",
                    hit.pos
                )),
            );
        }
    }
    out
}

fn scan_stmts_oob(stmts: &[Stmt], guard: u64, hits: &mut Vec<OffsetHit>) {
    for s in stmts {
        match s {
            Stmt::Let(_, e) | Stmt::AssignLocal(_, e) => scan_expr_oob(e, guard, hits),
            Stmt::AssignAgg { agg, idx, value, span } => {
                check_offsets(agg, idx, *span, guard, hits);
                for i in idx {
                    scan_expr_oob(i, guard, hits);
                }
                scan_expr_oob(value, guard, hits);
            }
            Stmt::If(cond, t, e) => {
                scan_expr_oob(cond, guard, hits);
                let g = guard | pos_mask(cond);
                scan_stmts_oob(t, g, hits);
                scan_stmts_oob(e, g, hits);
            }
            Stmt::For { lo, hi, body, .. } => {
                scan_expr_oob(lo, guard, hits);
                scan_expr_oob(hi, guard, hits);
                scan_stmts_oob(body, guard, hits);
            }
        }
    }
}

fn scan_expr_oob(e: &Expr, guard: u64, hits: &mut Vec<OffsetHit>) {
    match e {
        Expr::AggRead { agg, idx, span } => {
            check_offsets(agg, idx, *span, guard, hits);
            for i in idx {
                scan_expr_oob(i, guard, hits);
            }
        }
        Expr::Bin(_, a, b) => {
            scan_expr_oob(a, guard, hits);
            scan_expr_oob(b, guard, hits);
        }
        Expr::Neg(a) => scan_expr_oob(a, guard, hits),
        Expr::Builtin(_, args) => {
            for a in args {
                scan_expr_oob(a, guard, hits);
            }
        }
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) | Expr::Pos(_) => {}
    }
}

fn check_offsets(param: &str, idx: &[Expr], span: Span, guard: u64, hits: &mut Vec<OffsetHit>) {
    for (dim, e) in idx.iter().enumerate() {
        if let Some((pos, offset)) = const_offset(e) {
            if offset != 0 {
                hits.push(OffsetHit { param: param.to_string(), dim, pos, offset, span, guard });
            }
        }
    }
}

/// Match `#p + c`, `#p - c`, or `c + #p`; returns `(p, signed offset)`.
fn const_offset(e: &Expr) -> Option<(usize, i64)> {
    use crate::ast::BinOp::{Add, Sub};
    match e {
        Expr::Bin(Add, a, b) => match (&**a, &**b) {
            (Expr::Pos(p), Expr::Int(c)) | (Expr::Int(c), Expr::Pos(p)) => Some((*p, *c)),
            _ => None,
        },
        Expr::Bin(Sub, a, b) => match (&**a, &**b) {
            (Expr::Pos(p), Expr::Int(c)) => Some((*p, -c)),
            _ => None,
        },
        _ => None,
    }
}

/// Mask of position pseudo-variables mentioned anywhere in an expression.
fn pos_mask(e: &Expr) -> u64 {
    match e {
        Expr::Pos(k) => 1u64 << (*k).min(63),
        Expr::AggRead { idx, .. } => idx.iter().map(pos_mask).fold(0, |a, b| a | b),
        Expr::Bin(_, a, b) => pos_mask(a) | pos_mask(b),
        Expr::Neg(a) => pos_mask(a),
        Expr::Builtin(_, args) => args.iter().map(pos_mask).fold(0, |a, b| a | b),
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) => 0,
    }
}

// ---------------------------------------------------------------------
// W004 — unused aggregate / write-never-read
// ---------------------------------------------------------------------

fn lint_unused(c: &CompiledProgram) -> Vec<Diagnostic> {
    let mut union: BTreeMap<&str, ParamAccess> = BTreeMap::new();
    for &node in &c.cfg.call_nodes() {
        let Some(call) = c.cfg.call(node) else { continue };
        for (agg, pa) in &call.access {
            let e = union.entry(agg.as_str()).or_default();
            e.home_read |= pa.home_read;
            e.home_write |= pa.home_write;
            e.nonhome_read |= pa.nonhome_read;
            e.nonhome_write |= pa.nonhome_write;
        }
    }
    let mut out = Vec::new();
    for decl in &c.program.aggs {
        let a = union.get(decl.name.as_str()).copied().unwrap_or_default();
        if !a.any() {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_AGG,
                    format!("aggregate `{}` is never accessed by any parallel call", decl.name),
                )
                .with_label(decl.span, "declared here")
                .with_note("it still occupies distributed shared memory on every node"),
            );
        } else if (a.home_write || a.nonhome_write) && !(a.home_read || a.nonhome_read) {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_AGG,
                    format!("aggregate `{}` is written but never read", decl.name),
                )
                .with_label(decl.span, "declared here")
                .with_note(
                    "its writes still invalidate remote copies and may be scheduled for \
                     pre-sending",
                ),
            );
        }
    }
    out
}

// ---------------------------------------------------------------------
// W005 — index fed by a non-home read
// ---------------------------------------------------------------------

fn lint_unstructured_index(c: &CompiledProgram) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    for f in &c.program.funcs {
        let mut taints: BTreeSet<String> = BTreeSet::new();
        let mut hits: Vec<(String, Span)> = Vec::new();
        scan_stmts_taint(&f.body, &mut taints, &mut hits);
        for (param, span) in hits {
            if !seen.insert((span.lo, span.hi)) {
                continue;
            }
            out.push(
                Diagnostic::warning(
                    codes::UNSTRUCTURED_INDEX,
                    format!(
                        "index of the `{param}` access in `{}` is computed from a \
                             non-home read",
                        f.name
                    ),
                )
                .with_label(span, "index depends on remote data")
                .with_note(
                    "§3.3: indices fed by remote values change as remote data changes, so \
                     the recorded schedule can mispredict every iteration",
                ),
            );
        }
    }
    out
}

fn scan_stmts_taint(stmts: &[Stmt], taints: &mut BTreeSet<String>, hits: &mut Vec<(String, Span)>) {
    for s in stmts {
        match s {
            Stmt::Let(name, e) | Stmt::AssignLocal(name, e) => {
                scan_expr_taint(e, taints, hits);
                if tainted(e, taints) {
                    taints.insert(name.clone());
                }
            }
            Stmt::AssignAgg { agg, idx, value, span } => {
                if idx.iter().any(|i| tainted(i, taints)) {
                    hits.push((agg.clone(), *span));
                }
                for i in idx {
                    scan_expr_taint(i, taints, hits);
                }
                scan_expr_taint(value, taints, hits);
            }
            Stmt::If(cond, t, e) => {
                scan_expr_taint(cond, taints, hits);
                scan_stmts_taint(t, taints, hits);
                scan_stmts_taint(e, taints, hits);
            }
            Stmt::For { lo, hi, body, .. } => {
                scan_expr_taint(lo, taints, hits);
                scan_expr_taint(hi, taints, hits);
                scan_stmts_taint(body, taints, hits);
            }
        }
    }
}

fn scan_expr_taint(e: &Expr, taints: &BTreeSet<String>, hits: &mut Vec<(String, Span)>) {
    match e {
        Expr::AggRead { agg, idx, span } => {
            if idx.iter().any(|i| tainted(i, taints)) {
                hits.push((agg.clone(), *span));
            }
            for i in idx {
                scan_expr_taint(i, taints, hits);
            }
        }
        Expr::Bin(_, a, b) => {
            scan_expr_taint(a, taints, hits);
            scan_expr_taint(b, taints, hits);
        }
        Expr::Neg(a) => scan_expr_taint(a, taints, hits),
        Expr::Builtin(_, args) => {
            for a in args {
                scan_expr_taint(a, taints, hits);
            }
        }
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) | Expr::Pos(_) => {}
    }
}

/// Does the expression draw on remote data: a tainted local, or a non-home
/// aggregate read anywhere inside it?
fn tainted(e: &Expr, taints: &BTreeSet<String>) -> bool {
    match e {
        Expr::Var(name) => taints.contains(name),
        Expr::AggRead { idx, .. } => {
            classify_index(idx) == Locality::NonHome || idx.iter().any(|i| tainted(i, taints))
        }
        Expr::Bin(_, a, b) => tainted(a, taints) || tainted(b, taints),
        Expr::Neg(a) => tainted(a, taints),
        Expr::Builtin(_, args) => args.iter().any(|a| tainted(a, taints)),
        Expr::Num(_) | Expr::Int(_) | Expr::Pos(_) => false,
    }
}

// ---------------------------------------------------------------------
// Call-site spans
// ---------------------------------------------------------------------

/// Spans of `main`'s parallel calls, indexed by call-site id (shared with
/// the oracle for labeling its findings).
pub(crate) fn call_spans(c: &CompiledProgram) -> Vec<Span> {
    use crate::ast::SeqStmt;
    fn walk(stmts: &[SeqStmt], out: &mut Vec<Span>) {
        for s in stmts {
            match s {
                SeqStmt::Call { span, .. } => out.push(*span),
                SeqStmt::For { body, .. } => walk(body, out),
            }
        }
    }
    let mut out = Vec::new();
    walk(&c.program.main, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;
    use crate::compile::compile_diag;
    use crate::directives::{place_directives, CallDecision};
    use crate::sema::ClassifyRules;

    fn lints(src: &str) -> Vec<Diagnostic> {
        lint_program(&compile_diag(src, true, ClassifyRules::default()).unwrap())
    }

    fn codes_of(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn self_conflict_fires_w001_with_both_spans() {
        let src = "aggregate A[16] of float;\n\
                   parallel fn relax(x, y) {\n\
                       if #0 < 15 {\n\
                           x[#0] = y[#0+1];\n\
                       }\n\
                   }\n\
                   fn main() {\n\
                       for it in 0 .. 4 {\n\
                           relax(A, A);\n\
                       }\n\
                   }\n";
        let ds = lints(src);
        assert_eq!(codes_of(&ds), vec!["W001"], "{ds:#?}");
        assert!(ds[0].message.contains("`A`"));
        assert_eq!(ds[0].labels.len(), 2, "read and write sites labeled");
    }

    #[test]
    fn clean_two_phase_program_is_silent() {
        let src = "aggregate G[64] of float;\n\
                   aggregate H[64] of float;\n\
                   parallel fn sweep(g, h) {\n\
                       if #0 > 0 {\n\
                           if #0 < 63 {\n\
                               h[#0] = 0.5 * (g[#0-1] + g[#0+1]);\n\
                           }\n\
                       }\n\
                   }\n\
                   fn main() {\n\
                       for it in 0 .. 4 {\n\
                           sweep(G, H);\n\
                           sweep(H, G);\n\
                       }\n\
                   }\n";
        let ds = lints(src);
        assert!(ds.is_empty(), "{ds:#?}");
    }

    #[test]
    fn dead_directive_fires_on_forced_assignment() {
        // Home-only program: nothing legitimately needs a schedule. Force
        // one by hand and the audit must flag it.
        let mut b = CfgBuilder::new(["A".to_string()]);
        b.call("scale", &[("A", true, true, false, false)]);
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        let mut plan = place_directives(&cfg, &sol, true);
        assert!(audit_plan(&cfg, &sol, &plan.assignment).is_empty(), "compiler plan is clean");
        plan.assignment
            .calls
            .insert(0, CallDecision { needs: true, home_only: true, phase: Some(1) });
        plan.assignment.n_phases = 1;
        let ds = audit_plan(&cfg, &sol, &plan.assignment);
        assert_eq!(codes_of(&ds), vec!["W002"], "{ds:#?}");
        assert!(ds[0].message.contains("scale"));
    }

    #[test]
    fn cross_call_conflict_in_hand_built_phase() {
        // Force reader and writer of the same aggregate into one phase.
        let mut b = CfgBuilder::new(["A".to_string()]);
        b.begin_loop("it");
        b.call("reader", &[("A", false, false, true, false)]);
        b.call("writer", &[("A", false, true, false, false)]);
        b.end_loop();
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        let mut plan = place_directives(&cfg, &sol, true);
        for d in plan.assignment.calls.values_mut() {
            d.phase = Some(1);
        }
        plan.assignment.n_phases = 1;
        let ds = audit_plan(&cfg, &sol, &plan.assignment);
        assert!(codes_of(&ds).contains(&"W001"), "{ds:#?}");
        let w = ds.iter().find(|d| d.code == "W001").unwrap();
        assert!(w.notes[0].contains("reader") && w.notes[0].contains("writer"));
    }

    #[test]
    fn unguarded_offset_fires_w003_and_guard_suppresses() {
        let src = "aggregate G[32] of float;\n\
                   aggregate H[32] of float;\n\
                   parallel fn f(g, h) {\n\
                       h[#0] = g[#0-1];\n\
                   }\n\
                   fn main() { f(G, H); f(H, G); }\n";
        let ds = lints(src);
        let oob: Vec<_> = ds.iter().filter(|d| d.code == "W003").collect();
        assert_eq!(oob.len(), 2, "one per (agg, offset) binding: {ds:#?}");
        assert!(oob[0].message.contains("reaches -1"));

        let guarded = "aggregate G[32] of float;\n\
                       aggregate H[32] of float;\n\
                       parallel fn f(g, h) {\n\
                           if #0 > 0 {\n\
                               h[#0] = g[#0-1];\n\
                           }\n\
                       }\n\
                       fn main() { f(G, H); f(H, G); }\n";
        assert!(lints(guarded).iter().all(|d| d.code != "W003"));
    }

    #[test]
    fn in_range_offset_is_not_flagged() {
        // Parallel aggregate is shorter than the accessed one: #0+2 stays
        // in bounds for every position.
        let src = "aggregate S[8] of float;\n\
                   aggregate L[16] of float;\n\
                   parallel fn f(s, l) {\n\
                       s[#0] = l[#0+2];\n\
                   }\n\
                   fn main() { f(S, L); }\n";
        let ds = lints(src);
        assert!(ds.iter().all(|d| d.code != "W003"), "{ds:#?}");
    }

    #[test]
    fn unused_and_write_only_fire_w004() {
        let src = "aggregate A[8] of float;\n\
                   aggregate Dead[8] of float;\n\
                   aggregate Sink[8] of float;\n\
                   parallel fn f(a, sink) {\n\
                       sink[#0] = a[#0];\n\
                   }\n\
                   fn main() { f(A, Sink); }\n";
        let ds = lints(src);
        let w4: Vec<_> = ds.iter().filter(|d| d.code == "W004").collect();
        assert_eq!(w4.len(), 2, "{ds:#?}");
        assert!(w4
            .iter()
            .any(|d| d.message.contains("`Dead`") && d.message.contains("never accessed")));
        assert!(w4
            .iter()
            .any(|d| d.message.contains("`Sink`") && d.message.contains("never read")));
    }

    #[test]
    fn commutable_conflict_fires_w007_with_both_spans() {
        // Histogram: unstructured reduction into `h` self-conflicts (W001)
        // and every write commutes — W007 suggests the annotation.
        let src = "aggregate H[32] of float;\n\
                   aggregate X[32] of int;\n\
                   parallel fn bump(h, x) {\n\
                       h[x[#0]] = h[x[#0]] + 1.0;\n\
                   }\n\
                   fn main() {\n\
                       for it in 0 .. 2 {\n\
                           bump(H, X);\n\
                       }\n\
                   }\n";
        let ds = lints(src);
        assert!(codes_of(&ds).contains(&"W001"), "{ds:#?}");
        let w7 = ds.iter().find(|d| d.code == "W007").expect("W007 fires");
        assert!(w7.message.contains("`H`") && w7.message.contains("commute"));
        assert_eq!(w7.labels.len(), 2, "reduction and read sites labeled: {w7:#?}");
        assert!(ds.iter().all(|d| d.code != "E008"), "{ds:#?}");
    }

    #[test]
    fn commute_annotation_suppresses_w001_and_w007() {
        let src = "aggregate H[32] of float;\n\
                   aggregate X[32] of int;\n\
                   parallel fn bump(h, x) {\n\
                       h[x[#0]] = h[x[#0]] + 1.0;\n\
                   }\n\
                   fn main() {\n\
                       for it in 0 .. 2 {\n\
                           commute bump(H, X);\n\
                       }\n\
                   }\n";
        let ds = lints(src);
        assert!(ds.is_empty(), "annotated sound reduction is clean: {ds:#?}");
    }

    #[test]
    fn unsound_annotation_fires_e008_with_blame() {
        let src = "aggregate H[32] of float;\n\
                   aggregate X[32] of int;\n\
                   parallel fn scale(h, x) {\n\
                       h[x[#0]] = 2.0 * h[x[#0]] + 1.0;\n\
                   }\n\
                   fn main() { commute scale(H, X); }\n";
        let ds = lints(src);
        let e8 = ds.iter().find(|d| d.code == "E008").expect("E008 fires: {ds:#?}");
        assert!(e8.message.contains("`H`") && e8.message.contains("not order-independent"));
        assert!(!e8.labels.is_empty(), "blame span attached: {e8:#?}");
        // The unresolved conflict still warns.
        assert!(codes_of(&ds).contains(&"W001"), "{ds:#?}");
    }

    #[test]
    fn same_phase_reader_of_privatized_agg_fires_e008() {
        // `probe` is transparent (home accesses only) so it coalesces into
        // bump's phase — where it would read un-merged private state.
        let src = "aggregate H[32] of float;\n\
                   aggregate X[32] of int;\n\
                   aggregate S[32] of float;\n\
                   parallel fn bump(h, x) {\n\
                       h[x[#0]] = h[x[#0]] + 1.0;\n\
                   }\n\
                   parallel fn probe(s, h) {\n\
                       s[#0] = h[#0];\n\
                   }\n\
                   fn main() {\n\
                       commute bump(H, X);\n\
                       probe(S, H);\n\
                   }\n";
        let ds = lints(src);
        let e8 = ds.iter().find(|d| d.code == "E008").expect("E008 fires");
        assert!(e8.message.contains("probe") && e8.message.contains("`H`"), "{e8:#?}");
    }

    #[test]
    fn audit_plan_suggests_w007_for_commuting_writer() {
        // Hand-built Barnes-style tree build: unstructured read+write of
        // the tree in one phase, writes declared commutative (insertions).
        let mut b = CfgBuilder::new(["tree".to_string()]);
        b.begin_loop("step");
        b.call_commuting("load_tree", &[("tree", false, false, true, true)], &["tree"], false);
        b.end_loop();
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        let plan = place_directives(&cfg, &sol, true);
        let ds = audit_plan(&cfg, &sol, &plan.assignment);
        assert!(codes_of(&ds).contains(&"W001"), "{ds:#?}");
        assert!(codes_of(&ds).contains(&"W007"), "{ds:#?}");

        // Without the commute flag: W001 only.
        let mut b = CfgBuilder::new(["tree".to_string()]);
        b.begin_loop("step");
        b.call("load_tree", &[("tree", false, false, true, true)]);
        b.end_loop();
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        let plan = place_directives(&cfg, &sol, true);
        let ds = audit_plan(&cfg, &sol, &plan.assignment);
        assert!(codes_of(&ds).contains(&"W001"), "{ds:#?}");
        assert!(!codes_of(&ds).contains(&"W007"), "{ds:#?}");
    }

    #[test]
    fn remote_fed_index_fires_w005_and_home_fed_does_not() {
        let src = "aggregate A[16] of float;\n\
                   aggregate P[16] of int;\n\
                   parallel fn gather(a, p) {\n\
                       let k = p[#0+1];\n\
                       a[#0] = a[k];\n\
                   }\n\
                   fn main() { gather(A, P); }\n";
        let ds = lints(src);
        assert!(ds.iter().any(|d| d.code == "W005"), "{ds:#?}");

        let home = "aggregate A[16] of float;\n\
                    aggregate P[16] of int;\n\
                    parallel fn gather(a, p) {\n\
                        let k = p[#0];\n\
                        a[#0] = a[k];\n\
                    }\n\
                    fn main() { gather(A, P); }\n";
        assert!(lints(home).iter().all(|d| d.code != "W005"));
    }
}
