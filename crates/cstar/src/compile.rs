//! The compiler pipeline: source → analyzed, directive-annotated program.

use std::collections::BTreeMap;

use crate::ast::{Program, SeqStmt};
use crate::cfg::Cfg;
use crate::dataflow::ReachingUnstructured;
use crate::diag::Diagnostic;
use crate::directives::{place_directives, DirectivePlan};
use crate::lexer::ParseError;
use crate::sema::{analyze_program_with, AccessSummary, ClassifyRules};

/// A fully compiled mini-C\*\* program: AST, summaries, annotated CFG,
/// dataflow solution, and the directive plan the interpreter executes.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The parsed program.
    pub program: Program,
    /// Per-function access summaries (§4.2).
    pub summaries: BTreeMap<String, AccessSummary>,
    /// Annotated sequential CFG (§4.3).
    pub cfg: Cfg,
    /// Dataflow solution: reaching unstructured accesses.
    pub reaching: ReachingUnstructured,
    /// Placed directives and the executable op sequence.
    pub plan: DirectivePlan,
    /// Call sites by id: `(function, argument aggregates)`.
    pub call_sites: Vec<(String, Vec<String>)>,
}

/// Compile with the coalescing/hoisting optimization enabled.
pub fn compile(src: &str) -> Result<CompiledProgram, ParseError> {
    compile_with(src, true)
}

/// Compile with explicit control over the §4.3 coalescing optimization.
pub fn compile_with(src: &str, coalesce: bool) -> Result<CompiledProgram, ParseError> {
    compile_diag(src, coalesce, ClassifyRules::default()).map_err(ParseError::from)
}

/// Compile with span-carrying diagnostics and explicit classification
/// rules (the oracle mutation test weakens them; everything else passes
/// [`ClassifyRules::default`]).
pub fn compile_diag(
    src: &str,
    coalesce: bool,
    rules: ClassifyRules,
) -> Result<CompiledProgram, Diagnostic> {
    let program = crate::parser::parse_diag(src)?;
    let summaries = analyze_program_with(&program, rules)?;
    let cfg = Cfg::from_program(&program, &summaries).map_err(Diagnostic::from)?;
    let reaching = ReachingUnstructured::solve(&cfg)?;
    let plan = place_directives(&cfg, &reaching, coalesce);

    // Collect call sites in the same order the CFG assigned ids.
    let mut call_sites = Vec::new();
    fn walk(stmts: &[SeqStmt], out: &mut Vec<(String, Vec<String>)>) {
        for s in stmts {
            match s {
                SeqStmt::Call { func, args, .. } => out.push((func.clone(), args.clone())),
                SeqStmt::For { body, .. } => walk(body, out),
            }
        }
    }
    walk(&program.main, &mut call_sites);
    debug_assert_eq!(call_sites.len(), cfg.call_node.len());

    Ok(CompiledProgram { program, summaries, cfg, reaching, plan, call_sites })
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = r#"
        aggregate G[16][16] of float;
        aggregate H[16][16] of float;
        parallel fn sweep(g, h) {
            h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
        }
        fn main() {
            for it in 0 .. 8 {
                sweep(G, H);
                sweep(H, G);
            }
        }
    "#;

    #[test]
    fn jacobi_gets_two_phases() {
        let c = compile(JACOBI).unwrap();
        // Both sweeps are unstructured (neighbor reads): each needs its own
        // phase (they conflict on G and H respectively).
        assert_eq!(c.plan.assignment.n_phases, 2);
        let p0 = c.plan.assignment.calls[&0].phase.unwrap();
        let p1 = c.plan.assignment.calls[&1].phase.unwrap();
        assert_ne!(p0, p1);
        assert_eq!(c.call_sites.len(), 2);
        assert_eq!(c.call_sites[0].1, vec!["G", "H"]);
    }

    #[test]
    fn phase_ids_stable_across_iterations() {
        // Directives sit inside the loop, so the same ids recur every
        // iteration — the repetition the predictive protocol feeds on.
        let c = compile(JACOBI).unwrap();
        use crate::directives::ExecOp;
        let mut loop_depth = 0;
        let mut phases_in_loop = vec![];
        for op in &c.plan.ops {
            match op {
                ExecOp::LoopBegin { .. } => loop_depth += 1,
                ExecOp::LoopEnd => loop_depth -= 1,
                ExecOp::PhaseBegin(p) if loop_depth > 0 => phases_in_loop.push(*p),
                _ => {}
            }
        }
        assert_eq!(phases_in_loop, vec![1, 2]);
    }

    #[test]
    fn compile_rejects_bad_programs() {
        assert!(compile("fn main() { f(A); }").is_err());
        assert!(compile("aggregate A[4] of float; fn main() { f(A); }").is_err());
    }
}
