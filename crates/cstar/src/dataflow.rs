//! The *reaching unstructured accesses* dataflow problem (§4.3).
//!
//! For each aggregate at each program point: may cached copies of its
//! elements exist on remote processors because of unstructured accesses?
//! Analogous to reaching definitions; computed with an iterative bit-vector
//! worklist over the sequential CFG — forward direction, any-path (union)
//! confluence.
//!
//! Transfer functions at a parallel call, per aggregate (the paper's three
//! rules):
//!
//! 1. owner (home) writes **kill** — the remote copies are invalidated;
//! 2. unstructured writes **kill then gen** — old copies are invalidated
//!    but new remote copies appear;
//! 3. unstructured reads **gen** (and do not kill — multiple readers).

use crate::cfg::{Cfg, CfgNode};
use crate::diag::{codes, Diagnostic};

/// A bit-vector over the CFG's aggregate universe (≤ 64 aggregates, which
/// is ample for the paper's programs).
pub type BitVec = u64;

/// The dataflow solution: IN and OUT sets per CFG node.
#[derive(Debug, Clone)]
pub struct ReachingUnstructured {
    /// IN\[n\]: aggregates whose remote copies may exist just before `n`.
    pub input: Vec<BitVec>,
    /// OUT\[n\].
    pub output: Vec<BitVec>,
}

/// GEN/KILL for one call node. An aggregate absent from the CFG's universe
/// is an internal inconsistency, reported as `E005` rather than a panic.
fn transfer(cfg: &Cfg, node: usize) -> Result<(BitVec, BitVec), Diagnostic> {
    let mut gen = 0u64;
    let mut kill = 0u64;
    if let CfgNode::Call(c) = &cfg.nodes[node] {
        for (agg, pa) in &c.access {
            let Some(b) = cfg.agg_bit(agg) else {
                return Err(Diagnostic::error(
                    codes::DATAFLOW_UNIVERSE,
                    format!("aggregate `{agg}` missing from the dataflow universe"),
                )
                .with_note(format!(
                    "call `{}` (node {node}) accesses it, but the CFG universe is [{}]",
                    c.func,
                    cfg.aggs.join(", ")
                )));
            };
            let bit = 1u64 << b;
            if pa.home_write || pa.nonhome_write {
                kill |= bit;
            }
            if pa.nonhome_read || pa.nonhome_write {
                gen |= bit;
            }
        }
    }
    Ok((gen, kill))
}

impl ReachingUnstructured {
    /// Solve the problem for `cfg`. Fails with `E005` if a call accesses an
    /// aggregate outside the CFG's universe, or `E006` if the universe
    /// exceeds the 64-aggregate bit-vector.
    pub fn solve(cfg: &Cfg) -> Result<ReachingUnstructured, Diagnostic> {
        if cfg.aggs.len() > 64 {
            return Err(Diagnostic::error(
                codes::AGG_LIMIT,
                format!(
                    "program declares {} aggregates; the dataflow bit-vector supports at most 64",
                    cfg.aggs.len()
                ),
            )
            .with_note("split the program or widen `BitVec` in dataflow.rs"));
        }
        let n = cfg.nodes.len();
        let transfers: Vec<(BitVec, BitVec)> =
            (0..n).map(|i| transfer(cfg, i)).collect::<Result<_, _>>()?;
        let mut input = vec![0u64; n];
        let mut output = vec![0u64; n];
        // Worklist, seeded with all nodes in order.
        let mut work: std::collections::VecDeque<usize> = (0..n).collect();
        let mut queued = vec![true; n];
        while let Some(i) = work.pop_front() {
            queued[i] = false;
            let in_i = cfg.preds[i].iter().fold(0u64, |acc, &p| acc | output[p]);
            let (gen, kill) = transfers[i];
            let out_i = (in_i & !kill) | gen;
            input[i] = in_i;
            if out_i != output[i] {
                output[i] = out_i;
                for &s in &cfg.succs[i] {
                    if !queued[s] {
                        queued[s] = true;
                        work.push_back(s);
                    }
                }
            }
        }
        Ok(ReachingUnstructured { input, output })
    }

    /// Is aggregate bit `bit` reached-by-unstructured at the entry of node
    /// `n`?
    pub fn reaches(&self, node: usize, bit: usize) -> bool {
        self.input[node] & (1u64 << bit) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgBuilder;

    fn universe(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    /// read-nonhome(A); then owner-write(A): the second call must be
    /// reached by A's unstructured accesses.
    #[test]
    fn unstructured_read_reaches_owner_write() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        let c1 = b.call("reader", &[("A", false, false, true, false)]);
        let c2 = b.call("writer", &[("A", false, true, false, false)]);
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        assert!(!sol.reaches(c1, 0), "nothing reaches the first call");
        assert!(sol.reaches(c2, 0), "reader's copies reach the writer");
        // The owner write kills: after c2 nothing is cached remotely.
        assert_eq!(sol.output[c2], 0);
    }

    /// Owner writes kill the property.
    #[test]
    fn owner_write_kills() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        let _r = b.call("reader", &[("A", false, false, true, false)]);
        let _w = b.call("writer", &[("A", false, true, false, false)]);
        let after = b.call("reader2", &[("A", false, false, true, false)]);
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        assert!(!sol.reaches(after, 0), "owner write invalidates remote copies");
    }

    /// Unstructured writes kill then gen.
    #[test]
    fn unstructured_write_kills_and_gens() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        let _r = b.call("reader", &[("A", false, false, true, false)]);
        let w = b.call("scatter", &[("A", false, false, false, true)]);
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        assert!(sol.reaches(w, 0));
        assert_ne!(sol.output[w], 0, "scatter leaves new remote copies");
    }

    /// Loop fixpoint: an unstructured read inside a loop reaches the loop
    /// head (via the back edge) and everything after the loop.
    #[test]
    fn loop_fixpoint_propagates_around_back_edge() {
        let mut b = CfgBuilder::new(universe(&["A"]));
        let head = b.begin_loop("it");
        let r = b.call("reader", &[("A", false, false, true, false)]);
        b.end_loop();
        let after = b.call("writer", &[("A", false, true, false, false)]);
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        assert!(sol.reaches(r, 0), "second iteration sees the first's reads");
        assert!(sol.reaches(head, 0) || sol.input[head] != 0);
        assert!(sol.reaches(after, 0));
    }

    /// Independent aggregates do not interfere.
    #[test]
    fn aggregates_are_independent() {
        let mut b = CfgBuilder::new(universe(&["A", "B"]));
        let _ra = b.call("reader", &[("A", false, false, true, false)]);
        let wb = b.call("writerB", &[("B", false, true, false, false)]);
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        assert!(sol.reaches(wb, 0), "A still reaches");
        assert!(!sol.reaches(wb, 1), "B was never unstructured");
    }

    /// More than 64 aggregates is now a diagnostic, not an abort.
    #[test]
    fn aggregate_limit_is_a_diagnostic() {
        let names: Vec<String> = (0..65).map(|i| format!("A{i}")).collect();
        let cfg = CfgBuilder::new(names).finish();
        let d = ReachingUnstructured::solve(&cfg).unwrap_err();
        assert_eq!(d.code, "E006");
        assert!(d.message.contains("65"));
    }

    /// Any-path analysis: a kill inside a loop body does not stop the
    /// property from reaching past the loop, because the zero-trip path
    /// skips the body. (Conservative, as the paper intends: wrongly
    /// keeping the property only adds a harmless directive.)
    #[test]
    fn loop_kill_does_not_block_the_zero_trip_path() {
        let mut b = CfgBuilder::new(universe(&["tree", "bodies"]));
        let _build = b.call(
            "build",
            &[("tree", false, false, true, true), ("bodies", true, false, false, false)],
        );
        b.begin_loop("com");
        let com = b.call("center_of_mass", &[("tree", true, true, false, false)]);
        b.end_loop();
        let force = b.call(
            "forces",
            &[("tree", false, false, true, false), ("bodies", false, true, true, false)],
        );
        let cfg = b.finish();
        let sol = ReachingUnstructured::solve(&cfg).unwrap();
        let tree_bit = cfg.agg_bit("tree").unwrap();
        // build's unstructured writes reach the com loop...
        assert!(sol.reaches(com, tree_bit));
        // ...and still reach forces along the loop-skip edge (any-path).
        assert!(sol.reaches(force, tree_bit));
        // On the fall-through path out of the body, the owner write killed
        // the property.
        assert_eq!(sol.output[com], 0);
    }
}
