//! Commutativity analysis (§3.4 payload) and the merge-soundness oracle.
//!
//! The §3.4 dataflow leaves *conflict phases* — phases whose blocks are
//! both read and written through communication — without any protocol
//! action: the predictive protocol marks their blocks conflict and falls
//! back to plain ownership migration. For Barnes' tree build that fallback
//! dominates the message count. This module supplies the compiler half of
//! the fix:
//!
//! 1. **Static classification** ([`classify_fn`]): for each parallel
//!    function and each aggregate parameter, decide whether every update is
//!    an *associative-commutative reduction* — `p[i] = p[i] + v`,
//!    `p[i] = p[i] - v`, `p[i] = min(p[i], v)`, `p[i] = max(p[i], v)` with
//!    `v` and `i` independent of `p` — and no read observes `p` outside
//!    those self-reads. Such updates may execute against a private per-node
//!    buffer and merge at the phase barrier in any node order.
//!    The verdict feeds [`crate::sema::ParamAccess::commute`], the W007 /
//!    E008 lints, and the [`crate::directives::ExecOp::CommutativeMerge`]
//!    directive.
//! 2. **Dynamic validation** ([`validate_merges`]): replay every
//!    `CommutativeMerge` directive of a compiled plan twice over a
//!    deterministic sequential model — once serialized in element order,
//!    once privatized per node with a delta log merged in node order — and
//!    report any diverging element as an `E008` with its witness block.
//!    The [`crate::sema::ClassifyRules::assume_commutative`] weakening
//!    exists precisely so a mutation test can force a non-commutative
//!    update through the static check and watch this oracle catch it.

use std::collections::BTreeMap;

use crate::ast::{BinOp, Builtin, ElemTy, Expr, ParFn, Stmt};
use crate::compile::CompiledProgram;
use crate::diag::{codes, Diagnostic, Span};
use crate::directives::ExecOp;
use crate::interp::{splitmix64, Value};
use crate::sema::ClassifyRules;

/// The merge operator of a recognized reduction update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// `p[i] = p[i] + v` (or `- v`, logged with a negated operand).
    Add,
    /// `p[i] = min(p[i], v)`.
    Min,
    /// `p[i] = max(p[i], v)`.
    Max,
}

/// Per-parameter commutativity verdict of one parallel function.
#[derive(Debug, Clone, PartialEq)]
pub enum CommuteClass {
    /// The parameter is never written — nothing to privatize.
    ReadOnly,
    /// Every write is a commutative reduction and every read of the
    /// parameter is the self-read embedded in one of them. `ops` lists the
    /// recognized reduction sites in body order (empty only under the
    /// [`ClassifyRules::assume_commutative`] weakening).
    Commutative {
        /// Recognized reduction updates: operator and source span.
        ops: Vec<(MergeOp, Span)>,
    },
    /// Order matters: merging privatized copies could change the result.
    OrderDependent {
        /// Why the classification failed.
        reason: String,
        /// The offending access.
        span: Span,
    },
}

impl CommuteClass {
    /// Is the parameter provably (or assumedly) mergeable?
    pub fn is_commutative(&self) -> bool {
        matches!(self, CommuteClass::Commutative { .. })
    }

    /// The blame site of an order-dependent verdict.
    pub fn blame(&self) -> Option<(&str, Span)> {
        match self {
            CommuteClass::OrderDependent { reason, span } => Some((reason.as_str(), *span)),
            _ => None,
        }
    }
}

/// A matched reduction update `p[idx] = op(p[idx], operand)`.
struct Reduction<'a> {
    op: MergeOp,
    operand: &'a Expr,
    /// `p[i] - v`: log `Add` with the operand negated.
    negate: bool,
}

/// Structural expression equality, ignoring source spans (a self-read
/// sits at a different offset than the write target it mirrors).
fn expr_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Num(x), Expr::Num(y)) => x.to_bits() == y.to_bits(),
        (Expr::Int(x), Expr::Int(y)) => x == y,
        (Expr::Var(x), Expr::Var(y)) => x == y,
        (Expr::Pos(x), Expr::Pos(y)) => x == y,
        (Expr::AggRead { agg: ax, idx: ix, .. }, Expr::AggRead { agg: ay, idx: iy, .. }) => {
            ax == ay && ix.len() == iy.len() && ix.iter().zip(iy).all(|(x, y)| expr_eq(x, y))
        }
        (Expr::Bin(ox, ax, bx), Expr::Bin(oy, ay, by)) => {
            ox == oy && expr_eq(ax, ay) && expr_eq(bx, by)
        }
        (Expr::Neg(x), Expr::Neg(y)) => expr_eq(x, y),
        (Expr::Builtin(bx, ax), Expr::Builtin(by, ay)) => {
            bx == by && ax.len() == ay.len() && ax.iter().zip(ay).all(|(x, y)| expr_eq(x, y))
        }
        _ => false,
    }
}

/// Match `value` as a reduction over `p[idx]`. The self-read must be
/// structurally identical to the write's index vector (spans ignored).
fn match_reduction<'a>(p: &str, idx: &[Expr], value: &'a Expr) -> Option<Reduction<'a>> {
    let is_self = |e: &Expr| {
        matches!(e, Expr::AggRead { agg, idx: i, .. }
            if agg == p && i.len() == idx.len() && i.iter().zip(idx).all(|(x, y)| expr_eq(x, y)))
    };
    match value {
        Expr::Bin(BinOp::Add, a, b) => {
            if is_self(a) {
                Some(Reduction { op: MergeOp::Add, operand: b, negate: false })
            } else if is_self(b) {
                Some(Reduction { op: MergeOp::Add, operand: a, negate: false })
            } else {
                None
            }
        }
        // Subtraction commutes only with the accumulator on the left.
        Expr::Bin(BinOp::Sub, a, b) if is_self(a) => {
            Some(Reduction { op: MergeOp::Add, operand: b, negate: true })
        }
        Expr::Builtin(bi @ (Builtin::Min | Builtin::Max), args) if args.len() == 2 => {
            let op = if *bi == Builtin::Min { MergeOp::Min } else { MergeOp::Max };
            if is_self(&args[0]) {
                Some(Reduction { op, operand: &args[1], negate: false })
            } else if is_self(&args[1]) {
                Some(Reduction { op, operand: &args[0], negate: false })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// First read of `p` anywhere inside `e`, if any.
fn first_read_of(e: &Expr, p: &str) -> Option<Span> {
    match e {
        Expr::AggRead { agg, idx, span } => {
            if agg == p {
                return Some(*span);
            }
            idx.iter().find_map(|i| first_read_of(i, p))
        }
        Expr::Bin(_, a, b) => first_read_of(a, p).or_else(|| first_read_of(b, p)),
        Expr::Neg(a) => first_read_of(a, p),
        Expr::Builtin(_, args) => args.iter().find_map(|a| first_read_of(a, p)),
        Expr::Num(_) | Expr::Int(_) | Expr::Var(_) | Expr::Pos(_) => None,
    }
}

/// Classify every parameter of `f` (see module docs). Under
/// [`ClassifyRules::assume_commutative`] any written parameter classifies
/// as `Commutative` regardless of its update shapes — the mutation hook.
pub fn classify_fn(f: &ParFn, rules: ClassifyRules) -> BTreeMap<String, CommuteClass> {
    let mut out = BTreeMap::new();
    for p in &f.params {
        out.insert(p.clone(), classify_param(f, p, rules));
    }
    out
}

fn classify_param(f: &ParFn, p: &str, rules: ClassifyRules) -> CommuteClass {
    let mut ops = Vec::new();
    let mut written = false;
    let mut bad: Option<(String, Span)> = None;
    scan_stmts(&f.body, p, rules, &mut ops, &mut written, &mut bad);
    if rules.assume_commutative {
        // Weakened: any write is declared mergeable. The dynamic merge
        // oracle is the only remaining line of defense.
        return if written { CommuteClass::Commutative { ops } } else { CommuteClass::ReadOnly };
    }
    match (written, bad) {
        // Never written ⇒ never privatized; stray reads are harmless.
        (false, _) => CommuteClass::ReadOnly,
        (true, Some((reason, span))) => CommuteClass::OrderDependent { reason, span },
        (true, None) => CommuteClass::Commutative { ops },
    }
}

fn scan_stmts(
    body: &[Stmt],
    p: &str,
    rules: ClassifyRules,
    ops: &mut Vec<(MergeOp, Span)>,
    written: &mut bool,
    bad: &mut Option<(String, Span)>,
) {
    for s in body {
        match s {
            Stmt::Let(_, e) | Stmt::AssignLocal(_, e) => {
                note_read(first_read_of(e, p), p, rules, bad);
            }
            Stmt::AssignAgg { agg, idx, value, span } => {
                // Index expressions may never read `p`, whoever the target.
                for i in idx {
                    note_read(first_read_of(i, p), p, rules, bad);
                }
                if agg == p {
                    *written = true;
                    match match_reduction(p, idx, value) {
                        Some(r) => {
                            ops.push((r.op, *span));
                            // Only the operand is scanned: the embedded
                            // self-read is the one sanctioned read of `p`.
                            if first_read_of(r.operand, p).is_some() && bad.is_none() {
                                *bad = Some((format!("the reduction operand reads `{p}`"), *span));
                            }
                        }
                        None => {
                            if bad.is_none() && !rules.assume_commutative {
                                *bad = Some((
                                    format!(
                                        "the update of `{p}` is not a `+=`/`-=`/`min`/`max` \
                                         reduction"
                                    ),
                                    *span,
                                ));
                            }
                        }
                    }
                } else {
                    note_read(first_read_of(value, p), p, rules, bad);
                }
            }
            Stmt::If(c, t, e) => {
                note_read(first_read_of(c, p), p, rules, bad);
                scan_stmts(t, p, rules, ops, written, bad);
                scan_stmts(e, p, rules, ops, written, bad);
            }
            Stmt::For { lo, hi, body, .. } => {
                note_read(first_read_of(lo, p), p, rules, bad);
                note_read(first_read_of(hi, p), p, rules, bad);
                scan_stmts(body, p, rules, ops, written, bad);
            }
        }
    }
}

fn note_read(hit: Option<Span>, p: &str, rules: ClassifyRules, bad: &mut Option<(String, Span)>) {
    if rules.assume_commutative {
        return;
    }
    if let Some(span) = hit {
        if bad.is_none() {
            *bad = Some((format!("a read observes `{p}` outside its reduction update"), span));
        }
    }
}

// ---------------------------------------------------------------------
// Dynamic merge validation (the E008 oracle)
// ---------------------------------------------------------------------

/// Parameters of the sequential merge-soundness model.
#[derive(Debug, Clone, Copy)]
pub struct MergeOracleConfig {
    /// Simulated nodes (privatization partitions).
    pub nodes: usize,
    /// Cache-block size in bytes (for witness block ids).
    pub block_size: usize,
    /// Seed of the deterministic initializer (matches the interpreter's).
    pub seed: u64,
}

impl Default for MergeOracleConfig {
    fn default() -> MergeOracleConfig {
        MergeOracleConfig { nodes: 4, block_size: 8, seed: 0x5eed }
    }
}

/// One aggregate of the sequential model.
#[derive(Debug, Clone)]
struct AggData {
    dims: Vec<usize>,
    ty: ElemTy,
    vals: Vec<Value>,
}

impl AggData {
    fn lin(&self, idx: &[i64]) -> Result<usize, String> {
        if idx.len() != self.dims.len() {
            return Err(format!("rank mismatch: {} vs {}", idx.len(), self.dims.len()));
        }
        let mut acc = 0usize;
        for (&i, &d) in idx.iter().zip(&self.dims) {
            if i < 0 || i as usize >= d {
                return Err(format!("index {i} out of bounds for extent {d}"));
            }
            acc = acc * d + i as usize;
        }
        Ok(acc)
    }
}

type SeqState = BTreeMap<String, AggData>;

/// One logged privatized update, replayed at the merge point.
#[derive(Debug, Clone, Copy)]
enum DeltaOp {
    Add(Value),
    Min(Value),
    Max(Value),
    /// Non-reduction write forced through by the weakened rules: replay
    /// overwrites with the privately computed value.
    Store(Value),
}

/// The delta log one privatized node accumulates: (aggregate, index, op).
type DeltaLog = Vec<(String, usize, DeltaOp)>;

fn apply_delta(cur: Value, d: DeltaOp) -> Value {
    match (d, cur) {
        (DeltaOp::Add(Value::I(v)), Value::I(c)) => Value::I(c.wrapping_add(v)),
        (DeltaOp::Add(v), c) => Value::F(c.as_f() + v.as_f()),
        (DeltaOp::Min(Value::I(v)), Value::I(c)) => Value::I(c.min(v)),
        (DeltaOp::Min(v), c) => Value::F(c.as_f().min(v.as_f())),
        (DeltaOp::Max(Value::I(v)), Value::I(c)) => Value::I(c.max(v)),
        (DeltaOp::Max(v), c) => Value::F(c.as_f().max(v.as_f())),
        (DeltaOp::Store(v), _) => v,
    }
}

/// Validate every `CommutativeMerge` directive of a compiled plan:
/// re-execute the plan on a deterministic sequential model and, at each
/// merged call, compare the serialized aggregate state against the
/// privatize-and-merge state. Divergence is reported as `E008` with the
/// witness block. Programs without merge directives validate trivially.
pub fn validate_merges(prog: &CompiledProgram, cfg: &MergeOracleConfig) -> Vec<Diagnostic> {
    // Merged aggregates per call id, from the plan itself.
    let mut merged: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for op in &prog.plan.ops {
        if let ExecOp::CommutativeMerge { call, agg, .. } = op {
            merged.entry(*call).or_default().push(agg.clone());
        }
    }
    if merged.is_empty() {
        return Vec::new();
    }

    let mut state = init_state(prog, cfg.seed);
    let spans = crate::lint::call_spans(prog);
    let mut out = Vec::new();

    // Execute the op sequence (same pc/loop discipline as the DSM
    // interpreter, minus the machine).
    let ops = &prog.plan.ops;
    let mut match_end = vec![usize::MAX; ops.len()];
    let mut stack = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            ExecOp::LoopBegin { .. } => stack.push(i),
            ExecOp::LoopEnd => {
                if let Some(b) = stack.pop() {
                    match_end[b] = i;
                }
            }
            _ => {}
        }
    }

    let mut pc = 0usize;
    let mut loops: Vec<(usize, i64, i64)> = Vec::new();
    let mut reported: std::collections::BTreeSet<(usize, String)> = Default::default();
    while pc < ops.len() {
        match &ops[pc] {
            ExecOp::Call(id) => {
                let aggs = merged.get(id).cloned().unwrap_or_default();
                if aggs.is_empty() {
                    if let Err(e) = run_serialized(prog, *id, &mut state) {
                        return vec![eval_failure(prog, *id, &spans, &e)];
                    }
                } else {
                    let before = state.clone();
                    if let Err(e) = run_serialized(prog, *id, &mut state) {
                        return vec![eval_failure(prog, *id, &spans, &e)];
                    }
                    match run_privatized(prog, *id, &before, &aggs, cfg.nodes) {
                        Ok(mergeed) => {
                            for agg in &aggs {
                                if let Some(d) = diff_agg(
                                    prog,
                                    *id,
                                    agg,
                                    &state,
                                    &mergeed,
                                    cfg.block_size,
                                    &spans,
                                ) {
                                    if reported.insert((*id, agg.clone())) {
                                        out.push(d);
                                    }
                                }
                            }
                        }
                        Err(e) => return vec![eval_failure(prog, *id, &spans, &e)],
                    }
                    // Continue from the serialized state: later phases see
                    // the canonical semantics regardless of divergence.
                }
            }
            ExecOp::LoopBegin { lo, hi, .. } => {
                if lo >= hi {
                    pc = match_end[pc].min(ops.len() - 1);
                } else {
                    loops.push((pc, *lo, *hi));
                }
            }
            ExecOp::LoopEnd => {
                if let Some((begin, cur, hi)) = loops.pop() {
                    let next = cur + 1;
                    if next < hi {
                        loops.push((begin, next, hi));
                        pc = begin;
                    }
                }
            }
            ExecOp::PhaseBegin(_) | ExecOp::PhaseEnd(_) | ExecOp::CommutativeMerge { .. } => {}
        }
        pc += 1;
    }
    out
}

fn eval_failure(prog: &CompiledProgram, id: usize, spans: &[Span], err: &str) -> Diagnostic {
    let func = prog.call_sites.get(id).map(|(f, _)| f.as_str()).unwrap_or("<unknown>");
    let mut d = Diagnostic::error(
        codes::COMMUTE_UNSOUND,
        format!("merge oracle could not evaluate call `{func}` (call {id}): {err}"),
    );
    if let Some(s) = spans.get(id) {
        d = d.with_label(*s, "while validating this call's merge directive");
    }
    d
}

/// Initial aggregate state, matching `interp::seeded_init` bit for bit
/// (splitmix64 keyed by seed, aggregate ordinal, and linearized index).
fn init_state(prog: &CompiledProgram, seed: u64) -> SeqState {
    let mut state = SeqState::new();
    // `materialize` iterates a BTreeMap, so ordinals follow sorted names.
    let mut names: Vec<&str> = prog.program.aggs.iter().map(|a| a.name.as_str()).collect();
    names.sort_unstable();
    for decl in &prog.program.aggs {
        let n: usize = decl.dims.iter().product();
        let k = names.iter().position(|x| *x == decl.name.as_str()).unwrap_or(0) as u64;
        let extent = decl.dims[0] as u64;
        let mut vals = Vec::with_capacity(n);
        for lin_idx in 0..n {
            let pos = delinearize(lin_idx, &decl.dims);
            let lin = pos
                .iter()
                .fold(0u64, |acc, &i| acc.wrapping_mul(0x100_0003).wrapping_add(i as u64));
            let r = splitmix64(seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ lin);
            vals.push(match decl.ty {
                ElemTy::Float => Value::F((r >> 11) as f64 / (1u64 << 53) as f64),
                ElemTy::Int => Value::I((r % extent.max(1)) as i64),
            });
        }
        state.insert(decl.name.clone(), AggData { dims: decl.dims.clone(), ty: decl.ty, vals });
    }
    state
}

fn delinearize(mut lin: usize, dims: &[usize]) -> Vec<i64> {
    let mut out = vec![0i64; dims.len()];
    for (slot, &d) in out.iter_mut().zip(dims).rev() {
        *slot = (lin % d) as i64;
        lin /= d;
    }
    out
}

/// All element positions of the parallel aggregate, row-major.
fn positions(dims: &[usize]) -> Vec<Vec<i64>> {
    let n: usize = dims.iter().product();
    (0..n).map(|i| delinearize(i, dims)).collect()
}

/// Run call `id` serialized: every element in row-major order against the
/// live state.
fn run_serialized(prog: &CompiledProgram, id: usize, state: &mut SeqState) -> Result<(), String> {
    let (func, args) = prog.call_sites.get(id).ok_or("unknown call id")?;
    let f = prog.program.func(func).ok_or("unknown function")?;
    let par = args.first().and_then(|a| state.get(a)).ok_or("missing parallel aggregate")?;
    for pos in positions(&par.dims.clone()) {
        let mut env = SeqEnv { f, args, state, pos: &pos, locals: Vec::new(), log: None };
        env.stmts(&f.body)?;
    }
    Ok(())
}

/// Run call `id` privatized: elements are partitioned into `nodes`
/// contiguous chunks; each chunk runs against a private copy of the start
/// state while logging its updates to the merged aggregates; the logs
/// replay in node order onto the start state. Returns the merged state.
fn run_privatized(
    prog: &CompiledProgram,
    id: usize,
    start: &SeqState,
    merge_aggs: &[String],
    nodes: usize,
) -> Result<SeqState, String> {
    let (func, args) = prog.call_sites.get(id).ok_or("unknown call id")?;
    let f = prog.program.func(func).ok_or("unknown function")?;
    let par = args.first().and_then(|a| start.get(a)).ok_or("missing parallel aggregate")?;
    let all = positions(&par.dims);
    let nodes = nodes.max(1);
    let chunk = all.len().div_ceil(nodes);

    // Which parameter names alias a merged aggregate at this call site.
    let merged_params: Vec<String> = f
        .params
        .iter()
        .zip(args)
        .filter(|(_, a)| merge_aggs.contains(a))
        .map(|(p, _)| p.clone())
        .collect();

    let mut logs: Vec<DeltaLog> = Vec::new();
    for node in 0..nodes {
        let lo = node * chunk;
        let hi = ((node + 1) * chunk).min(all.len());
        let mut private = start.clone();
        let mut log: DeltaLog = Vec::new();
        for pos in all.get(lo..hi).unwrap_or(&[]) {
            let mut env = SeqEnv {
                f,
                args,
                state: &mut private,
                pos,
                locals: Vec::new(),
                log: Some((&merged_params, &mut log)),
            };
            env.stmts(&f.body)?;
        }
        logs.push(log);
    }

    // Merge: replay the per-node delta logs in node order onto the start
    // state — the sequential model of the runtime's barrier bulk install.
    let mut merged = start.clone();
    for log in logs {
        for (arg, lin_idx, d) in log {
            if let Some(a) = merged.get_mut(&arg) {
                if let Some(slot) = a.vals.get_mut(lin_idx) {
                    *slot = apply_delta(*slot, d);
                }
            }
        }
    }
    Ok(merged)
}

/// Compare one merged aggregate between the serialized and privatized
/// states; build the E008 witness diagnostic on first divergence.
#[allow(clippy::too_many_arguments)]
fn diff_agg(
    prog: &CompiledProgram,
    id: usize,
    agg: &str,
    serial: &SeqState,
    merged: &SeqState,
    block_size: usize,
    spans: &[Span],
) -> Option<Diagnostic> {
    let s = serial.get(agg)?;
    let m = merged.get(agg)?;
    let elems_per_block = (block_size / 8).max(1);
    for (i, (a, b)) in s.vals.iter().zip(&m.vals).enumerate() {
        let same = match (a, b) {
            (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
            (Value::I(x), Value::I(y)) => x == y,
            _ => false,
        };
        if same {
            continue;
        }
        let func = prog.call_sites.get(id).map(|(f, _)| f.as_str()).unwrap_or("<unknown>");
        let block = i / elems_per_block;
        let mut d = Diagnostic::error(
            codes::COMMUTE_UNSOUND,
            format!(
                "unsound `commute` annotation: privatized merge of aggregate `{agg}` in call \
                 `{func}` (call {id}) diverges from serialized execution"
            ),
        );
        if let Some(sp) = spans.get(id) {
            d = d.with_label(*sp, "this call's updates are not order-independent");
        }
        return Some(
            d.with_note(format!(
                "witness block {block}: element {i} of `{agg}` is {} serialized but {} after \
                 the node-order merge replay",
                fmt_val(*a),
                fmt_val(*b)
            ))
            .with_note(
                "§3.4: only associative-commutative reductions whose operands do not observe \
                 the privatized aggregate may be merged at the phase barrier",
            ),
        );
    }
    None
}

fn fmt_val(v: Value) -> String {
    match v {
        Value::F(x) => format!("{x}"),
        Value::I(x) => format!("{x}"),
    }
}

// ---------------------------------------------------------------------
// Sequential evaluator (no DSM, no panics)
// ---------------------------------------------------------------------

struct SeqEnv<'a> {
    f: &'a ParFn,
    args: &'a [String],
    state: &'a mut SeqState,
    pos: &'a [i64],
    locals: Vec<(String, Value)>,
    /// When privatizing: (parameter names to log, the delta log).
    log: Option<(&'a [String], &'a mut DeltaLog)>,
}

impl SeqEnv<'_> {
    fn arg_of(&self, param: &str) -> Result<&str, String> {
        self.f
            .params
            .iter()
            .position(|p| p == param)
            .and_then(|i| self.args.get(i))
            .map(|s| s.as_str())
            .ok_or_else(|| format!("`{param}` is not a parameter"))
    }

    fn lookup(&self, name: &str) -> Result<Value, String> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("unknown local `{name}`"))
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), String> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), String> {
        match s {
            Stmt::Let(name, e) => {
                let v = self.eval(e)?;
                self.locals.push((name.clone(), v));
                Ok(())
            }
            Stmt::AssignLocal(name, e) => {
                let v = self.eval(e)?;
                match self.locals.iter_mut().rev().find(|(n, _)| n == name) {
                    Some(slot) => {
                        slot.1 = v;
                        Ok(())
                    }
                    None => Err(format!("assignment to unbound local `{name}`")),
                }
            }
            Stmt::AssignAgg { agg, idx, value, .. } => {
                let idxs = self.eval_idx(idx)?;
                let logged = matches!(&self.log, Some((params, _)) if params.contains(agg));
                if logged {
                    // Privatized write: apply locally and log the delta.
                    let delta = match match_reduction(agg, idx, value) {
                        Some(r) => {
                            let mut v = self.eval(r.operand)?;
                            if r.negate {
                                v = match v {
                                    Value::F(x) => Value::F(-x),
                                    Value::I(x) => Value::I(x.wrapping_neg()),
                                };
                            }
                            match r.op {
                                MergeOp::Add => DeltaOp::Add(v),
                                MergeOp::Min => DeltaOp::Min(v),
                                MergeOp::Max => DeltaOp::Max(v),
                            }
                        }
                        // Weakened-rules path: not a reduction — log the
                        // privately computed value as an overwrite.
                        None => DeltaOp::Store(self.eval(value)?),
                    };
                    let arg = self.arg_of(agg)?.to_string();
                    let lin = {
                        let a = self.state.get(&arg).ok_or("missing aggregate")?;
                        a.lin(&idxs)?
                    };
                    let cur = self
                        .state
                        .get(&arg)
                        .and_then(|a| a.vals.get(lin).copied())
                        .ok_or("missing element")?;
                    let newv = apply_delta(cur, delta);
                    if let Some(a) = self.state.get_mut(&arg) {
                        if let Some(slot) = a.vals.get_mut(lin) {
                            *slot = newv;
                        }
                    }
                    if let Some((_, log)) = &mut self.log {
                        log.push((arg, lin, delta));
                    }
                    Ok(())
                } else {
                    let v = self.eval(value)?;
                    let arg = self.arg_of(agg)?.to_string();
                    let a = self.state.get_mut(&arg).ok_or("missing aggregate")?;
                    let lin = a.lin(&idxs)?;
                    let coerced = match a.ty {
                        ElemTy::Float => Value::F(v.as_f()),
                        ElemTy::Int => match v {
                            Value::I(x) => Value::I(x),
                            Value::F(x) => return Err(format!("float {x} stored into int")),
                        },
                    };
                    if let Some(slot) = a.vals.get_mut(lin) {
                        *slot = coerced;
                    }
                    Ok(())
                }
            }
            Stmt::If(c, t, e) => {
                let depth = self.locals.len();
                if self.eval(c)?.truthy() {
                    self.stmts(t)?;
                } else {
                    self.stmts(e)?;
                }
                self.locals.truncate(depth);
                Ok(())
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self.eval(lo)?;
                let hi = self.eval(hi)?;
                let (Value::I(lo), Value::I(hi)) = (lo, hi) else {
                    return Err("non-integer loop bound".into());
                };
                let depth = self.locals.len();
                self.locals.push((var.clone(), Value::I(lo)));
                for i in lo..hi {
                    if let Some(slot) = self.locals.last_mut() {
                        slot.1 = Value::I(i);
                    }
                    let inner = self.locals.len();
                    self.stmts(body)?;
                    self.locals.truncate(inner);
                }
                self.locals.truncate(depth);
                Ok(())
            }
        }
    }

    fn eval_idx(&mut self, idx: &[Expr]) -> Result<Vec<i64>, String> {
        let mut out = Vec::with_capacity(idx.len());
        for e in idx {
            match self.eval(e)? {
                Value::I(v) => out.push(v),
                Value::F(v) => return Err(format!("float {v} used as index")),
            }
        }
        Ok(out)
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, String> {
        match e {
            Expr::Num(v) => Ok(Value::F(*v)),
            Expr::Int(v) => Ok(Value::I(*v)),
            Expr::Var(name) => self.lookup(name),
            Expr::Pos(k) => {
                self.pos.get(*k).map(|&v| Value::I(v)).ok_or_else(|| format!("#{k} out of rank"))
            }
            Expr::AggRead { agg, idx, .. } => {
                let idxs = self.eval_idx(idx)?;
                let arg = self.arg_of(agg)?;
                let a = self.state.get(arg).ok_or("missing aggregate")?;
                let lin = a.lin(&idxs)?;
                a.vals.get(lin).copied().ok_or_else(|| "missing element".into())
            }
            Expr::Neg(a) => Ok(match self.eval(a)? {
                Value::F(v) => Value::F(-v),
                Value::I(v) => Value::I(v.wrapping_neg()),
            }),
            Expr::Bin(op, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                eval_bin(*op, va, vb)
            }
            Expr::Builtin(b, bargs) => {
                let mut vs = Vec::with_capacity(bargs.len());
                for a in bargs {
                    vs.push(self.eval(a)?);
                }
                match (b, vs.as_slice()) {
                    (Builtin::Abs, [Value::F(v)]) => Ok(Value::F(v.abs())),
                    (Builtin::Abs, [Value::I(v)]) => Ok(Value::I(v.wrapping_abs())),
                    (Builtin::Sqrt, [v]) => Ok(Value::F(v.as_f().sqrt())),
                    (Builtin::Min, [a, b]) => Ok(num2(*a, *b, f64::min, i64::min)),
                    (Builtin::Max, [a, b]) => Ok(num2(*a, *b, f64::max, i64::max)),
                    _ => Err("builtin arity mismatch".into()),
                }
            }
        }
    }
}

fn num2(a: Value, b: Value, ff: fn(f64, f64) -> f64, fi: fn(i64, i64) -> i64) -> Value {
    match (a, b) {
        (Value::I(x), Value::I(y)) => Value::I(fi(x, y)),
        _ => Value::F(ff(a.as_f(), b.as_f())),
    }
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Result<Value, String> {
    use BinOp::*;
    Ok(match op {
        Add | Sub | Mul | Div => match (a, b) {
            (Value::I(x), Value::I(y)) => Value::I(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err("integer division by zero".into());
                    }
                    x.wrapping_div(y)
                }
                _ => 0,
            }),
            _ => {
                let (x, y) = (a.as_f(), b.as_f());
                Value::F(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => 0.0,
                })
            }
        },
        Mod => match (a, b) {
            (Value::I(x), Value::I(y)) => {
                if y == 0 {
                    return Err("integer modulo by zero".into());
                }
                Value::I(x.wrapping_rem(y))
            }
            _ => return Err("`%` needs integer operands".into()),
        },
        Lt | Le | Gt | Ge | Eq | Ne => {
            let (x, y) = (a.as_f(), b.as_f());
            let r = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                Eq => x == y,
                Ne => x != y,
                _ => false,
            };
            Value::I(r as i64)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_diag;
    use crate::parser::parse;

    fn classify(src: &str, func: &str, param: &str, rules: ClassifyRules) -> CommuteClass {
        let p = parse(src).unwrap();
        let f = p.func(func).unwrap();
        classify_fn(f, rules).remove(param).unwrap()
    }

    const HIST: &str = r#"
        aggregate H[32] of float;
        aggregate X[32] of int;
        parallel fn bump(h, x) {
            h[x[#0]] = h[x[#0]] + 1.0;
        }
        fn main() { bump(H, X); }
    "#;

    #[test]
    fn histogram_add_is_commutative() {
        let c = classify(HIST, "bump", "h", ClassifyRules::default());
        match c {
            CommuteClass::Commutative { ops } => {
                assert_eq!(ops.len(), 1);
                assert_eq!(ops[0].0, MergeOp::Add);
            }
            other => panic!("expected commutative, got {other:?}"),
        }
        // The index table is read-only.
        assert_eq!(classify(HIST, "bump", "x", ClassifyRules::default()), CommuteClass::ReadOnly);
    }

    #[test]
    fn min_max_and_sub_are_commutative() {
        let src = r#"
            aggregate A[8] of float;
            aggregate X[8] of int;
            parallel fn f(a, x) {
                a[x[#0]] = min(a[x[#0]], 2.0);
                a[x[#0]] = max(1.0, a[x[#0]]);
                a[x[#0]] = a[x[#0]] - 0.5;
            }
            fn main() { f(A, X); }
        "#;
        let c = classify(src, "f", "a", ClassifyRules::default());
        match c {
            CommuteClass::Commutative { ops } => {
                assert_eq!(
                    ops.iter().map(|(o, _)| *o).collect::<Vec<_>>(),
                    vec![MergeOp::Min, MergeOp::Max, MergeOp::Add]
                );
            }
            other => panic!("expected commutative, got {other:?}"),
        }
    }

    #[test]
    fn scaled_update_is_order_dependent() {
        let src = r#"
            aggregate A[8] of float;
            aggregate X[8] of int;
            parallel fn f(a, x) { a[x[#0]] = 2.0 * a[x[#0]] + 1.0; }
            fn main() { f(A, X); }
        "#;
        let c = classify(src, "f", "a", ClassifyRules::default());
        assert!(matches!(&c, CommuteClass::OrderDependent { reason, .. }
            if reason.contains("not a")));
    }

    #[test]
    fn outside_read_is_order_dependent() {
        let src = r#"
            aggregate A[8] of float;
            aggregate B[8] of float;
            aggregate X[8] of int;
            parallel fn f(a, b, x) {
                a[x[#0]] = a[x[#0]] + 1.0;
                b[#0] = a[#0];
            }
            fn main() { f(A, B, X); }
        "#;
        let c = classify(src, "f", "a", ClassifyRules::default());
        assert!(matches!(&c, CommuteClass::OrderDependent { reason, .. }
            if reason.contains("observes")));
    }

    #[test]
    fn operand_reading_param_is_order_dependent() {
        let src = r#"
            aggregate A[8] of float;
            aggregate X[8] of int;
            parallel fn f(a, x) { a[x[#0]] = a[x[#0]] + a[#0]; }
            fn main() { f(A, X); }
        "#;
        let c = classify(src, "f", "a", ClassifyRules::default());
        assert!(matches!(&c, CommuteClass::OrderDependent { reason, .. }
            if reason.contains("operand")));
    }

    #[test]
    fn subtraction_self_on_right_is_order_dependent() {
        let src = r#"
            aggregate A[8] of float;
            aggregate X[8] of int;
            parallel fn f(a, x) { a[x[#0]] = 1.0 - a[x[#0]]; }
            fn main() { f(A, X); }
        "#;
        let c = classify(src, "f", "a", ClassifyRules::default());
        assert!(!c.is_commutative());
    }

    #[test]
    fn weakening_forces_commutative() {
        let src = r#"
            aggregate A[8] of float;
            aggregate X[8] of int;
            parallel fn f(a, x) { a[x[#0]] = 2.0 * a[x[#0]] + 1.0; }
            fn main() { f(A, X); }
        "#;
        let weak = ClassifyRules { assume_commutative: true, ..ClassifyRules::default() };
        assert!(classify(src, "f", "a", weak).is_commutative());
    }

    #[test]
    fn sound_merge_validates_clean() {
        let src = r#"
            aggregate H[32] of float;
            aggregate X[32] of int;
            parallel fn bump(h, x) {
                h[x[#0]] = h[x[#0]] + 1.0;
            }
            fn main() { commute bump(H, X); }
        "#;
        let prog = compile_diag(src, true, ClassifyRules::default()).unwrap();
        assert!(
            prog.plan
                .ops
                .iter()
                .any(|o| matches!(o, ExecOp::CommutativeMerge { agg, .. } if agg == "H")),
            "plan must carry the merge directive: {:?}",
            prog.plan.ops
        );
        let ds = validate_merges(&prog, &MergeOracleConfig::default());
        assert!(ds.is_empty(), "{ds:#?}");
    }

    #[test]
    fn weakened_nonreduction_merge_diverges_with_witness() {
        // The oracle mutation scenario: force a non-commutative update
        // through the static check; the dynamic replay must catch it.
        let src = r#"
            aggregate H[16] of float;
            aggregate X[16] of int;
            parallel fn scale(h, x) {
                h[x[#0]] = 2.0 * h[x[#0]] + 1.0;
            }
            fn main() { commute scale(H, X); }
        "#;
        let weak = ClassifyRules { assume_commutative: true, ..ClassifyRules::default() };
        let prog = compile_diag(src, true, weak).unwrap();
        let ds = validate_merges(&prog, &MergeOracleConfig::default());
        assert!(!ds.is_empty(), "divergence must be reported");
        assert_eq!(ds[0].code, "E008");
        assert!(ds[0].notes.iter().any(|n| n.contains("witness block")), "{ds:#?}");
    }

    #[test]
    fn delta_replay_matches_serial_for_reductions() {
        let cur = Value::F(1.0);
        let v = apply_delta(cur, DeltaOp::Add(Value::F(2.0)));
        assert_eq!(v, Value::F(3.0));
        assert_eq!(apply_delta(Value::I(5), DeltaOp::Min(Value::I(3))), Value::I(3));
        assert_eq!(apply_delta(Value::I(5), DeltaOp::Max(Value::I(3))), Value::I(5));
        assert_eq!(apply_delta(Value::F(5.0), DeltaOp::Store(Value::F(1.5))), Value::F(1.5));
    }
}
