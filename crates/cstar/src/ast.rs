//! Abstract syntax of mini-C\*\*.

use crate::diag::Span;

/// Element type of an aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// 64-bit float (`float`).
    Float,
    /// 64-bit integer (`int`).
    Int,
}

/// A global aggregate declaration: `aggregate Name[d0] of float;` or
/// `aggregate Name[d0][d1] of int;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggDecl {
    /// Instance name.
    pub name: String,
    /// Dimensions (1 or 2 entries).
    pub dims: Vec<usize>,
    /// Element type.
    pub ty: ElemTy,
    /// Source region of the declaration's name.
    pub span: Span,
}

/// A parallel function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParFn {
    /// Function name.
    pub name: String,
    /// Parameter names; each is bound to an aggregate at the call site.
    /// The first parameter is the `parallel` aggregate: the function runs
    /// once per element of it, with `#0`/`#1` naming that element.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source region of the function's name.
    pub span: Span,
}

/// Statements (usable in parallel-function bodies).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = expr;` — a local scalar binding.
    Let(String, Expr),
    /// `x = expr;` — assignment to a local.
    AssignLocal(String, Expr),
    /// `agg[i0](<[i1]>) = expr;` — a store to an aggregate element.
    AssignAgg {
        /// Target aggregate (parameter name inside a parallel function).
        agg: String,
        /// Index expressions, one per dimension.
        idx: Vec<Expr>,
        /// Stored value.
        value: Expr,
        /// Source region of the whole store target (`agg[..]`).
        span: Span,
    },
    /// `if cond { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for v in lo .. hi { .. }` — a counted sequential loop.
    For {
        /// Loop variable.
        var: String,
        /// Inclusive lower bound expression.
        lo: Expr,
        /// Exclusive upper bound expression.
        hi: Expr,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// Statements of the sequential `main` function.
#[derive(Debug, Clone, PartialEq)]
pub enum SeqStmt {
    /// A parallel-function call: `name(aggArg, ...);`, optionally prefixed
    /// with the `commute` directive: `commute name(aggArg, ...);`.
    Call {
        /// Callee parallel function.
        func: String,
        /// Aggregate arguments, by declaration name.
        args: Vec<String>,
        /// `true` when the call is annotated `commute`: the programmer
        /// asserts its aggregate updates are order-independent, so the
        /// runtime may privatize them and merge at the phase barrier.
        commute: bool,
        /// Source region of the call (callee name through closing paren).
        span: Span,
    },
    /// `for v in lo .. hi { .. }` over sequential statements.
    For {
        /// Loop variable (available for diagnostics only; the analysis
        /// does not depend on trip counts).
        var: String,
        /// Constant bounds.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Body.
        body: Vec<SeqStmt>,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Float literal.
    Num(f64),
    /// Integer literal.
    Int(i64),
    /// Local variable or loop variable.
    Var(String),
    /// Pseudo-variable `#k`: position of the own element along dimension k.
    Pos(usize),
    /// Aggregate element read: `agg[i0](<[i1]>)`.
    AggRead {
        /// Source aggregate (parameter name).
        agg: String,
        /// Index expressions.
        idx: Vec<Expr>,
        /// Source region of the whole read (`agg[..]`).
        span: Span,
    },
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Built-in call: `abs(e)`, `min(a,b)`, `max(a,b)`, `sqrt(e)`.
    Builtin(Builtin, Vec<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers)
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// Absolute value.
    Abs,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Square root.
    Sqrt,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global aggregate declarations.
    pub aggs: Vec<AggDecl>,
    /// Parallel functions.
    pub funcs: Vec<ParFn>,
    /// The sequential main body.
    pub main: Vec<SeqStmt>,
}

impl Program {
    /// Look up an aggregate declaration by name.
    pub fn agg(&self, name: &str) -> Option<&AggDecl> {
        self.aggs.iter().find(|a| a.name == name)
    }

    /// Look up a parallel function by name.
    pub fn func(&self, name: &str) -> Option<&ParFn> {
        self.funcs.iter().find(|f| f.name == name)
    }
}
