//! # prescient-cstar
//!
//! A miniature **C\*\*** — the large-grain data-parallel language of Larus,
//! Richards & Viswanathan — together with the paper's compiler analysis
//! (§4) and a DSM-backed interpreter.
//!
//! The language core (Figures 1–3 of the paper):
//!
//! * *Aggregates*: global 1-D/2-D collections of `float`/`int` elements
//!   (`aggregate Grid[128][128] of float;`);
//! * *parallel functions*: invoked once per element of their `parallel`
//!   aggregate argument; the pseudo-variables `#0`/`#1` name the element's
//!   position, so `g[#0-1][#1]` is a neighbor access and `d[nbr[#0]]` an
//!   indirection (unstructured) access;
//! * a sequential `main` with counted loops and parallel-function calls.
//!
//! The compiler pipeline:
//!
//! 1. [`lexer`]/[`parser`] → AST ([`ast`]);
//! 2. [`sema`] — per parallel function, a context-insensitive summary of
//!    aggregate accesses, each classified `Read`/`Write` ×
//!    `Home`/`NonHome` (§4.2);
//! 3. [`cfg`] — the sequential control-flow graph of `main`, annotated with
//!    those summaries (also constructible by hand, as for Figure 4's
//!    Barnes loop);
//! 4. [`dataflow`] — an iterative bit-vector framework computing *reaching
//!    unstructured accesses*: forward, any-path, with the three transfer
//!    functions of §4.3 (owner writes kill; unstructured writes kill and
//!    gen; unstructured reads gen);
//! 5. [`directives`] — placement of `phase_begin`/`phase_end` directives at
//!    parallel calls that need communication schedules, with the
//!    coalescing/hoisting optimization for home-only neighbors and loops;
//! 6. [`interp`] — execution of the compiled program on a
//!    `prescient-runtime` machine, where the placed directives drive the
//!    predictive protocol.
//!
//! [`compile::compile`] runs stages 1–5; [`interp::run_program`] runs the
//! result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cfg;
pub mod compile;
pub mod dataflow;
pub mod directives;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod sema;

pub use ast::Program;
pub use cfg::{Cfg, CfgNode};
pub use compile::{compile, CompiledProgram};
pub use dataflow::ReachingUnstructured;
pub use directives::{DirectivePlan, PhaseAssignment};
pub use sema::{AccessKind, AccessSummary, Locality};
