//! # prescient-cstar
//!
//! A miniature **C\*\*** — the large-grain data-parallel language of Larus,
//! Richards & Viswanathan — together with the paper's compiler analysis
//! (§4) and a DSM-backed interpreter.
//!
//! The language core (Figures 1–3 of the paper):
//!
//! * *Aggregates*: global 1-D/2-D collections of `float`/`int` elements
//!   (`aggregate Grid[128][128] of float;`);
//! * *parallel functions*: invoked once per element of their `parallel`
//!   aggregate argument; the pseudo-variables `#0`/`#1` name the element's
//!   position, so `g[#0-1][#1]` is a neighbor access and `d[nbr[#0]]` an
//!   indirection (unstructured) access;
//! * a sequential `main` with counted loops and parallel-function calls.
//!
//! The compiler pipeline:
//!
//! 1. [`lexer`]/[`parser`] → AST ([`ast`]);
//! 2. [`sema`] — per parallel function, a context-insensitive summary of
//!    aggregate accesses, each classified `Read`/`Write` ×
//!    `Home`/`NonHome` (§4.2);
//! 3. [`cfg`] — the sequential control-flow graph of `main`, annotated with
//!    those summaries (also constructible by hand, as for Figure 4's
//!    Barnes loop);
//! 4. [`dataflow`] — an iterative bit-vector framework computing *reaching
//!    unstructured accesses*: forward, any-path, with the three transfer
//!    functions of §4.3 (owner writes kill; unstructured writes kill and
//!    gen; unstructured reads gen);
//! 5. [`directives`] — placement of `phase_begin`/`phase_end` directives at
//!    parallel calls that need communication schedules, with the
//!    coalescing/hoisting optimization for home-only neighbors and loops;
//! 6. [`interp`] — execution of the compiled program on a
//!    `prescient-runtime` machine, where the placed directives drive the
//!    predictive protocol.
//!
//! [`compile::compile`] runs stages 1–5; [`interp::run_program`] runs the
//! result.
//!
//! On top of the pipeline sit the static-analysis tools (the `cstar-lint`
//! engine):
//!
//! * [`diag`] — span-carrying diagnostics with stable `E0xx`/`W0xx` codes,
//!   caret-style text rendering, and a lossless JSON form;
//! * [`lint`] — the W001–W005 lint suite over the AST, the annotated CFG,
//!   and the directive plan (phase conflicts, dead directives, static
//!   bounds, unused aggregates, remote-fed indices);
//! * [`oracle`] — the static↔dynamic schedule oracle: runs the compiled
//!   program on a small predictive machine with a recording tap and diffs
//!   the observed request stream against the static summaries (E007
//!   soundness, W006 precision).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Diagnostics are deliberately rich (spans, labels, notes) and travel only
// the cold error path of `Result<_, Diagnostic>`; boxing them would noise
// up every frontend signature for no measurable win.
#![allow(clippy::result_large_err)]

pub mod ast;
pub mod cfg;
pub mod commute;
pub mod compile;
pub mod dataflow;
pub mod diag;
pub mod directives;
pub mod interp;
pub mod lexer;
pub mod lint;
pub mod oracle;
pub mod parser;
pub mod sema;

pub use ast::Program;
pub use cfg::{Cfg, CfgNode};
pub use commute::{classify_fn, validate_merges, CommuteClass, MergeOp, MergeOracleConfig};
pub use compile::{compile, compile_diag, CompiledProgram};
pub use dataflow::ReachingUnstructured;
pub use diag::{codes, Diagnostic, Severity, Span};
pub use directives::{DirectivePlan, PhaseAssignment};
pub use lint::{audit_plan, lint_program};
pub use oracle::{run_oracle, run_oracle_compiled, OracleConfig, OracleReport};
pub use sema::{AccessKind, AccessSummary, ClassifyRules, Locality};
