//! Recursive-descent parser for mini-C\*\*.

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Span};
use crate::lexer::{lex_diag, ParseError, SpannedTok, Tok};

/// Parse a whole program from source text.
///
/// Legacy entry point; [`parse_diag`] returns span-carrying diagnostics.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    parse_diag(src).map_err(ParseError::from)
}

/// Parse a whole program, reporting failures as `E001`/`E002` diagnostics.
pub fn parse_diag(src: &str) -> Result<Program, Diagnostic> {
    let toks = lex_diag(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Diagnostic> {
        Err(Diagnostic::error(codes::PARSE, msg).with_span(self.span()))
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), Diagnostic> {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), Diagnostic> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw) && {
            self.bump();
            true
        }
    }

    fn ident_sp(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((s, sp))
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        self.ident_sp().map(|(s, _)| s)
    }

    fn int_lit(&mut self) -> Result<i64, Diagnostic> {
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => self.err(format!("expected integer literal, found {other}")),
        }
    }

    fn program(&mut self) -> Result<Program, Diagnostic> {
        let mut prog = Program { aggs: vec![], funcs: vec![], main: vec![] };
        let mut saw_main = false;
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Ident(s) if s == "aggregate" => prog.aggs.push(self.agg_decl()?),
                Tok::Ident(s) if s == "parallel" => prog.funcs.push(self.par_fn()?),
                Tok::Ident(s) if s == "fn" => {
                    if saw_main {
                        return self.err("duplicate `fn main`");
                    }
                    prog.main = self.main_fn()?;
                    saw_main = true;
                }
                other => return self.err(format!("expected a declaration, found {other}")),
            }
        }
        if !saw_main {
            return self.err("missing `fn main`");
        }
        Ok(prog)
    }

    fn agg_decl(&mut self) -> Result<AggDecl, Diagnostic> {
        self.expect_kw("aggregate")?;
        let (name, span) = self.ident_sp()?;
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let d = self.int_lit()?;
            if d <= 0 {
                return self.err("aggregate dimension must be positive");
            }
            dims.push(d as usize);
            self.expect_punct("]")?;
        }
        if dims.is_empty() || dims.len() > 2 {
            return self.err("aggregates are 1-D or 2-D");
        }
        self.expect_kw("of")?;
        let ty = match self.peek().clone() {
            Tok::Ident(s) if s == "float" => {
                self.bump();
                ElemTy::Float
            }
            Tok::Ident(s) if s == "int" => {
                self.bump();
                ElemTy::Int
            }
            Tok::Ident(other) => return self.err(format!("unknown element type `{other}`")),
            other => return self.err(format!("expected identifier, found {other}")),
        };
        self.expect_punct(";")?;
        Ok(AggDecl { name, dims, ty, span })
    }

    fn par_fn(&mut self) -> Result<ParFn, Diagnostic> {
        self.expect_kw("parallel")?;
        self.expect_kw("fn")?;
        let (name, span) = self.ident_sp()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        if params.is_empty() {
            return self.err("a parallel function needs at least its parallel aggregate");
        }
        let body = self.block()?;
        Ok(ParFn { name, params, body, span })
    }

    fn main_fn(&mut self) -> Result<Vec<SeqStmt>, Diagnostic> {
        self.expect_kw("fn")?;
        self.expect_kw("main")?;
        self.expect_punct("(")?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.seq_stmt()?);
        }
        Ok(body)
    }

    fn seq_stmt(&mut self) -> Result<SeqStmt, Diagnostic> {
        if self.eat_kw("for") {
            let var = self.ident()?;
            self.expect_kw("in")?;
            let lo = self.int_lit()?;
            self.expect_punct("..")?;
            let hi = self.int_lit()?;
            self.expect_punct("{")?;
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.seq_stmt()?);
            }
            Ok(SeqStmt::For { var, lo, hi, body })
        } else {
            // `commute` is a directive only when it prefixes a call; a
            // function named `commute` (followed by `(`) still parses.
            let commute = matches!(self.peek(), Tok::Ident(s) if s == "commute")
                && matches!(self.toks.get(self.pos + 1).map(|t| &t.tok), Some(Tok::Ident(_)));
            if commute {
                self.bump();
            }
            let (func, start) = self.ident_sp()?;
            self.expect_punct("(")?;
            let mut args = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    args.push(self.ident()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            let span = start.to(self.prev_span());
            self.expect_punct(";")?;
            Ok(SeqStmt::Call { func, args, commute, span })
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while !self.eat_punct("}") {
            body.push(self.stmt()?);
        }
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect_punct("=")?;
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Let(name, e));
        }
        if self.eat_kw("if") {
            let cond = self.expr()?;
            let then = self.block()?;
            let els = if self.eat_kw("else") { self.block()? } else { vec![] };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.eat_kw("for") {
            let var = self.ident()?;
            self.expect_kw("in")?;
            let lo = self.expr()?;
            self.expect_punct("..")?;
            let hi = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::For { var, lo, hi, body });
        }
        // Assignment: `name = e;` or `name[i](<[j]>) = e;`
        let (name, start) = self.ident_sp()?;
        if self.eat_punct("[") {
            let mut idx = vec![self.expr()?];
            self.expect_punct("]")?;
            if self.eat_punct("[") {
                idx.push(self.expr()?);
                self.expect_punct("]")?;
            }
            let span = start.to(self.prev_span());
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::AssignAgg { agg: name, idx, value, span })
        } else {
            self.expect_punct("=")?;
            let e = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::AssignLocal(name, e))
        }
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct(">=") => Some(BinOp::Ge),
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("!=") => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Diagnostic> {
        if self.eat_punct("-") {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, Diagnostic> {
        let start = self.span();
        match self.bump() {
            Tok::Float(v) => Ok(Expr::Num(v)),
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Pos(k) => {
                if k > 1 {
                    return Err(Diagnostic::error(codes::PARSE, "only #0 and #1 are supported")
                        .with_span(start));
                }
                Ok(Expr::Pos(k))
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let b = match name.as_str() {
                        "abs" => Builtin::Abs,
                        "min" => Builtin::Min,
                        "max" => Builtin::Max,
                        "sqrt" => Builtin::Sqrt,
                        other => {
                            return Err(Diagnostic::error(
                                codes::PARSE,
                                format!("unknown function `{other}`"),
                            )
                            .with_span(start))
                        }
                    };
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    let want = match b {
                        Builtin::Abs | Builtin::Sqrt => 1,
                        Builtin::Min | Builtin::Max => 2,
                    };
                    if args.len() != want {
                        return Err(Diagnostic::error(
                            codes::PARSE,
                            format!("`{name}` takes {want} argument(s)"),
                        )
                        .with_span(start.to(self.prev_span())));
                    }
                    Ok(Expr::Builtin(b, args))
                } else if self.eat_punct("[") {
                    let mut idx = vec![self.expr()?];
                    self.expect_punct("]")?;
                    if self.eat_punct("[") {
                        idx.push(self.expr()?);
                        self.expect_punct("]")?;
                    }
                    Ok(Expr::AggRead { agg: name, idx, span: start.to(self.prev_span()) })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(Diagnostic::error(codes::PARSE, format!("unexpected token {other}"))
                .with_span(start)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STENCIL: &str = r#"
        // Figure 2: a 4-point stencil in mini-C**
        aggregate Grid[16][16] of float;
        aggregate Next[16][16] of float;

        parallel fn sweep(g, h) {
            h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
        }

        fn main() {
            for it in 0 .. 10 {
                sweep(Grid, Next);
                sweep(Next, Grid);
            }
        }
    "#;

    #[test]
    fn parses_stencil() {
        let p = parse(STENCIL).unwrap();
        assert_eq!(p.aggs.len(), 2);
        assert_eq!(p.aggs[0].dims, vec![16, 16]);
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].params, vec!["g", "h"]);
        assert_eq!(p.main.len(), 1);
        match &p.main[0] {
            SeqStmt::For { lo, hi, body, .. } => {
                assert_eq!((*lo, *hi), (0, 10));
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_unstructured_update() {
        // Figure 3: unstructured mesh update via an indirection array.
        let src = r#"
            aggregate Primal[100] of float;
            aggregate Dual[100] of float;
            aggregate Nbr[100] of int;

            parallel fn update(primal, dual, nbr) {
                let k = nbr[#0];
                primal[#0] = primal[#0] + 0.5 * dual[k];
            }

            fn main() {
                for t in 0 .. 5 { update(Primal, Dual, Nbr); }
            }
        "#;
        let p = parse(src).unwrap();
        let f = p.func("update").unwrap();
        assert_eq!(f.params.len(), 3);
        assert!(
            matches!(&f.body[0], Stmt::Let(k, Expr::AggRead { agg, .. }) if k == "k" && agg == "nbr")
        );
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            aggregate A[10] of float;
            parallel fn f(a) {
                if a[#0] > 1.0 {
                    a[#0] = a[#0] / 2.0;
                } else {
                    for i in 0 .. 3 {
                        a[#0] = a[#0] + 1.0;
                    }
                }
            }
            fn main() { f(A); }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(&p.func("f").unwrap().body[0], Stmt::If(..)));
    }

    #[test]
    fn parses_builtins() {
        let src = r#"
            aggregate A[4] of float;
            parallel fn f(a) { a[#0] = max(abs(a[#0]), sqrt(2.0)); }
            fn main() { f(A); }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_commute_annotation() {
        let src = r#"
            aggregate H[8] of float;
            parallel fn bump(h) { h[#0] = h[#0] + 1.0; }
            fn main() {
                commute bump(H);
                bump(H);
            }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(&p.main[0], SeqStmt::Call { commute: true, func, .. } if func == "bump"));
        assert!(matches!(&p.main[1], SeqStmt::Call { commute: false, .. }));
    }

    #[test]
    fn rejects_missing_main() {
        assert!(parse("aggregate A[4] of float;").is_err());
    }

    #[test]
    fn rejects_three_dims() {
        assert!(parse("aggregate A[2][2][2] of float; fn main() {}").is_err());
    }

    #[test]
    fn rejects_pos_beyond_two() {
        let src = r#"
            aggregate A[4] of float;
            parallel fn f(a) { a[#2] = 1.0; }
            fn main() { f(A); }
        "#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_carries_line() {
        let err = parse("aggregate A[4] of float;\n\nbogus").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn diag_error_carries_span() {
        let d = parse_diag("aggregate A[4] of float;\n\nbogus").unwrap_err();
        assert_eq!(d.code, "E002");
        let s = d.primary_span().expect("span");
        assert_eq!(s.line, 3);
        assert_eq!((s.lo, s.hi), (26, 31));
    }

    #[test]
    fn call_and_read_spans_cover_source() {
        let src = "aggregate A[4] of float;\nparallel fn f(a) { a[#0] = a[#0+1]; }\nfn main() { f(A); }\n";
        let p = parse(src).unwrap();
        let chars: Vec<char> = src.chars().collect();
        let slice = |sp: Span| -> String { chars[sp.lo as usize..sp.hi as usize].iter().collect() };
        match &p.main[0] {
            SeqStmt::Call { span, .. } => assert_eq!(slice(*span), "f(A)"),
            other => panic!("expected call, got {other:?}"),
        }
        match &p.funcs[0].body[0] {
            Stmt::AssignAgg { span, value, .. } => {
                assert_eq!(slice(*span), "a[#0]");
                match value {
                    Expr::AggRead { span, .. } => assert_eq!(slice(*span), "a[#0+1]"),
                    other => panic!("expected read, got {other:?}"),
                }
            }
            other => panic!("expected store, got {other:?}"),
        }
    }
}
