//! The sequential control-flow graph of `main`, annotated with parallel
//! function access summaries (§4.3, Figure 4).
//!
//! Nodes are parallel-function call sites plus loop-structure markers;
//! edges capture the flow of the (loop-nested) sequential program. The
//! graph can be built from a parsed program or by hand through
//! [`CfgBuilder`] — the latter is how the Barnes main loop of Figure 4 and
//! the three evaluation applications feed their phase structure to the
//! same placement analysis the DSL compiler uses.

use std::collections::BTreeMap;

use crate::ast::{Program, SeqStmt};
use crate::lexer::ParseError;
use crate::sema::{AccessSummary, ParamAccess};

/// One parallel call site with its per-aggregate access classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee name (diagnostic).
    pub func: String,
    /// Stable call-site id (execution order of first appearance).
    pub id: usize,
    /// Access classification per aggregate *instance* (argument), merged
    /// over all parameters bound to that instance.
    pub access: BTreeMap<String, ParamAccess>,
    /// The call carries a `commute` annotation: the programmer asks for
    /// privatize-and-merge execution of its aggregate updates.
    pub commute_annotated: bool,
}

impl CallSite {
    /// Does this call perform any unstructured access?
    pub fn any_unstructured(&self) -> bool {
        self.access.values().any(|a| a.unstructured())
    }

    /// Does this call only perform home accesses?
    pub fn home_only(&self) -> bool {
        !self.any_unstructured()
    }

    /// Aggregates this call writes whose updates are commutative-mergeable.
    pub fn commute_aggs(&self) -> Vec<&str> {
        self.access
            .iter()
            .filter(|(_, a)| a.commute && (a.home_write || a.nonhome_write))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// A CFG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgNode {
    /// Function entry.
    Entry,
    /// Function exit.
    Exit,
    /// A parallel call site.
    Call(CallSite),
    /// Head of a loop (join point of entry and back edge).
    LoopHead {
        /// Loop label (diagnostic).
        label: String,
    },
}

/// One item of the structured (region) view of `main`, used by the
/// directive planner, which needs the loop nesting the flat CFG edges do
/// not expose.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionItem {
    /// A parallel call, by call-site id.
    Call(usize),
    /// A counted loop.
    Loop {
        /// Label (the loop variable).
        label: String,
        /// Trip bounds `lo..hi` when known (parsed programs); `None` for
        /// hand-built analysis-only CFGs.
        trip: Option<(i64, i64)>,
        /// Body items.
        body: Vec<RegionItem>,
    },
}

/// The annotated sequential CFG.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Nodes; index 0 is `Entry`.
    pub nodes: Vec<CfgNode>,
    /// Successor lists.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor lists.
    pub preds: Vec<Vec<usize>>,
    /// Entry node index.
    pub entry: usize,
    /// Exit node index.
    pub exit: usize,
    /// The aggregate-name universe (bit positions for the dataflow).
    pub aggs: Vec<String>,
    /// Structured view of the program (loop nesting), parallel to the flat
    /// graph.
    pub regions: Vec<RegionItem>,
    /// Map call-site id → CFG node index.
    pub call_node: Vec<usize>,
}

impl Cfg {
    /// Bit position of an aggregate name.
    pub fn agg_bit(&self, name: &str) -> Option<usize> {
        self.aggs.iter().position(|a| a == name)
    }

    /// All call-site node indices in order.
    pub fn call_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| matches!(self.nodes[i], CfgNode::Call(_))).collect()
    }

    /// The call site at node `i`, if any.
    pub fn call(&self, i: usize) -> Option<&CallSite> {
        match &self.nodes[i] {
            CfgNode::Call(c) => Some(c),
            _ => None,
        }
    }

    /// Build the CFG of a parsed program using its function summaries.
    pub fn from_program(
        p: &Program,
        summaries: &BTreeMap<String, AccessSummary>,
    ) -> Result<Cfg, ParseError> {
        let mut b = CfgBuilder::new(p.aggs.iter().map(|a| a.name.clone()));
        fn walk(
            b: &mut CfgBuilder,
            p: &Program,
            summaries: &BTreeMap<String, AccessSummary>,
            stmts: &[SeqStmt],
        ) -> Result<(), ParseError> {
            for s in stmts {
                match s {
                    SeqStmt::Call { func, args, commute, .. } => {
                        let f = p.func(func).ok_or_else(|| ParseError {
                            msg: format!("unknown function `{func}`"),
                            line: 0,
                        })?;
                        let sum = &summaries[func];
                        // Map parameter summaries onto argument instances.
                        // Access flags merge by OR; the commutativity
                        // verdict merges by AND — binding an instance to a
                        // second parameter that reads it (or updates it
                        // non-commutatively) defeats privatization.
                        let mut access: BTreeMap<String, ParamAccess> = BTreeMap::new();
                        for (param, arg) in f.params.iter().zip(args) {
                            let pa = sum.get(param);
                            match access.entry(arg.clone()) {
                                std::collections::btree_map::Entry::Vacant(v) => {
                                    v.insert(pa);
                                }
                                std::collections::btree_map::Entry::Occupied(mut o) => {
                                    let e = o.get_mut();
                                    e.home_read |= pa.home_read;
                                    e.home_write |= pa.home_write;
                                    e.nonhome_read |= pa.nonhome_read;
                                    e.nonhome_write |= pa.nonhome_write;
                                    e.commute &= pa.commute;
                                }
                            }
                        }
                        let node = b.call_with(func, access);
                        if *commute {
                            if let CfgNode::Call(c) = &mut b.nodes[node] {
                                c.commute_annotated = true;
                            }
                        }
                    }
                    SeqStmt::For { var, lo, hi, body } => {
                        b.begin_loop_counted(var, *lo, *hi);
                        walk(b, p, summaries, body)?;
                        b.end_loop();
                    }
                }
            }
            Ok(())
        }
        walk(&mut b, p, summaries, &p.main)?;
        Ok(b.finish())
    }
}

/// Hand-construction of annotated CFGs.
pub struct CfgBuilder {
    nodes: Vec<CfgNode>,
    succs: Vec<Vec<usize>>,
    /// Node(s) whose control flow falls through to the next added node.
    frontier: Vec<usize>,
    /// Stack of open loops: (head index, region body so far, label, trip).
    #[allow(clippy::type_complexity)]
    loops: Vec<(usize, Vec<RegionItem>, String, Option<(i64, i64)>)>,
    /// Region items of the current (innermost open) sequence.
    region: Vec<RegionItem>,
    call_node: Vec<usize>,
    aggs: Vec<String>,
    next_call_id: usize,
}

impl CfgBuilder {
    /// Start a builder over the given aggregate universe.
    pub fn new(aggs: impl IntoIterator<Item = String>) -> CfgBuilder {
        CfgBuilder {
            nodes: vec![CfgNode::Entry],
            succs: vec![vec![]],
            frontier: vec![0],
            loops: vec![],
            region: vec![],
            call_node: vec![],
            aggs: aggs.into_iter().collect(),
            next_call_id: 0,
        }
    }

    fn add(&mut self, n: CfgNode) -> usize {
        let i = self.nodes.len();
        self.nodes.push(n);
        self.succs.push(vec![]);
        for &f in &self.frontier {
            self.succs[f].push(i);
        }
        self.frontier = vec![i];
        i
    }

    /// Append a call with explicit per-aggregate accesses.
    pub fn call_with(&mut self, func: &str, access: BTreeMap<String, ParamAccess>) -> usize {
        for a in access.keys() {
            assert!(self.aggs.iter().any(|x| x == a), "aggregate `{a}` not in universe");
        }
        let id = self.next_call_id;
        self.next_call_id += 1;
        let node = self.add(CfgNode::Call(CallSite {
            func: func.to_string(),
            id,
            access,
            commute_annotated: false,
        }));
        self.call_node.push(node);
        self.region.push(RegionItem::Call(id));
        node
    }

    /// Convenience: append a call described as
    /// `(aggregate, home_read, home_write, nonhome_read, nonhome_write)`
    /// tuples.
    pub fn call(&mut self, func: &str, accesses: &[(&str, bool, bool, bool, bool)]) -> usize {
        let mut map = BTreeMap::new();
        for &(agg, hr, hw, nr, nw) in accesses {
            map.insert(
                agg.to_string(),
                ParamAccess {
                    home_read: hr,
                    home_write: hw,
                    nonhome_read: nr,
                    nonhome_write: nw,
                    ..ParamAccess::default()
                },
            );
        }
        self.call_with(func, map)
    }

    /// Like [`CfgBuilder::call`], but additionally marks the aggregates in
    /// `commute_aggs` as commutative-mergeable (the hand-built analogue of
    /// the commutativity analysis verdict), and records whether the call
    /// carries a `commute` annotation.
    pub fn call_commuting(
        &mut self,
        func: &str,
        accesses: &[(&str, bool, bool, bool, bool)],
        commute_aggs: &[&str],
        annotated: bool,
    ) -> usize {
        let mut map = BTreeMap::new();
        for &(agg, hr, hw, nr, nw) in accesses {
            map.insert(
                agg.to_string(),
                ParamAccess {
                    home_read: hr,
                    home_write: hw,
                    nonhome_read: nr,
                    nonhome_write: nw,
                    commute: commute_aggs.contains(&agg),
                },
            );
        }
        let node = self.call_with(func, map);
        if annotated {
            if let CfgNode::Call(c) = &mut self.nodes[node] {
                c.commute_annotated = true;
            }
        }
        node
    }

    /// Open a loop; subsequent nodes are the body. (Analysis-only loops
    /// have no trip count — see [`CfgBuilder::begin_loop_counted`].)
    pub fn begin_loop(&mut self, label: &str) -> usize {
        self.begin_loop_inner(label, None)
    }

    /// Open a counted loop `lo..hi` (executable by the interpreter).
    pub fn begin_loop_counted(&mut self, label: &str, lo: i64, hi: i64) -> usize {
        self.begin_loop_inner(label, Some((lo, hi)))
    }

    fn begin_loop_inner(&mut self, label: &str, trip: Option<(i64, i64)>) -> usize {
        let head = self.add(CfgNode::LoopHead { label: label.to_string() });
        let outer_region = std::mem::take(&mut self.region);
        self.loops.push((head, outer_region, label.to_string(), trip));
        head
    }

    /// Close the innermost loop (adds the back edge; fall-through continues
    /// after the loop).
    pub fn end_loop(&mut self) {
        let (head, outer_region, label, trip) =
            self.loops.pop().expect("end_loop without begin_loop");
        for &f in &self.frontier {
            self.succs[f].push(head);
        }
        let body = std::mem::replace(&mut self.region, outer_region);
        self.region.push(RegionItem::Loop { label, trip, body });
        // Control continues from the loop head (the not-taken branch).
        self.frontier = vec![head];
    }

    /// Finish: add the exit node and compute predecessors.
    pub fn finish(mut self) -> Cfg {
        assert!(self.loops.is_empty(), "unclosed loop");
        let exit = self.add(CfgNode::Exit);
        let mut preds = vec![vec![]; self.nodes.len()];
        for (i, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }
        Cfg {
            nodes: self.nodes,
            succs: self.succs,
            preds,
            entry: 0,
            exit,
            aggs: self.aggs,
            regions: self.region,
            call_node: self.call_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::analyze_program;

    #[test]
    fn straight_line_cfg() {
        let mut b = CfgBuilder::new(["A".to_string()]);
        let c1 = b.call("f", &[("A", false, true, false, false)]);
        let c2 = b.call("g", &[("A", true, false, false, false)]);
        let cfg = b.finish();
        assert_eq!(cfg.succs[cfg.entry], vec![c1]);
        assert_eq!(cfg.succs[c1], vec![c2]);
        assert_eq!(cfg.succs[c2], vec![cfg.exit]);
        assert_eq!(cfg.preds[c2], vec![c1]);
    }

    #[test]
    fn loop_back_edge() {
        let mut b = CfgBuilder::new(["A".to_string()]);
        let head = b.begin_loop("it");
        let c = b.call("f", &[("A", false, false, true, false)]);
        b.end_loop();
        let cfg = b.finish();
        // head → body call and head → exit; call → head (back edge).
        assert!(cfg.succs[head].contains(&c));
        assert!(cfg.succs[c].contains(&head));
        assert!(cfg.succs[head].contains(&cfg.exit));
    }

    #[test]
    fn from_program_maps_params_to_args() {
        let src = r#"
            aggregate G[8][8] of float;
            aggregate H[8][8] of float;
            parallel fn sweep(g, h) {
                h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
            }
            fn main() {
                for it in 0 .. 10 {
                    sweep(G, H);
                    sweep(H, G);
                }
            }
        "#;
        let p = parse(src).unwrap();
        let sums = analyze_program(&p).unwrap();
        let cfg = Cfg::from_program(&p, &sums).unwrap();
        let calls = cfg.call_nodes();
        assert_eq!(calls.len(), 2);
        // First call: G read-nonhome, H written-home.
        let c0 = cfg.call(calls[0]).unwrap();
        assert!(c0.access["G"].nonhome_read);
        assert!(c0.access["H"].home_write);
        // Second call swaps roles.
        let c1 = cfg.call(calls[1]).unwrap();
        assert!(c1.access["H"].nonhome_read);
        assert!(c1.access["G"].home_write);
        assert_eq!(cfg.agg_bit("G"), Some(0));
        assert_eq!(cfg.agg_bit("H"), Some(1));
    }

    #[test]
    fn same_instance_bound_twice_merges() {
        let src = r#"
            aggregate A[8] of float;
            parallel fn f(x, y) {
                x[#0] = y[#0 - 1];
            }
            fn main() { f(A, A); }
        "#;
        let p = parse(src).unwrap();
        let sums = analyze_program(&p).unwrap();
        let cfg = Cfg::from_program(&p, &sums).unwrap();
        let c = cfg.call(cfg.call_nodes()[0]).unwrap();
        let a = c.access["A"];
        assert!(a.home_write && a.nonhome_read);
    }

    #[test]
    fn nested_loops() {
        let mut b = CfgBuilder::new(["T".to_string()]);
        b.begin_loop("outer");
        b.call("build", &[("T", false, false, false, true)]);
        b.begin_loop("inner");
        b.call("com", &[("T", true, true, false, false)]);
        b.end_loop();
        b.call("force", &[("T", false, false, true, false)]);
        b.end_loop();
        let cfg = b.finish();
        assert_eq!(cfg.call_nodes().len(), 3);
        // Exit reachable.
        assert!(cfg.succs.iter().flatten().any(|&s| s == cfg.exit));
    }
}
