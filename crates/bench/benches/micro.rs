//! Criterion microbenches for the core mechanisms:
//!
//! * `access/local_hit` — the fine-grain access-control check + copy on the
//!   hot (hit) path;
//! * `protocol/remote_read_miss` — a full 2-hop miss through the engine;
//! * `protocol/producer_consumer_roundtrip` — the 4-message §3.2 pattern;
//! * `presend/record+presend` — schedule recording and the pre-send walk;
//! * `compiler/compile_jacobi` — the whole mini-C\*\* pipeline;
//! * `dataflow/solve` — the bit-vector fixpoint on a deep loop nest;
//! * `machine/barrier` — one virtual-time barrier episode;
//! * `mem/*` — the flat paged arena in isolation: block lookup on the hit
//!   path, tag probe, data reply snapshot, and the dense block walk;
//! * `fabric/*` — the raw wire: a 256-message burst sent one envelope per
//!   wire op (`send_single`, the pre-batching behavior) vs. packed into
//!   wire batches (`send_batched`), and the receive-side batch drain in
//!   isolation (`drain`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prescient_cstar::cfg::CfgBuilder;
use prescient_cstar::dataflow::ReachingUnstructured;
use prescient_runtime::{Agg1D, Dist1D, Machine, MachineConfig, NodeCtx};
use prescient_tempest::{BatchConfig, Fabric, GlobalLayout, NodeMem, TryRecv};

fn bench_access(c: &mut Criterion) {
    let mut machine = Machine::new(MachineConfig::stache(2, 64));
    let a = Agg1D::<f64>::new(&machine, 64, Dist1D::Block);
    c.bench_function("access/local_hit", |b| {
        b.iter_custom(|iters| {
            let (durs, _) = machine.run(|ctx: &mut NodeCtx| {
                let start = std::time::Instant::now();
                if ctx.me() == 0 {
                    let addr = a.addr(0);
                    for i in 0..iters {
                        ctx.write(addr, i as f64);
                        let _: f64 = ctx.read(addr);
                    }
                }
                let d = start.elapsed();
                ctx.barrier();
                d
            });
            durs[0] / 2 // two accesses per iter
        })
    });
}

fn bench_remote_miss(c: &mut Criterion) {
    let mut machine = Machine::new(MachineConfig::stache(2, 64));
    let a = Agg1D::<f64>::new(&machine, 64, Dist1D::Block);
    c.bench_function("protocol/remote_read_miss", |b| {
        b.iter_custom(|iters| {
            let (durs, _) = machine.run(|ctx: &mut NodeCtx| {
                let start = std::time::Instant::now();
                // Node 1 reads node 0's element; node 0 rewrites it each
                // round to force a fresh miss.
                for i in 0..iters {
                    if ctx.me() == 0 {
                        ctx.write(a.addr(0), i as f64);
                    }
                    ctx.barrier();
                    if ctx.me() == 1 {
                        let _: f64 = ctx.read(a.addr(0));
                    }
                    ctx.barrier();
                }
                let d = start.elapsed();
                ctx.barrier();
                d
            });
            durs[1]
        })
    });
}

fn bench_producer_consumer(c: &mut Criterion) {
    let mut machine = Machine::new(MachineConfig::stache(3, 64));
    let a = Agg1D::<f64>::new(&machine, 64, Dist1D::Block);
    c.bench_function("protocol/producer_consumer_roundtrip", |b| {
        b.iter_custom(|iters| {
            let (durs, _) = machine.run(|ctx: &mut NodeCtx| {
                // Home is node 0; producer node 1; consumer node 2 — the
                // full 4-message transfer of §3.2.
                let start = std::time::Instant::now();
                for i in 0..iters {
                    if ctx.me() == 1 {
                        ctx.write(a.addr(0), i as f64);
                    }
                    ctx.barrier();
                    if ctx.me() == 2 {
                        let _: f64 = ctx.read(a.addr(0));
                    }
                    ctx.barrier();
                }
                let d = start.elapsed();
                ctx.barrier();
                d
            });
            durs[2]
        })
    });
}

fn bench_presend(c: &mut Criterion) {
    c.bench_function("presend/record_and_presend_64_blocks", |b| {
        b.iter_custom(|iters| {
            let mut machine = Machine::new(MachineConfig::predictive(2, 32));
            let a = Agg1D::<f64>::new(&machine, 256, Dist1D::Block); // 64 blocks total
            let (durs, _) = machine.run(|ctx: &mut NodeCtx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    ctx.phase_begin(1);
                    if ctx.me() == 1 {
                        for i in 0..128 {
                            let _: f64 = ctx.read(a.addr(i));
                        }
                    }
                    ctx.phase_end();
                    ctx.phase_begin(2);
                    if ctx.me() == 0 {
                        for i in a.my_range(0) {
                            ctx.write(a.addr(i), 1.0);
                        }
                    }
                    ctx.phase_end();
                }
                let d = start.elapsed();
                ctx.barrier();
                d
            });
            durs[0]
        })
    });
}

fn bench_compiler(c: &mut Criterion) {
    const SRC: &str = r#"
        aggregate G[64][64] of float;
        aggregate H[64][64] of float;
        parallel fn sweep(g, h) {
            h[#0][#1] = 0.25 * (g[#0-1][#1] + g[#0+1][#1] + g[#0][#1-1] + g[#0][#1+1]);
        }
        fn main() {
            for it in 0 .. 100 { sweep(G, H); sweep(H, G); }
        }
    "#;
    c.bench_function("compiler/compile_jacobi", |b| {
        b.iter(|| prescient_cstar::compile::compile(std::hint::black_box(SRC)).unwrap())
    });
}

fn bench_dataflow(c: &mut Criterion) {
    // A deep loop nest with many aggregates: stress the fixpoint.
    let aggs: Vec<String> = (0..32).map(|i| format!("A{i}")).collect();
    let mut b = CfgBuilder::new(aggs.clone());
    for depth in 0..6 {
        b.begin_loop(&format!("l{depth}"));
    }
    for i in 0..32 {
        let name = format!("A{i}");
        b.call(&format!("f{i}"), &[(name.as_str(), false, i % 3 == 0, i % 2 == 0, i % 5 == 0)]);
    }
    for _ in 0..6 {
        b.end_loop();
    }
    let cfg = b.finish();
    c.bench_function("dataflow/solve_32aggs_6deep", |b| {
        b.iter(|| ReachingUnstructured::solve(std::hint::black_box(&cfg)).unwrap())
    });
}

fn bench_barrier(c: &mut Criterion) {
    let mut machine = Machine::new(MachineConfig::stache(4, 64));
    c.bench_function("machine/barrier_4nodes", |b| {
        b.iter_custom(|iters| {
            let (durs, _) = machine.run(|ctx: &mut NodeCtx| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    ctx.barrier();
                }
                start.elapsed()
            });
            durs[0]
        })
    });
}

fn bench_mem(c: &mut Criterion) {
    let layout = GlobalLayout::new(4, 32);
    // A store with 1024 resident home blocks (4 arena pages), written so
    // every slot is materialized.
    let mut mem = NodeMem::new(layout, 0);
    let base = mem.alloc(1024 * 32, 32);
    for i in 0..1024u64 {
        mem.write_in_block(base.add(i * 32), &[i as u8; 8]).unwrap();
    }
    let addrs: Vec<_> = (0..1024u64).map(|i| base.add(i * 32)).collect();
    let blocks: Vec<_> = addrs.iter().map(|a| a.block(32)).collect();

    c.bench_function("mem/block_lookup_hit", |b| {
        let mut i = 0usize;
        let mut buf = [0u8; 8];
        b.iter(|| {
            i = (i + 1) & 1023;
            mem.read_in_block(std::hint::black_box(addrs[i]), &mut buf).unwrap();
            buf
        })
    });
    c.bench_function("mem/probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            mem.probe(std::hint::black_box(blocks[i]))
        })
    });
    c.bench_function("mem/snapshot_resident", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & 1023;
            mem.snapshot(std::hint::black_box(blocks[i]))
        })
    });
    c.bench_function("mem/iter_blocks_1k_resident", |b| b.iter(|| mem.iter_blocks().count()));
}

fn bench_fabric(c: &mut Criterion) {
    const BURST: u64 = 256;

    // One envelope per wire op (max_batch = 1): every send pays the full
    // channel-op + wakeup cost. This is the pre-batching transport.
    {
        let eps = Fabric::new_with::<u64>(2, BatchConfig::off());
        c.bench_function("fabric/send_single", |b| {
            b.iter(|| {
                for i in 0..BURST {
                    eps[0].net().send(1, std::hint::black_box(i));
                }
                eps[0].net().flush_all();
                let mut n = 0u64;
                while let TryRecv::Msg(_) = eps[1].try_recv() {
                    n += 1;
                }
                n
            })
        });
    }

    // Same burst through the egress buffers: consecutive envelopes pack
    // into wire batches, one channel op per batch.
    {
        let eps = Fabric::new_with::<u64>(2, BatchConfig::new(64));
        c.bench_function("fabric/send_batched", |b| {
            b.iter(|| {
                for i in 0..BURST {
                    eps[0].net().send(1, std::hint::black_box(i));
                }
                eps[0].net().flush_all();
                let mut n = 0u64;
                while let TryRecv::Msg(_) = eps[1].try_recv() {
                    n += 1;
                }
                n
            })
        });
    }

    // Receive side in isolation: the burst is already on the wire (sent
    // batched, outside the timed routine); measure draining it through
    // the endpoint's internal ring.
    {
        let eps = Fabric::new_with::<u64>(2, BatchConfig::new(64));
        c.bench_function("fabric/drain", |b| {
            b.iter_batched(
                || {
                    for i in 0..BURST {
                        eps[0].net().send(1, i);
                    }
                    eps[0].net().flush_all();
                },
                |()| {
                    let mut n = 0u64;
                    while let TryRecv::Msg(_) = eps[1].try_recv() {
                        n += 1;
                    }
                    n
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_access, bench_remote_miss, bench_producer_consumer, bench_presend, bench_compiler, bench_dataflow, bench_barrier, bench_mem, bench_fabric
}
criterion_main!(benches);
