//! `cstar-lint` — the mini-C\*\* diagnostics front end.
//!
//! Compiles each given `.cstar` file, runs the W001–W007/E008 lint suite,
//! and (with `--oracle`) the static↔dynamic schedule oracle. Renders
//! rustc-style caret diagnostics by default, or a lossless JSON array with
//! `--json`. With `--emit-directives` the placed [`DirectivePlan`] of each
//! file — including `CommutativeMerge` ops — is serialized to stdout as
//! one JSON document per line (diagnostics then go to stderr), so a build
//! system can hand the plan straight to the runtime.
//!
//! ```text
//! usage: cstar-lint [--json] [--deny-warnings] [--oracle]
//!                   [--emit-directives] [--nodes N] [--seed S]
//!                   <file.cstar>...
//! ```
//!
//! Exit status: 0 clean, 1 on any error (or warning under
//! `--deny-warnings`), 2 on usage/IO problems.

use std::process::ExitCode;

use prescient_cstar::sema::ClassifyRules;
use prescient_cstar::{compile_diag, lint_program, run_oracle_compiled, Diagnostic, OracleConfig};

struct Opts {
    json: bool,
    deny_warnings: bool,
    oracle: bool,
    emit_directives: bool,
    nodes: usize,
    seed: u64,
    files: Vec<String>,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        json: false,
        deny_warnings: false,
        oracle: false,
        emit_directives: false,
        nodes: 4,
        seed: 0x5eed,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => o.json = true,
            "--deny-warnings" => o.deny_warnings = true,
            "--oracle" => o.oracle = true,
            "--emit-directives" => o.emit_directives = true,
            "--nodes" => {
                o.nodes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--nodes needs a positive integer")?;
            }
            "--seed" => {
                o.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an unsigned integer")?;
            }
            "--help" | "-h" => {
                return Err("usage: cstar-lint [--json] [--deny-warnings] [--oracle] \
                            [--emit-directives] [--nodes N] [--seed S] <file.cstar>..."
                    .to_string())
            }
            f if !f.starts_with('-') => o.files.push(f.to_string()),
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    if o.files.is_empty() {
        return Err("no input files (usage: cstar-lint [options] <file.cstar>...)".to_string());
    }
    Ok(o)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("cstar-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut all: Vec<Diagnostic> = Vec::new();
    let mut rendered = String::new();
    for file in &opts.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cstar-lint: cannot read `{file}`: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = match compile_diag(&src, true, ClassifyRules::default()) {
            Err(d) => vec![d],
            Ok(prog) => {
                if opts.emit_directives {
                    // One plan document per input line; stdout carries
                    // nothing else in this mode.
                    println!("{}", prog.plan.to_json());
                }
                let mut ds = lint_program(&prog);
                if opts.oracle {
                    let cfg = OracleConfig { nodes: opts.nodes, block_size: 8, seed: opts.seed };
                    let report = run_oracle_compiled(&prog, &cfg);
                    eprintln!(
                        "cstar-lint: oracle[{file}]: {} observed events, {} predicted access \
                         classes, {} never fired (imprecision {:.2})",
                        report.observed_events,
                        report.predictions,
                        report.unobserved,
                        report.imprecision_ratio(),
                    );
                    ds.extend(report.diagnostics);
                }
                ds
            }
        };
        for d in diags {
            let d = d.with_file(file.clone());
            if !opts.json {
                if !rendered.is_empty() {
                    rendered.push('\n');
                }
                rendered.push_str(&d.render(&src, file));
            }
            all.push(d);
        }
    }

    let errors = all.iter().filter(|d| d.is_error()).count();
    let warnings = all.len() - errors;
    if opts.json {
        // `--emit-directives` owns stdout; diagnostics move to stderr.
        if opts.emit_directives {
            eprintln!("{}", Diagnostic::json_array(&all));
        } else {
            println!("{}", Diagnostic::json_array(&all));
        }
    } else {
        if opts.emit_directives {
            eprint!("{rendered}");
        } else {
            print!("{rendered}");
        }
        eprintln!(
            "cstar-lint: {} file(s), {errors} error(s), {warnings} warning(s)",
            opts.files.len()
        );
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
