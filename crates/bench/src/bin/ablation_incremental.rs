//! Ablation: incremental schedules vs. periodic flush-and-rebuild (§3.3).
//!
//! Incremental schedules track additions but not deletions, so stale
//! entries cause redundant pre-sends; the paper's remedy is flushing the
//! schedule and rebuilding. This ablation runs Adaptive (whose refinement
//! keeps adding entries) with no flushing and with several flush periods,
//! reporting redundant pre-sends (copies delivered but never read) against
//! the re-recording cost.

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_bench::Scale;
use prescient_runtime::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let base = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 24, iters: 12, tau: 0.5, max_depth: 3, flush_every: None }
    };

    println!(
        "== Ablation: incremental schedules vs flush-and-rebuild ({} nodes) ==\n",
        scale.nodes
    );
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "policy", "misses", "presendblk", "unused", "records", "total(ms)"
    );

    for flush in [None, Some(6), Some(3), Some(1)] {
        let cfg = AdaptiveConfig { flush_every: flush, ..base };
        let r = run_adaptive(MachineConfig::predictive(scale.nodes, 32), &cfg);
        let t = r.report.total_stats();
        let unused: u64 = r.report.per_node.iter().map(|n| n.unused_presends).sum();
        let label = match flush {
            None => "incremental".to_string(),
            Some(k) => format!("flush every {k}"),
        };
        println!(
            "{label:<16} {:>10} {:>12} {:>12} {:>12} {:>12.2}",
            t.misses(),
            t.presend_blocks_out,
            unused,
            t.sched_records,
            r.report.exec_time_ns() as f64 / 1e6
        );
    }
    println!(
        "\nFlushing trades extra faults (rebuild misses, higher `records`) \
         for fewer stale pre-sends (`unused`)."
    );
}
