//! Ablation: traffic-aware home placement (DESIGN.md §14).
//!
//! Four legs per application, all plain Stache (the placement machinery
//! is compiled in everywhere; only the configuration differs):
//!
//! * **owner** — the apps' natural owner-homed allocation. The control:
//!   recording this leg and running `emit-remap` over its traffic should
//!   find (almost) nothing to re-home, because the dominant requester of
//!   a written block is already its home.
//! * **rotate** — `home_shift(1)`, the deliberately bad static layout:
//!   every block's directory sits one node away from its owner, so every
//!   producer–consumer exchange pays third-party hops (§3.2).
//! * **remap** — the full offline pipeline, in-process: the rotate leg is
//!   recorded, its per-block traffic distilled to a remap file
//!   (`prescient-trace emit-remap`), and the run repeated with the remap
//!   overlay applied from step one.
//! * **online** — the rotate layout again, with phase-boundary home
//!   migration learning the same placement at runtime (hysteresis: a
//!   block moves once its dominant consumer's weighted traffic passes the
//!   threshold).
//!
//! Checksums must be bit-identical down every column — placement moves
//! directory entries, never results. Message counts are the measurement;
//! `blocks_moved` is printed per leg but only comparable where the app's
//! fault pattern is deterministic (water; barnes' contended tree reads
//! make miss counts layout-dependent, which the table shows honestly).
//!
//! ```text
//! cargo run --release -p prescient-bench --bin ablation_placement -- --paper
//! ```

use std::time::Duration;

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_bench::traffic::{emit_remap, load_trace};
use prescient_bench::Scale;
use prescient_runtime::{MachineConfig, PlacementSpec};
use prescient_stache::{PlacementConfig, RetryConfig};
use prescient_tempest::trace::TraceConfig;
use prescient_tempest::HomeMap;

fn retry() -> RetryConfig {
    RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 }
}

/// Online policy for the ablation. The dominance percentage is a noise
/// floor, not the selector — the strict "beats every other requester"
/// rule is what picks the destination — and it must sit below the
/// writer's share of a widely-read block (2 of `2 + readers` weighted
/// points; at 32 nodes water's blocks have 16 readers, ~11%). Blocks
/// read by everyone with no single dominant node still never move.
fn online() -> PlacementSpec {
    PlacementSpec::Online(PlacementConfig { min_count: 8, dominance_pct: 10, max_per_window: 4096 })
}

fn row(label: &str, r: &AppRun) {
    let t = r.report.total_stats();
    let bytes = t.data_bytes_in + t.presend_bytes_out;
    println!(
        "{label:<22} {:>10} {:>12} {:>14} {:>12} {:>6} {:>6} {:>18}",
        r.report.wall.as_millis(),
        t.msgs_out,
        bytes,
        t.misses() + t.presend_blocks_out,
        t.migrations,
        t.remapped_blocks,
        format!("{:016x}", r.checksum.to_bits()),
    );
}

/// Run `leg` with tracing on, then distill the recorded traffic into a
/// remap map the way `prescient-trace emit-remap` would. Returns the run
/// and the map. The trace lands in a scratch file keyed by `tag` so legs
/// never clobber each other.
fn record_and_remap(
    tag: &str,
    nodes: usize,
    leg: impl FnOnce(MachineConfig) -> AppRun,
    cfg: MachineConfig,
) -> (AppRun, HomeMap) {
    let base =
        std::env::temp_dir().join(format!("ablation_placement_{}_{tag}", std::process::id()));
    let base = base.to_str().expect("utf-8 temp path").to_string();
    // Machines are torn down (and the trace written) before this returns;
    // no other machine is alive, so the env var is race-free.
    std::env::set_var("PRESCIENT_TRACE_OUT", &base);
    let run = leg(cfg.with_trace(TraceConfig::with_capacity(1 << 18)));
    std::env::remove_var("PRESCIENT_TRACE_OUT");
    let events = load_trace(&format!("{base}.jsonl")).expect("trace export readable");
    let text = emit_remap(&events);
    let map = HomeMap::parse(&text, nodes).expect("emit-remap output is a valid remap file");
    for f in [format!("{base}.json"), format!("{base}.jsonl")] {
        let _ = std::fs::remove_file(f);
    }
    (run, map)
}

struct Outcome {
    app: &'static str,
    rotate_msgs: u64,
    remap_msgs: u64,
    online_msgs: u64,
}

fn ablate(
    app: &'static str,
    nodes: usize,
    bs: usize,
    leg: impl Fn(MachineConfig) -> AppRun + Copy,
) -> Outcome {
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12} {:>6} {:>6} {:>18}",
        "version", "wall(ms)", "msgs", "bytes_moved", "blocks", "migr", "remap", "checksum"
    );
    let mk = || MachineConfig::stache(nodes, bs).with_retry(retry());

    let (owner, owner_map) = record_and_remap(&format!("{app}_owner"), nodes, leg, mk());
    row("owner (control)", &owner);

    let (rotate, map) =
        record_and_remap(&format!("{app}_rotate"), nodes, leg, mk().with_home_shift(1));
    row("rotate (bad static)", &rotate);

    let remapped = map.len();
    let remap = leg(mk().with_home_shift(1).with_placement(PlacementSpec::Remap(map)));
    row("rotate + remap", &remap);

    let moved = leg(mk().with_home_shift(1).with_placement(online()));
    row("rotate + online", &moved);

    for (tag, r) in [("rotate", &rotate), ("remap", &remap), ("online", &moved)] {
        assert_eq!(
            r.checksum.to_bits(),
            owner.checksum.to_bits(),
            "{app}/{tag}: placement must not perturb the result"
        );
    }
    println!(
        "  emit-remap: owner layout re-homes {} blocks; rotate layout re-homes {remapped}",
        owner_map.len()
    );
    Outcome {
        app,
        rotate_msgs: rotate.report.total_stats().msgs_out,
        remap_msgs: remap.report.total_stats().msgs_out,
        online_msgs: moved.report.total_stats().msgs_out,
    }
}

fn main() {
    let scale = Scale::from_args();
    let bs = 64;
    let (water_cfg, barnes_cfg, adaptive_cfg) = if scale.paper {
        (
            WaterConfig::default(),  // n = 512, 20 steps
            BarnesConfig::default(), // n = 16384, 3 steps
            AdaptiveConfig::default(),
        )
    } else {
        (
            WaterConfig { n: 64, steps: 8, ..Default::default() },
            BarnesConfig { n: 512, steps: 2, ..Default::default() },
            AdaptiveConfig { n: 24, iters: 8, tau: 0.4, max_depth: 3, flush_every: None },
        )
    };

    println!("== Ablation: traffic-aware home placement ({} nodes, {bs}B blocks) ==", scale.nodes);

    println!("\n-- water (n={}, {} steps) --", water_cfg.n, water_cfg.steps);
    let water = ablate("water", scale.nodes, bs, |m| run_water(m, &water_cfg));

    println!("\n-- barnes (n={}, {} steps) --", barnes_cfg.n, barnes_cfg.steps);
    let barnes = ablate("barnes", scale.nodes, bs, |m| run_barnes(m, &barnes_cfg));

    println!("\n-- adaptive (n={}, {} iters) --", adaptive_cfg.n, adaptive_cfg.iters);
    let adaptive = ablate("adaptive", scale.nodes, bs, |m| run_adaptive(m, &adaptive_cfg));

    println!("\n== summary: messages vs the rotate layout ==");
    let mut improved = 0;
    for o in [&water, &barnes, &adaptive] {
        let pct = |x: u64| 100.0 * x as f64 / o.rotate_msgs.max(1) as f64;
        let helped = o.remap_msgs < o.rotate_msgs;
        improved += u32::from(helped);
        println!(
            "{:<10} rotate {:>9}  remap {:>9} ({:>5.1}%)  online {:>9} ({:>5.1}%){}",
            o.app,
            o.rotate_msgs,
            o.remap_msgs,
            pct(o.remap_msgs),
            o.online_msgs,
            pct(o.online_msgs),
            if helped { "" } else { "  [no win — reported, not gated]" },
        );
    }
    assert!(
        water.remap_msgs < water.rotate_msgs,
        "water's producer-consumer pattern must benefit from the remap"
    );
    println!(
        "\nchecksums bit-identical on every leg; {improved}/3 apps move fewer messages under remap"
    );
}
