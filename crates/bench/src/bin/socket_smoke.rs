//! Two-process socket-fabric smoke test.
//!
//! The parent process hosts nodes `0..2` and the child (re-spawned from
//! the same executable) hosts nodes `2..4` of one 4-node fabric; the two
//! halves rendezvous over TCP (`SocketHost` / `connect`) and run the
//! full Stache protocol across the process boundary. The workload is an
//! exclusive-increment torture: every node repeatedly upgrades every
//! counter block to exclusive and increments it, so ownership of each
//! block migrates across the wire on nearly every step (gets, recalls,
//! grants, and data all cross the socket). Each node then polls until
//! every counter reaches `nodes × rounds` — invalidation-based polling,
//! which only converges if cross-process recalls work.
//!
//! Termination uses a separate one-byte control socket: neither side may
//! tear its protocol handlers down until *both* have verified, or the
//! peer's in-flight fetches would hang against dead handlers. There is
//! deliberately no shared-memory coordination — everything between the
//! processes travels over the two sockets.
//!
//! Run with no arguments (the parent spawns the child); exits non-zero
//! on any divergence. The `socket_two_process` integration test drives
//! it in CI.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::Command;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};
use prescient_runtime::RunTimeline;
use prescient_stache::{fetch, spawn_protocol, Msg, NoHooks, NodeShared, RetryConfig, Wake};
use prescient_tempest::fabric::Endpoint;
use prescient_tempest::socket::{connect, NodeRange, SocketGuard, SocketHost};
use prescient_tempest::{
    BatchConfig, CostModel, GAddr, GlobalLayout, LatencyHist, NodeId, PhaseRecord, Prim,
    TimeBreakdown,
};

const NODES: usize = 4;
const SPLIT: u16 = 2;
const BS: usize = 64;
const ROUNDS: u64 = 8;
const TARGET: u64 = NODES as u64 * ROUNDS;

/// One u64 counter per node, at the base of its heap segment — both
/// processes derive every address from the layout alone, no exchange.
fn counter_addr(layout: &GlobalLayout, node: NodeId) -> GAddr {
    layout.heap_base(node)
}

/// Atomically increment the counter at `addr`: read + write under one
/// `mem` guard (the handler can't revoke ownership mid-increment because
/// it needs the same lock), faulting into `fetch` for exclusive access.
fn incr(shared: &Arc<NodeShared>, rx: &Receiver<Wake>, addr: GAddr, stash: &mut Vec<Wake>) {
    let mut buf = [0u8; 8];
    loop {
        let fault = {
            let mut mem = shared.mem.lock();
            match mem.read_in_block(addr, &mut buf) {
                Err(f) => Some(f.fault().block),
                Ok(()) => {
                    let v = u64::load(&buf) + 1;
                    v.store(&mut buf);
                    match mem.write_in_block(addr, &buf) {
                        Ok(()) => None,
                        Err(f) => Some(f.fault().block),
                    }
                }
            }
        };
        match fault {
            None => return,
            Some(block) => {
                fetch(shared, rx, block, true, stash);
            }
        }
    }
}

/// Poll until the counter at `addr` reaches `want`. A stale read-only
/// copy stays stale until a writer's recall invalidates it, so a
/// successful read below target just yields; the final increment must
/// invalidate every copy, after which the re-read faults and fetches the
/// final value.
fn await_value(
    shared: &Arc<NodeShared>,
    rx: &Receiver<Wake>,
    addr: GAddr,
    want: u64,
    stash: &mut Vec<Wake>,
) {
    let mut buf = [0u8; 8];
    loop {
        let r = shared.mem.lock().read_in_block(addr, &mut buf);
        match r {
            Ok(()) => {
                let v = u64::load(&buf);
                assert!(v <= want, "counter {addr:?} overshot: {v} > {want}");
                if v == want {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(f) => {
                fetch(shared, rx, f.fault().block, false, stash);
            }
        }
    }
}

/// Per-process metrics export: with `PRESCIENT_METRICS_OUT` set, each
/// process writes its half's whole-run counter timeline to
/// `{base}.{start}-{end}.timeline.json` (one record per local node; the
/// schema carries the node range, so `prescient-metrics merge`
/// reassembles the machine from the per-process files).
fn export_timeline(range: NodeRange, shareds: &[Arc<NodeShared>]) {
    let Ok(base) = std::env::var("PRESCIENT_METRICS_OUT") else { return };
    let records = shareds
        .iter()
        .map(|s| PhaseRecord {
            node: s.me,
            seq: 0,
            run: 1,
            phase: 0,
            iter: 0,
            version: 0,
            vtime: TimeBreakdown::default(),
            stats: s.stats.snapshot(),
            fetch: LatencyHist::default(),
            wire: None,
        })
        .collect();
    let t = RunTimeline::with_range(NODES, range, records);
    let path = format!("{base}.{}-{}.timeline.json", range.start, range.end());
    std::fs::write(&path, t.to_json()).expect("write per-process timeline export");
    eprintln!("socket_smoke: wrote {path}");
}

/// Run this process's half: protocol handlers, the increment workload,
/// verification, then — only after `sync_done` has confirmed the peer is
/// also done — teardown. Returns the local nodes' total message count.
fn run_side(
    eps: Vec<Endpoint<Msg>>,
    range: NodeRange,
    mut guard: SocketGuard,
    sync_done: impl FnOnce(),
) -> u64 {
    let layout = GlobalLayout::new(NODES, BS);
    let retry = RetryConfig { timeout: Duration::from_millis(100), max_retries: 600 };
    let ctl = Arc::clone(eps[0].ctl());
    let mut shareds = Vec::new();
    let mut rxs = Vec::new();
    let mut joins = Vec::new();
    for ep in eps {
        let (wake_tx, wake_rx) = unbounded();
        let shared = Arc::new(NodeShared::new_with_retry(
            layout,
            CostModel::default(),
            ep.net().clone(),
            wake_tx,
            retry,
        ));
        let me = shared.me;
        assert_eq!(
            shared.mem.lock().alloc(8, 8),
            counter_addr(&layout, me),
            "counter address must be derivable from the layout alone"
        );
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks)));
        shareds.push(shared);
        rxs.push(wake_rx);
    }

    std::thread::scope(|scope| {
        let handles: Vec<_> = shareds
            .iter()
            .zip(&rxs)
            .map(|(shared, rx)| {
                let shared = Arc::clone(shared);
                let rx = rx.clone();
                scope.spawn(move || {
                    let mut stash = Vec::new();
                    for _ in 0..ROUNDS {
                        for t in 0..NODES as NodeId {
                            incr(&shared, &rx, counter_addr(&layout, t), &mut stash);
                        }
                    }
                    for t in 0..NODES as NodeId {
                        await_value(&shared, &rx, counter_addr(&layout, t), TARGET, &mut stash);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("compute thread panicked");
        }
    });

    // Both halves verified: counters are final, export before teardown.
    export_timeline(range, &shareds);
    sync_done();
    ctl.mark_closing();
    for s in &shareds {
        s.send(s.me, Msg::Shutdown);
        s.flush_net();
    }
    for j in joins {
        let _ = j.join();
    }
    guard.shutdown();
    shareds.iter().map(|s| s.stats.msgs_out.load(Ordering::Relaxed)).sum()
}

fn parent() {
    let host = SocketHost::bind("127.0.0.1:0").expect("bind fabric rendezvous");
    let fabric_addr = host.local_addr().expect("fabric addr").to_string();
    let ctl_listener = TcpListener::bind("127.0.0.1:0").expect("bind control");
    let ctl_addr = ctl_listener.local_addr().expect("control addr").to_string();
    let exe = std::env::current_exe().expect("current exe");
    let mut child = Command::new(exe)
        .args(["--child", &fabric_addr, &ctl_addr])
        .spawn()
        .expect("spawn child process");

    let batch = BatchConfig::default_for_fabric();
    let range = NodeRange::new(0, SPLIT);
    let (eps, guard) = host.accept::<Msg>(NODES, range, batch).expect("accept peer");
    let msgs = run_side(eps, range, guard, || {
        let (mut s, _) = ctl_listener.accept().expect("control accept");
        let mut byte = [0u8; 1];
        s.read_exact(&mut byte).expect("child done byte");
        s.write_all(&[0xAA]).expect("parent done byte");
    });

    let status = child.wait().expect("child wait");
    assert!(status.success(), "child process failed: {status}");
    println!("socket_smoke: PASS {NODES} nodes across 2 processes, {TARGET} per counter, {msgs} parent-side msgs");
}

fn child(fabric_addr: &str, ctl_addr: &str) {
    let batch = BatchConfig::default_for_fabric();
    let range = NodeRange::new(SPLIT, NODES as u16 - SPLIT);
    let (eps, guard) = connect::<Msg>(fabric_addr, NODES, range, batch, Duration::from_secs(10))
        .expect("connect to parent fabric");
    let msgs = run_side(eps, range, guard, || {
        let mut s = TcpStream::connect(ctl_addr).expect("control connect");
        s.write_all(&[0xEE]).expect("child done byte");
        let mut byte = [0u8; 1];
        s.read_exact(&mut byte).expect("parent done byte");
    });
    println!("socket_smoke: child half done, {msgs} child-side msgs");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.as_slice() {
        [_, flag, fabric, ctl] if flag == "--child" => child(fabric, ctl),
        [_] => parent(),
        _ => {
            eprintln!("usage: socket_smoke            (parent: spawns its own child)");
            eprintln!("       socket_smoke --child <fabric_addr> <ctl_addr>");
            std::process::exit(2);
        }
    }
}
