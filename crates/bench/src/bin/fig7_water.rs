//! Figure 7: execution time for three versions of **Water** — C\*\* with
//! and without optimized communication, and the Splash-style version
//! (transparent shared memory, no custom protocols). As in the paper, each
//! version runs at its own best cache-block size (found by a small sweep).
//!
//! Paper's shape: the optimized version is modestly faster than the
//! unoptimized one (1.05–1.07×) and ~1.2× faster than Splash.

use prescient_apps::water::{run_splash_water, run_water, WaterConfig};
use prescient_bench::{render_figure, speedup, Bar, Scale};
use prescient_runtime::MachineConfig;

fn best_of(
    label: &str,
    nodes: usize,
    run: impl Fn(MachineConfig) -> prescient_apps::AppRun,
    predictive: bool,
) -> Bar {
    let mut best: Option<(usize, prescient_apps::AppRun)> = None;
    for bs in [32usize, 64, 128, 256, 512, 1024] {
        let mcfg = if predictive {
            MachineConfig::predictive(nodes, bs)
        } else {
            MachineConfig::stache(nodes, bs)
        };
        eprintln!("running {label} ({bs}B) ...");
        let r = run(mcfg);
        let better = match &best {
            Some((_, b)) => r.report.exec_time_ns() < b.report.exec_time_ns(),
            None => true,
        };
        if better {
            best = Some((bs, r));
        }
    }
    let (bs, run) = best.expect("at least one block size");
    Bar { label: format!("{label} ({bs}B)"), report: run.report }
}

fn main() {
    let scale = Scale::from_args();
    let cfg = if scale.paper {
        WaterConfig::default() // 512 molecules, 20 steps
    } else {
        WaterConfig { n: 128, steps: 6, ..Default::default() }
    };

    let unopt = best_of("C** unoptimized", scale.nodes, |m| run_water(m, &cfg), false);
    let opt = best_of("C** optimized", scale.nodes, |m| run_water(m, &cfg), true);
    let splash =
        best_of("Splash (transparent shm)", scale.nodes, |m| run_splash_water(m, &cfg), false);

    let bars = vec![unopt, opt, splash];
    println!(
        "{}",
        render_figure(
            &format!(
                "Figure 7: Water ({} molecules, {} steps, {} nodes; best block size per version)",
                cfg.n, cfg.steps, scale.nodes
            ),
            &bars
        )
    );

    println!("opt vs unopt: {:.2}x (paper: 1.05-1.07x)", speedup(&bars[0], &bars[1]));
    println!("opt vs Splash: {:.2}x (paper: 1.2x)", speedup(&bars[2], &bars[1]));
}
