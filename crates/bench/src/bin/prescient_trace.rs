//! `prescient-trace`: offline analyzer for protocol event traces.
//!
//! Input is the JSONL dump a traced machine writes at teardown (one flat
//! JSON object per event — see `prescient_tempest::trace::to_jsonl`).
//!
//! ```text
//! prescient-trace report     trace.jsonl        # full analysis
//! prescient-trace validate   trace.jsonl [trace.json]
//! prescient-trace diff       a.jsonl b.jsonl    # compare two runs
//! prescient-trace emit-remap trace.jsonl [out.remap]
//! ```
//!
//! `report` prints per-phase demand-fault latency histograms, the
//! schedule build→replay timeline, pre-send lead times (install to first
//! access), the useless-push breakdown, the per-block traffic matrix
//! (who asks which home for what), and the wire-batch occupancy
//! histogram. `validate` checks structural invariants of an export (CI's
//! trace-smoke job runs it); with a second path it also sanity-checks the
//! Chrome JSON companion. `diff` compares per-kind event counts and the
//! headline latency/lead-time numbers of two runs. `emit-remap` distills
//! the traffic matrix of a recorded run into a block→home remap file
//! (DESIGN.md §14) that `PRESCIENT_PLACEMENT=remap:<path>` applies on the
//! next run: each block whose weighted traffic has a strictly dominant
//! requester is re-homed there; ties and home-dominated blocks stay put.

use std::collections::HashMap;
use std::process::ExitCode;

use prescient_bench::traffic::{emit_remap, load_trace as load, traffic_tally, warn_wrapped};
use prescient_tempest::trace::{
    unpack_counts, unpack_fault_end, unpack_msg, unpack_peer_count, EventKind, TraceEvent,
};
use prescient_tempest::{NodeId, WireSnapshot};

// ---- histograms -----------------------------------------------------------

/// A log2 histogram over ns quantities (latencies, lead times).
struct Log2Hist {
    counts: [u64; 64],
    n: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Log2Hist {
        Log2Hist { counts: [0; 64], n: 0, sum: 0, min: 0, max: 0 }
    }
}

impl Log2Hist {
    fn add(&mut self, v: u64) {
        let b = 63 - v.max(1).leading_zeros() as usize;
        self.counts[b] += 1;
        self.n += 1;
        self.sum += v;
        self.min = if self.n == 1 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
    }

    fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    fn print(&self, indent: &str) {
        if self.n == 0 {
            println!("{indent}(empty)");
            return;
        }
        println!(
            "{indent}n={}  min={}  mean={:.0}  max={}  (ns)",
            self.n,
            self.min,
            self.mean(),
            self.max
        );
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            println!("{indent}[{:>10} ns, {:>10} ns)  {c:>8}  {bar}", 1u64 << b, 2u64 << b);
        }
    }
}

// ---- analyses -------------------------------------------------------------

/// Pair FaultBegin/FaultEnd per node (the compute thread is serial, so
/// faults never nest) and bucket latencies per phase, split read/write.
fn fault_latencies(events: &[TraceEvent]) -> Vec<(u32, Log2Hist, Log2Hist)> {
    fn slot(
        phases: &mut Vec<(u32, Log2Hist, Log2Hist)>,
        phase: u32,
    ) -> &mut (u32, Log2Hist, Log2Hist) {
        if let Some(i) = phases.iter().position(|p| p.0 == phase) {
            return &mut phases[i];
        }
        phases.push((phase, Log2Hist::default(), Log2Hist::default()));
        phases.last_mut().expect("just pushed")
    }
    let mut open: HashMap<NodeId, &TraceEvent> = HashMap::new();
    let mut phases: Vec<(u32, Log2Hist, Log2Hist)> = Vec::new();
    for e in events {
        match e.kind {
            EventKind::FaultBegin => {
                open.insert(e.node, e);
            }
            EventKind::FaultEnd => {
                if let Some(b) = open.remove(&e.node) {
                    let lat = e.t_ns.saturating_sub(b.t_ns);
                    let (excl, _, _) = unpack_fault_end(e.b);
                    let p = slot(&mut phases, b.phase);
                    if excl {
                        p.2.add(lat)
                    } else {
                        p.1.add(lat)
                    }
                }
            }
            _ => {}
        }
    }
    phases.sort_by_key(|p| p.0);
    phases
}

fn report_faults(events: &[TraceEvent]) {
    println!("== demand-fault latency, per phase ==");
    let phases = fault_latencies(events);
    if phases.is_empty() {
        println!("  (no faults)");
    }
    for (phase, rd, wr) in &phases {
        println!("phase {phase}:");
        println!("  read faults:");
        rd.print("    ");
        println!("  write faults:");
        wr.print("    ");
    }
}

/// Per-phase schedule lifecycle: when records accumulate, how replay
/// coalesces them, and how often the degradation policy intervened.
fn report_schedule(events: &[TraceEvent]) {
    println!("\n== schedule build -> replay timeline, per phase ==");
    #[derive(Default)]
    struct Ph {
        records: u64,
        first_rec: u64,
        last_rec: u64,
        replays: u64,
        runs: u64,
        pushes: u64,
        groups: u64,
        flushes: u64,
        degrades: u64,
        rearms: u64,
    }
    let mut phases: HashMap<u32, Ph> = HashMap::new();
    for e in events {
        // Most schedule events carry the phase they concern in `a`;
        // SchedRecord's `a` is the block, so it uses the ambient phase.
        let key = match e.kind {
            EventKind::SchedRecord => e.phase,
            EventKind::SchedReplay
            | EventKind::SchedCoalesce
            | EventKind::SchedFlush
            | EventKind::Degrade
            | EventKind::Rearm => e.a as u32,
            _ => continue,
        };
        let p = phases.entry(key).or_default();
        match e.kind {
            EventKind::SchedRecord => {
                p.records += 1;
                if p.records == 1 {
                    p.first_rec = e.t_ns;
                }
                p.last_rec = e.t_ns;
            }
            EventKind::SchedReplay => {
                p.replays += 1;
                p.runs += e.b;
            }
            EventKind::SchedCoalesce => {
                let (pushes, groups) = unpack_counts(e.b);
                p.pushes += pushes;
                p.groups += groups;
            }
            EventKind::SchedFlush => p.flushes += 1,
            EventKind::Degrade => p.degrades += 1,
            EventKind::Rearm => p.rearms += 1,
            _ => {}
        }
    }
    let mut ids: Vec<u32> = phases
        .iter()
        .filter(|(_, p)| p.records + p.replays + p.pushes + p.flushes + p.degrades + p.rearms > 0)
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>7}",
        "phase",
        "records",
        "first@ns",
        "last@ns",
        "replays",
        "runs",
        "pushes",
        "groups",
        "flushes",
        "deg/arm"
    );
    for id in ids {
        let p = &phases[&id];
        println!(
            "{:>6} {:>8} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>3}/{:<3}",
            id,
            p.records,
            p.first_rec,
            p.last_rec,
            p.replays,
            p.runs,
            p.pushes,
            p.groups,
            p.flushes,
            p.degrades,
            p.rearms
        );
    }
}

/// Lead time = first-touch vtime − install vtime, per (node, block).
fn lead_times(events: &[TraceEvent]) -> (Log2Hist, u64, u64) {
    let mut installed: HashMap<(NodeId, u64), u64> = HashMap::new();
    let mut lead = Log2Hist::default();
    let mut untouched = 0u64;
    for e in events {
        match e.kind {
            EventKind::PresendInstall => {
                let (_, count) = unpack_peer_count(e.b);
                for blk in e.a..e.a + count {
                    installed.insert((e.node, blk), e.t_ns);
                }
            }
            EventKind::PresendFirstTouch => {
                if let Some(t0) = installed.remove(&(e.node, e.a)) {
                    lead.add(e.t_ns.saturating_sub(t0));
                }
            }
            _ => {}
        }
    }
    untouched += installed.len() as u64;
    let touched = lead.n;
    (lead, touched, untouched)
}

fn report_leads(events: &[TraceEvent]) {
    println!("\n== pre-send lead time (install -> first access) ==");
    let (lead, touched, untouched) = lead_times(events);
    lead.print("  ");
    println!("  blocks touched: {touched}   installed but never touched: {untouched}");
}

/// Useless-push breakdown: per pushing home, how many installed block
/// copies were never first-touched at their target.
fn report_useless(events: &[TraceEvent]) {
    println!("\n== useless-push breakdown, per pushing home ==");
    let mut installed: HashMap<(NodeId, u64), NodeId> = HashMap::new();
    let mut pushed: HashMap<NodeId, u64> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::PresendInstall => {
                let (home, count) = unpack_peer_count(e.b);
                *pushed.entry(home).or_default() += count;
                for blk in e.a..e.a + count {
                    installed.insert((e.node, blk), home);
                }
            }
            EventKind::PresendFirstTouch => {
                installed.remove(&(e.node, e.a));
            }
            _ => {}
        }
    }
    let mut useless: HashMap<NodeId, u64> = HashMap::new();
    for home in installed.values() {
        *useless.entry(*home).or_default() += 1;
    }
    let mut homes: Vec<NodeId> = pushed.keys().copied().collect();
    homes.sort_unstable();
    println!("{:>6} {:>10} {:>10} {:>8}", "home", "installed", "useless", "pct");
    for h in homes {
        let p = pushed[&h];
        let u = useless.get(&h).copied().unwrap_or(0);
        println!(
            "{h:>6} {p:>10} {u:>10} {:>7.1}%",
            if p == 0 { 0.0 } else { u as f64 * 100.0 / p as f64 }
        );
    }
}

// ---- per-block traffic / remap --------------------------------------------

fn report_traffic(events: &[TraceEvent], top: usize) {
    println!("\n== per-block traffic matrix (2*excl + 1*shared, top {top} by score) ==");
    let tally = traffic_tally(events);
    if tally.is_empty() {
        println!("  (no demand requests)");
        return;
    }
    let mut blocks: Vec<_> = tally.iter().collect();
    blocks.sort_by_key(|(b, t)| (std::cmp::Reverse(t.total()), **b));
    println!(
        "{:>10} {:>5} {:>7}  {:<28} {:>8}",
        "block", "home", "total", "requester:score", "move?"
    );
    for (block, t) in blocks.iter().take(top) {
        let mut scores: Vec<(&NodeId, &u64)> = t.score.iter().collect();
        scores.sort_by_key(|(n, s)| (std::cmp::Reverse(**s), **n));
        let cells: Vec<String> = scores.iter().map(|(n, s)| format!("{n}:{s}")).collect();
        let dest = match t.dominant() {
            Some(d) if d != t.home => format!("-> {d}"),
            Some(_) => "stays".into(),
            None => "tie".into(),
        };
        println!("{block:>10} {:>5} {:>7}  {:<28} {:>8}", t.home, t.total(), cells.join(" "), dest);
    }
    let moves = tally.values().filter(|t| t.dominant().is_some_and(|d| d != t.home)).count();
    println!(
        "  {} blocks with demand traffic, {moves} would re-home under emit-remap",
        tally.len()
    );
}

/// Wire-batch occupancy from WireFlush events, in the same buckets the
/// fabric's live histogram uses.
fn report_wire(events: &[TraceEvent]) {
    println!("\n== wire-batch occupancy (from WireFlush) ==");
    let mut hist = [0u64; WireSnapshot::NUM_BUCKETS];
    let (mut batches, mut envs) = (0u64, 0u64);
    for e in events.iter().filter(|e| e.kind == EventKind::WireFlush) {
        let (_, n) = unpack_peer_count(e.a);
        hist[WireSnapshot::bucket_index(n)] += 1;
        batches += 1;
        envs += n;
    }
    if batches == 0 {
        println!("  (no wire events)");
        return;
    }
    println!(
        "  batches={batches}  envelopes={envs}  mean occupancy={:.2}",
        envs as f64 / batches as f64
    );
    let peak = hist.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in hist.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
        println!("  {:>6}  {c:>8}  {bar}", WireSnapshot::bucket_label(i));
    }
}

fn kind_counts(events: &[TraceEvent]) -> HashMap<EventKind, u64> {
    let mut m = HashMap::new();
    for e in events {
        *m.entry(e.kind).or_insert(0) += 1;
    }
    m
}

fn report(events: &[TraceEvent]) {
    // A wrapped ring silently undercounts every analysis below — say so
    // per node, loudly, before printing any number.
    warn_wrapped(events, "every analysis below");
    let nodes = events.iter().map(|e| e.node).max().map_or(0, |n| u64::from(n) + 1);
    let t_max = events.iter().map(|e| e.t_ns).max().unwrap_or(0);
    println!("{} events, {} nodes, vtime span {} ns", events.len(), nodes, t_max);
    let counts = kind_counts(events);
    let mut kinds: Vec<_> = counts.iter().collect();
    kinds.sort_by_key(|(k, _)| **k as u8);
    for (k, c) in kinds {
        println!("  {:<18} {c}", k.name());
    }
    report_faults(events);
    report_schedule(events);
    report_leads(events);
    report_useless(events);
    report_traffic(events, 20);
    report_wire(events);
}

// ---- validate -------------------------------------------------------------

fn validate(events: &[TraceEvent], chrome: Option<&str>) -> Result<(), String> {
    // Per-node sequence numbers are unique. (The merged stream is sorted
    // by vtime, and a node's protocol thread stamps events with the last
    // *published* compute vtime, so seq order is not preserved across the
    // node's two emitting threads; gaps = ring drops are legal too.
    // Duplication, however, means the ring replayed a slot.)
    let mut seen: HashMap<NodeId, std::collections::HashSet<u64>> = HashMap::new();
    for e in events {
        if !seen.entry(e.node).or_default().insert(e.seq) {
            return Err(format!("node {}: duplicate seq {}", e.node, e.seq));
        }
    }
    // Span pairing: per node, ends never outnumber begins (the compute
    // thread is serial, so spans of one kind never nest). A node whose
    // stream starts at seq > 0 lost its oldest events to ring wrap, so
    // its unmatched closes are legal and clamped instead of rejected.
    let mut first_seq: HashMap<NodeId, u64> = HashMap::new();
    for e in events {
        first_seq.entry(e.node).or_insert(e.seq);
    }
    for (open, close) in [
        (EventKind::FaultBegin, EventKind::FaultEnd),
        (EventKind::BarrierEnter, EventKind::BarrierExit),
        (EventKind::PresendStart, EventKind::PresendEnd),
        (EventKind::PhaseBegin, EventKind::PhaseEnd),
    ] {
        let mut depth: HashMap<NodeId, i64> = HashMap::new();
        for e in events {
            let d = depth.entry(e.node).or_insert(0);
            if e.kind == open {
                *d += 1;
            } else if e.kind == close {
                *d -= 1;
                if *d < 0 {
                    if first_seq.get(&e.node).copied().unwrap_or(0) > 0 {
                        *d = 0; // wrapped stream: the opener was overwritten
                    } else {
                        return Err(format!(
                            "node {}: {} without matching {}",
                            e.node,
                            close.name(),
                            open.name()
                        ));
                    }
                }
            }
        }
    }
    // Message-kind codes decode.
    for e in events {
        if matches!(e.kind, EventKind::MsgSend | EventKind::MsgRecv) {
            let (code, _) = unpack_msg(e.a);
            if prescient_stache::Msg::kind_name(code) == "?" {
                return Err(format!("undecodable message kind code {code}"));
            }
        }
    }
    if let Some(path) = chrome {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        if !text.starts_with("{\"displayTimeUnit\"") || !text.contains("\"traceEvents\":[") {
            return Err(format!("{path}: not a Chrome trace-event export"));
        }
        let (ob, cb) = (text.matches('{').count(), text.matches('}').count());
        let (os, cs) = (text.matches('[').count(), text.matches(']').count());
        if ob != cb || os != cs {
            return Err(format!("{path}: unbalanced JSON ({ob}/{cb} braces, {os}/{cs} brackets)"));
        }
    }
    Ok(())
}

// ---- diff -----------------------------------------------------------------

fn diff(a: &[TraceEvent], b: &[TraceEvent]) {
    println!("== per-kind event counts ==");
    let (ca, cb) = (kind_counts(a), kind_counts(b));
    println!("{:<18} {:>10} {:>10} {:>10}", "kind", "left", "right", "delta");
    for k in EventKind::ALL {
        let (x, y) = (ca.get(&k).copied().unwrap_or(0), cb.get(&k).copied().unwrap_or(0));
        if x == 0 && y == 0 {
            continue;
        }
        println!("{:<18} {x:>10} {y:>10} {:>+10}", k.name(), y as i64 - x as i64);
    }
    println!("\n== headline latencies ==");
    let mean_fault = |ev: &[TraceEvent]| {
        let phases = fault_latencies(ev);
        let (n, sum) = phases
            .iter()
            .fold((0u64, 0u64), |(n, s), (_, rd, wr)| (n + rd.n + wr.n, s + rd.sum + wr.sum));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    };
    println!("mean fault latency : {:>12.0} ns | {:>12.0} ns", mean_fault(a), mean_fault(b));
    let (la, ta, ua) = lead_times(a);
    let (lb, tb, ub) = lead_times(b);
    println!("mean presend lead  : {:>12.0} ns | {:>12.0} ns", la.mean(), lb.mean());
    println!("blocks touched     : {ta:>12} | {tb:>12}");
    println!("blocks untouched   : {ua:>12} | {ub:>12}");
}

// ---- entry ----------------------------------------------------------------

fn usage() -> ExitCode {
    eprintln!("usage: prescient-trace report <trace.jsonl>");
    eprintln!("       prescient-trace validate <trace.jsonl> [trace.json]");
    eprintln!("       prescient-trace diff <a.jsonl> <b.jsonl>");
    eprintln!("       prescient-trace emit-remap <trace.jsonl> [out.remap]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let fail = |e: String| {
        eprintln!("prescient-trace: {e}");
        ExitCode::FAILURE
    };
    match (cmd, rest) {
        ("report", [path]) => match load(path) {
            Ok(events) => {
                report(&events);
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        ("validate", [path, chrome @ ..]) if chrome.len() <= 1 => {
            let events = match load(path) {
                Ok(ev) => ev,
                Err(e) => return fail(e),
            };
            match validate(&events, chrome.first().map(String::as_str)) {
                Ok(()) => {
                    println!("ok: {} events valid", events.len());
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        ("diff", [a, b]) => match (load(a), load(b)) {
            (Ok(ea), Ok(eb)) => {
                diff(&ea, &eb);
                ExitCode::SUCCESS
            }
            (Err(e), _) | (_, Err(e)) => fail(e),
        },
        ("emit-remap", [path, out @ ..]) if out.len() <= 1 => match load(path) {
            Ok(events) => {
                // A wrapped ring skews the traffic tally the placement
                // decision is based on — warn before emitting.
                warn_wrapped(&events, "the placement traffic tally");
                let text = emit_remap(&events);
                let entries = text.lines().filter(|l| !l.starts_with('#')).count();
                match out.first() {
                    Some(f) => {
                        if let Err(e) = std::fs::write(f, &text) {
                            return fail(format!("{f}: {e}"));
                        }
                        eprintln!("wrote {entries} remap entries to {f}");
                    }
                    None => print!("{text}"),
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescient_bench::traffic::parse_trace_line;

    fn ev(
        node: NodeId,
        seq: u64,
        t: u64,
        phase: u32,
        kind: EventKind,
        a: u64,
        b: u64,
    ) -> TraceEvent {
        TraceEvent { node, seq, t_ns: t, phase, kind, a, b }
    }

    #[test]
    fn parse_round_trip() {
        let line =
            "{\"node\":2,\"seq\":7,\"t\":900,\"phase\":3,\"kind\":\"SchedRecord\",\"a\":5,\"b\":3}";
        let e = parse_trace_line(line).expect("parses");
        assert_eq!((e.node, e.seq, e.t_ns, e.phase), (2, 7, 900, 3));
        assert_eq!(e.kind, EventKind::SchedRecord);
        assert_eq!((e.a, e.b), (5, 3));
        assert!(parse_trace_line("{\"kind\":\"Nope\"}").is_err());
    }

    #[test]
    fn fault_pairing_and_latency() {
        use prescient_tempest::trace::pack_fault_end;
        let events = vec![
            ev(0, 0, 100, 1, EventKind::FaultBegin, 7, 0),
            ev(0, 1, 400, 1, EventKind::FaultEnd, 7, pack_fault_end(false, 0, 0)),
            ev(0, 2, 500, 1, EventKind::FaultBegin, 8, 1),
            ev(0, 3, 900, 1, EventKind::FaultEnd, 8, pack_fault_end(true, 1, 0)),
        ];
        let phases = fault_latencies(&events);
        assert_eq!(phases.len(), 1);
        let (phase, rd, wr) = &phases[0];
        assert_eq!(*phase, 1);
        assert_eq!((rd.n, rd.sum), (1, 300));
        assert_eq!((wr.n, wr.sum), (1, 400));
    }

    #[test]
    fn lead_time_matches_install_runs() {
        use prescient_tempest::trace::pack_peer_count;
        let events = vec![
            ev(1, 0, 100, 2, EventKind::PresendInstall, 10, pack_peer_count(0, 3)),
            ev(1, 1, 600, 2, EventKind::PresendFirstTouch, 11, 0),
            ev(2, 0, 100, 2, EventKind::PresendInstall, 10, pack_peer_count(0, 1)),
        ];
        let (lead, touched, untouched) = lead_times(&events);
        assert_eq!((touched, untouched), (1, 3)); // blocks 10,12 on node 1 + block 10 on node 2
        assert_eq!(lead.sum, 500);
    }

    #[test]
    fn emit_remap_picks_the_strictly_dominant_requester() {
        use prescient_tempest::trace::pack_msg;
        // Block 7 homed at node 0: node 2 writes (2 GetExcl = 4 points),
        // nodes 1 and 3 read once each -> node 2 strictly dominates.
        // Block 9 homed at node 1: nodes 2 and 3 tie -> stays put.
        // Block 11 homed at node 3: only node 3 itself asks -> stays put.
        let events = vec![
            ev(0, 0, 10, 1, EventKind::MsgRecv, pack_msg(2, 2), 7),
            ev(0, 1, 20, 1, EventKind::MsgRecv, pack_msg(1, 1), 7),
            ev(0, 2, 30, 1, EventKind::MsgRecv, pack_msg(1, 3), 7),
            ev(0, 3, 40, 2, EventKind::MsgRecv, pack_msg(2, 2), 7),
            ev(1, 0, 15, 1, EventKind::MsgRecv, pack_msg(1, 2), 9),
            ev(1, 1, 25, 1, EventKind::MsgRecv, pack_msg(1, 3), 9),
            ev(3, 0, 12, 1, EventKind::MsgRecv, pack_msg(2, 3), 11),
            // Non-demand traffic (a Grant) never feeds the tally.
            ev(2, 0, 50, 1, EventKind::MsgRecv, pack_msg(7, 0), 7),
        ];
        let tally = traffic_tally(&events);
        assert_eq!(tally.len(), 3);
        assert_eq!(tally[&7].total(), 6);
        assert_eq!(tally[&7].dominant(), Some(2));
        assert_eq!(tally[&9].dominant(), None, "tied requesters stay put");
        assert_eq!(tally[&11].dominant(), Some(3), "home keeps a self-dominated block");
        let text = emit_remap(&events);
        let lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines, ["7 2"], "only the dominated, non-home block moves");
        // The output is directly loadable as a HomeMap remap file.
        let map = prescient_tempest::HomeMap::parse(&text, 4).expect("valid remap text");
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn validate_catches_unpaired_end() {
        let bad = vec![ev(0, 0, 5, 0, EventKind::FaultEnd, 7, 0)];
        assert!(validate(&bad, None).is_err());
        let ok = vec![
            ev(0, 0, 5, 0, EventKind::FaultBegin, 7, 0),
            ev(0, 1, 9, 0, EventKind::FaultEnd, 7, 0),
        ];
        assert!(validate(&ok, None).is_ok());
        let duplicated = vec![
            ev(0, 2, 5, 0, EventKind::MsgSend, 1 << 16, 0),
            ev(0, 2, 9, 0, EventKind::MsgSend, 1 << 16, 0),
        ];
        assert!(validate(&duplicated, None).is_err());
    }
}
