//! Ablation: graceful degradation of the predictive protocol.
//!
//! The adversarial pattern is a *rotating reader*: each iteration a
//! different node consumes each block, so the schedule recorded from the
//! previous instance pushes to the wrong node every time — 100% useless
//! pre-sends that incremental schedules never self-correct (deletions are
//! not tracked, §3.3). Three protocol variants run the same program:
//!
//! * plain Stache (no pre-sends — the overhead floor),
//! * predictive with degradation disabled (the waste ceiling),
//! * predictive with degradation enabled (flush + back off + re-arm).
//!
//! A second section prices the reliability machinery itself: the same
//! well-behaved program (stable readers) on a clean fabric vs. one that
//! delays, duplicates, and drops messages (`FaultPlan::chaos`).

use std::time::Duration;

use prescient_bench::Scale;
use prescient_core::{DegradeConfig, PredictiveConfig};
use prescient_runtime::{Machine, MachineConfig, NodeCtx, ProtocolKind};
use prescient_stache::RetryConfig;
use prescient_tempest::{FaultPlan, GAddr};

const BLOCK: usize = 32;
const PHASE_W: u32 = 1;
const PHASE_R: u32 = 2;

struct Pattern {
    blocks: usize,
    iters: u64,
    /// Reader of block `b` at iteration `i`; rotating when true, fixed
    /// when false.
    rotate: bool,
}

fn run_pattern(mcfg: MachineConfig, pat: &Pattern) -> prescient_runtime::RunReport {
    let nodes = mcfg.nodes;
    let mut m = Machine::new(mcfg);
    let addrs: Vec<GAddr> = (0..pat.blocks)
        .map(|b| m.alloc_on((b % nodes) as u16, BLOCK as u64, BLOCK as u64))
        .collect();
    let (iters, rotate) = (pat.iters, pat.rotate);
    let (_, report) = m.run(move |ctx: &mut NodeCtx| {
        let me = ctx.me() as usize;
        let n = ctx.nodes();
        for iter in 0..iters {
            ctx.phase_begin(PHASE_W);
            for (b, &addr) in addrs.iter().enumerate() {
                if b % n == me {
                    ctx.write::<u64>(addr, iter * 1000 + b as u64);
                }
            }
            ctx.phase_end();
            ctx.phase_begin(PHASE_R);
            for (b, &addr) in addrs.iter().enumerate() {
                let reader = if rotate {
                    (b + 1 + iter as usize) % n // a different node each time
                } else {
                    (b + 1) % n
                };
                if reader == me {
                    let v = ctx.read::<u64>(addr);
                    assert_eq!(v, iter * 1000 + b as u64);
                }
            }
            ctx.phase_end();
        }
    });
    report
}

fn predictive_cfg(nodes: usize, degrade: bool) -> MachineConfig {
    let mut cfg = MachineConfig::predictive(nodes, BLOCK);
    cfg.protocol = ProtocolKind::Predictive(PredictiveConfig {
        degrade: DegradeConfig { enabled: degrade, ..Default::default() },
        ..Default::default()
    });
    cfg
}

fn row(label: &str, r: &prescient_runtime::RunReport) {
    let t = r.total_stats();
    let unused: u64 = r.per_node.iter().map(|n| n.unused_presends).sum();
    println!(
        "{label:<26} {:>8} {:>10} {:>10} {:>8} {:>8} {:>11.2}",
        t.misses(),
        t.presend_blocks_out,
        t.presend_useless + unused,
        t.degrade_events,
        t.retries,
        r.exec_time_ns() as f64 / 1e6,
    );
}

fn main() {
    let scale = Scale::from_args();
    let pat = if scale.paper {
        Pattern { blocks: 64, iters: 48, rotate: true }
    } else {
        Pattern { blocks: 24, iters: 24, rotate: true }
    };

    println!(
        "== Ablation: degradation under a rotating-reader adversary ({} nodes) ==\n",
        scale.nodes
    );
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>8} {:>8} {:>11}",
        "variant", "misses", "presendblk", "useless", "degrade", "retries", "total(ms)"
    );
    row("stache (no presend)", &run_pattern(MachineConfig::stache(scale.nodes, BLOCK), &pat));
    row("predictive, no degrade", &run_pattern(predictive_cfg(scale.nodes, false), &pat));
    row("predictive + degrade", &run_pattern(predictive_cfg(scale.nodes, true), &pat));
    println!(
        "\nEvery pre-send misses its reader; degradation caps the useless \
         stream at ~consecutive*blocks and converges to Stache behavior."
    );

    let stable = Pattern { rotate: false, ..pat };
    let retry = RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 };
    println!("\n== Reliability overhead: stable readers, clean vs chaotic fabric ==\n");
    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>8} {:>8} {:>11}",
        "variant", "misses", "presendblk", "useless", "degrade", "retries", "total(ms)"
    );
    row("clean fabric", &run_pattern(predictive_cfg(scale.nodes, true), &stable));
    row(
        "chaos fabric (seed 7)",
        &run_pattern(
            predictive_cfg(scale.nodes, true)
                .with_faults(FaultPlan::chaos(7))
                .with_retry(retry)
                .validated(),
            &stable,
        ),
    );
    println!(
        "\nDelays/dups/drops cost retries and virtual wait time, never \
         results: the chaotic run is validated coherent at teardown."
    );
}
