//! Table 1: the benchmark applications and their data sets, with the
//! scale this harness actually runs at each setting.

use prescient_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("== Table 1: Benchmark applications ==\n");
    println!(
        "{:<10} {:<36} {:<30} {:<30}",
        "Program", "Brief description", "Paper data set", "This run"
    );
    let rows = [
        (
            "Adaptive",
            "Structured adaptive mesh",
            "128x128 mesh, 100 iterations",
            if scale.paper {
                "128x128 mesh, 100 iterations".to_string()
            } else {
                "32x32 mesh, 10 iterations".to_string()
            },
        ),
        (
            "Barnes",
            "Gravitational N-body simulation",
            "16384 bodies, 3 iterations",
            if scale.paper {
                "16384 bodies, 3 iterations".to_string()
            } else {
                "1024 bodies, 2 iterations".to_string()
            },
        ),
        (
            "Water",
            "Molecular dynamics",
            "512 molecules, 20 iterations",
            if scale.paper {
                "512 molecules, 20 iterations".to_string()
            } else {
                "128 molecules, 6 iterations".to_string()
            },
        ),
    ];
    for (p, d, ds, run) in rows {
        println!("{p:<10} {d:<36} {ds:<30} {run:<30}");
    }
    println!(
        "\nMachine: {} emulated nodes (paper: 32-processor CM-5 under Blizzard).",
        scale.nodes
    );
    println!("Pass --paper for the full Table 1 data sets.");
}
