//! Figure 4: the control-flow graph of the Barnes main loop, annotated
//! with parallel-function access lists (a), and with the runtime phase
//! directives placed by the compiler analysis (b) — including the
//! coalescing optimization that leaves a *single* directive covering the
//! whole center-of-mass loop.

use prescient_cstar::cfg::CfgBuilder;
use prescient_cstar::dataflow::ReachingUnstructured;
use prescient_cstar::directives::{place_directives, render_plan};

fn barnes_cfg() -> prescient_cstar::cfg::Cfg {
    let universe = ["tree", "pos", "acc"].map(String::from);
    let mut b = CfgBuilder::new(universe);
    b.begin_loop("step");
    // load_tree: insert bodies into the shared oct-tree (unstructured
    // reads+writes of tree cells; home reads of positions).
    b.call("load_tree", &[("tree", false, false, true, true), ("pos", true, false, false, false)]);
    // center_of_mass: upward pass over own subtrees — home accesses only,
    // in a per-level loop.
    b.begin_loop("level");
    b.call("center_of_mass", &[("tree", true, true, false, false)]);
    b.end_loop();
    // forces: unstructured tree and position reads; home acceleration
    // writes.
    b.call(
        "forces",
        &[
            ("tree", false, false, true, false),
            ("pos", false, false, true, false),
            ("acc", false, true, false, false),
        ],
    );
    // advance: owner-writes positions (invalidating force-phase copies).
    b.call("advance", &[("pos", false, true, false, false), ("acc", true, false, false, false)]);
    b.end_loop();
    b.finish()
}

fn main() {
    let cfg = barnes_cfg();

    println!("== Figure 4(a): Barnes main-loop CFG with access lists ==\n");
    for (i, node) in cfg.nodes.iter().enumerate() {
        match node {
            prescient_cstar::cfg::CfgNode::Call(c) => {
                let acc: Vec<String> = c
                    .access
                    .iter()
                    .filter(|(_, pa)| pa.any())
                    .map(|(a, pa)| format!("({a}: {})", pa.describe()))
                    .collect();
                println!("  n{i}: {}  {}", c.func, acc.join(" "));
            }
            prescient_cstar::cfg::CfgNode::LoopHead { label } => {
                println!("  n{i}: loop head `{label}`");
            }
            other => println!("  n{i}: {other:?}"),
        }
        if !cfg.succs[i].is_empty() {
            println!("       -> {:?}", cfg.succs[i]);
        }
    }

    let sol = ReachingUnstructured::solve(&cfg);
    println!("\n== Reaching unstructured accesses (at each call's entry) ==\n");
    for &n in &cfg.call_nodes() {
        let c = cfg.call(n).unwrap();
        let reached: Vec<&str> = cfg
            .aggs
            .iter()
            .enumerate()
            .filter(|(b, _)| sol.reaches(n, *b))
            .map(|(_, a)| a.as_str())
            .collect();
        println!("  {:<16} reached by: {{{}}}", c.func, reached.join(", "));
    }

    let plan = place_directives(&cfg, &sol, true);
    println!("\n== Figure 4(b): with predictive-protocol phase directives ==\n");
    print!("{}", render_plan(&cfg, &plan));
    println!(
        "\n{} parallel phases placed (paper: 4 phases for Barnes, with a \
         single directive covering the center-of-mass loop).",
        plan.assignment.n_phases
    );

    let unopt = place_directives(&cfg, &sol, false);
    println!(
        "Without the coalescing/hoisting optimization: {} phases (directive \
         inside the center-of-mass loop, re-executed every level).",
        unopt.assignment.n_phases
    );
}
