//! Figure 4: the control-flow graph of the Barnes main loop, annotated
//! with parallel-function access lists (a), and with the runtime phase
//! directives placed by the compiler analysis (b) — including the
//! coalescing optimization that leaves a *single* directive covering the
//! whole center-of-mass loop.

use prescient_bench::cfg_models::barnes_cfg;
use prescient_cstar::dataflow::ReachingUnstructured;
use prescient_cstar::directives::{place_directives, render_plan};
use prescient_cstar::lint::audit_plan;

fn main() {
    let cfg = barnes_cfg();

    println!("== Figure 4(a): Barnes main-loop CFG with access lists ==\n");
    for (i, node) in cfg.nodes.iter().enumerate() {
        match node {
            prescient_cstar::cfg::CfgNode::Call(c) => {
                let acc: Vec<String> = c
                    .access
                    .iter()
                    .filter(|(_, pa)| pa.any())
                    .map(|(a, pa)| format!("({a}: {})", pa.describe()))
                    .collect();
                println!("  n{i}: {}  {}", c.func, acc.join(" "));
            }
            prescient_cstar::cfg::CfgNode::LoopHead { label } => {
                println!("  n{i}: loop head `{label}`");
            }
            other => println!("  n{i}: {other:?}"),
        }
        if !cfg.succs[i].is_empty() {
            println!("       -> {:?}", cfg.succs[i]);
        }
    }

    let sol = ReachingUnstructured::solve(&cfg).expect("barnes universe fits the bit-vector");
    println!("\n== Reaching unstructured accesses (at each call's entry) ==\n");
    for &n in &cfg.call_nodes() {
        let c = cfg.call(n).unwrap();
        let reached: Vec<&str> = cfg
            .aggs
            .iter()
            .enumerate()
            .filter(|(b, _)| sol.reaches(n, *b))
            .map(|(_, a)| a.as_str())
            .collect();
        println!("  {:<16} reached by: {{{}}}", c.func, reached.join(", "));
    }

    let plan = place_directives(&cfg, &sol, true);
    println!("\n== Figure 4(b): with predictive-protocol phase directives ==\n");
    print!("{}", render_plan(&cfg, &plan));
    println!(
        "\n{} parallel phases placed (paper: 4 phases for Barnes, with a \
         single directive covering the center-of-mass loop).",
        plan.assignment.n_phases
    );

    let unopt = place_directives(&cfg, &sol, false);
    println!(
        "Without the coalescing/hoisting optimization: {} phases (directive \
         inside the center-of-mass loop, re-executed every level).",
        unopt.assignment.n_phases
    );

    println!("\n== Plan audit (cstar-lint W001/W002/W007) ==\n");
    let findings = audit_plan(&cfg, &sol, &plan.assignment);
    if findings.is_empty() {
        println!("  no findings");
    }
    for d in &findings {
        println!("  {d}");
    }
}
