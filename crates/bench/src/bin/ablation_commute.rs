//! Ablation: the `commute` directive on Barnes' tree build.
//!
//! The build phase is the §3.4 conflict phase — tree blocks are both read
//! and written within one phase instance, so the predictive protocol must
//! leave them alone ("no action"). The commutativity analysis proves the
//! phase's aggregate updates mergeable (lint W007), and the
//! `CommutativeMerge` directive turns it into privatize-and-merge: delta
//! records exchanged in bulk at the phase barrier instead of demand scans
//! of every position block. This ablation runs Barnes under plain Stache
//! and under the commutative machine and reports the traffic reduction;
//! the checksums must be bit-identical down the column (the merged replay
//! reconstructs the serialized insertion order exactly).
//!
//! ```text
//! cargo run --release -p prescient-bench --bin ablation_commute -- --paper
//! ```

use std::time::Duration;

use prescient_apps::barnes::{run_barnes, run_barnes_commute, BarnesConfig};
use prescient_apps::AppRun;
use prescient_bench::Scale;
use prescient_runtime::MachineConfig;
use prescient_stache::RetryConfig;

fn retry() -> RetryConfig {
    RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 }
}

fn row(label: &str, r: &AppRun) {
    let t = r.report.total_stats();
    let bytes = t.data_bytes_in + t.presend_bytes_out;
    println!(
        "{label:<22} {:>10} {:>12} {:>14} {:>12} {:>18}",
        r.report.wall.as_millis(),
        t.msgs_out,
        bytes,
        t.misses() + t.presend_blocks_out,
        format!("{:016x}", r.checksum.to_bits()),
    );
}

fn main() {
    let scale = Scale::from_args();
    let bs = 128;
    let cfg = if scale.paper {
        BarnesConfig::default() // n = 16384, 3 steps
    } else {
        BarnesConfig { n: 512, steps: 2, ..Default::default() }
    };

    println!(
        "== Ablation: commutative-merge tree build (barnes n={}, {} steps, {} nodes, {bs}B \
         blocks) ==\n",
        cfg.n, cfg.steps, scale.nodes
    );
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>12} {:>18}",
        "version", "wall(ms)", "msgs", "bytes_moved", "blocks", "checksum"
    );

    let stache = run_barnes(MachineConfig::stache(scale.nodes, bs).with_retry(retry()), &cfg);
    row("stache (demand scan)", &stache);
    let commute =
        run_barnes_commute(MachineConfig::commutative(scale.nodes, bs).with_retry(retry()), &cfg);
    row("commutative merge", &commute);

    assert_eq!(
        commute.checksum.to_bits(),
        stache.checksum.to_bits(),
        "the merged build must be bit-identical to the demand-driven build"
    );
    let (ms, mc) = (stache.report.total_stats().msgs_out, commute.report.total_stats().msgs_out);
    assert!(mc < ms, "the merge must move fewer messages: {mc} vs {ms}");
    println!(
        "\nchecksums bit-identical; messages {ms} -> {mc} ({:.1}% of stache, {:.2}x reduction)",
        100.0 * mc as f64 / ms as f64,
        ms as f64 / mc as f64,
    );
}
