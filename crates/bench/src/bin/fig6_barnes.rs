//! Figure 6: execution time for five versions of **Barnes** — C\*\* with
//! and without optimized communication at 32 B and 1024 B cache blocks,
//! plus the hand-optimized SPMD version using an application-specific
//! write-update protocol (Falsafi et al.).
//!
//! Paper's shape: at 32 B the predictive protocol removes most of the
//! shared-memory wait; Barnes has excellent spatial locality, so the
//! unoptimized version benefits enormously from 1024 B blocks and ends up
//! marginally faster than the optimized one; both 1024 B versions edge out
//! the hand-optimized SPMD code.

use prescient_apps::barnes::{run_barnes, run_barnes_spmd, BarnesConfig};
use prescient_bench::{render_figure, speedup, Bar, Scale};
use prescient_runtime::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let cfg = if scale.paper {
        BarnesConfig::default() // 16384 bodies, 3 iterations
    } else {
        BarnesConfig { n: 1024, steps: 3, ..Default::default() }
    };

    let mut bars = Vec::new();
    for (label, mcfg, spmd) in [
        ("C** unoptimized (32B)", MachineConfig::stache(scale.nodes, 32), false),
        ("C** optimized (32B)", MachineConfig::predictive(scale.nodes, 32), false),
        ("C** unoptimized (1024B)", MachineConfig::stache(scale.nodes, 1024), false),
        ("C** optimized (1024B)", MachineConfig::predictive(scale.nodes, 1024), false),
        ("hand-opt SPMD update (1024B)", MachineConfig::predictive(scale.nodes, 1024), true),
    ] {
        eprintln!("running {label} ...");
        let run = if spmd { run_barnes_spmd(mcfg, &cfg) } else { run_barnes(mcfg, &cfg) };
        bars.push(Bar { label: label.to_string(), report: run.report });
    }

    println!(
        "{}",
        render_figure(
            &format!(
                "Figure 6: Barnes ({} bodies, {} iterations, {} nodes)",
                cfg.n, cfg.steps, scale.nodes
            ),
            &bars
        )
    );

    println!(
        "opt(32B) vs unopt(32B): {:.2}x  (paper: optimization wins clearly at 32B)",
        speedup(&bars[0], &bars[1])
    );
    println!(
        "unopt(1024B) vs opt(1024B): {:.2}x  (paper: unopt marginally faster at 1024B)",
        speedup(&bars[3], &bars[2])
    );
    println!(
        "C** opt(1024B) vs SPMD: {:.2}x  (paper: both 1024B versions slightly faster than SPMD)",
        speedup(&bars[4], &bars[3])
    );
}
