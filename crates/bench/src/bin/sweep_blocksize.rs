//! §5.4 block-size sensitivity: execution time of each application under
//! both protocols across cache-block sizes 32–1024 B.
//!
//! Paper's observation: "the predictive protocol worked best for small
//! cache blocks (the smallest being 32 bytes), while the unoptimized or
//! hand-tuned SPMD codes were able to exploit larger cache blocks
//! effectively."

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_bench::Scale;
use prescient_runtime::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let sizes = [32usize, 64, 128, 256, 512, 1024];

    println!("== Block-size sweep ({} nodes) ==", scale.nodes);
    println!(
        "{:<10} {:>6}  {:>14} {:>14} {:>9}",
        "app", "block", "unopt(ms)", "opt(ms)", "opt/unopt"
    );

    let wcfg = if scale.paper {
        WaterConfig::default()
    } else {
        WaterConfig { n: 128, steps: 4, ..Default::default() }
    };
    for bs in sizes {
        let u = run_water(MachineConfig::stache(scale.nodes, bs), &wcfg);
        let o = run_water(MachineConfig::predictive(scale.nodes, bs), &wcfg);
        row("water", bs, &u, &o);
    }

    let bcfg = if scale.paper {
        BarnesConfig::default()
    } else {
        BarnesConfig { n: 512, steps: 2, ..Default::default() }
    };
    for bs in sizes {
        let u = run_barnes(MachineConfig::stache(scale.nodes, bs), &bcfg);
        let o = run_barnes(MachineConfig::predictive(scale.nodes, bs), &bcfg);
        row("barnes", bs, &u, &o);
    }

    let acfg = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 24, iters: 8, tau: 0.5, max_depth: 3, flush_every: None }
    };
    for bs in sizes {
        let u = run_adaptive(MachineConfig::stache(scale.nodes, bs), &acfg);
        let o = run_adaptive(MachineConfig::predictive(scale.nodes, bs), &acfg);
        row("adaptive", bs, &u, &o);
    }
}

fn row(app: &str, bs: usize, u: &prescient_apps::AppRun, o: &prescient_apps::AppRun) {
    let ut = u.report.exec_time_ns() as f64 / 1e6;
    let ot = o.report.exec_time_ns() as f64 / 1e6;
    println!("{app:<10} {bs:>5}B  {ut:>14.2} {ot:>14.2} {:>9.2}", ot / ut);
}
