//! The CI perf gate: run all three evaluation applications (Table 1) on
//! the optimized (predictive) machine with fixed seeds and emit a
//! machine-readable baseline, `BENCH_prescient.json`.
//!
//! ```text
//! cargo run --release -p prescient-bench --bin perf_gate -- --paper
//! ```
//!
//! Flags: `--paper` (Table 1 scale: 32 nodes, 512 molecules / 16384 bodies
//! / 128×128 mesh), `--nodes N`, `--out PATH` (default
//! `BENCH_prescient.json` in the current directory).
//!
//! The JSON schema is documented in DESIGN.md §8. Every number is
//! deterministic for a given scale — virtual time, message counts, bytes
//! and checksums are seeded and fabric-order independent — except
//! `wall_ms`, which is the host wall clock and recorded for trend
//! eyeballing only.

use std::fmt::Write as _;
use std::time::Duration;

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_bench::Scale;
use prescient_runtime::MachineConfig;
use prescient_stache::RetryConfig;

struct Row {
    app: &'static str,
    config: String,
    run: AppRun,
}

/// One JSON object per app: identity, then the gated counter lines
/// spliced verbatim from [`RunReport::gate_counters_json`] — the report
/// serializer is the single source of truth for the counter schema
/// (DESIGN.md §8), so the gate cannot drift from it. Timing-dependent
/// keys (`wall_ms`, `wire_*`) are reported but never equality-gated.
fn render(rows: &[Row], scale: Scale, block_size: usize) -> String {
    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"suite\": \"prescient perf gate\",").unwrap();
    writeln!(s, "  \"scale\": \"{}\",", if scale.paper { "paper" } else { "reduced" }).unwrap();
    writeln!(s, "  \"nodes\": {},", scale.nodes).unwrap();
    writeln!(s, "  \"block_size\": {block_size},").unwrap();
    writeln!(s, "  \"apps\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        writeln!(s, "    {{").unwrap();
        writeln!(s, "      \"app\": \"{}\",", r.app).unwrap();
        writeln!(s, "      \"config\": \"{}\",", r.config).unwrap();
        writeln!(s, "      \"checksum\": \"{:016x}\",", r.run.checksum.to_bits()).unwrap();
        writeln!(s, "{}", r.run.report.gate_counters_json("      ")).unwrap();
        writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(s, "  ]").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_prescient.json".to_string());

    let block_size = 128;
    // The fabric is clean (no fault injection), so a retransmit can only
    // fire when the host schedules a protocol thread late — noise that
    // would perturb the gated `msgs`/`vtime_ns` counters on a loaded CI
    // runner. A generous timeout makes the counters load-independent.
    let retry = RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 };
    let mcfg = || MachineConfig::predictive(scale.nodes, block_size).with_retry(retry).validated();

    let water_cfg = if scale.paper {
        WaterConfig::default()
    } else {
        WaterConfig { n: 128, steps: 5, ..Default::default() }
    };
    let barnes_cfg = if scale.paper {
        BarnesConfig::default()
    } else {
        BarnesConfig { n: 512, steps: 2, ..Default::default() }
    };
    let adaptive_cfg = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 32, iters: 10, ..Default::default() }
    };

    eprintln!("perf gate: water (n={}, steps={}) ...", water_cfg.n, water_cfg.steps);
    let water = run_water(mcfg(), &water_cfg);
    eprintln!("perf gate: barnes (n={}, steps={}) ...", barnes_cfg.n, barnes_cfg.steps);
    let barnes = run_barnes(mcfg(), &barnes_cfg);
    eprintln!("perf gate: adaptive (n={}, iters={}) ...", adaptive_cfg.n, adaptive_cfg.iters);
    let adaptive = run_adaptive(mcfg(), &adaptive_cfg);

    let rows = [
        Row {
            app: "water",
            config: format!(
                "n={} steps={} seed={:#x}",
                water_cfg.n, water_cfg.steps, water_cfg.seed
            ),
            run: water,
        },
        Row {
            app: "barnes",
            config: format!(
                "n={} steps={} seed={:#x}",
                barnes_cfg.n, barnes_cfg.steps, barnes_cfg.seed
            ),
            run: barnes,
        },
        Row {
            app: "adaptive",
            config: format!(
                "n={} iters={} tau={} max_depth={}",
                adaptive_cfg.n, adaptive_cfg.iters, adaptive_cfg.tau, adaptive_cfg.max_depth
            ),
            run: adaptive,
        },
    ];

    let json = render(&rows, scale, block_size);
    std::fs::write(&out, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("perf gate: wrote {out}");
}
