//! The CI perf gate: run all three evaluation applications (Table 1) on
//! the optimized (predictive) machine with fixed seeds and emit a
//! machine-readable baseline, `BENCH_prescient.json`.
//!
//! ```text
//! cargo run --release -p prescient-bench --bin perf_gate -- --paper
//! ```
//!
//! Flags: `--paper` (Table 1 scale: 32 nodes, 512 molecules / 16384 bodies
//! / 128×128 mesh), `--nodes N`, `--out PATH` (default
//! `BENCH_prescient.json` in the current directory).
//!
//! The JSON schema is documented in DESIGN.md §8. Every number is
//! deterministic for a given scale — virtual time, message counts, bytes
//! and checksums are seeded and fabric-order independent — except
//! `wall_ms`, which is the host wall clock and recorded for trend
//! eyeballing only.

use std::fmt::Write as _;
use std::time::Duration;

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_bench::Scale;
use prescient_runtime::MachineConfig;
use prescient_stache::RetryConfig;

struct Row {
    app: &'static str,
    config: String,
    run: AppRun,
}

/// One JSON object per app: identity, wall/virtual time, and the traffic
/// counters the gate watches (blocks moved = demand misses + pre-sent
/// blocks — the paper's "amount of data moved" metric).
fn render(rows: &[Row], scale: Scale, block_size: usize) -> String {
    let mut s = String::new();
    writeln!(s, "{{").unwrap();
    writeln!(s, "  \"suite\": \"prescient perf gate\",").unwrap();
    writeln!(s, "  \"scale\": \"{}\",", if scale.paper { "paper" } else { "reduced" }).unwrap();
    writeln!(s, "  \"nodes\": {},", scale.nodes).unwrap();
    writeln!(s, "  \"block_size\": {block_size},").unwrap();
    writeln!(s, "  \"apps\": [").unwrap();
    for (i, r) in rows.iter().enumerate() {
        let t = r.run.report.total_stats();
        let blocks_moved = t.misses() + t.presend_blocks_out;
        let bytes_moved = t.data_bytes_in + t.presend_bytes_out;
        writeln!(s, "    {{").unwrap();
        writeln!(s, "      \"app\": \"{}\",", r.app).unwrap();
        writeln!(s, "      \"config\": \"{}\",", r.config).unwrap();
        writeln!(s, "      \"checksum\": \"{:016x}\",", r.run.checksum.to_bits()).unwrap();
        writeln!(s, "      \"wall_ms\": {},", r.run.report.wall.as_millis()).unwrap();
        writeln!(s, "      \"vtime_ns\": {},", r.run.report.exec_time_ns()).unwrap();
        writeln!(s, "      \"msgs\": {},", t.msgs_out).unwrap();
        writeln!(s, "      \"bytes_moved\": {bytes_moved},").unwrap();
        writeln!(s, "      \"blocks_moved\": {blocks_moved},").unwrap();
        writeln!(s, "      \"misses\": {},", t.misses()).unwrap();
        writeln!(s, "      \"presend_blocks\": {},", t.presend_blocks_out).unwrap();
        writeln!(s, "      \"presend_useless\": {},", t.presend_useless).unwrap();
        // Wire-level transport stats: batches on the fabric channels and
        // envelopes per batch. Timing-dependent (like wall_ms), so CI only
        // sanity-checks them (batches > 0, occupancy >= 1), never equality.
        writeln!(s, "      \"wire_batches\": {},", r.run.report.wire.batches).unwrap();
        writeln!(s, "      \"wire_occupancy\": {:.2},", r.run.report.wire.mean_occupancy())
            .unwrap();
        writeln!(s, "      \"local_pct\": {:.2}", r.run.report.local_fraction() * 100.0).unwrap();
        writeln!(s, "    }}{}", if i + 1 < rows.len() { "," } else { "" }).unwrap();
    }
    writeln!(s, "  ]").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_prescient.json".to_string());

    let block_size = 128;
    // The fabric is clean (no fault injection), so a retransmit can only
    // fire when the host schedules a protocol thread late — noise that
    // would perturb the gated `msgs`/`vtime_ns` counters on a loaded CI
    // runner. A generous timeout makes the counters load-independent.
    let retry = RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 };
    let mcfg = || MachineConfig::predictive(scale.nodes, block_size).with_retry(retry).validated();

    let water_cfg = if scale.paper {
        WaterConfig::default()
    } else {
        WaterConfig { n: 128, steps: 5, ..Default::default() }
    };
    let barnes_cfg = if scale.paper {
        BarnesConfig::default()
    } else {
        BarnesConfig { n: 512, steps: 2, ..Default::default() }
    };
    let adaptive_cfg = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 32, iters: 10, ..Default::default() }
    };

    eprintln!("perf gate: water (n={}, steps={}) ...", water_cfg.n, water_cfg.steps);
    let water = run_water(mcfg(), &water_cfg);
    eprintln!("perf gate: barnes (n={}, steps={}) ...", barnes_cfg.n, barnes_cfg.steps);
    let barnes = run_barnes(mcfg(), &barnes_cfg);
    eprintln!("perf gate: adaptive (n={}, iters={}) ...", adaptive_cfg.n, adaptive_cfg.iters);
    let adaptive = run_adaptive(mcfg(), &adaptive_cfg);

    let rows = [
        Row {
            app: "water",
            config: format!(
                "n={} steps={} seed={:#x}",
                water_cfg.n, water_cfg.steps, water_cfg.seed
            ),
            run: water,
        },
        Row {
            app: "barnes",
            config: format!(
                "n={} steps={} seed={:#x}",
                barnes_cfg.n, barnes_cfg.steps, barnes_cfg.seed
            ),
            run: barnes,
        },
        Row {
            app: "adaptive",
            config: format!(
                "n={} iters={} tau={} max_depth={}",
                adaptive_cfg.n, adaptive_cfg.iters, adaptive_cfg.tau, adaptive_cfg.max_depth
            ),
            run: adaptive,
        },
    ];

    let json = render(&rows, scale, block_size);
    std::fs::write(&out, &json).expect("write baseline json");
    print!("{json}");
    eprintln!("perf gate: wrote {out}");
}
