//! Ablation: egress batch threshold sweep.
//!
//! The fabric's aggregation layer packs consecutive same-destination
//! envelopes into wire batches; `max_batch` bounds how many pile up
//! before the buffer is force-flushed. This ablation runs the three
//! evaluation apps at thresholds 1 (batching off — the pre-batching
//! transport), 4, 16, and 64 and reports the wall-clock, the wire-level
//! batch counters, and the checksum (which must be identical down the
//! column: batching is transport-only and cannot change results).
//!
//! ```text
//! cargo run --release -p prescient-bench --bin ablation_batching -- --paper
//! ```

use std::time::Duration;

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_bench::Scale;
use prescient_runtime::MachineConfig;
use prescient_stache::RetryConfig;
use prescient_tempest::BatchConfig;

const SWEEP: [usize; 4] = [1, 4, 16, 64];

fn mcfg(nodes: usize, bs: usize, max_batch: usize) -> MachineConfig {
    let retry = RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 };
    MachineConfig::predictive(nodes, bs).with_retry(retry).with_batch(BatchConfig::new(max_batch))
}

fn row(app: &str, max_batch: usize, r: &AppRun) {
    let t = r.report.total_stats();
    println!(
        "{app:<10} {max_batch:>6} {:>10} {:>12} {:>10} {:>10.2} {:>10} {:>18}",
        r.report.wall.as_millis(),
        t.msgs_out,
        r.report.wire.batches,
        r.report.wire.mean_occupancy(),
        r.report.wire.envelopes,
        format!("{:016x}", r.checksum.to_bits()),
    );
}

fn main() {
    let scale = Scale::from_args();
    let bs = 128;

    println!("== Ablation: egress batch threshold ({} nodes, {bs}B blocks) ==\n", scale.nodes);
    println!(
        "{:<10} {:>6} {:>10} {:>12} {:>10} {:>10} {:>10} {:>18}",
        "app", "batch", "wall(ms)", "msgs", "batches", "occupancy", "wiremsgs", "checksum"
    );

    let wcfg = if scale.paper {
        WaterConfig::default()
    } else {
        WaterConfig { n: 128, steps: 5, ..Default::default() }
    };
    for max in SWEEP {
        let r = run_water(mcfg(scale.nodes, bs, max), &wcfg);
        row("water", max, &r);
    }

    let bcfg = if scale.paper {
        BarnesConfig::default()
    } else {
        BarnesConfig { n: 512, steps: 2, ..Default::default() }
    };
    for max in SWEEP {
        let r = run_barnes(mcfg(scale.nodes, bs, max), &bcfg);
        row("barnes", max, &r);
    }

    let acfg = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 32, iters: 10, ..Default::default() }
    };
    for max in SWEEP {
        let r = run_adaptive(mcfg(scale.nodes, bs, max), &acfg);
        row("adaptive", max, &r);
    }
}
