//! `prescient-metrics`: offline/live analyzer for metrics timelines.
//!
//! Input is either the live JSONL stream a machine appends while running
//! (`PRESCIENT_METRICS=stream:PATH`) or the `*.timeline.json` a machine
//! exports at teardown; both carry the same record lines.
//!
//! ```text
//! prescient-metrics report   FILE                  # per-phase tables
//! prescient-metrics watch    STREAM [--once]       # follow a live stream
//! prescient-metrics anomaly  FILE [--threshold N]  # flag deviant iterations
//! prescient-metrics merge    OUT PART [PART...]    # join per-process exports
//! prescient-metrics validate STREAM [TIMELINE]     # CI structural checks
//! ```
//!
//! `report` prints the phase-instance table (one row per `(run, phase,
//! iteration)` with the gate's traffic columns, the fetch-latency mean
//! and the wire occupancy), then per-run totals. `watch` tails a stream,
//! one formatted line per record as nodes cut them; `--once` drains what
//! is there and exits. `anomaly` compares every phase instance against
//! the median of its sibling iterations and attributes deviations to the
//! cause counters recorded in the same deltas (DESIGN.md §15). `merge`
//! reassembles the per-process exports of a two-process socket run into
//! one machine-wide timeline. `validate` checks that a stream parses,
//! reconciles record-for-record with its teardown timeline when one is
//! given, and exits non-zero on any mismatch.

use std::io::Read;
use std::process::ExitCode;

use prescient_bench::metrics::{detect_anomalies, load_stream, load_timeline, parse_stream};
use prescient_runtime::RunTimeline;
use prescient_tempest::PhaseRecord;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let r = match strs.as_slice() {
        ["report", file] => report(file),
        ["watch", stream] => watch(stream, false),
        ["watch", stream, "--once"] => watch(stream, true),
        ["anomaly", file] => anomaly(file, 50.0),
        ["anomaly", file, "--threshold", pct] => match pct.parse::<f64>() {
            Ok(p) => anomaly(file, p),
            Err(e) => Err(format!("--threshold {pct:?}: {e}")),
        },
        ["merge", out, parts @ ..] if !parts.is_empty() => merge(out, parts),
        ["validate", stream] => validate(stream, None),
        ["validate", stream, timeline] => validate(stream, Some(timeline)),
        _ => {
            eprintln!(
                "usage: prescient-metrics report FILE\n\
                 \x20      prescient-metrics watch STREAM [--once]\n\
                 \x20      prescient-metrics anomaly FILE [--threshold PCT]\n\
                 \x20      prescient-metrics merge OUT PART [PART...]\n\
                 \x20      prescient-metrics validate STREAM [TIMELINE]"
            );
            return ExitCode::from(2);
        }
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("prescient-metrics: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Load either input format: timeline JSON (has the `range_start` header)
/// or a JSONL stream (wrapped as a whole-machine timeline over the nodes
/// seen).
fn load_any(file: &str) -> Result<RunTimeline, String> {
    let head = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    if head.contains("\"range_start\": ") {
        load_timeline(file)
    } else {
        let records = parse_stream(&head).map_err(|e| format!("{file}: {e}"))?;
        let nodes = records.iter().map(|r| r.node as usize + 1).max().unwrap_or(0);
        Ok(RunTimeline::new(nodes, records))
    }
}

fn report(file: &str) -> Result<(), String> {
    let t = load_any(file)?;
    println!(
        "== metrics timeline: {file} ({} nodes, range {}..{}, {} records) ==",
        t.nodes,
        t.range.start,
        t.range.end(),
        t.records.len()
    );
    println!(
        "\n{:>3} {:>5} {:>4} {:>5} {:>12} {:>8} {:>12} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "run",
        "phase",
        "iter",
        "cuts",
        "vtime(ms)",
        "msgs",
        "bytes",
        "blocks",
        "misses",
        "presend",
        "fetch(us)",
        "occ"
    );
    for g in t.phases() {
        let label = if g.phase == 0 { "gap".to_string() } else { g.phase.to_string() };
        println!(
            "{:>3} {:>5} {:>4} {:>5} {:>12.3} {:>8} {:>12} {:>8} {:>8} {:>8} {:>10.2} {:>6.2}",
            g.run,
            label,
            g.iter,
            g.records,
            g.vtime_ns as f64 / 1e6,
            g.stats.msgs_out,
            g.bytes_moved(),
            g.blocks_moved(),
            g.stats.misses(),
            g.stats.presend_blocks_out,
            g.fetch.mean_ns() / 1e3,
            g.wire.map_or(1.0, |w| w.mean_occupancy()),
        );
    }
    println!();
    for run in t.runs() {
        let mut stats = prescient_tempest::stats::StatsSnapshot::default();
        let mut vtime = prescient_tempest::TimeBreakdown::default();
        for r in t.records.iter().filter(|r| r.run == run) {
            stats = stats.merge(&r.stats);
            vtime = vtime.merge(&r.vtime);
        }
        println!(
            "run {run}: vtime {:.3} ms (wait {:.1}%)  msgs {}  bytes {}  misses {}  \
             presend {} ({} useless)",
            vtime.total_ns() as f64 / 1e6,
            vtime.wait_ns as f64 / vtime.total_ns().max(1) as f64 * 100.0,
            stats.msgs_out,
            stats.data_bytes_in + stats.presend_bytes_out,
            stats.misses(),
            stats.presend_blocks_out,
            stats.presend_useless,
        );
    }
    Ok(())
}

fn fmt_record(r: &PhaseRecord) -> String {
    let label = if r.phase == 0 { "gap".to_string() } else { format!("p{}", r.phase) };
    format!(
        "run {} {:>4} iter {:>2} node {:>2}  vtime {:>9.3} ms  msgs {:>6}  bytes {:>9}  \
         misses {:>5}  fetch n={}",
        r.run,
        label,
        r.iter,
        r.node,
        r.vtime.total_ns() as f64 / 1e6,
        r.stats.msgs_out,
        r.stats.data_bytes_in + r.stats.presend_bytes_out,
        r.stats.misses(),
        r.fetch.n(),
    )
}

/// Tail a live stream: print each record as its line lands in the file.
/// The publisher appends whole lines and flushes per batch, so reading
/// from the last seen offset and splitting on complete lines is safe.
fn watch(stream: &str, once: bool) -> Result<(), String> {
    let mut seen = 0usize;
    let mut buf = String::new();
    loop {
        buf.clear();
        let mut f = std::fs::File::open(stream).map_err(|e| format!("{stream}: {e}"))?;
        f.read_to_string(&mut buf).map_err(|e| format!("{stream}: {e}"))?;
        let new = &buf[seen.min(buf.len())..];
        let complete = new.rfind('\n').map_or(0, |i| i + 1);
        for line in new[..complete].lines() {
            match PhaseRecord::parse_line(line) {
                Ok(r) => println!("{}", fmt_record(&r)),
                Err(e) => eprintln!("prescient-metrics: skipping bad line ({e})"),
            }
        }
        seen += complete;
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

fn anomaly(file: &str, threshold_pct: f64) -> Result<(), String> {
    let t = load_any(file)?;
    let hits = detect_anomalies(&t, threshold_pct);
    if hits.is_empty() {
        println!(
            "no anomalies: every phase instance within {threshold_pct}% of its siblings' median"
        );
        return Ok(());
    }
    println!("{} anomalies (threshold {threshold_pct}%):", hits.len());
    for a in &hits {
        let cause =
            if a.causes.is_empty() { "unexplained".to_string() } else { a.causes.join("; ") };
        println!(
            "  run {} phase {} iter {}: {} = {} vs median {} ({:+.0}%)  <- {cause}",
            a.run,
            a.phase,
            a.iter,
            a.metric,
            a.value,
            a.median,
            if a.value >= a.median { a.deviation_pct } else { -a.deviation_pct },
        );
    }
    Ok(())
}

fn merge(out: &str, parts: &[&str]) -> Result<(), String> {
    let loaded: Result<Vec<RunTimeline>, String> = parts.iter().map(|p| load_timeline(p)).collect();
    let merged = RunTimeline::merge(loaded?)?;
    std::fs::write(out, merged.to_json()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "merged {} part(s) -> {out}: {} nodes, {} records",
        parts.len(),
        merged.nodes,
        merged.records.len()
    );
    Ok(())
}

fn validate(stream: &str, timeline: Option<&str>) -> Result<(), String> {
    let records = load_stream(stream)?;
    if records.is_empty() {
        return Err(format!("{stream}: no records"));
    }
    // Per-(node, run) seq must be gapless from 0 — a gap means lost
    // records. (seq restarts each run: a run builds fresh node contexts.)
    let keys: std::collections::BTreeSet<(u16, u64)> =
        records.iter().map(|r| (r.node, r.run)).collect();
    for (node, run) in keys {
        let mut seqs: Vec<u64> =
            records.iter().filter(|r| r.node == node && r.run == run).map(|r| r.seq).collect();
        seqs.sort_unstable();
        for (want, got) in seqs.iter().enumerate() {
            if *got != want as u64 {
                return Err(format!("node {node} run {run}: seq gap, expected {want} got {got}"));
            }
        }
    }
    if let Some(tl) = timeline {
        let t = load_timeline(tl)?;
        if t.records != records {
            return Err(format!(
                "{stream} ({} records) and {tl} ({} records) disagree",
                records.len(),
                t.records.len()
            ));
        }
    }
    println!(
        "ok: {} records{}",
        records.len(),
        if timeline.is_some() { ", stream == timeline" } else { "" }
    );
    Ok(())
}
