//! Ablation: metrics-timeline overhead and the zero-perturbation bar.
//!
//! Runs the three evaluation apps with metrics off, then with metrics
//! streaming to a live JSONL file, and
//!
//! * **asserts** the eight gated perf-gate columns (checksum, vtime,
//!   msgs, bytes/blocks moved, misses, pre-sends, useless pre-sends) are
//!   bit-identical — recording must not change what is being measured;
//! * **reconciles** the live stream phase-by-phase against the measured
//!   run's report (the telescoping-sum invariant, at full app scale);
//! * **reports** the only honest cost, wall-clock, as an off/on table
//!   for EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p prescient-bench --bin ablation_metrics -- --paper
//! ```

use std::time::Duration;

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_bench::metrics::load_stream;
use prescient_bench::Scale;
use prescient_runtime::{MachineConfig, RunTimeline};
use prescient_stache::RetryConfig;
use prescient_tempest::MetricsConfig;

/// The perf gate's eight equality-gated columns.
fn gated(r: &AppRun) -> [(&'static str, u64); 8] {
    let t = r.report.total_stats();
    [
        ("checksum", r.checksum.to_bits()),
        ("vtime_ns", r.report.exec_time_ns()),
        ("msgs", t.msgs_out),
        ("bytes_moved", t.data_bytes_in + t.presend_bytes_out),
        ("blocks_moved", t.misses() + t.presend_blocks_out),
        ("misses", t.misses()),
        ("presend_blocks", t.presend_blocks_out),
        ("presend_useless", t.presend_useless),
    ]
}

fn mcfg(nodes: usize) -> MachineConfig {
    let retry = RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 };
    MachineConfig::predictive(nodes, 128).with_retry(retry)
}

/// The measured run is the second `Machine::run` of every app driver
/// (setup / measured / gather).
const MEASURED_RUN: u64 = 2;

fn compare(app: &str, off: &AppRun, on: &AppRun, stream: &str) {
    for ((name, a), (_, b)) in gated(off).iter().zip(gated(on)) {
        assert_eq!(
            *a, b,
            "{app}: gated column {name} changed with metrics on ({a} vs {b}) — \
             the zero-perturbation bar is broken"
        );
    }
    let records = load_stream(stream).expect("live stream parses");
    let nodes = records.iter().map(|r| r.node as usize + 1).max().unwrap_or(0);
    let timeline = RunTimeline::new(nodes, records);
    timeline
        .reconciles_with(&on.report, MEASURED_RUN)
        .expect("stream reconciles with the measured report");
    let cuts = timeline.records.iter().filter(|r| r.run == MEASURED_RUN).count();
    let off_ms = off.report.wall.as_secs_f64() * 1e3;
    let on_ms = on.report.wall.as_secs_f64() * 1e3;
    println!(
        "{app:<10} {:>10.1} {:>10.1} {:>8.1}% {:>8} {:>8}",
        off_ms,
        on_ms,
        (on_ms - off_ms) / off_ms.max(1e-9) * 100.0,
        timeline.records.len(),
        cuts,
    );
}

fn main() {
    let scale = Scale::from_args();
    let dir = std::env::temp_dir();
    let stream_for = |app: &str| {
        let mut p = dir.clone();
        p.push(format!("prescient_ablation_metrics_{}_{app}.jsonl", std::process::id()));
        p.to_string_lossy().into_owned()
    };

    println!("== Ablation: metrics timeline overhead ({} nodes, 128B blocks) ==", scale.nodes);
    println!("(gated columns asserted bit-identical off vs on; wall-clock is the whole cost)\n");
    println!(
        "{:<10} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "app", "off(ms)", "on(ms)", "overhead", "records", "measured"
    );

    let wcfg = if scale.paper {
        WaterConfig::default()
    } else {
        WaterConfig { n: 128, steps: 5, ..Default::default() }
    };
    let ws = stream_for("water");
    let off = run_water(mcfg(scale.nodes), &wcfg);
    let on = run_water(mcfg(scale.nodes).with_metrics(MetricsConfig::stream(&ws)), &wcfg);
    compare("water", &off, &on, &ws);

    let bcfg = if scale.paper {
        BarnesConfig::default()
    } else {
        BarnesConfig { n: 512, steps: 2, ..Default::default() }
    };
    let bsm = stream_for("barnes");
    let off = run_barnes(mcfg(scale.nodes), &bcfg);
    let on = run_barnes(mcfg(scale.nodes).with_metrics(MetricsConfig::stream(&bsm)), &bcfg);
    compare("barnes", &off, &on, &bsm);

    let acfg = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 32, iters: 10, ..Default::default() }
    };
    let asm = stream_for("adaptive");
    let off = run_adaptive(mcfg(scale.nodes), &acfg);
    let on = run_adaptive(mcfg(scale.nodes).with_metrics(MetricsConfig::stream(&asm)), &acfg);
    compare("adaptive", &off, &on, &asm);

    for s in [&ws, &bsm, &asm] {
        let _ = std::fs::remove_file(s);
        let _ = std::fs::remove_file(format!("{s}.timeline.json"));
    }
    println!("\nall gated columns bit-identical off vs on; streams reconcile with the reports");
}
