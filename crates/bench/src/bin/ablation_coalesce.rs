//! Ablation: pre-send block coalescing on/off (§3.4).
//!
//! The pre-send phase coalesces runs of neighboring blocks with identical
//! targets into bulk messages, amortizing per-message startup. This
//! ablation runs Water and Adaptive with coalescing disabled and reports
//! the message-count and pre-send-time inflation.

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_bench::Scale;
use prescient_core::PredictiveConfig;
use prescient_runtime::{MachineConfig, ProtocolKind};

fn mcfg(nodes: usize, bs: usize, coalesce: bool) -> MachineConfig {
    MachineConfig {
        protocol: ProtocolKind::Predictive(PredictiveConfig { coalesce, ..Default::default() }),
        ..MachineConfig::predictive(nodes, bs)
    }
}

fn main() {
    let scale = Scale::from_args();

    println!("== Ablation: pre-send coalescing ({} nodes, 32B blocks) ==\n", scale.nodes);
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>12} {:>12}",
        "app", "coalesce", "presendblk", "presendmsg", "presend(ms)", "total(ms)"
    );

    let wcfg = if scale.paper {
        WaterConfig::default()
    } else {
        WaterConfig { n: 128, steps: 5, ..Default::default() }
    };
    for coalesce in [true, false] {
        let r = run_water(mcfg(scale.nodes, 32, coalesce), &wcfg);
        row("water", coalesce, &r);
    }

    let acfg = if scale.paper {
        AdaptiveConfig::default()
    } else {
        AdaptiveConfig { n: 24, iters: 8, tau: 0.5, max_depth: 3, flush_every: None }
    };
    for coalesce in [true, false] {
        let r = run_adaptive(mcfg(scale.nodes, 32, coalesce), &acfg);
        row("adaptive", coalesce, &r);
    }
}

fn row(app: &str, coalesce: bool, r: &prescient_apps::AppRun) {
    let t = r.report.total_stats();
    let presend_ms = r.report.mean_breakdown().presend_ns as f64 / 1e6;
    let total_ms = r.report.exec_time_ns() as f64 / 1e6;
    println!(
        "{app:<10} {:<10} {:>12} {:>12} {presend_ms:>12.2} {total_ms:>12.2}",
        coalesce, t.presend_blocks_out, t.presend_msgs_out
    );
}
