//! Figure 5: execution time for four versions of **Adaptive** — C\*\*
//! with and without optimized communication at two cache-block sizes
//! (32 B and 256 B), stacked into remote-data wait / predictive protocol /
//! compute+synch.
//!
//! Paper's shape: the predictive protocol cuts shared-data wait *and*
//! synchronization time (the wait imbalance feeds the barriers); at 256 B
//! the unoptimized version improves (spatial locality) while pre-sending
//! gets less effective (redundant data), and the best optimized version is
//! ~1.56× faster than the best unoptimized one.

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_bench::{render_figure, speedup, Bar, Scale};
use prescient_runtime::MachineConfig;

fn main() {
    let scale = Scale::from_args();
    let cfg = if scale.paper {
        AdaptiveConfig::default() // 128x128, 100 iterations
    } else {
        AdaptiveConfig { n: 32, iters: 10, tau: 0.5, max_depth: 3, flush_every: None }
    };

    let mut bars = Vec::new();
    for (label, mcfg) in [
        ("C** unoptimized (32B)", MachineConfig::stache(scale.nodes, 32)),
        ("C** optimized (32B)", MachineConfig::predictive(scale.nodes, 32)),
        ("C** unoptimized (256B)", MachineConfig::stache(scale.nodes, 256)),
        ("C** optimized (256B)", MachineConfig::predictive(scale.nodes, 256)),
    ] {
        eprintln!("running {label} ...");
        let run = run_adaptive(mcfg, &cfg);
        bars.push(Bar { label: label.to_string(), report: run.report });
    }

    println!(
        "{}",
        render_figure(
            &format!(
                "Figure 5: Adaptive ({}x{} mesh, {} iterations, {} nodes)",
                cfg.n, cfg.n, cfg.iters, scale.nodes
            ),
            &bars
        )
    );

    let best_unopt = if speedup(&bars[0], &bars[2]) > 1.0 { &bars[2] } else { &bars[0] };
    let best_opt = if speedup(&bars[1], &bars[3]) > 1.0 { &bars[3] } else { &bars[1] };
    println!(
        "best optimized vs best unoptimized: {:.2}x (paper: 1.56x)",
        speedup(best_unopt, best_opt)
    );
}
