//! Per-block demand-traffic aggregation over recorded traces, shared by
//! `prescient-trace` (the `report` traffic matrix and the `emit-remap`
//! subcommand) and `ablation_placement` (which runs the full
//! record → emit-remap → rerun pipeline in-process).
//!
//! The aggregation is the offline twin of the online placement policy
//! (`prescient_stache::placement`): every `GetShared` a home handles
//! scores 1 for the requester, every `GetExcl` scores 2 — writers drag
//! invalidation rounds behind them, so co-locating the home with the
//! writer saves more than co-locating with a reader. A block whose top
//! scorer strictly beats every other requester re-homes there; ties and
//! blocks their own home dominates stay put (DESIGN.md §14).

use std::collections::{BTreeMap, HashMap};

use prescient_tempest::trace::{unpack_msg, EventKind, TraceEvent};
use prescient_tempest::NodeId;

/// Weighted demand traffic of one block: which home served it (the last
/// receiver seen, so a run with live migration reports the final home)
/// and each requester's score.
#[derive(Default)]
pub struct BlockTraffic {
    /// The home that served the block's requests (last receiver seen).
    pub home: NodeId,
    /// Weighted score per requester (2 per exclusive, 1 per shared).
    pub score: HashMap<NodeId, u64>,
}

impl BlockTraffic {
    /// Total weighted traffic of the block.
    pub fn total(&self) -> u64 {
        self.score.values().sum()
    }

    /// The strictly dominant requester, if any: the unique node whose
    /// score beats every other requester's. A tie for the top leaves the
    /// block where it is (`None`).
    pub fn dominant(&self) -> Option<NodeId> {
        let (&best, &s) = self.score.iter().max_by_key(|&(n, s)| (*s, std::cmp::Reverse(*n)))?;
        if self.score.iter().any(|(&n, &v)| n != best && v >= s) {
            None
        } else {
            Some(best)
        }
    }
}

/// Aggregate `MsgRecv` demand requests (GetShared = 1×, GetExcl = 2×) per
/// block. This is the exact aggregation `emit-remap` decides from.
pub fn traffic_tally(events: &[TraceEvent]) -> BTreeMap<u64, BlockTraffic> {
    let mut tally: BTreeMap<u64, BlockTraffic> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == EventKind::MsgRecv) {
        let (code, src) = unpack_msg(e.a);
        let weight = match code {
            1 => 1, // GetShared
            2 => 2, // GetExcl
            _ => continue,
        };
        let t = tally.entry(e.b).or_default();
        t.home = e.node;
        *t.score.entry(src).or_default() += weight;
    }
    tally
}

/// Distill a recorded run into remap-file text (`HomeMap` format: one
/// `block home` line per re-homed block), loadable with
/// `PRESCIENT_PLACEMENT=remap:<path>`.
pub fn emit_remap(events: &[TraceEvent]) -> String {
    let mut out = String::from("# block home  (emit-remap: dominant-requester placement)\n");
    for (block, t) in traffic_tally(events) {
        if let Some(d) = t.dominant() {
            if d != t.home {
                out.push_str(&format!("{block} {d}\n"));
            }
        }
    }
    out
}

// ---- JSONL parsing --------------------------------------------------------

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let i = line.find(&pat)? + pat.len();
    line[i..].split('"').next()
}

/// Parse one line of a trace JSONL export.
pub fn parse_trace_line(line: &str) -> Result<TraceEvent, String> {
    let kind_name = field_str(line, "kind").ok_or("missing kind")?;
    let kind =
        EventKind::from_name(kind_name).ok_or_else(|| format!("unknown kind {kind_name:?}"))?;
    Ok(TraceEvent {
        node: field_u64(line, "node").ok_or("missing node")? as NodeId,
        seq: field_u64(line, "seq").ok_or("missing seq")?,
        t_ns: field_u64(line, "t").ok_or("missing t")?,
        phase: field_u64(line, "phase").ok_or("missing phase")? as u32,
        kind,
        a: field_u64(line, "a").ok_or("missing a")?,
        b: field_u64(line, "b").ok_or("missing b")?,
    })
}

/// Load a trace JSONL export from disk.
pub fn load_trace(path: &str) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_trace_line(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Detect wrapped trace rings: a node whose stream's lowest sequence
/// number is above zero lost its oldest events to ring-buffer wrap (the
/// tracer is a flight recorder; see `prescient_tempest::trace`). Returns
/// `(node, events_lost)` per wrapped node — sequence numbers are dense,
/// so the first surviving seq *is* the drop count.
pub fn wrapped_nodes(events: &[TraceEvent]) -> Vec<(NodeId, u64)> {
    let mut first: BTreeMap<NodeId, u64> = BTreeMap::new();
    for e in events {
        let f = first.entry(e.node).or_insert(e.seq);
        *f = (*f).min(e.seq);
    }
    first.into_iter().filter(|&(_, seq)| seq > 0).collect()
}

/// Print the loud per-node wrapped-ring warning analyses share: every
/// aggregate computed from a wrapped stream undercounts, and `what` says
/// which decision is at risk (a traffic report, a remap emission).
pub fn warn_wrapped(events: &[TraceEvent], what: &str) {
    for (node, lost) in wrapped_nodes(events) {
        eprintln!(
            "WARNING: node {node}: trace ring wrapped, ~{lost} oldest events lost — \
             {what} undercounts this node's early traffic (rerun with a larger \
             PRESCIENT_TRACE capacity for full coverage)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: NodeId, seq: u64) -> TraceEvent {
        TraceEvent { node, seq, t_ns: 0, phase: 0, kind: EventKind::PhaseBegin, a: 0, b: 0 }
    }

    #[test]
    fn wrap_detection_counts_lost_events() {
        // Node 0 intact (seq from 0); node 1 wrapped, oldest surviving
        // seq 40 => 40 events lost; order in the stream must not matter.
        let events = vec![ev(1, 41), ev(0, 0), ev(1, 40), ev(0, 1), ev(1, 42)];
        assert_eq!(wrapped_nodes(&events), vec![(1, 40)]);
        assert_eq!(wrapped_nodes(&[ev(0, 0), ev(1, 0)]), vec![]);
    }
}
