//! Offline analysis of metrics timelines, shared by `prescient-metrics`
//! (the CLI) and the reconciliation tests.
//!
//! Input is either the live JSONL stream a machine appends to while
//! running (`PRESCIENT_METRICS=stream:PATH`, one [`PhaseRecord`] per
//! line) or the merged `*.timeline.json` exported at teardown — the
//! latter embeds the exact same record lines, so both load through the
//! same parser and are textually comparable.
//!
//! The anomaly detector exploits the paper's iterative structure: the
//! same phase id recurs once per outer iteration with near-identical
//! traffic, so a phase instance whose gated metrics deviate from the
//! median of its *sibling* iterations is worth flagging — and the cause
//! counters recorded in the same deltas (schedule rebuilds, degradation
//! flushes, migration windows, crash recoveries) usually name the reason.

use prescient_runtime::{PhaseGroup, RunTimeline};
use prescient_tempest::socket::NodeRange;
use prescient_tempest::PhaseRecord;

/// Load a JSONL stream file: one [`PhaseRecord`] per line.
pub fn load_stream(path: &str) -> Result<Vec<PhaseRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_stream(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parse JSONL stream text (split out for tests and for `watch`).
pub fn parse_stream(text: &str) -> Result<Vec<PhaseRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(PhaseRecord::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Load a `*.timeline.json` export: the header gives the machine size and
/// the node range this file covers (a two-process socket run exports one
/// file per side), and every embedded record line parses with the stream
/// parser.
pub fn load_timeline(path: &str) -> Result<RunTimeline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_timeline(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parse timeline JSON text.
pub fn parse_timeline(text: &str) -> Result<RunTimeline, String> {
    let nodes = header_u64(text, "nodes")? as usize;
    let start = header_u64(text, "range_start")? as u16;
    let len = header_u64(text, "range_len")? as u16;
    let mut records = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"node\":") {
            continue;
        }
        records.push(
            PhaseRecord::parse_line(line).map_err(|e| format!("bad record line ({e}): {line}"))?,
        );
    }
    Ok(RunTimeline::with_range(nodes, NodeRange::new(start, len), records))
}

/// Read a `"key": value` header field (the repo's substring JSON idiom;
/// header keys are distinct from the compact `"key":value` record lines,
/// which carry no space after the colon).
fn header_u64(text: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\": ");
    let at = text.find(&pat).ok_or_else(|| format!("missing header field {key:?}"))?;
    let rest = &text[at + pat.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse::<u64>().map_err(|e| format!("header field {key:?}: {e}"))
}

/// One flagged phase instance: a gated metric of `(run, phase, iter)`
/// deviated from the median of the same phase's other iterations.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Run ordinal of the flagged instance.
    pub run: u64,
    /// Phase id.
    pub phase: u32,
    /// Iteration ordinal within the run.
    pub iter: u64,
    /// Which metric deviated (`bytes_moved`, `misses`, ...).
    pub metric: &'static str,
    /// The instance's value.
    pub value: u64,
    /// Median of the sibling iterations' values.
    pub median: u64,
    /// Deviation from the median, in percent of the median.
    pub deviation_pct: f64,
    /// Causes recorded in the same deltas (empty = unexplained).
    pub causes: Vec<String>,
}

/// The per-instance metrics the detector watches: the gate's traffic
/// columns plus virtual time.
fn watched(g: &PhaseGroup) -> [(&'static str, u64); 5] {
    [
        ("vtime_ns", g.vtime_ns),
        ("msgs", g.stats.msgs_out),
        ("bytes_moved", g.bytes_moved()),
        ("blocks_moved", g.blocks_moved()),
        ("misses", g.stats.misses()),
    ]
}

/// Cause counters carried by the instance's own deltas, with the
/// human-readable attribution the report prints.
fn causes_of(g: &PhaseGroup) -> Vec<String> {
    let mut out = Vec::new();
    let s = &g.stats;
    if s.sched_records > 0 {
        out.push(format!("schedule rebuild ({} records)", s.sched_records));
    }
    if s.degrade_events > 0 {
        out.push(format!("degradation flush ({} events)", s.degrade_events));
    }
    if s.migrations > 0 || s.forwards > 0 {
        out.push(format!("migration window ({} moves, {} forwards)", s.migrations, s.forwards));
    }
    if s.recoveries > 0 || s.replays > 0 {
        out.push(format!("crash recovery ({} recoveries, {} replays)", s.recoveries, s.replays));
    }
    if s.remapped_blocks > 0 {
        out.push(format!("home remap ({} blocks)", s.remapped_blocks));
    }
    out
}

/// Flag phase instances whose watched metrics deviate more than
/// `threshold_pct` percent from the median of the same `(run, phase)`
/// pair's *other* iterations. Gap records (phase 0) and phases with
/// fewer than three iterations (no meaningful median) are skipped.
pub fn detect_anomalies(timeline: &RunTimeline, threshold_pct: f64) -> Vec<Anomaly> {
    let groups = timeline.phases();
    let mut out = Vec::new();
    for g in groups.iter().filter(|g| g.phase != 0) {
        let siblings: Vec<&PhaseGroup> = groups
            .iter()
            .filter(|o| o.run == g.run && o.phase == g.phase && o.iter != g.iter)
            .collect();
        if siblings.len() < 2 {
            continue;
        }
        for (i, (metric, value)) in watched(g).into_iter().enumerate() {
            let mut vals: Vec<u64> = siblings.iter().map(|o| watched(o)[i].1).collect();
            vals.sort_unstable();
            let median = vals[vals.len() / 2];
            let dev = value.abs_diff(median) as f64 / median.max(1) as f64 * 100.0;
            if dev > threshold_pct {
                out.push(Anomaly {
                    run: g.run,
                    phase: g.phase,
                    iter: g.iter,
                    metric,
                    value,
                    median,
                    deviation_pct: dev,
                    causes: causes_of(g),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescient_tempest::stats::StatsSnapshot;
    use prescient_tempest::{LatencyHist, TimeBreakdown};

    fn rec(node: u16, seq: u64, phase: u32, iter: u64, msgs: u64) -> PhaseRecord {
        PhaseRecord {
            node,
            seq,
            run: 1,
            phase,
            iter,
            version: seq,
            vtime: TimeBreakdown { compute_ns: 100, wait_ns: 0, presend_ns: 0, synch_ns: 0 },
            stats: StatsSnapshot { msgs_out: msgs, ..StatsSnapshot::default() },
            fetch: LatencyHist::default(),
            wire: None,
        }
    }

    #[test]
    fn stream_roundtrips() {
        let recs = vec![rec(0, 0, 1, 0, 3), rec(1, 0, 1, 0, 4)];
        let text: String = recs.iter().map(|r| r.to_json_line() + "\n").collect();
        assert_eq!(parse_stream(&text).unwrap(), recs);
        assert!(parse_stream("{\"node\":oops}\n").is_err());
    }

    #[test]
    fn timeline_roundtrips_through_json() {
        let t = RunTimeline::new(2, vec![rec(0, 0, 1, 0, 3), rec(1, 0, 1, 0, 4)]);
        let back = parse_timeline(&t.to_json()).unwrap();
        assert_eq!(back.nodes, 2);
        assert_eq!(back.range, NodeRange::new(0, 2));
        assert_eq!(back.records, t.records);
        assert!(parse_timeline("{}").is_err(), "missing header is loud");
    }

    #[test]
    fn detector_flags_the_deviant_iteration_with_causes() {
        // Phase 1 runs 5 iterations with msgs = 10, except iteration 3
        // which triples — and carries a degradation flush to explain it.
        let mut records = Vec::new();
        for it in 0..5u64 {
            let mut r = rec(0, it, 1, it, if it == 3 { 30 } else { 10 });
            if it == 3 {
                r.stats.degrade_events = 2;
            }
            records.push(r);
        }
        let t = RunTimeline::new(1, records);
        let hits = detect_anomalies(&t, 50.0);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!((hits[0].phase, hits[0].iter, hits[0].metric), (1, 3, "msgs"));
        assert_eq!(hits[0].median, 10);
        assert!(hits[0].causes[0].contains("degradation flush"), "{:?}", hits[0].causes);
        // Steady traffic below the threshold stays quiet.
        assert!(detect_anomalies(&t, 250.0).is_empty());
    }

    #[test]
    fn detector_needs_enough_siblings() {
        let t = RunTimeline::new(1, vec![rec(0, 0, 1, 0, 10), rec(0, 1, 1, 1, 99)]);
        assert!(detect_anomalies(&t, 10.0).is_empty(), "two iterations have no median");
    }
}
