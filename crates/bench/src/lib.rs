//! # prescient-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§5), plus the ablations DESIGN.md calls out. One binary per
//! experiment (`src/bin/`), Criterion microbenches in `benches/`.
//!
//! Every figure binary accepts:
//!
//! * `--paper` — run at the paper's Table 1 scale (32 nodes, full data
//!   sets). The default is a reduced scale that preserves the figures'
//!   *shape* while staying friendly to small CI machines.
//! * `--nodes N` — override the node count.
//!
//! The output format mirrors the paper's stacked bars: per version, the
//! total virtual execution time normalized to the fastest version, split
//! into *remote data wait*, *predictive protocol* (pre-send), and
//! *compute + synch*.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg_models;
pub mod metrics;
pub mod traffic;

use prescient_runtime::RunReport;

/// Command-line scale options shared by the figure binaries.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Run at the paper's full scale.
    pub paper: bool,
    /// Node count (paper: 32).
    pub nodes: usize,
}

impl Scale {
    /// Parse from `std::env::args`: `--paper`, `--nodes N`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let paper = args.iter().any(|a| a == "--paper");
        let mut nodes = if paper { 32 } else { 8 };
        if let Some(i) = args.iter().position(|a| a == "--nodes") {
            nodes = args.get(i + 1).and_then(|v| v.parse().ok()).expect("--nodes needs a number");
        }
        Scale { paper, nodes }
    }
}

/// One measured version of a benchmark (one bar of a figure).
pub struct Bar {
    /// Version label, e.g. `"C** optimized (32B)"`.
    pub label: String,
    /// The run.
    pub report: RunReport,
}

/// Render a figure: the paper's stacked bars, normalized to the fastest
/// version, plus the raw protocol counters.
pub fn render_figure(title: &str, bars: &[Bar]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "== {title} ==").unwrap();
    let best = bars.iter().map(|b| b.report.exec_time_ns()).min().unwrap_or(1).max(1);
    writeln!(
        s,
        "{:<34} {:>9} {:>11} {:>9} {:>9} {:>9}  bar",
        "version", "rel.time", "total(ms)", "wait%", "presend%", "cs%"
    )
    .unwrap();
    for b in bars {
        let total = b.report.exec_time_ns().max(1);
        let m = b.report.mean_breakdown();
        let wait = m.wait_ns as f64 / total as f64;
        let pre = m.presend_ns as f64 / total as f64;
        let cs = m.compute_synch_ns() as f64 / total as f64;
        let rel = total as f64 / best as f64;
        let width = (rel * 30.0).round() as usize;
        let w_w = (wait * width as f64).round() as usize;
        let w_p = (pre * width as f64).round() as usize;
        let w_c = width.saturating_sub(w_w + w_p);
        writeln!(
            s,
            "{:<34} {:>9.2} {:>11.2} {:>8.1}% {:>8.1}% {:>8.1}%  {}{}{}",
            b.label,
            rel,
            total as f64 / 1e6,
            wait * 100.0,
            pre * 100.0,
            cs * 100.0,
            "W".repeat(w_w),
            "P".repeat(w_p),
            "=".repeat(w_c),
        )
        .unwrap();
    }
    writeln!(
        s,
        "\n{:<34} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "counters", "misses", "slow", "presend", "msgs", "local%"
    )
    .unwrap();
    for b in bars {
        let t = b.report.total_stats();
        writeln!(
            s,
            "{:<34} {:>10} {:>10} {:>10} {:>10} {:>9.2}%",
            b.label,
            t.misses(),
            t.slow_misses,
            t.presend_blocks_out,
            t.msgs_out,
            b.report.local_fraction() * 100.0
        )
        .unwrap();
    }
    s
}

/// Ratio of two bars' execution times (`a` over `b`).
pub fn speedup(a: &Bar, b: &Bar) -> f64 {
    a.report.exec_time_ns() as f64 / b.report.exec_time_ns() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescient_runtime::{Machine, MachineConfig, NodeCtx};

    fn tiny_report() -> RunReport {
        let mut m = Machine::new(MachineConfig::stache(2, 32));
        let (_, r) = m.run(|ctx: &mut NodeCtx| {
            ctx.work(100);
            ctx.barrier();
        });
        r
    }

    #[test]
    fn render_contains_labels_and_percentages() {
        let bars = vec![
            Bar { label: "unopt".into(), report: tiny_report() },
            Bar { label: "opt".into(), report: tiny_report() },
        ];
        let out = render_figure("test figure", &bars);
        assert!(out.contains("test figure"));
        assert!(out.contains("unopt"));
        assert!(out.contains("wait%"));
        assert!(out.contains("local%"));
    }

    #[test]
    fn speedup_is_ratio() {
        let a = Bar { label: "a".into(), report: tiny_report() };
        let b = Bar { label: "b".into(), report: tiny_report() };
        let s = speedup(&a, &b);
        assert!(s > 0.0 && s.is_finite());
    }
}
