//! Hand-built analysis CFGs of the paper's three applications (§5), in the
//! style of Figure 4 — the inputs for auditing the compiler's directive
//! placement with the plan-level lints (`prescient_cstar::audit_plan`).
//!
//! Each model records, per parallel call, the merged Read/Write ×
//! Home/NonHome access classes of the real app phase it stands for
//! (`prescient-apps`); the access tuples are `(aggregate, home_read,
//! home_write, nonhome_read, nonhome_write)`.

use prescient_cstar::cfg::{Cfg, CfgBuilder};

/// The Barnes main loop of Figure 4: tree build (unstructured tree
/// reads+writes), per-level center-of-mass pass (home-only), force
/// computation (unstructured tree/position reads), and advance
/// (owner-writes positions).
pub fn barnes_cfg() -> Cfg {
    let universe = ["tree", "pos", "acc"].map(String::from);
    let mut b = CfgBuilder::new(universe);
    b.begin_loop("step");
    // load_tree: insert bodies into the shared oct-tree (unstructured
    // reads+writes of tree cells; home reads of positions). Tree insertion
    // is an associative-commutative aggregate update — the commutativity
    // analysis proves the phase mergeable (the audit suggests `commute`,
    // lint W007), though the model leaves the call unannotated like the
    // plain app.
    b.call_commuting(
        "load_tree",
        &[("tree", false, false, true, true), ("pos", true, false, false, false)],
        &["tree"],
        false,
    );
    // center_of_mass: upward pass over own subtrees — home accesses only,
    // in a per-level loop.
    b.begin_loop("level");
    b.call("center_of_mass", &[("tree", true, true, false, false)]);
    b.end_loop();
    // forces: unstructured tree and position reads; home acceleration
    // writes.
    b.call(
        "forces",
        &[
            ("tree", false, false, true, false),
            ("pos", false, false, true, false),
            ("acc", false, true, false, false),
        ],
    );
    // advance: owner-writes positions (invalidating force-phase copies).
    b.call("advance", &[("pos", false, true, false, false), ("acc", true, false, false, false)]);
    b.end_loop();
    b.finish()
}

/// The adaptive red/black relaxation (`prescient_apps::adaptive`): red and
/// black root values live in *separate* aggregates precisely so that no
/// phase both reads and writes one aggregate — the design the app's module
/// docs call out to avoid §3.4 conflict blocks. `refine` rebuilds the mesh
/// tables with home-only accesses.
pub fn adaptive_cfg() -> Cfg {
    let universe = ["red", "black", "mesh"].map(String::from);
    let mut b = CfgBuilder::new(universe);
    b.begin_loop("solve");
    b.begin_loop("sweep");
    // Red sweep: owner-writes red cells from (remote) black neighbors,
    // located through the home-read mesh tables.
    b.call(
        "red_sweep",
        &[
            ("red", false, true, false, false),
            ("black", false, false, true, false),
            ("mesh", true, false, false, false),
        ],
    );
    // Black sweep: the mirror image.
    b.call(
        "black_sweep",
        &[
            ("black", false, true, false, false),
            ("red", false, false, true, false),
            ("mesh", true, false, false, false),
        ],
    );
    b.end_loop();
    // Refinement: each node rewrites its own mesh tables.
    b.call("refine", &[("mesh", true, true, false, false)]);
    b.end_loop();
    b.finish()
}

/// The water md loop (`prescient_apps::water`): the interaction phase reads
/// remote molecule positions (forces accumulate through runtime reductions,
/// which are not protocol traffic); the advance phase owner-writes the
/// positions.
pub fn water_cfg() -> Cfg {
    let universe = ["pos", "forces"].map(String::from);
    let mut b = CfgBuilder::new(universe);
    b.begin_loop("step");
    b.call(
        "interactions",
        &[("pos", false, false, true, false), ("forces", false, true, false, false)],
    );
    b.call("advance", &[("pos", false, true, false, false), ("forces", true, false, false, false)]);
    b.end_loop();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_build_and_have_expected_calls() {
        assert_eq!(barnes_cfg().call_nodes().len(), 4);
        assert_eq!(adaptive_cfg().call_nodes().len(), 3);
        assert_eq!(water_cfg().call_nodes().len(), 2);
    }
}
