//! Audit the compiler's directive placement over the hand-built CFG models
//! of the paper's applications with the plan-level lints (W001/W002).
//!
//! Expected picture (recorded in EXPERIMENTS.md): every placed directive is
//! live (no W002 anywhere); the only phase conflict is Barnes' tree-build
//! phase, whose unstructured tree reads+writes are exactly the §3.4
//! conflict case the paper discusses; adaptive (by its separate red/black
//! aggregates) and water are fully conflict-free.

use prescient_bench::cfg_models::{adaptive_cfg, barnes_cfg, water_cfg};
use prescient_cstar::directives::place_directives;
use prescient_cstar::{audit_plan, Cfg, Diagnostic, ReachingUnstructured};

fn audit(cfg: &Cfg) -> Vec<Diagnostic> {
    let sol = ReachingUnstructured::solve(cfg).expect("small universes");
    let plan = place_directives(cfg, &sol, true);
    audit_plan(cfg, &sol, &plan.assignment)
}

#[test]
fn barnes_flags_only_the_tree_build_conflict() {
    let ds = audit(&barnes_cfg());
    assert_eq!(ds.len(), 1, "{ds:#?}");
    assert_eq!(ds[0].code, "W001");
    assert!(ds[0].message.contains("`tree`"), "{}", ds[0].message);
    assert!(ds[0].notes.iter().any(|n| n.contains("load_tree")), "{ds:#?}");
}

#[test]
fn adaptive_placement_is_conflict_free() {
    let ds = audit(&adaptive_cfg());
    assert!(ds.is_empty(), "{ds:#?}");
}

#[test]
fn water_placement_is_conflict_free() {
    let ds = audit(&water_cfg());
    assert!(ds.is_empty(), "{ds:#?}");
}
