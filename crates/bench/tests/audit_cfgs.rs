//! Audit the compiler's directive placement over the hand-built CFG models
//! of the paper's applications with the plan-level lints (W001/W002/W007).
//!
//! Expected picture (recorded in EXPERIMENTS.md): every placed directive is
//! live (no W002 anywhere); the only phase conflict is Barnes' tree-build
//! phase, whose unstructured tree reads+writes are exactly the §3.4
//! conflict case the paper discusses — and the commutativity analysis
//! proves that phase mergeable, so the audit additionally suggests the
//! `commute` directive (W007); adaptive (by its separate red/black
//! aggregates) and water are fully conflict-free.

use prescient_bench::cfg_models::{adaptive_cfg, barnes_cfg, water_cfg};
use prescient_cstar::directives::place_directives;
use prescient_cstar::{audit_plan, Cfg, Diagnostic, ReachingUnstructured};

fn audit(cfg: &Cfg) -> Vec<Diagnostic> {
    let sol = ReachingUnstructured::solve(cfg).expect("small universes");
    let plan = place_directives(cfg, &sol, true);
    audit_plan(cfg, &sol, &plan.assignment)
}

#[test]
fn barnes_flags_the_tree_build_conflict_and_suggests_commute() {
    let ds = audit(&barnes_cfg());
    assert_eq!(ds.len(), 2, "{ds:#?}");
    let w001 = ds.iter().find(|d| d.code == "W001").expect("conflict lint present");
    assert!(w001.message.contains("`tree`"), "{}", w001.message);
    assert!(w001.notes.iter().any(|n| n.contains("load_tree")), "{ds:#?}");
    let w007 = ds.iter().find(|d| d.code == "W007").expect("commute suggestion present");
    assert!(w007.message.contains("`tree`"), "{}", w007.message);
    assert!(w007.message.contains("load_tree"), "{}", w007.message);
    assert!(w007.message.contains("commute"), "{}", w007.message);
}

#[test]
fn adaptive_placement_is_conflict_free() {
    let ds = audit(&adaptive_cfg());
    assert!(ds.is_empty(), "{ds:#?}");
}

#[test]
fn water_placement_is_conflict_free() {
    let ds = audit(&water_cfg());
    assert!(ds.is_empty(), "{ds:#?}");
}
