//! Reconciliation tests over the three evaluation applications: every
//! per-phase delta record cut by the metrics timeline must sum *exactly*
//! to the measured run's report (the telescoping-sum invariant at app
//! scale), and turning metrics on must leave the gated perf columns
//! bit-identical on both in-process fabric backends.

use std::time::Duration;

use prescient_apps::adaptive::{run_adaptive, AdaptiveConfig};
use prescient_apps::barnes::{run_barnes, BarnesConfig};
use prescient_apps::water::{run_water, WaterConfig};
use prescient_apps::AppRun;
use prescient_bench::metrics::load_stream;
use prescient_runtime::{FabricKind, MachineConfig, RunTimeline};
use prescient_stache::RetryConfig;
use prescient_tempest::MetricsConfig;

const NODES: usize = 4;

/// App drivers run setup / measured / gather; the `AppRun` report is the
/// measured run.
const MEASURED_RUN: u64 = 2;

fn mcfg(fabric: FabricKind) -> MachineConfig {
    // Generous timeout: a host-load retry would perturb the off-vs-on
    // comparison (retries bill wait vtime).
    MachineConfig::predictive(NODES, 64)
        .with_retry(RetryConfig { timeout: Duration::from_secs(30), max_retries: 4 })
        .with_fabric(fabric)
}

fn stream_path(tag: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("prescient_metrics_reconcile_{}_{tag}.jsonl", std::process::id()));
    p.to_string_lossy().into_owned()
}

/// Run an app with metrics streaming, then check the live stream's
/// records reconcile with the measured report — per node, per counter,
/// exactly — and that phase records actually exist (the apps are phased).
fn reconcile(tag: &str, run: impl FnOnce(MachineConfig) -> AppRun) {
    let path = stream_path(tag);
    let _ = std::fs::remove_file(&path);
    let app = run(mcfg(FabricKind::Channel).with_metrics(MetricsConfig::stream(&path)));
    let records = load_stream(&path).expect("live stream parses");
    let timeline = RunTimeline::new(NODES, records);
    timeline
        .reconciles_with(&app.report, MEASURED_RUN)
        .expect("phase deltas must sum exactly to the measured report");
    let phased = timeline.records.iter().filter(|r| r.run == MEASURED_RUN && r.phase != 0).count();
    assert!(phased > 0, "{tag}: the measured run must cut real phase records");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(format!("{path}.timeline.json"));
}

#[test]
fn water_stream_reconciles_with_the_measured_report() {
    let cfg = WaterConfig { n: 64, steps: 4, ..Default::default() };
    reconcile("water", |m| run_water(m, &cfg));
}

#[test]
fn barnes_stream_reconciles_with_the_measured_report() {
    let cfg = BarnesConfig { n: 256, steps: 2, ..Default::default() };
    reconcile("barnes", |m| run_barnes(m, &cfg));
}

#[test]
fn adaptive_stream_reconciles_with_the_measured_report() {
    let cfg = AdaptiveConfig { n: 16, iters: 6, ..Default::default() };
    reconcile("adaptive", |m| run_adaptive(m, &cfg));
}

/// The perf gate's equality-gated signature.
fn gated(r: &AppRun) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    let t = r.report.total_stats();
    (
        r.checksum.to_bits(),
        r.report.exec_time_ns(),
        t.msgs_out,
        t.data_bytes_in + t.presend_bytes_out,
        t.misses() + t.presend_blocks_out,
        t.misses(),
        t.presend_blocks_out,
        t.presend_useless,
    )
}

/// Metrics on (in-memory hub, the worst-perturbation mode: every cut
/// still happens) vs off must leave the gated signature bit-identical —
/// on the channel backend and on the sharded backend, whose handler
/// interleavings differ.
fn zero_perturbation(fabric: FabricKind) {
    let cfg = WaterConfig { n: 64, steps: 4, ..Default::default() };
    let off = run_water(mcfg(fabric).with_metrics(MetricsConfig::off()), &cfg);
    let on = run_water(mcfg(fabric).with_metrics(MetricsConfig::on()), &cfg);
    assert_eq!(gated(&off), gated(&on), "gated columns must be bit-identical off vs on");
}

#[test]
fn metrics_do_not_perturb_the_channel_backend() {
    zero_perturbation(FabricKind::Channel);
}

#[test]
fn metrics_do_not_perturb_the_sharded_backend() {
    zero_perturbation(FabricKind::Sharded { shards: 2 });
}
