//! Drives the genuine two-OS-process socket-fabric smoke test: the
//! `socket_smoke` binary spawns a child process hosting the other half
//! of the machine, runs the cross-process exclusive-increment torture,
//! and exits non-zero on any divergence (see its module docs). This is
//! the backend-matrix CI job's proof that the socket transport works
//! across a real process boundary, not just in-process loopback.

use std::process::Command;

use prescient_bench::metrics::load_timeline;
use prescient_runtime::RunTimeline;

#[test]
fn two_process_socket_fabric_converges() {
    let exe = env!("CARGO_BIN_EXE_socket_smoke");
    let out = Command::new(exe).output().expect("run socket_smoke");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "socket_smoke failed:\nstdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("PASS"), "missing PASS marker:\nstdout: {stdout}\nstderr: {stderr}");
}

/// Satellite: each process of a socket run exports its node range's
/// timeline (`{base}.{start}-{end}.timeline.json`); the parts carry the
/// range in their schema and merge back into the whole 4-node machine,
/// both in-library and through the `prescient-metrics merge` CLI.
#[test]
fn two_process_timeline_exports_merge() {
    let mut base = std::env::temp_dir();
    base.push(format!("prescient_socket_metrics_{}", std::process::id()));
    let base = base.to_string_lossy().into_owned();
    let lo = format!("{base}.0-2.timeline.json");
    let hi = format!("{base}.2-4.timeline.json");
    let _ = std::fs::remove_file(&lo);
    let _ = std::fs::remove_file(&hi);

    let exe = env!("CARGO_BIN_EXE_socket_smoke");
    // The child inherits the parent's environment, so one env var makes
    // both processes export their halves.
    let out =
        Command::new(exe).env("PRESCIENT_METRICS_OUT", &base).output().expect("run socket_smoke");
    assert!(
        out.status.success(),
        "socket_smoke failed:\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let part_lo = load_timeline(&lo).expect("parent half exported");
    let part_hi = load_timeline(&hi).expect("child half exported");
    assert_eq!((part_lo.nodes, part_hi.nodes), (4, 4));
    assert_eq!((part_lo.range.start, part_lo.range.end()), (0, 2));
    assert_eq!((part_hi.range.start, part_hi.range.end()), (2, 4));

    let merged = RunTimeline::merge(vec![part_hi, part_lo]).expect("ranges partition 0..4");
    assert_eq!((merged.range.start, merged.range.end()), (0, 4));
    assert_eq!(merged.records.len(), 4, "one whole-run record per node");
    let nodes: Vec<u16> = {
        let mut v: Vec<u16> = merged.records.iter().map(|r| r.node).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(nodes, vec![0, 1, 2, 3]);
    // The torture sends real cross-process traffic from every node.
    for r in &merged.records {
        assert!(r.stats.msgs_out > 0, "node {}: no messages recorded", r.node);
    }

    // The CLI merge must agree with the in-library merge.
    let cli = env!("CARGO_BIN_EXE_prescient-metrics");
    let merged_path = format!("{base}.merged.json");
    let out = Command::new(cli)
        .args(["merge", &merged_path, &lo, &hi])
        .output()
        .expect("run prescient-metrics merge");
    assert!(
        out.status.success(),
        "merge CLI failed:\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reloaded = load_timeline(&merged_path).expect("merged file loads");
    assert_eq!(reloaded.records, merged.records);
    assert_eq!(reloaded.totals(), merged.totals());

    for f in [&lo, &hi, &merged_path] {
        let _ = std::fs::remove_file(f);
    }
}
