//! Drives the genuine two-OS-process socket-fabric smoke test: the
//! `socket_smoke` binary spawns a child process hosting the other half
//! of the machine, runs the cross-process exclusive-increment torture,
//! and exits non-zero on any divergence (see its module docs). This is
//! the backend-matrix CI job's proof that the socket transport works
//! across a real process boundary, not just in-process loopback.

use std::process::Command;

#[test]
fn two_process_socket_fabric_converges() {
    let exe = env!("CARGO_BIN_EXE_socket_smoke");
    let out = Command::new(exe).output().expect("run socket_smoke");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "socket_smoke failed:\nstdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("PASS"), "missing PASS marker:\nstdout: {stdout}\nstderr: {stderr}");
}
