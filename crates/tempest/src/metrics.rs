//! Phase-granular run telemetry: live per-node metric timelines.
//!
//! Cumulative counters ([`crate::stats`]) answer "how much, over the whole
//! run"; trace rings ([`crate::trace`]) answer "when, per event" but are
//! flight recorders that wrap at paper scale. This module sits between the
//! two: at every phase barrier each node cuts a **delta snapshot** of its
//! counters and virtual-time breakdown into a [`PhaseRecord`], and pushes
//! it into a shared [`MetricsHub`] that a background publisher can drain
//! *while the run is still going* — as JSONL heartbeats appended to a
//! stream file, or as a merged Prometheus text-exposition snapshot served
//! over a tiny TCP endpoint ([`MetricsServer`]).
//!
//! # Zero perturbation
//!
//! Recording must not change what is being measured. Every cut is taken on
//! the compute thread at a phase boundary it was crossing anyway, costs
//! only relaxed atomic loads plus a `Vec` push under an uncontended mutex,
//! bills **no virtual time**, and sends **no messages** — so the gated
//! perf-counter columns (vtime, msgs, bytes/blocks moved, misses,
//! pre-sends) are bit-identical with metrics off and on, by construction.
//! Wall-clock is the only cost, and it is measured honestly in
//! EXPERIMENTS.md.
//!
//! # Exactness
//!
//! A cut races the node's protocol-handler thread (which keeps serving
//! remote requests right up to the barrier), so *which* phase an event is
//! attributed to is approximate at the margin. The per-node **sums** are
//! not: records are deltas between consecutive snapshots of the same
//! cumulative counters, so they telescope —
//! `(c1-c0) + (c2-c1) + … + (cn-c(n-1)) = cn - c0` — and reconcile
//! exactly with the teardown `RunReport`, whatever the races did.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::stats::{StatsSnapshot, TimeBreakdown, WireSnapshot};
use crate::NodeId;

/// Metrics policy of one machine.
///
/// Unlike [`crate::trace::TraceConfig`] this carries optional output
/// targets (a stream path and a TCP listen address), so it is `Clone`
/// rather than `Copy`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsConfig {
    /// Master switch. Off = no hub, no cuts, no threads.
    pub enabled: bool,
    /// Append one JSONL line per phase record to this file, live.
    pub stream: Option<String>,
    /// Serve the merged snapshot in Prometheus text-exposition format on
    /// this `host:port` address (`:0` picks a free port; see
    /// `Machine::metrics_addr`).
    pub tcp: Option<String>,
}

impl MetricsConfig {
    /// Metrics disabled.
    pub fn off() -> MetricsConfig {
        MetricsConfig::default()
    }

    /// Metrics enabled, in-memory only (drain via `Machine::timeline`).
    pub fn on() -> MetricsConfig {
        MetricsConfig { enabled: true, stream: None, tcp: None }
    }

    /// Metrics enabled, streaming JSONL records to `path` as they are cut.
    pub fn stream(path: impl Into<String>) -> MetricsConfig {
        MetricsConfig { enabled: true, stream: Some(path.into()), tcp: None }
    }

    /// Metrics enabled, serving Prometheus text on `addr`.
    pub fn tcp(addr: impl Into<String>) -> MetricsConfig {
        MetricsConfig { enabled: true, stream: None, tcp: Some(addr.into()) }
    }

    /// Parse a `PRESCIENT_METRICS` value: `0`/`off` disable, `1`/`on`
    /// enable in-memory, `stream:PATH` streams JSONL to PATH, `tcp:ADDR`
    /// serves Prometheus text on ADDR (`host:port`).
    pub fn parse(s: &str) -> Result<MetricsConfig, String> {
        let t = s.trim();
        match t {
            "" | "0" | "off" => return Ok(MetricsConfig::off()),
            "1" | "on" => return Ok(MetricsConfig::on()),
            _ => {}
        }
        if let Some(path) = t.strip_prefix("stream:") {
            if path.is_empty() {
                return Err("PRESCIENT_METRICS: \"stream:\" needs a file path".into());
            }
            return Ok(MetricsConfig::stream(path));
        }
        if let Some(addr) = t.strip_prefix("tcp:") {
            if addr.is_empty() || !addr.contains(':') {
                return Err(format!(
                    "PRESCIENT_METRICS: \"tcp:\" needs a host:port address, got {addr:?}"
                ));
            }
            return Ok(MetricsConfig::tcp(addr));
        }
        Err(format!(
            "PRESCIENT_METRICS: expected \"on\", \"off\", \"stream:PATH\" or \"tcp:ADDR\", \
             got {s:?}"
        ))
    }

    /// The `PRESCIENT_METRICS` override, if set. Panics on an unparsable
    /// value rather than silently recording nothing.
    pub fn from_env() -> Option<MetricsConfig> {
        let v = std::env::var("PRESCIENT_METRICS").ok()?;
        match MetricsConfig::parse(&v) {
            Ok(m) => Some(m),
            Err(e) => panic!("{e}"),
        }
    }

    /// The env override if present, else disabled.
    pub fn default_for_machine() -> MetricsConfig {
        MetricsConfig::from_env().unwrap_or_else(MetricsConfig::off)
    }
}

/// A log2-bucketed latency histogram, cheap enough to feed from the fault
/// path: one `leading_zeros` and one array increment per sample, no
/// atomics (it lives in compute-thread-local metrics state).
///
/// Bucket `i` holds samples with `2^i <= v < 2^(i+1)` ns (bucket 0 also
/// takes v = 0); the last bucket is open-ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHist {
    /// Sample counts per power-of-two bucket.
    pub counts: [u64; LatencyHist::NUM_BUCKETS],
    /// Sum of all samples, ns.
    pub sum_ns: u64,
    /// Largest sample, ns.
    pub max_ns: u64,
}

impl Default for LatencyHist {
    fn default() -> LatencyHist {
        LatencyHist { counts: [0; LatencyHist::NUM_BUCKETS], sum_ns: 0, max_ns: 0 }
    }
}

impl LatencyHist {
    /// Number of buckets: 2^31 ns ≈ 2.1 s covers any plausible fetch.
    pub const NUM_BUCKETS: usize = 32;

    /// Record one sample.
    pub fn record(&mut self, v_ns: u64) {
        let b = (63 - v_ns.max(1).leading_zeros() as usize).min(Self::NUM_BUCKETS - 1);
        self.counts[b] += 1;
        self.sum_ns += v_ns;
        self.max_ns = self.max_ns.max(v_ns);
    }

    /// Number of samples.
    pub fn n(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean sample, ns (0.0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.n();
        if n == 0 {
            0.0
        } else {
            self.sum_ns as f64 / n as f64
        }
    }

    /// Element-wise sum.
    pub fn merge(&self, o: &LatencyHist) -> LatencyHist {
        let mut counts = self.counts;
        for (c, x) in counts.iter_mut().zip(o.counts) {
            *c += x;
        }
        LatencyHist { counts, sum_ns: self.sum_ns + o.sum_ns, max_ns: self.max_ns.max(o.max_ns) }
    }

    /// Sparse `"bucket:count bucket:count"` encoding of the non-zero
    /// buckets (empty string when no samples).
    pub fn encode(&self) -> String {
        encode_sparse(&self.counts)
    }

    /// Inverse of [`LatencyHist::encode`]; `sum_ns`/`max_ns` travel as
    /// separate fields and are supplied by the caller.
    pub fn decode(s: &str, sum_ns: u64, max_ns: u64) -> Result<LatencyHist, String> {
        let mut counts = [0u64; Self::NUM_BUCKETS];
        decode_sparse(s, &mut counts)?;
        Ok(LatencyHist { counts, sum_ns, max_ns })
    }
}

fn encode_sparse(counts: &[u64]) -> String {
    let mut s = String::new();
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&format!("{i}:{c}"));
        }
    }
    s
}

fn decode_sparse(s: &str, counts: &mut [u64]) -> Result<(), String> {
    for part in s.split_whitespace() {
        let (i, c) = part.split_once(':').ok_or_else(|| format!("bad hist entry {part:?}"))?;
        let i: usize = i.parse().map_err(|_| format!("bad hist bucket {part:?}"))?;
        let c: u64 = c.parse().map_err(|_| format!("bad hist count {part:?}"))?;
        *counts.get_mut(i).ok_or_else(|| format!("hist bucket {i} out of range"))? = c;
    }
    Ok(())
}

/// One delta cut of one node's counters: what this node did between the
/// previous cut and this one.
///
/// Two kinds of record share the shape, distinguished by `phase`:
///
/// * **phase records** (`phase > 0`): cut when the phase's `phase_end`
///   commits; they span from the phase's *first* `phase_begin` to the
///   commit, so a crash-replayed phase produces exactly one record whose
///   deltas match the rolled-back-and-recounted stats arithmetic.
/// * **gap records** (`phase == 0`): cut at the next `phase_begin` (or at
///   run teardown) and carry everything that happened *between* phases —
///   setup traffic, migration windows, checkpoints, the run's tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Node the record belongs to.
    pub node: NodeId,
    /// Per-node cut ordinal within the run, 0-based: orders this node's
    /// records without trusting file order.
    pub seq: u64,
    /// 1-based ordinal of the `Machine::run` call on its machine (apps
    /// typically run setup / measured / gather as runs 1–3).
    pub run: u64,
    /// Phase id for phase records, 0 for gap records.
    pub phase: u32,
    /// 0-based iteration ordinal of this phase id within the run (the
    /// paper's iterative structure: the same phase id recurs once per
    /// outer iteration). 0 for gap records.
    pub iter: u64,
    /// The node's phase-version counter at the cut (total `phase_begin`
    /// count, diagnostics).
    pub version: u64,
    /// Virtual-time accrued since the previous cut.
    pub vtime: TimeBreakdown,
    /// Counter deltas since the previous cut.
    pub stats: StatsSnapshot,
    /// Fetch-latency histogram of the misses billed since the previous
    /// cut (the wait actually charged, including retry penalties).
    pub fetch: LatencyHist,
    /// Wire-level delta since the previous cut. The wire counters are
    /// fabric-global, so only node 0 records them; at gap cuts the fabric
    /// may not be quiescent, so these are approximate and never
    /// equality-gated.
    pub wire: Option<WireSnapshot>,
}

impl PhaseRecord {
    /// One-line JSON encoding — the stream format, also embedded verbatim
    /// in the `RunTimeline` JSON. Keys are unique within the line, so the
    /// repo's substring-based JSON field readers work on it.
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(640);
        write!(
            s,
            "{{\"node\":{},\"seq\":{},\"run\":{},\"phase\":{},\"iter\":{},\"version\":{}",
            self.node, self.seq, self.run, self.phase, self.iter, self.version
        )
        .unwrap();
        write!(
            s,
            ",\"compute_ns\":{},\"wait_ns\":{},\"presend_ns\":{},\"synch_ns\":{}",
            self.vtime.compute_ns, self.vtime.wait_ns, self.vtime.presend_ns, self.vtime.synch_ns
        )
        .unwrap();
        for (name, v) in self.stats.fields() {
            write!(s, ",\"{name}\":{v}").unwrap();
        }
        write!(
            s,
            ",\"fetch_sum_ns\":{},\"fetch_max_ns\":{},\"fetch_hist\":\"{}\"",
            self.fetch.sum_ns,
            self.fetch.max_ns,
            self.fetch.encode()
        )
        .unwrap();
        if let Some(w) = &self.wire {
            write!(
                s,
                ",\"wire_batches\":{},\"wire_envelopes\":{},\"wire_hist\":\"{}\"",
                w.batches,
                w.envelopes,
                encode_sparse(&w.hist)
            )
            .unwrap();
        }
        s.push('}');
        s
    }

    /// Parse one stream line. Inverse of [`PhaseRecord::to_json_line`].
    pub fn parse_line(line: &str) -> Result<PhaseRecord, String> {
        let u = |k: &str| field_u64(line, k).ok_or_else(|| format!("missing field {k:?}"));
        let mut stats = StatsSnapshot::default();
        for (name, v) in stats.fields_mut() {
            *v = field_u64(line, name).ok_or_else(|| format!("missing counter {name:?}"))?;
        }
        let fetch = LatencyHist::decode(
            field_str(line, "fetch_hist").ok_or("missing field \"fetch_hist\"")?,
            u("fetch_sum_ns")?,
            u("fetch_max_ns")?,
        )?;
        let wire = match field_u64(line, "wire_batches") {
            None => None,
            Some(batches) => {
                let mut hist = [0u64; WireSnapshot::NUM_BUCKETS];
                decode_sparse(
                    field_str(line, "wire_hist").ok_or("missing field \"wire_hist\"")?,
                    &mut hist,
                )?;
                Some(WireSnapshot { batches, envelopes: u("wire_envelopes")?, hist })
            }
        };
        Ok(PhaseRecord {
            node: u("node")? as NodeId,
            seq: u("seq")?,
            run: u("run")?,
            phase: u("phase")? as u32,
            iter: u("iter")?,
            version: u("version")?,
            vtime: TimeBreakdown {
                compute_ns: u("compute_ns")?,
                wait_ns: u("wait_ns")?,
                presend_ns: u("presend_ns")?,
                synch_ns: u("synch_ns")?,
            },
            stats,
            fetch,
            wire,
        })
    }
}

/// Extract `"key":<u64>` from a one-line JSON object.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract `"key":"<str>"` from a one-line JSON object (no escapes — the
/// encoded histograms contain only digits, colons and spaces).
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

#[derive(Default)]
struct HubState {
    records: Vec<PhaseRecord>,
    closed: bool,
}

/// The machine-wide collection point: every node pushes its cuts here;
/// the publisher thread and the TCP endpoint read from here. Push is a
/// short uncontended critical section (nodes cut at barriers, so pushes
/// are naturally staggered by the barrier's wake order).
#[derive(Default)]
pub struct MetricsHub {
    state: Mutex<HubState>,
    more: Condvar,
}

impl MetricsHub {
    /// An empty, open hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Append one record and wake waiting drainers.
    pub fn push(&self, r: PhaseRecord) {
        self.state.lock().records.push(r);
        self.more.notify_all();
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// True when no records have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of every record pushed so far.
    pub fn snapshot(&self) -> Vec<PhaseRecord> {
        self.state.lock().records.clone()
    }

    /// Mark the hub closed (no more records will arrive) and wake every
    /// drainer so it can exit.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.more.notify_all();
    }

    /// True after [`MetricsHub::close`].
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Block until records beyond index `from` exist or the hub closes;
    /// returns the new records and whether the hub is now closed. A
    /// closed hub returns immediately (possibly with a final batch), so a
    /// drain loop terminates once it has seen `(empty, true)`.
    pub fn wait_more(&self, from: usize) -> (Vec<PhaseRecord>, bool) {
        let mut st = self.state.lock();
        while st.records.len() <= from && !st.closed {
            self.more.wait(&mut st);
        }
        (st.records[from.min(st.records.len())..].to_vec(), st.closed)
    }
}

/// Render records as Prometheus text exposition (version 0.0.4): each
/// counter as `prescient_<name>_total{node="i"}`, cumulative over all
/// records seen so far, plus vtime segments and node-0 wire totals.
pub fn prometheus_text(records: &[PhaseRecord]) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut per_node: BTreeMap<NodeId, (StatsSnapshot, TimeBreakdown, u64)> = BTreeMap::new();
    let mut wire = WireSnapshot::default();
    for r in records {
        let e = per_node.entry(r.node).or_default();
        e.0 = e.0.merge(&r.stats);
        e.1 = e.1.merge(&r.vtime);
        e.2 += 1;
        if let Some(w) = &r.wire {
            wire = wire.merge(w);
        }
    }
    let mut out = String::new();
    out.push_str("# TYPE prescient_phase_records_total counter\n");
    for (node, (_, _, n)) in &per_node {
        writeln!(out, "prescient_phase_records_total{{node=\"{node}\"}} {n}").unwrap();
    }
    let names: Vec<&'static str> =
        StatsSnapshot::default().fields().iter().map(|(n, _)| *n).collect();
    for (i, name) in names.iter().enumerate() {
        writeln!(out, "# TYPE prescient_{name}_total counter").unwrap();
        for (node, (s, _, _)) in &per_node {
            let v = s.fields()[i].1;
            writeln!(out, "prescient_{name}_total{{node=\"{node}\"}} {v}").unwrap();
        }
    }
    for (seg, get) in [("compute_ns", 0usize), ("wait_ns", 1), ("presend_ns", 2), ("synch_ns", 3)] {
        writeln!(out, "# TYPE prescient_vtime_{seg}_total counter").unwrap();
        for (node, (_, t, _)) in &per_node {
            let v = [t.compute_ns, t.wait_ns, t.presend_ns, t.synch_ns][get];
            writeln!(out, "prescient_vtime_{seg}_total{{node=\"{node}\"}} {v}").unwrap();
        }
    }
    out.push_str("# TYPE prescient_wire_batches_total counter\n");
    writeln!(out, "prescient_wire_batches_total {}", wire.batches).unwrap();
    out.push_str("# TYPE prescient_wire_envelopes_total counter\n");
    writeln!(out, "prescient_wire_envelopes_total {}", wire.envelopes).unwrap();
    out
}

/// A tiny single-threaded HTTP endpoint serving [`prometheus_text`] of
/// the hub's current contents — enough for `curl` or a Prometheus scrape,
/// nothing more (every response closes the connection).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (`host:port`; port 0 picks a free one) and serve the
    /// hub's merged snapshot until [`MetricsServer::shutdown`].
    pub fn spawn(hub: Arc<MetricsHub>, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(mut sock) = conn else { continue };
                    // Consume (best-effort) the request head before
                    // replying, so well-behaved clients don't see a reset.
                    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut buf = [0u8; 1024];
                    let _ = sock.read(&mut buf);
                    let body = prometheus_text(&hub.snapshot());
                    let resp = format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    let _ = sock.write_all(resp.as_bytes());
                }
            })
            .expect("spawn metrics-http thread");
        Ok(MetricsServer { addr, stop, join: Some(join) })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread. A self-connection
    /// unblocks the accept loop; idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = TcpStream::connect(self.addr);
            let _ = j.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(node: NodeId, with_wire: bool) -> PhaseRecord {
        let stats = StatsSnapshot {
            reads: 100,
            msgs_out: 7,
            data_bytes_in: 4096,
            merge_chunks_out: 3,
            ..Default::default()
        };
        let mut fetch = LatencyHist::default();
        fetch.record(900);
        fetch.record(1800);
        fetch.record(0);
        let mut wire = WireSnapshot { batches: 5, envelopes: 12, hist: [0; 8] };
        wire.hist[0] = 3;
        wire.hist[2] = 2;
        PhaseRecord {
            node,
            seq: 2,
            run: 1,
            phase: 4,
            iter: 1,
            version: 9,
            vtime: TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 0, synch_ns: 5 },
            stats,
            fetch,
            wire: with_wire.then_some(wire),
        }
    }

    #[test]
    fn config_parses_all_forms() {
        assert_eq!(MetricsConfig::parse("").unwrap(), MetricsConfig::off());
        assert_eq!(MetricsConfig::parse("off").unwrap(), MetricsConfig::off());
        assert_eq!(MetricsConfig::parse("0").unwrap(), MetricsConfig::off());
        assert_eq!(MetricsConfig::parse("on").unwrap(), MetricsConfig::on());
        assert_eq!(MetricsConfig::parse("1").unwrap(), MetricsConfig::on());
        assert_eq!(
            MetricsConfig::parse("stream:/tmp/m.jsonl").unwrap(),
            MetricsConfig::stream("/tmp/m.jsonl")
        );
        assert_eq!(
            MetricsConfig::parse("tcp:127.0.0.1:0").unwrap(),
            MetricsConfig::tcp("127.0.0.1:0")
        );
    }

    #[test]
    fn config_rejects_garbage() {
        for bad in ["maybe", "stream:", "tcp:", "tcp:nohost", "udp:x:1", "on,stream:x", "2"] {
            assert!(MetricsConfig::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn latency_hist_buckets_and_roundtrip() {
        let mut h = LatencyHist::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1023); // bucket 9
        h.record(1024); // bucket 10
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.counts[10], 1);
        assert_eq!(h.n(), 5);
        assert_eq!(h.max_ns, 1024);
        let rt = LatencyHist::decode(&h.encode(), h.sum_ns, h.max_ns).unwrap();
        assert_eq!(rt, h);
        assert!(h.merge(&h).n() == 10);
    }

    #[test]
    fn record_roundtrips_through_json_line() {
        for with_wire in [true, false] {
            let r = sample_record(3, with_wire);
            let line = r.to_json_line();
            assert!(line.starts_with("{\"node\":3,"));
            let back = PhaseRecord::parse_line(&line).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn parse_rejects_truncated_line() {
        let line = sample_record(0, true).to_json_line();
        assert!(PhaseRecord::parse_line(&line[..line.len() / 2]).is_err());
        assert!(PhaseRecord::parse_line("{}").is_err());
    }

    #[test]
    fn hub_wait_more_drains_and_terminates() {
        let hub = Arc::new(MetricsHub::new());
        let h2 = Arc::clone(&hub);
        let t = std::thread::spawn(move || {
            let mut seen = 0;
            loop {
                let (batch, closed) = h2.wait_more(seen);
                seen += batch.len();
                if closed && batch.is_empty() {
                    return seen;
                }
            }
        });
        hub.push(sample_record(0, false));
        hub.push(sample_record(1, false));
        hub.close();
        assert_eq!(t.join().unwrap(), 2);
        assert_eq!(hub.len(), 2);
    }

    #[test]
    fn prometheus_text_sums_per_node() {
        let recs = vec![sample_record(0, true), sample_record(0, false), sample_record(1, false)];
        let text = prometheus_text(&recs);
        assert!(text.contains("prescient_reads_total{node=\"0\"} 200"));
        assert!(text.contains("prescient_reads_total{node=\"1\"} 100"));
        assert!(text.contains("prescient_merge_chunks_out_total{node=\"0\"} 6"));
        assert!(text.contains("prescient_vtime_wait_ns_total{node=\"1\"} 20"));
        assert!(text.contains("prescient_wire_batches_total 5"));
        assert!(text.contains("prescient_phase_records_total{node=\"0\"} 2"));
    }

    #[test]
    fn server_serves_and_shuts_down() {
        let hub = Arc::new(MetricsHub::new());
        hub.push(sample_record(0, false));
        let mut srv = MetricsServer::spawn(Arc::clone(&hub), "127.0.0.1:0").unwrap();
        let mut sock = TcpStream::connect(srv.addr()).unwrap();
        sock.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut resp = String::new();
        sock.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.contains("prescient_msgs_out_total{node=\"0\"} 7"));
        srv.shutdown();
        srv.shutdown(); // idempotent
    }
}
