//! Compact sets of nodes.
//!
//! Directory entries (the sharer list of a block) and communication-schedule
//! entries (the recorded readers of a block) both need small, cheap sets of
//! node ids. With the paper's 32-processor machine — and at most
//! [`crate::MAX_NODES`] = 64 nodes here — a single `u64` bitmask suffices.

use std::fmt;

use crate::NodeId;

/// A set of node ids represented as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet(pub u64);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// A set containing a single node.
    #[inline]
    pub fn single(n: NodeId) -> NodeSet {
        debug_assert!((n as usize) < crate::MAX_NODES);
        NodeSet(1u64 << n)
    }

    /// The set `{0, 1, .., n-1}` of all nodes of an `n`-node machine.
    #[inline]
    pub fn all(n: usize) -> NodeSet {
        debug_assert!(n <= crate::MAX_NODES);
        if n == 64 {
            NodeSet(u64::MAX)
        } else {
            NodeSet((1u64 << n) - 1)
        }
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, n: NodeId) -> bool {
        self.0 & (1u64 << n) != 0
    }

    /// Insert a node (in place).
    #[inline]
    pub fn insert(&mut self, n: NodeId) {
        self.0 |= 1u64 << n;
    }

    /// Remove a node (in place).
    #[inline]
    pub fn remove(&mut self, n: NodeId) {
        self.0 &= !(1u64 << n);
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn minus(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Remove one node, returning the new set.
    #[inline]
    pub fn without(self, n: NodeId) -> NodeSet {
        NodeSet(self.0 & !(1u64 << n))
    }

    /// Iterate over the members in ascending order.
    #[inline]
    pub fn iter(self) -> NodeSetIter {
        NodeSetIter(self.0)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = NodeSet::EMPTY;
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl IntoIterator for NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter;
    fn into_iter(self) -> NodeSetIter {
        self.iter()
    }
}

/// Iterator over the members of a [`NodeSet`], ascending.
pub struct NodeSetIter(u64);

impl Iterator for NodeSetIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let n = self.0.trailing_zeros() as NodeId;
            self.0 &= self.0 - 1;
            Some(n)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeSetIter {}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = NodeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(17);
        s.insert(3);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(s.contains(17));
        assert!(!s.contains(4));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn all_and_iter() {
        let s = NodeSet::all(5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(NodeSet::all(64).len(), 64);
        assert_eq!(NodeSet::all(0).len(), 0);
    }

    #[test]
    fn set_algebra() {
        let a: NodeSet = [0u16, 1, 2, 3].into_iter().collect();
        let b: NodeSet = [2u16, 3, 4].into_iter().collect();
        assert_eq!(a.union(b), [0u16, 1, 2, 3, 4].into_iter().collect());
        assert_eq!(a.minus(b), [0u16, 1].into_iter().collect());
        assert_eq!(a.intersect(b), [2u16, 3].into_iter().collect());
        assert_eq!(a.without(0), [1u16, 2, 3].into_iter().collect());
    }

    #[test]
    fn single() {
        let s = NodeSet::single(31);
        assert_eq!(s.len(), 1);
        assert!(s.contains(31));
    }

    #[test]
    fn iterator_len() {
        let s = NodeSet::all(10);
        assert_eq!(s.iter().len(), 10);
    }
}
