//! Primitive value types storable in shared memory.
//!
//! Shared memory holds raw bytes; aggregate elements and record fields are
//! encoded as fixed-width little-endian primitives. `Prim` is the safe,
//! no-`unsafe` equivalent of a "plain old data" marker: each implementation
//! defines its byte width and its (de)serialization into a block.

/// A fixed-width primitive that can live in DSM blocks.
pub trait Prim: Copy + Default + PartialEq + std::fmt::Debug + Send + 'static {
    /// Encoded width in bytes. Always a power of two so that values never
    /// straddle cache-block boundaries when naturally aligned.
    const BYTES: usize;

    /// Encode into `out` (`out.len() == Self::BYTES`).
    fn store(self, out: &mut [u8]);

    /// Decode from `src` (`src.len() == Self::BYTES`).
    fn load(src: &[u8]) -> Self;
}

macro_rules! impl_prim {
    ($($t:ty),*) => {$(
        impl Prim for $t {
            const BYTES: usize = std::mem::size_of::<$t>();

            #[inline]
            fn store(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn load(src: &[u8]) -> Self {
                <$t>::from_le_bytes(src.try_into().expect("width mismatch"))
            }
        }
    )*};
}

impl_prim!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Prim>(v: T) {
        let mut buf = vec![0u8; T::BYTES];
        v.store(&mut buf);
        assert_eq!(T::load(&buf), v);
    }

    #[test]
    fn roundtrips() {
        roundtrip(0x12u8);
        roundtrip(0x1234u16);
        roundtrip(0xdead_beefu32);
        roundtrip(0xdead_beef_cafe_f00du64);
        roundtrip(-42i32);
        roundtrip(-42i64);
        roundtrip(3.25f32);
        roundtrip(-1.0e300f64);
    }

    #[test]
    fn widths_are_powers_of_two() {
        assert_eq!(<u8 as Prim>::BYTES, 1);
        assert_eq!(<f64 as Prim>::BYTES, 8);
        assert!(<u32 as Prim>::BYTES.is_power_of_two());
    }
}
