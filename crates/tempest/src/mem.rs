//! Per-node block storage: home memory, the remote-block cache ("stache"),
//! and the node-local shared-heap allocator.
//!
//! Each node stores every cache block it currently holds a copy of: blocks
//! whose home it is (materialized lazily, zero-filled, with a `ReadWrite`
//! tag — a block "resides initially at its home node") and remote blocks
//! installed by the coherence protocol with an appropriate tag. Blizzard
//! backed this cache with ordinary main memory and performed no capacity
//! evictions at the working-set sizes of the paper's programs; we adopt the
//! same simplification.
//!
//! # Flat segment-indexed paged arena
//!
//! The store is *not* a hash table. A [`crate::BlockId`] is globally dense
//! within each node's heap segment (the bump allocator hands out addresses
//! from the segment base upward), so a block resolves to a storage slot
//! with pure index arithmetic:
//!
//! ```text
//! segment = block >> log2(blocks_per_segment)   (the block's home node)
//! rel     = block &  (blocks_per_segment - 1)
//! page    = rel >> log2(PAGE_BLOCKS),  slot = rel & (PAGE_BLOCKS - 1)
//! ```
//!
//! Each segment owns a lazily grown table of fixed-size *pages*; a page
//! packs `PAGE_BLOCKS` blocks' bytes into one contiguous buffer plus one
//! metadata byte per block (tag, present bit, unread-pre-send bit). Hot
//! accesses are two shifts, two masks and two bounds checks; residency and
//! unread-pre-send counts are maintained on the transitions, so
//! [`NodeMem::resident_blocks`] and [`NodeMem::unused_presends`] are O(1)
//! and iteration for invariant checks walks dense pages instead of hashing.
//!
//! [`NodeMem::snapshot`] is non-materializing: snapshotting a never-touched
//! home block returns the canonical zero block without installing anything,
//! so protocol data replies cannot inflate residency or pollute
//! unread-pre-send accounting (they used to, via the lazy `block_mut`
//! path).

use std::sync::Arc;

use crate::layout::NODE_HEAP_BYTES;
use crate::tag::{Access, Tag};
use crate::{BlockId, GAddr, GlobalLayout, HomeView, NodeId};

/// Blocks per arena page (power of two).
pub const PAGE_BLOCKS: usize = 256;
const PAGE_SHIFT: u32 = PAGE_BLOCKS.trailing_zeros();

/// An access fault: the tag did not permit the access.
///
/// Faults are vectored to the coherence protocol, which obtains an
/// appropriate copy and retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The faulting block.
    pub block: BlockId,
    /// The kind of access that faulted.
    pub access: Access,
    /// Tag observed at fault time.
    pub observed: Tag,
}

/// Why a checked shared-memory access did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The block's tag did not permit the access; vector to the protocol
    /// and retry.
    Fault(Fault),
    /// The access straddles a cache-block boundary — a layout bug in the
    /// caller, never serviceable by the protocol. Reported as a proper
    /// error in every build profile (it used to be a `debug_assert!`, which
    /// in release builds decayed into a slice-index panic or a short copy).
    CrossesBoundary {
        /// First byte of the access.
        addr: GAddr,
        /// Access length in bytes.
        len: usize,
    },
}

impl From<Fault> for MemError {
    fn from(f: Fault) -> MemError {
        MemError::Fault(f)
    }
}

impl MemError {
    /// The access fault, for callers that route every error to the
    /// protocol. Panics with a diagnosable message on a boundary-crossing
    /// access, which no protocol action can repair.
    pub fn fault(self) -> Fault {
        match self {
            MemError::Fault(f) => f,
            MemError::CrossesBoundary { addr, len } => {
                panic!("{len}-byte access at {addr:?} crosses a cache-block boundary")
            }
        }
    }
}

// Slot metadata byte: bits 0–1 tag, bit 2 present, bit 3 unread pre-send.
const META_TAG_MASK: u8 = 0b011;
const META_PRESENT: u8 = 0b100;
const META_UNUSED: u8 = 0b1000;

#[inline]
fn tag_code(tag: Tag) -> u8 {
    match tag {
        Tag::Invalid => 0,
        Tag::ReadOnly => 1,
        Tag::ReadWrite => 2,
    }
}

#[inline]
fn code_tag(code: u8) -> Tag {
    match code & META_TAG_MASK {
        0 => Tag::Invalid,
        1 => Tag::ReadOnly,
        _ => Tag::ReadWrite,
    }
}

/// One arena page: `PAGE_BLOCKS` blocks of data plus a metadata byte each.
struct Page {
    /// `PAGE_BLOCKS * block_size` bytes, zero-initialized.
    data: Box<[u8]>,
    /// Per-slot metadata.
    meta: [u8; PAGE_BLOCKS],
}

impl Page {
    fn new(block_size: usize) -> Page {
        Page {
            data: vec![0u8; PAGE_BLOCKS * block_size].into_boxed_slice(),
            meta: [0; PAGE_BLOCKS],
        }
    }

    #[inline]
    fn present(&self, slot: usize) -> bool {
        self.meta[slot] & META_PRESENT != 0
    }

    #[inline]
    fn tag(&self, slot: usize) -> Tag {
        code_tag(self.meta[slot])
    }

    #[inline]
    fn unused(&self, slot: usize) -> bool {
        self.meta[slot] & META_UNUSED != 0
    }

    #[inline]
    fn block(&self, slot: usize, bs: usize) -> &[u8] {
        &self.data[slot * bs..(slot + 1) * bs]
    }

    #[inline]
    fn block_mut(&mut self, slot: usize, bs: usize) -> &mut [u8] {
        &mut self.data[slot * bs..(slot + 1) * bs]
    }
}

/// Per-node block store plus the node's bump allocator for its segment of
/// the shared heap.
pub struct NodeMem {
    layout: GlobalLayout,
    me: NodeId,
    /// This node's live block→home view (shared with the protocol engine).
    homes: Arc<HomeView>,
    /// `log2(blocks per heap segment)`; a block's segment (= home node) and
    /// in-segment offset fall out of one shift and one mask.
    seg_shift: u32,
    /// One page table per node heap segment, grown lazily to the highest
    /// touched page.
    segs: Vec<Vec<Option<Box<Page>>>>,
    /// Blocks currently materialized (maintained on transitions; O(1)).
    resident: usize,
    /// Materialized blocks whose unread-pre-send bit is set (O(1)).
    unused: usize,
    /// The canonical zero block, shared by non-materializing snapshots of
    /// untouched home blocks.
    zero: Arc<[u8]>,
    alloc_next: u64,
    alloc_end: u64,
}

impl NodeMem {
    /// Create the store for node `me` with the identity home view.
    pub fn new(layout: GlobalLayout, me: NodeId) -> NodeMem {
        NodeMem::with_view(layout, me, Arc::new(HomeView::identity(layout)))
    }

    /// Create the store for node `me` sharing the given home view with the
    /// protocol engine.
    pub fn with_view(layout: GlobalLayout, me: NodeId, homes: Arc<HomeView>) -> NodeMem {
        let blocks_per_seg = NODE_HEAP_BYTES / layout.block_size as u64;
        NodeMem {
            layout,
            me,
            homes,
            seg_shift: blocks_per_seg.trailing_zeros(),
            segs: (0..layout.nodes).map(|_| Vec::new()).collect(),
            resident: 0,
            unused: 0,
            zero: vec![0u8; layout.block_size].into(),
            alloc_next: layout.heap_base(me).0,
            alloc_end: layout.heap_end(me).0,
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The machine layout this store was created with.
    pub fn layout(&self) -> GlobalLayout {
        self.layout
    }

    /// Is this node the (current view's) home of `block`?
    #[inline]
    pub fn is_home(&self, block: BlockId) -> bool {
        self.homes.home_of_block(block) == self.me
    }

    /// The home view this store consults.
    pub fn homes(&self) -> &Arc<HomeView> {
        &self.homes
    }

    /// Does `block` materialize as `ReadWrite` here on first touch?
    ///
    /// Only when this node is the block's segment-derived home *and* no
    /// placement (shift or overlay entry) acts on the block. Placement-
    /// affected blocks start `Invalid` everywhere, so the first touch
    /// faults and the view home's directory learns of the copy — a silent
    /// `ReadWrite` materialization at a node the directory does not watch
    /// would break coherence, and one at the view home would make miss
    /// counts depend on where the overlay points.
    #[inline]
    fn auto_rw(&self, block: BlockId) -> bool {
        self.homes.is_identity_block(block) && self.layout.home_of_block(block) == self.me
    }

    /// Allocate `bytes` of shared memory from this node's heap segment,
    /// aligned to `align` (a power of two). The returned region is homed at
    /// this node.
    ///
    /// Allocations of at most one block never straddle a block boundary, so
    /// small records (tree nodes, molecules' fields) are reachable with
    /// single-block transfers.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> GAddr {
        assert!(align.is_power_of_two());
        let bs = self.layout.block_size as u64;
        let mut a = (self.alloc_next + align - 1) & !(align - 1);
        if bytes <= bs {
            let first_block = a / bs;
            let last_block = (a + bytes - 1) / bs;
            if first_block != last_block {
                a = last_block * bs; // skip to the next block boundary
            }
        }
        assert!(
            a + bytes <= self.alloc_end,
            "node {} shared heap exhausted ({} bytes requested)",
            self.me,
            bytes
        );
        self.alloc_next = a + bytes;
        GAddr(a)
    }

    /// Segment index and in-segment block offset of `block`.
    #[inline]
    fn locate(&self, block: BlockId) -> (usize, usize, usize) {
        let seg = (block.0 >> self.seg_shift) as usize;
        assert!(seg < self.segs.len(), "{block:?} outside any node heap segment");
        let rel = block.0 & ((1u64 << self.seg_shift) - 1);
        ((seg), (rel >> PAGE_SHIFT) as usize, (rel & (PAGE_BLOCKS as u64 - 1)) as usize)
    }

    /// The page and slot holding `block`, if its page was ever allocated.
    #[inline]
    fn page(&self, block: BlockId) -> Option<(&Page, usize)> {
        let (seg, page, slot) = self.locate(block);
        match self.segs[seg].get(page) {
            Some(Some(p)) => Some((p, slot)),
            _ => None,
        }
    }

    /// Materialize `block`'s slot (zero-filled; tag `ReadWrite` at home,
    /// `Invalid` elsewhere) and return its page and slot index.
    fn materialize(&mut self, block: BlockId) -> (&mut Page, usize) {
        let (seg, page, slot) = self.locate(block);
        let home = self.auto_rw(block);
        let bs = self.layout.block_size;
        let pages = &mut self.segs[seg];
        if pages.len() <= page {
            pages.resize_with(page + 1, || None);
        }
        let p = pages[page].get_or_insert_with(|| Box::new(Page::new(bs)));
        if p.meta[slot] & META_PRESENT == 0 {
            p.meta[slot] =
                META_PRESENT | tag_code(if home { Tag::ReadWrite } else { Tag::Invalid });
            self.resident += 1;
        }
        (p, slot)
    }

    /// Flip `block`'s unread-pre-send bit, keeping the O(1) count in step.
    /// The slot must be present.
    #[inline]
    fn set_unused_bit(p: &mut Page, slot: usize, unused_count: &mut usize, v: bool) {
        let was = p.meta[slot] & META_UNUSED != 0;
        if v && !was {
            p.meta[slot] |= META_UNUSED;
            *unused_count += 1;
        } else if !v && was {
            p.meta[slot] &= !META_UNUSED;
            *unused_count -= 1;
        }
    }

    /// Current tag for `block` on this node (`Invalid` if the node holds no
    /// copy).
    #[inline]
    pub fn probe(&self, block: BlockId) -> Tag {
        match self.page(block) {
            Some((p, slot)) if p.present(slot) => p.tag(slot),
            _ if self.auto_rw(block) => Tag::ReadWrite, // lazily materialized
            _ => Tag::Invalid,
        }
    }

    /// Borrow a block's current bytes, if the block is materialized.
    pub fn data(&self, block: BlockId) -> Option<&[u8]> {
        let bs = self.layout.block_size;
        self.page(block).filter(|(p, slot)| p.present(*slot)).map(|(p, slot)| p.block(slot, bs))
    }

    /// Was `block` installed by a pre-send and never accessed since?
    pub fn presend_unused(&self, block: BlockId) -> bool {
        self.page(block).is_some_and(|(p, slot)| p.unused(slot))
    }

    /// Clear `block`'s unread-pre-send bit (the copy is being recalled or
    /// invalidated; waste is accounted at the home).
    pub fn clear_presend_unused(&mut self, block: BlockId) {
        let (seg, page, slot) = self.locate(block);
        if let Some(Some(p)) = self.segs[seg].get_mut(page) {
            Self::set_unused_bit(p, slot, &mut self.unused, false);
        }
    }

    /// Set the access tag of a block (materializing it on demand:
    /// zero-filled home blocks start `ReadWrite`, remote ones `Invalid`).
    pub fn set_tag(&mut self, block: BlockId, tag: Tag) {
        let (p, slot) = self.materialize(block);
        p.meta[slot] = (p.meta[slot] & !META_TAG_MASK) | tag_code(tag);
    }

    /// Install a copy of a remote block with the given tag, as done by the
    /// protocol when a data reply or pre-send arrives. Returns `true` if
    /// the install overwrote a pre-sent copy that was never accessed — a
    /// "useless pre-send" signal fed to the degradation policy.
    pub fn install(&mut self, block: BlockId, data: &[u8], tag: Tag, presend: bool) -> bool {
        let bs = self.layout.block_size;
        debug_assert_eq!(data.len(), bs, "install payload is not one block");
        let mut unused = self.unused;
        let (p, slot) = self.materialize(block);
        let wasted = p.unused(slot);
        p.block_mut(slot, bs).copy_from_slice(data);
        p.meta[slot] = (p.meta[slot] & !META_TAG_MASK) | tag_code(tag);
        Self::set_unused_bit(p, slot, &mut unused, presend);
        self.unused = unused;
        wasted
    }

    /// Install a bulk pre-send payload under one borrow: N blocks, one
    /// upcall. Returns how many installs overwrote a pre-sent copy that was
    /// never accessed (the "useless pre-send" count the ack reports).
    pub fn install_bulk(
        &mut self,
        blocks: &[(BlockId, Arc<[u8]>)],
        tag: Tag,
        presend: bool,
    ) -> u64 {
        let mut wasted = 0u64;
        for (block, data) in blocks {
            if self.install(*block, data, tag, presend) {
                wasted += 1;
            }
        }
        wasted
    }

    /// Read `buf.len()` bytes starting at `addr`. The read must not cross a
    /// block boundary. On success the bytes are copied into `buf`; on an
    /// access fault nothing is copied and the fault is returned.
    pub fn read_in_block(&mut self, addr: GAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let bs = self.layout.block_size;
        let block = addr.block(bs);
        let off = addr.offset_in_block(bs);
        if off + buf.len() > bs {
            return Err(MemError::CrossesBoundary { addr, len: buf.len() });
        }
        let observed = self.probe(block);
        if !observed.readable() {
            return Err(Fault { block, access: Access::Read, observed }.into());
        }
        let mut unused = self.unused;
        let (p, slot) = self.materialize(block);
        Self::set_unused_bit(p, slot, &mut unused, false);
        buf.copy_from_slice(&p.block(slot, bs)[off..off + buf.len()]);
        self.unused = unused;
        Ok(())
    }

    /// Write `bytes` starting at `addr`. The write must not cross a block
    /// boundary. On an access fault nothing is written.
    pub fn write_in_block(&mut self, addr: GAddr, bytes: &[u8]) -> Result<(), MemError> {
        let bs = self.layout.block_size;
        let block = addr.block(bs);
        let off = addr.offset_in_block(bs);
        if off + bytes.len() > bs {
            return Err(MemError::CrossesBoundary { addr, len: bytes.len() });
        }
        let observed = self.probe(block);
        if !observed.writable() {
            return Err(Fault { block, access: Access::Write, observed }.into());
        }
        let mut unused = self.unused;
        let (p, slot) = self.materialize(block);
        Self::set_unused_bit(p, slot, &mut unused, false);
        p.block_mut(slot, bs)[off..off + bytes.len()].copy_from_slice(bytes);
        self.unused = unused;
        Ok(())
    }

    /// Copy of a block's current data (for protocol data replies), shared
    /// behind an `Arc` so fan-out and retransmission never re-copy the
    /// bytes.
    ///
    /// Non-materializing: snapshotting a block this node holds no copy of
    /// returns the canonical zero block (the content a home block
    /// materializes with) without installing anything.
    pub fn snapshot(&self, block: BlockId) -> Arc<[u8]> {
        match self.data(block) {
            Some(d) => Arc::from(d),
            None => Arc::clone(&self.zero),
        }
    }

    /// Number of blocks currently materialized on this node. O(1).
    pub fn resident_blocks(&self) -> usize {
        self.resident
    }

    /// Count of blocks installed by pre-send that were never accessed
    /// (redundant pre-sends, §5.1's "larger amounts of data, some of which
    /// may be redundant"). O(1).
    pub fn unused_presends(&self) -> usize {
        self.unused
    }

    /// Capture the store's full logical state — every materialized block's
    /// bytes, tag, and unread-pre-send bit, plus the allocator watermark —
    /// into a [`MemCheckpoint`]. Taken at a phase barrier (a protocol
    /// quiescence point) this is one node's shard of a consistent cut.
    pub fn checkpoint(&self) -> MemCheckpoint {
        let bs = self.layout.block_size;
        let mut blocks = Vec::with_capacity(self.resident);
        for (seg, pages) in self.segs.iter().enumerate() {
            for (pi, page) in pages.iter().enumerate() {
                let Some(page) = page else { continue };
                for slot in 0..PAGE_BLOCKS {
                    if !page.present(slot) {
                        continue;
                    }
                    let id = ((seg as u64) << self.seg_shift)
                        | ((pi as u64) << PAGE_SHIFT)
                        | slot as u64;
                    blocks.push((
                        BlockId(id),
                        page.tag(slot),
                        page.unused(slot),
                        Arc::from(page.block(slot, bs)),
                    ));
                }
            }
        }
        MemCheckpoint { blocks, alloc_next: self.alloc_next }
    }

    /// Roll the store back to a previously captured [`MemCheckpoint`]:
    /// every block materialized since the cut is forgotten, every block in
    /// the checkpoint comes back with its exact bytes, tag, and
    /// unread-pre-send bit, and the allocator watermark rewinds.
    pub fn restore(&mut self, ckpt: &MemCheckpoint) {
        for pages in &mut self.segs {
            pages.clear();
        }
        self.resident = 0;
        self.unused = 0;
        self.alloc_next = ckpt.alloc_next;
        let bs = self.layout.block_size;
        for (block, tag, unused, data) in &ckpt.blocks {
            debug_assert_eq!(data.len(), bs);
            let mut unused_count = self.unused;
            let (p, slot) = self.materialize(*block);
            p.block_mut(slot, bs).copy_from_slice(data);
            p.meta[slot] = (p.meta[slot] & !META_TAG_MASK) | tag_code(*tag);
            Self::set_unused_bit(p, slot, &mut unused_count, *unused);
            self.unused = unused_count;
        }
    }

    /// Iterate over all materialized blocks and their tags (diagnostics,
    /// invariant checking). Walks dense pages — no hashing.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, Tag)> + '_ {
        let seg_shift = self.seg_shift;
        self.segs.iter().enumerate().flat_map(move |(seg, pages)| {
            pages
                .iter()
                .enumerate()
                .filter_map(|(pi, p)| p.as_ref().map(move |p| (pi, p)))
                .flat_map(move |(pi, page)| {
                    (0..PAGE_BLOCKS).filter(|&slot| page.present(slot)).map(move |slot| {
                        let id =
                            ((seg as u64) << seg_shift) | ((pi as u64) << PAGE_SHIFT) | slot as u64;
                        (BlockId(id), page.tag(slot))
                    })
                })
        })
    }
}

/// A full logical snapshot of one node's block store at a consistent cut:
/// every materialized block's id, tag, unread-pre-send bit, and bytes,
/// plus the bump allocator's watermark. Produced by [`NodeMem::checkpoint`]
/// and consumed by [`NodeMem::restore`].
#[derive(Debug, Clone)]
pub struct MemCheckpoint {
    blocks: Vec<(BlockId, Tag, bool, Arc<[u8]>)>,
    alloc_next: u64,
}

impl MemCheckpoint {
    /// Materialized blocks captured in the checkpoint.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block-data bytes captured (the checkpoint's dominant cost).
    pub fn bytes(&self) -> u64 {
        self.blocks.iter().map(|(_, _, _, d)| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> NodeMem {
        NodeMem::new(GlobalLayout::new(4, 32), 1)
    }

    #[test]
    fn home_blocks_materialize_writable() {
        let mut m = mem();
        let a = m.alloc(8, 8);
        assert_eq!(m.layout().home_of(a), 1);
        let mut buf = [0u8; 8];
        m.read_in_block(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        m.write_in_block(a, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        m.read_in_block(a, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn remote_blocks_fault_until_installed() {
        let mut m = mem();
        // An address homed at node 2.
        let l = m.layout();
        let remote = l.heap_base(2);
        let mut buf = [0u8; 8];
        let err = m.read_in_block(remote, &mut buf).unwrap_err().fault();
        assert_eq!(err.access, Access::Read);
        assert_eq!(err.observed, Tag::Invalid);

        let data = vec![7u8; 32];
        m.install(l.block_of(remote), &data, Tag::ReadOnly, false);
        m.read_in_block(remote, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        // Still not writable.
        assert!(m.write_in_block(remote, &[0u8; 4]).is_err());
    }

    #[test]
    fn faulting_access_does_not_materialize() {
        let mut m = mem();
        let l = m.layout();
        let mut buf = [0u8; 8];
        assert!(m.read_in_block(l.heap_base(2), &mut buf).is_err());
        assert!(m.write_in_block(l.heap_base(3), &buf).is_err());
        assert_eq!(m.resident_blocks(), 0, "faults must not install blocks");
    }

    #[test]
    fn alloc_no_straddle() {
        let mut m = mem();
        let _ = m.alloc(24, 8);
        // Next 16-byte record would straddle the 32-byte boundary: it must
        // be pushed to the next block.
        let b = m.alloc(16, 8);
        assert_eq!(b.offset_in_block(32), 0);
    }

    #[test]
    fn alloc_alignment() {
        let mut m = mem();
        let a = m.alloc(1, 1);
        let b = m.alloc(8, 8);
        assert_eq!(b.0 % 8, 0);
        assert!(b.0 > a.0);
    }

    #[test]
    fn presend_tracking() {
        let mut m = mem();
        let l = m.layout();
        let remote = l.heap_base(3);
        m.install(l.block_of(remote), &[1u8; 32], Tag::ReadOnly, true);
        assert_eq!(m.unused_presends(), 1);
        let mut buf = [0u8; 4];
        m.read_in_block(remote, &mut buf).unwrap();
        assert_eq!(m.unused_presends(), 0);
    }

    #[test]
    fn probe_tags() {
        let mut m = mem();
        let own = m.alloc(8, 8);
        let l = m.layout();
        assert_eq!(m.probe(l.block_of(own)), Tag::ReadWrite);
        assert_eq!(m.probe(l.block_of(l.heap_base(2))), Tag::Invalid);
    }

    #[test]
    fn snapshot_does_not_materialize() {
        // Regression: a protocol data reply for a never-touched home block
        // used to lazily install a zero-filled ReadWrite copy, inflating
        // resident_blocks() on non-home nodes via the same path.
        let mut m = mem();
        let a = m.alloc(8, 8);
        let l = m.layout();
        let snap = m.snapshot(l.block_of(a));
        assert!(snap.iter().all(|&b| b == 0), "untouched home block snapshots as zeros");
        assert_eq!(snap.len(), 32);
        assert_eq!(m.resident_blocks(), 0, "snapshot must not install the block");
        assert_eq!(m.unused_presends(), 0);

        // A materialized block snapshots its real bytes.
        m.write_in_block(a, &[9u8; 8]).unwrap();
        let snap = m.snapshot(l.block_of(a));
        assert_eq!(&snap[..8], &[9u8; 8]);
        assert_eq!(m.resident_blocks(), 1);
    }

    #[test]
    fn boundary_crossing_is_a_proper_error() {
        // Satellite: must hold in BOTH build profiles (no debug_assert).
        let mut m = mem();
        let a = m.alloc(32, 8); // a whole block
        let cross = a.add(28); // 8 bytes from here straddle the boundary
        let mut buf = [0u8; 8];
        match m.read_in_block(cross, &mut buf) {
            Err(MemError::CrossesBoundary { addr, len }) => {
                assert_eq!(addr, cross);
                assert_eq!(len, 8);
            }
            other => panic!("expected CrossesBoundary, got {other:?}"),
        }
        match m.write_in_block(cross, &buf) {
            Err(MemError::CrossesBoundary { .. }) => {}
            other => panic!("expected CrossesBoundary, got {other:?}"),
        }
        // Nothing was installed or copied.
        assert_eq!(m.resident_blocks(), 0);
    }

    #[test]
    fn install_bulk_counts_waste() {
        let mut m = mem();
        let l = m.layout();
        let b0 = l.block_of(l.heap_base(2));
        let b1 = b0.next();
        let payload: Vec<(BlockId, Arc<[u8]>)> =
            vec![(b0, vec![1u8; 32].into()), (b1, vec![2u8; 32].into())];
        assert_eq!(m.install_bulk(&payload, Tag::ReadOnly, true), 0);
        assert_eq!(m.unused_presends(), 2);
        // Read one block; re-push both: exactly one was still unread.
        let mut buf = [0u8; 8];
        m.read_in_block(b0.base(32), &mut buf).unwrap();
        assert_eq!(m.install_bulk(&payload, Tag::ReadOnly, true), 1);
        assert_eq!(m.unused_presends(), 2);
    }

    #[test]
    fn iter_blocks_walks_materialized_slots() {
        let mut m = mem();
        let l = m.layout();
        let a = m.alloc(8, 8);
        m.write_in_block(a, &[1u8; 8]).unwrap();
        m.install(l.block_of(l.heap_base(3)), &[5u8; 32], Tag::ReadOnly, false);
        let mut seen: Vec<(BlockId, Tag)> = m.iter_blocks().collect();
        seen.sort_by_key(|(b, _)| b.0);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (l.block_of(a), Tag::ReadWrite));
        assert_eq!(seen[1], (l.block_of(l.heap_base(3)), Tag::ReadOnly));
        assert_eq!(m.resident_blocks(), 2);
    }

    #[test]
    fn checkpoint_restore_round_trips_exactly() {
        let mut m = mem();
        let l = m.layout();
        let a = m.alloc(32, 8);
        m.write_in_block(a, &[3u8; 8]).unwrap();
        m.install(l.block_of(l.heap_base(2)), &[5u8; 32], Tag::ReadOnly, true);
        let ckpt = m.checkpoint();
        assert_eq!(ckpt.block_count(), 2);
        assert_eq!(ckpt.bytes(), 64);

        // Diverge: new allocation, new install, touch the pre-sent copy,
        // drop a tag.
        let b = m.alloc(32, 8);
        m.write_in_block(b, &[9u8; 8]).unwrap();
        m.install(l.block_of(l.heap_base(3)), &[7u8; 32], Tag::ReadWrite, false);
        let mut buf = [0u8; 4];
        m.read_in_block(l.heap_base(2), &mut buf).unwrap();
        m.set_tag(l.block_of(a), Tag::Invalid);
        assert_eq!(m.resident_blocks(), 4);
        assert_eq!(m.unused_presends(), 0);

        m.restore(&ckpt);
        assert_eq!(m.resident_blocks(), 2, "post-cut blocks must be forgotten");
        assert_eq!(m.unused_presends(), 1, "unread-pre-send bit must come back");
        assert_eq!(m.probe(l.block_of(a)), Tag::ReadWrite);
        assert_eq!(m.probe(l.block_of(l.heap_base(3))), Tag::Invalid);
        let mut buf = [0u8; 8];
        m.read_in_block(a, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 8]);
        // Allocator rewound: the next alloc reuses b's address.
        assert_eq!(m.alloc(32, 8), b);
    }

    #[test]
    fn lookup_is_stable_across_page_boundaries() {
        let mut m = mem();
        let l = m.layout();
        // Touch blocks straddling several pages of segment 2.
        let base = l.block_of(l.heap_base(2));
        for i in [0u64, 1, PAGE_BLOCKS as u64 - 1, PAGE_BLOCKS as u64, 3 * PAGE_BLOCKS as u64 + 7] {
            let b = BlockId(base.0 + i);
            m.install(b, &[i as u8; 32], Tag::ReadOnly, false);
        }
        for i in [0u64, 1, PAGE_BLOCKS as u64 - 1, PAGE_BLOCKS as u64, 3 * PAGE_BLOCKS as u64 + 7] {
            let b = BlockId(base.0 + i);
            assert_eq!(m.probe(b), Tag::ReadOnly);
            assert_eq!(m.data(b).unwrap(), &vec![i as u8; 32][..]);
        }
        assert_eq!(m.resident_blocks(), 5);
    }
}
