//! Per-node block storage: home memory, the remote-block cache ("stache"),
//! and the node-local shared-heap allocator.
//!
//! Each node stores, in one table, every cache block it currently holds a
//! copy of: blocks whose home it is (materialized lazily, zero-filled, with
//! a `ReadWrite` tag — a block "resides initially at its home node") and
//! remote blocks installed by the coherence protocol with an appropriate
//! tag. Blizzard backed this cache with ordinary main memory and performed
//! no capacity evictions at the working-set sizes of the paper's programs;
//! we adopt the same simplification.

use std::collections::HashMap;

use crate::tag::{Access, Tag};
use crate::{BlockId, GAddr, GlobalLayout, NodeId};

/// One cache block held by a node.
#[derive(Debug)]
pub struct LocalBlock {
    /// Current access-control tag.
    pub tag: Tag,
    /// The block's data. Always exactly `block_size` bytes.
    pub data: Box<[u8]>,
    /// `true` while the block was installed by a predictive pre-send and has
    /// not yet been accessed; used to measure useful vs. redundant
    /// pre-sends.
    pub presend_unused: bool,
}

/// An access fault: the tag did not permit the access.
///
/// Faults are vectored to the coherence protocol, which obtains an
/// appropriate copy and retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The faulting block.
    pub block: BlockId,
    /// The kind of access that faulted.
    pub access: Access,
    /// Tag observed at fault time.
    pub observed: Tag,
}

/// Per-node block store plus the node's bump allocator for its segment of
/// the shared heap.
pub struct NodeMem {
    layout: GlobalLayout,
    me: NodeId,
    blocks: HashMap<BlockId, LocalBlock>,
    alloc_next: u64,
    alloc_end: u64,
}

impl NodeMem {
    /// Create the store for node `me`.
    pub fn new(layout: GlobalLayout, me: NodeId) -> NodeMem {
        NodeMem {
            layout,
            me,
            blocks: HashMap::new(),
            alloc_next: layout.heap_base(me).0,
            alloc_end: layout.heap_end(me).0,
        }
    }

    /// The node this store belongs to.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The machine layout this store was created with.
    pub fn layout(&self) -> GlobalLayout {
        self.layout
    }

    /// Is this node the home of `block`?
    #[inline]
    pub fn is_home(&self, block: BlockId) -> bool {
        self.layout.home_of_block(block) == self.me
    }

    /// Allocate `bytes` of shared memory from this node's heap segment,
    /// aligned to `align` (a power of two). The returned region is homed at
    /// this node.
    ///
    /// Allocations of at most one block never straddle a block boundary, so
    /// small records (tree nodes, molecules' fields) are reachable with
    /// single-block transfers.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> GAddr {
        assert!(align.is_power_of_two());
        let bs = self.layout.block_size as u64;
        let mut a = (self.alloc_next + align - 1) & !(align - 1);
        if bytes <= bs {
            let first_block = a / bs;
            let last_block = (a + bytes - 1) / bs;
            if first_block != last_block {
                a = last_block * bs; // skip to the next block boundary
            }
        }
        assert!(
            a + bytes <= self.alloc_end,
            "node {} shared heap exhausted ({} bytes requested)",
            self.me,
            bytes
        );
        self.alloc_next = a + bytes;
        GAddr(a)
    }

    /// Current tag for `block` on this node (`Invalid` if the node holds no
    /// copy).
    #[inline]
    pub fn probe(&self, block: BlockId) -> Tag {
        match self.blocks.get(&block) {
            Some(b) => b.tag,
            None if self.is_home(block) => Tag::ReadWrite, // lazily materialized
            None => Tag::Invalid,
        }
    }

    /// Get the block, materializing it (zero-filled, `ReadWrite`) when this
    /// node is its home and it has not been touched yet.
    pub fn block_mut(&mut self, block: BlockId) -> &mut LocalBlock {
        let bs = self.layout.block_size;
        let home = self.is_home(block);
        self.blocks.entry(block).or_insert_with(|| LocalBlock {
            tag: if home { Tag::ReadWrite } else { Tag::Invalid },
            data: vec![0u8; bs].into_boxed_slice(),
            presend_unused: false,
        })
    }

    /// Immutable view of a block, if present.
    pub fn get(&self, block: BlockId) -> Option<&LocalBlock> {
        self.blocks.get(&block)
    }

    /// Set the access tag of a block (materializing home blocks on demand).
    pub fn set_tag(&mut self, block: BlockId, tag: Tag) {
        self.block_mut(block).tag = tag;
    }

    /// Install a copy of a remote block with the given tag, as done by the
    /// protocol when a data reply or pre-send arrives. Returns `true` if
    /// the install overwrote a pre-sent copy that was never accessed — a
    /// "useless pre-send" signal fed to the degradation policy.
    pub fn install(&mut self, block: BlockId, data: &[u8], tag: Tag, presend: bool) -> bool {
        let b = self.block_mut(block);
        let wasted = b.presend_unused;
        b.data.copy_from_slice(data);
        b.tag = tag;
        b.presend_unused = presend;
        wasted
    }

    /// Read `buf.len()` bytes starting at `addr`. The read must not cross a
    /// block boundary. On success the bytes are copied into `buf`; on an
    /// access fault nothing is copied and the fault is returned.
    pub fn read_in_block(&mut self, addr: GAddr, buf: &mut [u8]) -> Result<(), Fault> {
        let bs = self.layout.block_size;
        let block = addr.block(bs);
        let off = addr.offset_in_block(bs);
        debug_assert!(off + buf.len() <= bs, "read crosses block boundary");
        let b = self.block_mut(block);
        if !b.tag.readable() {
            return Err(Fault { block, access: Access::Read, observed: b.tag });
        }
        b.presend_unused = false;
        buf.copy_from_slice(&b.data[off..off + buf.len()]);
        Ok(())
    }

    /// Write `bytes` starting at `addr`. The write must not cross a block
    /// boundary. On an access fault nothing is written.
    pub fn write_in_block(&mut self, addr: GAddr, bytes: &[u8]) -> Result<(), Fault> {
        let bs = self.layout.block_size;
        let block = addr.block(bs);
        let off = addr.offset_in_block(bs);
        debug_assert!(off + bytes.len() <= bs, "write crosses block boundary");
        let b = self.block_mut(block);
        if !b.tag.writable() {
            return Err(Fault { block, access: Access::Write, observed: b.tag });
        }
        b.presend_unused = false;
        b.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Copy of a block's current data (for protocol data replies).
    pub fn snapshot(&mut self, block: BlockId) -> Box<[u8]> {
        self.block_mut(block).data.clone()
    }

    /// Number of blocks currently materialized on this node.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Count of blocks installed by pre-send that were never accessed
    /// (redundant pre-sends, §5.1's "larger amounts of data, some of which
    /// may be redundant").
    pub fn unused_presends(&self) -> usize {
        self.blocks.values().filter(|b| b.presend_unused).count()
    }

    /// Iterate over all materialized blocks (diagnostics, invariant
    /// checking).
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &LocalBlock)> {
        self.blocks.iter().map(|(b, lb)| (*b, lb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> NodeMem {
        NodeMem::new(GlobalLayout::new(4, 32), 1)
    }

    #[test]
    fn home_blocks_materialize_writable() {
        let mut m = mem();
        let a = m.alloc(8, 8);
        assert_eq!(m.layout().home_of(a), 1);
        let mut buf = [0u8; 8];
        m.read_in_block(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        m.write_in_block(a, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        m.read_in_block(a, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn remote_blocks_fault_until_installed() {
        let mut m = mem();
        // An address homed at node 2.
        let l = m.layout();
        let remote = l.heap_base(2);
        let mut buf = [0u8; 8];
        let err = m.read_in_block(remote, &mut buf).unwrap_err();
        assert_eq!(err.access, Access::Read);
        assert_eq!(err.observed, Tag::Invalid);

        let data = vec![7u8; 32];
        m.install(l.block_of(remote), &data, Tag::ReadOnly, false);
        m.read_in_block(remote, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 8]);
        // Still not writable.
        assert!(m.write_in_block(remote, &[0u8; 4]).is_err());
    }

    #[test]
    fn alloc_no_straddle() {
        let mut m = mem();
        let _ = m.alloc(24, 8);
        // Next 16-byte record would straddle the 32-byte boundary: it must
        // be pushed to the next block.
        let b = m.alloc(16, 8);
        assert_eq!(b.offset_in_block(32), 0);
    }

    #[test]
    fn alloc_alignment() {
        let mut m = mem();
        let a = m.alloc(1, 1);
        let b = m.alloc(8, 8);
        assert_eq!(b.0 % 8, 0);
        assert!(b.0 > a.0);
    }

    #[test]
    fn presend_tracking() {
        let mut m = mem();
        let l = m.layout();
        let remote = l.heap_base(3);
        m.install(l.block_of(remote), &vec![1u8; 32], Tag::ReadOnly, true);
        assert_eq!(m.unused_presends(), 1);
        let mut buf = [0u8; 4];
        m.read_in_block(remote, &mut buf).unwrap();
        assert_eq!(m.unused_presends(), 0);
    }

    #[test]
    fn probe_tags() {
        let mut m = mem();
        let own = m.alloc(8, 8);
        let l = m.layout();
        assert_eq!(m.probe(l.block_of(own)), Tag::ReadWrite);
        assert_eq!(m.probe(l.block_of(l.heap_base(2))), Tag::Invalid);
    }
}
