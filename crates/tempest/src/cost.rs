//! The virtual-time cost model.
//!
//! The paper measures wall-clock on a 32-node CM-5 where a remote shared-data
//! access costs ~200 µs on average (§5.4). We run on stock hardware, so the
//! reproduction separates *what happens* from *what it costs*: the protocols
//! really move data between emulated nodes, and this model converts the
//! observed events — local accesses, remote misses (with their hop counts),
//! bulk pre-send transfers, barrier gaps — into deterministic virtual time.
//!
//! The defaults are calibrated to CM-5/Blizzard-era constants. Only the
//! *ratios* matter for the paper's conclusions (who wins, where the
//! block-size crossovers fall); absolute times are not claimed.

/// Cost-model constants, all in nanoseconds of virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One fine-grain access-control check plus the load/store itself
    /// (Blizzard-S software check, ~10–20 instructions on a 33 MHz SPARC).
    pub local_access_ns: u64,
    /// One unit of application arithmetic (charged via `work()`).
    pub flop_ns: u64,
    /// Base round-trip latency of a 2-hop miss (requester → home → data
    /// back) including both protocol handlers.
    pub miss_base_ns: u64,
    /// A fault on a block whose home is the faulting node itself (e.g. an
    /// owner write to a block with remote read-only copies): no remote
    /// request round trip, only the local fault/handler cost; any
    /// invalidation/recall rounds add `miss_hop_ns` each.
    pub local_fault_ns: u64,
    /// Per-block cost of a pre-send tear-down (recall/invalidation of
    /// stale copies before forwarding). Unlike a demand fault, tear-downs
    /// for many blocks are issued by the protocol back-to-back and their
    /// round trips overlap in the network, so each block is billed handler
    /// occupancy rather than full round-trip latency (§3.4's batched
    /// pre-send phase).
    pub ensure_ns: u64,
    /// Additional latency per extra protocol hop (recall from an exclusive
    /// owner, or one invalidation round), making 3- and 4-hop transfers
    /// proportionally slower — the write-invalidate inefficiency of §3.2.
    pub miss_hop_ns: u64,
    /// Wire + copy cost per byte transferred.
    pub per_byte_ns: u64,
    /// Fixed startup cost of one message (the term the pre-send phase
    /// amortizes by coalescing neighboring blocks into bulk messages, §3.4).
    pub msg_startup_ns: u64,
    /// Per-block handler cost in the pre-send phase (schedule walk at the
    /// home, install at the receiver).
    pub presend_block_ns: u64,
    /// Extra home-handler cost of recording one schedule entry while the
    /// predictive protocol is building a schedule (§5.4 "cost of building
    /// communication schedules in augmented protocol handlers").
    pub record_ns: u64,
    /// Cost of one global barrier (the CM-5 had a hardware barrier
    /// network).
    pub barrier_ns: u64,
    /// Time a compute thread waits before re-issuing an unanswered
    /// coherence request (charged once per retry on top of the miss cost).
    pub retry_ns: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            local_access_ns: 100,
            flop_ns: 60,
            miss_base_ns: 150_000,
            local_fault_ns: 60_000,
            ensure_ns: 15_000,
            miss_hop_ns: 50_000,
            per_byte_ns: 50,
            msg_startup_ns: 30_000,
            presend_block_ns: 3_000,
            record_ns: 2_000,
            barrier_ns: 10_000,
            retry_ns: 150_000,
        }
    }
}

impl CostModel {
    /// Virtual time a compute thread waits for one remote miss.
    ///
    /// `extra_hops` counts recalls/invalidation rounds beyond the minimal
    /// request–response pair; `bytes` is the block size transferred (0 for
    /// an upgrade that moves no data); `recorded` adds the schedule-building
    /// overhead when the predictive protocol is recording.
    #[inline]
    pub fn miss_ns(&self, extra_hops: u32, bytes: usize, recorded: bool) -> u64 {
        self.miss_base_ns
            + u64::from(extra_hops) * self.miss_hop_ns
            + bytes as u64 * self.per_byte_ns
            + if recorded { self.record_ns } else { 0 }
    }

    /// Virtual time a compute thread waits for a fault on its *own* home
    /// block (invalidating sharers / recalling an owner).
    #[inline]
    pub fn local_fault_ns(&self, extra_hops: u32, bytes: usize, recorded: bool) -> u64 {
        self.local_fault_ns
            + u64::from(extra_hops) * self.miss_hop_ns
            + bytes as u64 * self.per_byte_ns
            + if recorded { self.record_ns } else { 0 }
    }

    /// Per-block cost of one pre-send tear-down (overlapped rounds).
    #[inline]
    pub fn ensure_ns(&self, bytes: usize) -> u64 {
        self.ensure_ns + bytes as u64 * self.per_byte_ns
    }

    /// Virtual time for one bulk pre-send transfer of `blocks` blocks
    /// (coalesced into `msgs` messages) totalling `bytes` bytes.
    #[inline]
    pub fn bulk_ns(&self, msgs: u64, blocks: u64, bytes: u64) -> u64 {
        msgs * self.msg_startup_ns + blocks * self.presend_block_ns + bytes * self.per_byte_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_cost_grows_with_hops_and_bytes() {
        let c = CostModel::default();
        let two_hop = c.miss_ns(0, 32, false);
        let four_hop = c.miss_ns(2, 32, false);
        assert!(four_hop > two_hop);
        assert!(c.miss_ns(0, 1024, false) > c.miss_ns(0, 32, false));
        assert_eq!(c.miss_ns(0, 0, true) - c.miss_ns(0, 0, false), c.record_ns);
    }

    #[test]
    fn coalescing_saves_startups() {
        let c = CostModel::default();
        // 64 blocks of 32B in one message vs 64 messages.
        let coalesced = c.bulk_ns(1, 64, 64 * 32);
        let separate = c.bulk_ns(64, 64, 64 * 32);
        assert!(coalesced < separate);
        assert_eq!(separate - coalesced, 63 * c.msg_startup_ns);
    }

    #[test]
    fn presend_beats_misses_at_small_blocks() {
        // The heart of the paper: pre-sending F blocks in bulk must be much
        // cheaper than F blocking 200µs misses at 32-byte blocks.
        let c = CostModel::default();
        let f = 100u64;
        let presend = c.bulk_ns(f / 16, f, f * 32);
        let misses = f * c.miss_ns(0, 32, false);
        assert!(presend * 3 < misses, "presend {presend} vs misses {misses}");
    }
}
