//! Protocol event tracing: per-node virtual-time-stamped trace rings.
//!
//! The paper's whole argument rests on *seeing* protocol behavior —
//! Figures 5–7 decompose execution time, §5.2–§5.4 reason about per-phase
//! schedule build/replay dynamics. Cumulative counters ([`crate::stats`])
//! answer "how much"; this module answers "when": every interesting
//! protocol event (fault begin/end, message send/receive, pre-send
//! push/install, schedule record/flush/coalesce, degradation transitions,
//! retries, barrier crossings, wire batches) can be recorded as a compact
//! [`TraceEvent`], stamped with the node's **virtual time**, current phase
//! id, and node id.
//!
//! # Design
//!
//! * **One fixed-capacity ring per node** ([`TraceRing`]): a power-of-two
//!   array of 5-word slots written lock-free (slots are claimed with one
//!   `fetch_add`; at most the node's two threads — compute and protocol
//!   handler — ever write). When the ring wraps, the oldest events are
//!   overwritten and counted as dropped; tracing is a flight recorder, not
//!   a reliable log.
//! * **Zero-cost when disabled**: the [`Tracer`] handle is an
//!   `Option`-like wrapper; every emission site is one branch on a
//!   never-taken pointer when tracing is off, and the disabled tracer
//!   allocates nothing.
//! * **Virtual-time stamps**: the compute thread publishes its virtual
//!   clock into the tracer at every protocol-relevant boundary (fault
//!   begin/end, barriers, phase directives). Events emitted from the
//!   protocol-handler thread are stamped with the *last published* compute
//!   vtime — an approximation documented in DESIGN.md §11: handler events
//!   carry the vtime of the compute activity they are concurrent with,
//!   which is exactly the resolution the per-phase analyses need.
//! * **Quiescent drain**: rings are read only when the machine is idle
//!   (between runs or at teardown). A torn slot — possible only when the
//!   ring wrapped *and* both threads raced the same slot — is detected by
//!   its sequence tag and skipped.
//!
//! Enabling: [`TraceConfig`] on the machine configuration, or the
//! `PRESCIENT_TRACE` environment variable (`1`/`on` for the default
//! capacity, an integer > 1 for an explicit per-node event capacity).
//! Export: [`merge`] the per-node drains, then [`to_jsonl`] (compact
//! line-per-event dump, the `prescient-trace` analyzer's input) and/or
//! [`to_chrome_json`] (Chrome trace-event JSON, loadable in Perfetto or
//! `chrome://tracing`, one process per node with semantic tracks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::NodeId;

/// Tracing policy of one machine.
///
/// `Copy` so it can ride along in machine configurations; the output path
/// is not part of it (exporters take the path explicitly, and the runtime
/// reads `PRESCIENT_TRACE_OUT` at export time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off = every tracer is a no-op handle.
    pub enabled: bool,
    /// Ring capacity in events per node (rounded up to a power of two).
    pub capacity: usize,
}

impl TraceConfig {
    /// Default per-node ring capacity (events). 2^17 events × 40 bytes ≈
    /// 5 MB per node — adaptive at paper scale fits with room to spare;
    /// barnes at paper scale wraps and reports the drop count honestly.
    pub const DEFAULT_CAPACITY: usize = 1 << 17;

    /// Tracing disabled.
    pub fn off() -> TraceConfig {
        TraceConfig { enabled: false, capacity: 0 }
    }

    /// Tracing enabled at the default capacity.
    pub fn on() -> TraceConfig {
        TraceConfig { enabled: true, capacity: Self::DEFAULT_CAPACITY }
    }

    /// Tracing enabled with an explicit per-node event capacity.
    pub fn with_capacity(capacity: usize) -> TraceConfig {
        TraceConfig { enabled: true, capacity: capacity.max(1024).next_power_of_two() }
    }

    /// Parse a `PRESCIENT_TRACE` value: `0`/`off` disable, `1`/`on`
    /// enable at the default capacity, any larger integer enables with
    /// that capacity.
    pub fn parse(s: &str) -> Result<TraceConfig, String> {
        match s.trim() {
            "" | "0" | "off" => Ok(TraceConfig::off()),
            "1" | "on" => Ok(TraceConfig::on()),
            t => t.parse::<usize>().map(TraceConfig::with_capacity).map_err(|_| {
                format!("PRESCIENT_TRACE: expected \"on\", \"off\" or a capacity, got {s:?}")
            }),
        }
    }

    /// The `PRESCIENT_TRACE` override, if set. Panics on an unparsable
    /// value rather than silently tracing nothing.
    pub fn from_env() -> Option<TraceConfig> {
        let v = std::env::var("PRESCIENT_TRACE").ok()?;
        match TraceConfig::parse(&v) {
            Ok(t) => Some(t),
            Err(e) => panic!("{e}"),
        }
    }

    /// The env override if present, else disabled.
    pub fn default_for_machine() -> TraceConfig {
        TraceConfig::from_env().unwrap_or_else(TraceConfig::off)
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig::off()
    }
}

/// What happened. Codes are stable (they appear in trace dumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Compute thread faulted on a shared access. `a` = block, `b` = 1 for
    /// a write fault.
    FaultBegin = 1,
    /// The fault's grant arrived and was billed. `a` = block, `b` =
    /// [`pack_fault_end`] (excl, extra hops, retries). Latency = this
    /// event's vtime minus the matching [`EventKind::FaultBegin`]'s.
    FaultEnd = 2,
    /// Compute thread entered a barrier (egress already flushed).
    BarrierEnter = 3,
    /// Barrier crossed. `a` = this node's stall in ns.
    BarrierExit = 4,
    /// `phase_begin(id)` directive entered. `a` = phase id.
    PhaseBegin = 5,
    /// `phase_end()` directive completed. `a` = phase id.
    PhaseEnd = 6,
    /// A protocol message was sent. `a` = [`pack_msg`] (message kind code,
    /// destination), `b` = message-specific argument (block / push id).
    MsgSend = 7,
    /// A protocol message was handled. `a` = [`pack_msg`] (kind, source),
    /// `b` = message-specific argument.
    MsgRecv = 8,
    /// The pre-send driver started a window. `a` = phase id.
    PresendStart = 9,
    /// The pre-send window completed (all pushes acknowledged). `a` =
    /// phase id, `b` = block copies pushed.
    PresendEnd = 10,
    /// One pre-send bulk message left the driver. `a` = push id, `b` =
    /// [`pack_peer_count`] (target node, blocks aboard).
    PresendPush = 11,
    /// A pre-send payload run was installed at this node. `a` = first
    /// block of the contiguous run, `b` = [`pack_peer_count`] (pushing
    /// home, blocks in the run).
    PresendInstall = 12,
    /// First access to a block installed by a pre-send (its unread bit was
    /// still set). `a` = block. Lead time = this vtime minus the install's.
    PresendFirstTouch = 13,
    /// The ack wait timed out and unacked pushes were retransmitted. `a` =
    /// pushes still outstanding, `b` = retransmission round.
    PresendRetry = 14,
    /// A home recorded a request into the armed phase's schedule. `a` =
    /// block, `b` = requester << 1 | excl.
    SchedRecord = 15,
    /// A phase's schedule was discarded. `a` = phase id.
    SchedFlush = 16,
    /// Pass 2 grouped the push list into bulk messages. `a` = phase id,
    /// `b` = [`pack_counts`] (pushes, groups).
    SchedCoalesce = 17,
    /// A phase's schedule was snapshotted for replay. `a` = phase id,
    /// `b` = run-length-encoded runs in the snapshot.
    SchedReplay = 18,
    /// The degradation policy flushed the phase's schedule and fell back
    /// to plain Stache. `a` = phase id, `b` = instance at which recording
    /// re-arms.
    Degrade = 19,
    /// A degraded phase's backoff expired; recording re-arms. `a` = phase
    /// id, `b` = instance counter.
    Rearm = 20,
    /// A blocked fetch timed out and re-issued its request. `a` = block,
    /// `b` = attempt number.
    Retry = 21,
    /// One egress buffer was flushed onto a channel. `a` =
    /// [`pack_peer_count`] (destination, envelopes aboard), `b` = the wire
    /// batch's fabric-unique id.
    WireFlush = 22,
    /// One wire batch was drained into this node's inbox ring. `a` =
    /// [`pack_peer_count`] (source, envelopes aboard), `b` = batch id.
    WireRecv = 23,
    /// The fault layer acted on an envelope. `a` = destination, `b` =
    /// [`pack_counts`] (fate — 1 delay, 2 duplicate, 3 drop, 4 release,
    /// 5 partition — and the fate's argument, e.g. the delay's event
    /// count).
    FaultInject = 24,
    /// An injected node crash fired at a phase boundary. `a` = crashed
    /// node, `b` = the phase-execution version the crash destroyed.
    Crash = 25,
    /// A barrier-consistent checkpoint capture started. `a` = checkpoint
    /// version (phase-execution ordinal at the cut).
    CheckpointBegin = 26,
    /// The checkpoint capture completed. `a` = checkpoint version, `b` =
    /// block-data bytes captured.
    CheckpointEnd = 27,
    /// Rollback to the last barrier-consistent cut started. `a` = the
    /// checkpoint version being restored, `b` = the crashed node.
    RecoveryBegin = 28,
    /// Rollback completed; the phase replays next. `a` = the restored
    /// checkpoint version.
    RecoveryEnd = 29,
    /// The liveness watchdog declared the machine stuck. `a` = 1 crash /
    /// 2 deadlock, `b` = blocked-node bitmap (nodes 0–63).
    WatchdogFire = 30,
    /// A commutative-merge exchange window opened on the compute thread.
    /// `a` = phase id, `b` = outgoing payload targets.
    MergeBegin = 31,
    /// The merge window closed: all delta chunks pushed and acknowledged,
    /// the inbox drained. `a` = phase id, `b` = [`pack_counts`]
    /// (chunks sent, chunks received).
    MergeEnd = 32,
    /// A phase-boundary migration window decided to move blocks away from
    /// this home. `a` = blocks selected, `b` = the phase-execution version
    /// at the window.
    MigrateBegin = 33,
    /// The migration window completed (every handoff acknowledged). `a` =
    /// blocks moved, `b` = data bytes shipped with them.
    MigrateEnd = 34,
    /// A request for a migrated block hit this old home's forwarding stub
    /// and was bounced. `a` = block, `b` = [`pack_peer_count`] (new home,
    /// requester).
    Forward = 35,
}

impl EventKind {
    /// Every kind, in code order (export and analysis iterate this).
    pub const ALL: [EventKind; 35] = [
        EventKind::FaultBegin,
        EventKind::FaultEnd,
        EventKind::BarrierEnter,
        EventKind::BarrierExit,
        EventKind::PhaseBegin,
        EventKind::PhaseEnd,
        EventKind::MsgSend,
        EventKind::MsgRecv,
        EventKind::PresendStart,
        EventKind::PresendEnd,
        EventKind::PresendPush,
        EventKind::PresendInstall,
        EventKind::PresendFirstTouch,
        EventKind::PresendRetry,
        EventKind::SchedRecord,
        EventKind::SchedFlush,
        EventKind::SchedCoalesce,
        EventKind::SchedReplay,
        EventKind::Degrade,
        EventKind::Rearm,
        EventKind::Retry,
        EventKind::WireFlush,
        EventKind::WireRecv,
        EventKind::FaultInject,
        EventKind::Crash,
        EventKind::CheckpointBegin,
        EventKind::CheckpointEnd,
        EventKind::RecoveryBegin,
        EventKind::RecoveryEnd,
        EventKind::WatchdogFire,
        EventKind::MergeBegin,
        EventKind::MergeEnd,
        EventKind::MigrateBegin,
        EventKind::MigrateEnd,
        EventKind::Forward,
    ];

    /// Stable name, as written into trace dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FaultBegin => "FaultBegin",
            EventKind::FaultEnd => "FaultEnd",
            EventKind::BarrierEnter => "BarrierEnter",
            EventKind::BarrierExit => "BarrierExit",
            EventKind::PhaseBegin => "PhaseBegin",
            EventKind::PhaseEnd => "PhaseEnd",
            EventKind::MsgSend => "MsgSend",
            EventKind::MsgRecv => "MsgRecv",
            EventKind::PresendStart => "PresendStart",
            EventKind::PresendEnd => "PresendEnd",
            EventKind::PresendPush => "PresendPush",
            EventKind::PresendInstall => "PresendInstall",
            EventKind::PresendFirstTouch => "PresendFirstTouch",
            EventKind::PresendRetry => "PresendRetry",
            EventKind::SchedRecord => "SchedRecord",
            EventKind::SchedFlush => "SchedFlush",
            EventKind::SchedCoalesce => "SchedCoalesce",
            EventKind::SchedReplay => "SchedReplay",
            EventKind::Degrade => "Degrade",
            EventKind::Rearm => "Rearm",
            EventKind::Retry => "Retry",
            EventKind::WireFlush => "WireFlush",
            EventKind::WireRecv => "WireRecv",
            EventKind::FaultInject => "FaultInject",
            EventKind::Crash => "Crash",
            EventKind::CheckpointBegin => "CheckpointBegin",
            EventKind::CheckpointEnd => "CheckpointEnd",
            EventKind::RecoveryBegin => "RecoveryBegin",
            EventKind::RecoveryEnd => "RecoveryEnd",
            EventKind::WatchdogFire => "WatchdogFire",
            EventKind::MergeBegin => "MergeBegin",
            EventKind::MergeEnd => "MergeEnd",
            EventKind::MigrateBegin => "MigrateBegin",
            EventKind::MigrateEnd => "MigrateEnd",
            EventKind::Forward => "Forward",
        }
    }

    /// Decode a stored kind code.
    pub fn from_code(code: u8) -> Option<EventKind> {
        EventKind::ALL.get(code.wrapping_sub(1) as usize).copied()
    }

    /// Decode a dump name (the inverse of [`EventKind::name`]).
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

// ---- argument packing -----------------------------------------------------
//
// Events carry two u64 arguments; multi-field payloads pack into them with
// the helpers below so the emitters and the analyzer agree on one layout.

/// Pack a fault's completion: exclusive bit, extra protocol hops, retries.
pub fn pack_fault_end(excl: bool, extra_hops: u32, retries: u32) -> u64 {
    u64::from(excl) | (u64::from(extra_hops) << 1) | (u64::from(retries) << 32)
}

/// Unpack [`pack_fault_end`]: `(excl, extra_hops, retries)`.
pub fn unpack_fault_end(b: u64) -> (bool, u32, u32) {
    (b & 1 != 0, ((b >> 1) & 0x7fff_ffff) as u32, (b >> 32) as u32)
}

/// Pack a message event's kind code and peer node.
pub fn pack_msg(kind_code: u16, peer: NodeId) -> u64 {
    (u64::from(kind_code) << 16) | u64::from(peer)
}

/// Unpack [`pack_msg`]: `(kind_code, peer)`.
pub fn unpack_msg(a: u64) -> (u16, NodeId) {
    ((a >> 16) as u16, (a & 0xffff) as NodeId)
}

/// Pack a peer node with a count (push targets, wire occupancy, installs).
pub fn pack_peer_count(peer: NodeId, count: u64) -> u64 {
    (u64::from(peer) << 48) | (count & 0xffff_ffff_ffff)
}

/// Unpack [`pack_peer_count`]: `(peer, count)`.
pub fn unpack_peer_count(v: u64) -> (NodeId, u64) {
    ((v >> 48) as NodeId, v & 0xffff_ffff_ffff)
}

/// Pack two counts (pushes/groups, fault fate/argument).
pub fn pack_counts(hi: u64, lo: u64) -> u64 {
    (hi << 32) | (lo & 0xffff_ffff)
}

/// Unpack [`pack_counts`]: `(hi, lo)`.
pub fn unpack_counts(v: u64) -> (u64, u64) {
    (v >> 32, v & 0xffff_ffff)
}

// ---- the ring -------------------------------------------------------------

/// One ring slot: a claimed-sequence tag plus the event's four payload
/// words. The tag is written last (Release) so a drain can detect slots
/// whose write never completed or was lapped mid-write.
#[derive(Default)]
struct Slot {
    /// `(seq + 1) << 8 | kind` of the event the slot holds; 0 = never
    /// written.
    tag: AtomicU64,
    t_ns: AtomicU64,
    phase: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// A lock-free, fixed-capacity, overwrite-oldest event ring.
pub struct TraceRing {
    /// Next sequence number to claim (== events ever emitted).
    head: AtomicU64,
    mask: u64,
    slots: Box<[Slot]>,
}

impl TraceRing {
    /// A ring holding `capacity` events (rounded up to a power of two).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
            slots: (0..cap).map(|_| Slot::default()).collect(),
        }
    }

    /// Events ever emitted into the ring (not capped by capacity).
    pub fn emitted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn push(&self, kind: EventKind, t_ns: u64, phase: u64, a: u64, b: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.phase.store(phase, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.tag.store(((seq + 1) << 8) | kind as u64, Ordering::Release);
    }

    /// Read the ring's current contents, oldest first. Non-destructive
    /// and intended for **quiescent** rings (no concurrent emitters);
    /// slots whose tag does not match their expected sequence (a write
    /// torn by ring wrap) are skipped and counted in the returned drop
    /// total alongside genuinely overwritten events.
    fn drain(&self, node: NodeId) -> (Vec<TraceEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut dropped = start;
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            let tag = slot.tag.load(Ordering::Acquire);
            let kind = EventKind::from_code((tag & 0xff) as u8);
            if tag >> 8 != seq + 1 {
                dropped += 1; // torn or lapped mid-write
                continue;
            }
            let Some(kind) = kind else {
                dropped += 1;
                continue;
            };
            out.push(TraceEvent {
                node,
                seq,
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                phase: slot.phase.load(Ordering::Relaxed) as u32,
                kind,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            });
        }
        (out, dropped)
    }
}

/// One decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emitting node.
    pub node: NodeId,
    /// Per-node emission sequence number (gaps = dropped events).
    pub seq: u64,
    /// Virtual-time stamp (ns since run start; protocol-thread events
    /// carry the last vtime the compute thread published).
    pub t_ns: u64,
    /// Phase id current at emission (0 before the first `phase_begin`).
    pub phase: u32,
    /// What happened.
    pub kind: EventKind,
    /// First argument (see [`EventKind`]).
    pub a: u64,
    /// Second argument (see [`EventKind`]).
    pub b: u64,
}

/// Everything one node's ring held at drain time.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// The node the ring belongs to.
    pub node: NodeId,
    /// Events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring wrap (plus torn slots, if any).
    pub dropped: u64,
}

// ---- the handle -----------------------------------------------------------

/// Shared tracing state of one node: the ring plus the published
/// virtual-time and phase cells.
pub struct TraceShared {
    node: NodeId,
    ring: TraceRing,
    vtime: AtomicU64,
    phase: AtomicU64,
}

/// A node's tracing handle. Cloneable and cheap; the disabled handle
/// (`Tracer::off()`, the default) holds no allocation and compiles every
/// emission down to one never-taken branch.
#[derive(Clone, Default)]
pub struct Tracer(Option<Arc<TraceShared>>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Tracer(off)"),
            Some(s) => write!(f, "Tracer(node {}, {} emitted)", s.node, s.ring.emitted()),
        }
    }
}

impl Tracer {
    /// The disabled handle.
    pub fn off() -> Tracer {
        Tracer(None)
    }

    /// An enabled handle for `node` with the given ring capacity.
    pub fn new(node: NodeId, capacity: usize) -> Tracer {
        Tracer(Some(Arc::new(TraceShared {
            node,
            ring: TraceRing::new(capacity),
            vtime: AtomicU64::new(0),
            phase: AtomicU64::new(0),
        })))
    }

    /// A handle per [`TraceConfig`]: enabled handles when the config says
    /// so, disabled otherwise.
    pub fn for_node(cfg: TraceConfig, node: NodeId) -> Tracer {
        if cfg.enabled {
            Tracer::new(node, cfg.capacity)
        } else {
            Tracer::off()
        }
    }

    /// Is tracing live on this handle?
    #[inline]
    pub fn on(&self) -> bool {
        self.0.is_some()
    }

    /// Publish the compute thread's virtual clock; subsequent events (from
    /// either thread) are stamped with it.
    #[inline]
    pub fn set_vtime(&self, t_ns: u64) {
        if let Some(s) = &self.0 {
            s.vtime.store(t_ns, Ordering::Relaxed);
        }
    }

    /// Publish the current phase id.
    #[inline]
    pub fn set_phase(&self, phase: u32) {
        if let Some(s) = &self.0 {
            s.phase.store(u64::from(phase), Ordering::Relaxed);
        }
    }

    /// Emit one event stamped with the published vtime and phase.
    #[inline]
    pub fn emit(&self, kind: EventKind, a: u64, b: u64) {
        if let Some(s) = &self.0 {
            let t = s.vtime.load(Ordering::Relaxed);
            s.ring.push(kind, t, s.phase.load(Ordering::Relaxed), a, b);
        }
    }

    /// Emit one event with an explicit vtime stamp (the stamp is *not*
    /// published).
    #[inline]
    pub fn emit_at(&self, kind: EventKind, t_ns: u64, a: u64, b: u64) {
        if let Some(s) = &self.0 {
            s.ring.push(kind, t_ns, s.phase.load(Ordering::Relaxed), a, b);
        }
    }

    /// Read the ring (see [`TraceRing::drain`] for the quiescence
    /// contract). `None` on a disabled handle.
    pub fn drain(&self) -> Option<TraceDump> {
        self.0.as_ref().map(|s| {
            let (events, dropped) = s.ring.drain(s.node);
            TraceDump { node: s.node, events, dropped }
        })
    }
}

// ---- merge & export -------------------------------------------------------

/// Merge per-node dumps into one machine-wide event stream ordered by
/// (vtime, node, per-node sequence). Returns the stream and the total
/// dropped-event count.
pub fn merge(dumps: Vec<TraceDump>) -> (Vec<TraceEvent>, u64) {
    let dropped = dumps.iter().map(|d| d.dropped).sum();
    let mut all: Vec<TraceEvent> = dumps.into_iter().flat_map(|d| d.events).collect();
    all.sort_by_key(|e| (e.t_ns, e.node, e.seq));
    (all, dropped)
}

/// Render an event stream as JSONL: one compact, flat JSON object per
/// line — the `prescient-trace` analyzer's input format.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(events.len() * 80);
    for e in events {
        writeln!(
            s,
            "{{\"node\":{},\"seq\":{},\"t\":{},\"phase\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.node,
            e.seq,
            e.t_ns,
            e.phase,
            e.kind.name(),
            e.a,
            e.b
        )
        .expect("write to string");
    }
    s
}

/// Semantic track (Chrome "thread") an event renders on. Nodes map to
/// Chrome processes; inside each node, events group into a phase track,
/// the compute thread's fault/barrier/pre-send spans, the protocol
/// handler's instants, and the wire/fault-injection layer.
fn chrome_track(kind: EventKind) -> (u32, &'static str) {
    match kind {
        EventKind::PhaseBegin | EventKind::PhaseEnd => (0, "phase"),
        EventKind::FaultBegin
        | EventKind::FaultEnd
        | EventKind::BarrierEnter
        | EventKind::BarrierExit
        | EventKind::PresendStart
        | EventKind::PresendEnd
        | EventKind::PresendFirstTouch
        | EventKind::Retry
        | EventKind::Crash
        | EventKind::CheckpointBegin
        | EventKind::CheckpointEnd
        | EventKind::RecoveryBegin
        | EventKind::RecoveryEnd
        | EventKind::WatchdogFire
        | EventKind::MergeBegin
        | EventKind::MergeEnd => (1, "compute"),
        EventKind::MsgSend
        | EventKind::MsgRecv
        | EventKind::PresendPush
        | EventKind::PresendInstall
        | EventKind::PresendRetry
        | EventKind::SchedRecord
        | EventKind::SchedFlush
        | EventKind::SchedCoalesce
        | EventKind::SchedReplay
        | EventKind::Degrade
        | EventKind::Rearm
        | EventKind::MigrateBegin
        | EventKind::MigrateEnd
        | EventKind::Forward => (2, "protocol"),
        EventKind::WireFlush | EventKind::WireRecv | EventKind::FaultInject => (3, "wire"),
    }
}

/// The span-opening kind matching a closing kind, if `kind` closes a span.
fn span_open(kind: EventKind) -> Option<EventKind> {
    match kind {
        EventKind::FaultEnd => Some(EventKind::FaultBegin),
        EventKind::BarrierExit => Some(EventKind::BarrierEnter),
        EventKind::PresendEnd => Some(EventKind::PresendStart),
        EventKind::PhaseEnd => Some(EventKind::PhaseBegin),
        EventKind::CheckpointEnd => Some(EventKind::CheckpointBegin),
        EventKind::RecoveryEnd => Some(EventKind::RecoveryBegin),
        EventKind::MergeEnd => Some(EventKind::MergeBegin),
        _ => None,
    }
}

fn is_span_open(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::FaultBegin
            | EventKind::BarrierEnter
            | EventKind::PresendStart
            | EventKind::PhaseBegin
            | EventKind::CheckpointBegin
            | EventKind::RecoveryBegin
            | EventKind::MergeBegin
    )
}

/// Render an event stream as Chrome trace-event JSON (the `traceEvents`
/// array format), loadable in Perfetto and `chrome://tracing`. Each node
/// becomes a process; tracks are semantic (`phase` / `compute` /
/// `protocol` / `wire`), not OS threads. Begin/end pairs (faults,
/// barriers, pre-send windows, phases) render as duration spans in
/// virtual time; everything else renders as instants. Timestamps are the
/// events' virtual-time stamps, in microseconds as the format requires.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(events.len() * 120 + 1024);
    s.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut nodes: Vec<NodeId> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut first = true;
    let mut push = |s: &mut String, line: &str| {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(line);
    };
    for n in &nodes {
        push(
            &mut s,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{n},\"tid\":0,\
                 \"args\":{{\"name\":\"node {n}\"}}}}"
            ),
        );
        for (tid, name) in [(0, "phase"), (1, "compute"), (2, "protocol"), (3, "wire")] {
            push(
                &mut s,
                &format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{n},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
    }
    // Span pairing: per (node, opening kind), spans never overlap — the
    // compute thread is serial and phases/windows nest properly — so a
    // simple open-event stack per key suffices.
    let mut open: std::collections::HashMap<(NodeId, EventKind), Vec<&TraceEvent>> =
        std::collections::HashMap::new();
    for e in events {
        let (tid, _) = chrome_track(e.kind);
        let ts = e.t_ns as f64 / 1000.0;
        if is_span_open(e.kind) {
            open.entry((e.node, e.kind)).or_default().push(e);
            continue;
        }
        if let Some(opener) = span_open(e.kind) {
            if let Some(b) = open.get_mut(&(e.node, opener)).and_then(Vec::pop) {
                let ts0 = b.t_ns as f64 / 1000.0;
                let dur = (e.t_ns.saturating_sub(b.t_ns)) as f64 / 1000.0;
                push(
                    &mut s,
                    &format!(
                        "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{tid},\
                         \"ts\":{ts0:.3},\"dur\":{dur:.3},\
                         \"args\":{{\"phase\":{},\"a\":{},\"b\":{}}}}}",
                        opener.name(),
                        chrome_track(e.kind).1,
                        e.node,
                        b.phase,
                        b.a,
                        e.b
                    ),
                );
                continue;
            }
        }
        push(
            &mut s,
            &format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\
                 \"tid\":{tid},\"ts\":{ts:.3},\"args\":{{\"phase\":{},\"a\":{},\"b\":{}}}}}",
                e.kind.name(),
                chrome_track(e.kind).1,
                e.node,
                e.phase,
                e.a,
                e.b
            ),
        );
    }
    // Unclosed spans (a fault in flight at drain time) render as instants
    // so no event is silently lost.
    for ((node, kind), stack) in open {
        for b in stack {
            let (tid, cat) = chrome_track(kind);
            push(
                &mut s,
                &format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}(unclosed)\",\"cat\":\"{cat}\",\
                     \"pid\":{node},\"tid\":{tid},\"ts\":{:.3},\
                     \"args\":{{\"phase\":{},\"a\":{},\"b\":{}}}}}",
                    kind.name(),
                    b.t_ns as f64 / 1000.0,
                    b.phase,
                    b.a,
                    b.b
                ),
            );
        }
    }
    let _ = write!(s, "\n]}}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.on());
        t.set_vtime(5);
        t.emit(EventKind::FaultBegin, 1, 2);
        assert!(t.drain().is_none());
    }

    #[test]
    fn emit_and_drain_round_trip() {
        let t = Tracer::new(3, 1024);
        t.set_vtime(100);
        t.set_phase(7);
        t.emit(EventKind::FaultBegin, 42, 1);
        t.set_vtime(250);
        t.emit(EventKind::FaultEnd, 42, pack_fault_end(true, 2, 0));
        let d = t.drain().expect("enabled");
        assert_eq!(d.node, 3);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events.len(), 2);
        let e = &d.events[1];
        assert_eq!((e.node, e.seq, e.t_ns, e.phase), (3, 1, 250, 7));
        assert_eq!(e.kind, EventKind::FaultEnd);
        assert_eq!(unpack_fault_end(e.b), (true, 2, 0));
        // Drain is non-destructive.
        assert_eq!(t.drain().expect("enabled").events.len(), 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(0, 4); // rounds to capacity 4
        for i in 0..10u64 {
            t.emit(EventKind::MsgSend, i, 0);
        }
        let d = t.drain().expect("enabled");
        assert_eq!(d.dropped, 6);
        assert_eq!(d.events.iter().map(|e| e.a).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(d.events[0].seq, 6);
    }

    #[test]
    fn concurrent_emitters_keep_all_events_unwrapped() {
        let t = Tracer::new(0, 1 << 12);
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            for i in 0..1000 {
                t2.emit(EventKind::MsgRecv, i, 0);
            }
        });
        for i in 0..1000 {
            t.emit(EventKind::MsgSend, i, 0);
        }
        h.join().unwrap();
        let d = t.drain().expect("enabled");
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events.len(), 2000);
        let sends: Vec<u64> =
            d.events.iter().filter(|e| e.kind == EventKind::MsgSend).map(|e| e.a).collect();
        assert_eq!(sends, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn packing_round_trips() {
        assert_eq!(unpack_fault_end(pack_fault_end(false, 3, 17)), (false, 3, 17));
        assert_eq!(unpack_msg(pack_msg(9, 63)), (9, 63));
        assert_eq!(unpack_peer_count(pack_peer_count(31, 12345)), (31, 12345));
        assert_eq!(unpack_counts(pack_counts(7, 9)), (7, 9));
    }

    #[test]
    fn kind_codes_and_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_code(k as u8), Some(k));
            assert_eq!(EventKind::from_name(k.name()), Some(k));
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(200), None);
    }

    #[test]
    fn merge_orders_by_vtime_then_node() {
        let a = Tracer::new(0, 64);
        let b = Tracer::new(1, 64);
        a.set_vtime(50);
        a.emit(EventKind::MsgSend, 1, 0);
        b.set_vtime(20);
        b.emit(EventKind::MsgSend, 2, 0);
        b.set_vtime(50);
        b.emit(EventKind::MsgSend, 3, 0);
        let (all, dropped) = merge(vec![a.drain().expect("enabled"), b.drain().expect("enabled")]);
        assert_eq!(dropped, 0);
        assert_eq!(all.iter().map(|e| e.a).collect::<Vec<_>>(), vec![2, 1, 3]);
    }

    #[test]
    fn jsonl_lines_are_flat_objects() {
        let t = Tracer::new(2, 64);
        t.set_vtime(9);
        t.emit(EventKind::SchedRecord, 5, 3);
        let d = t.drain().expect("enabled");
        let line = to_jsonl(&d.events);
        assert_eq!(
            line,
            "{\"node\":2,\"seq\":0,\"t\":9,\"phase\":0,\"kind\":\"SchedRecord\",\"a\":5,\"b\":3}\n"
        );
    }

    #[test]
    fn chrome_export_pairs_spans() {
        let t = Tracer::new(0, 64);
        t.set_vtime(10);
        t.emit(EventKind::FaultBegin, 7, 0);
        t.set_vtime(90);
        t.emit(EventKind::FaultEnd, 7, pack_fault_end(false, 1, 0));
        t.emit(EventKind::MsgSend, 1, 2);
        let d = t.drain().expect("enabled");
        let json = to_chrome_json(&d.events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"FaultBegin\""));
        assert!(json.contains("\"dur\":0.080"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"name\":\"MsgSend\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn trace_config_env_forms() {
        assert!(!TraceConfig::off().enabled);
        assert!(TraceConfig::on().enabled);
        assert_eq!(TraceConfig::on().capacity, TraceConfig::DEFAULT_CAPACITY);
        let c = TraceConfig::with_capacity(5000);
        assert!(c.enabled);
        assert_eq!(c.capacity, 8192);
        assert_eq!(TraceConfig::with_capacity(0).capacity, 1024);
    }
}
