//! Global address-space layout: which node is each block's *home*.
//!
//! Stache maps each shared cache block to a home node, where the block
//! initially resides and where its directory entry is kept (§3.1). We carve
//! the 64-bit address space into one large *heap segment per node*; a
//! block's home is the node whose segment contains it.
//!
//! This makes data distribution a pure allocation decision: the C\*\*
//! runtime places each aggregate partition (and each dynamically allocated
//! tree node) in the heap of the node that should own it, so "home" and
//! "owner of the partition" coincide — just as the paper's page-granularity
//! distribution achieves.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

use crate::{BlockId, GAddr, NodeId};

/// Size of each node's heap segment in bytes of address space.
///
/// This is virtual naming space, not physical memory: blocks are
/// materialized lazily on first touch.
pub const NODE_HEAP_BYTES: u64 = 1 << 32; // 4 GiB of naming space per node

/// The global address-space layout of one machine.
#[derive(Clone, Copy, Debug)]
pub struct GlobalLayout {
    /// Number of nodes in the machine.
    pub nodes: usize,
    /// Cache-block size in bytes (power of two; the paper uses 32–1024).
    pub block_size: usize,
}

impl GlobalLayout {
    /// Create a layout. `block_size` must be a power of two ≥ 8 and `nodes`
    /// must be between 1 and [`crate::MAX_NODES`].
    pub fn new(nodes: usize, block_size: usize) -> GlobalLayout {
        assert!((1..=crate::MAX_NODES).contains(&nodes), "node count {nodes} out of range");
        assert!(
            block_size.is_power_of_two() && block_size >= 8,
            "block size {block_size} must be a power of two >= 8"
        );
        GlobalLayout { nodes, block_size }
    }

    /// First usable address of `node`'s heap segment.
    ///
    /// Node 0's segment skips its first block so that address 0 can serve
    /// as the [`GAddr::NULL`] sentinel.
    #[inline]
    pub fn heap_base(&self, node: NodeId) -> GAddr {
        let base = node as u64 * NODE_HEAP_BYTES;
        if node == 0 {
            GAddr(base + self.block_size as u64)
        } else {
            GAddr(base)
        }
    }

    /// Exclusive upper bound of `node`'s heap segment.
    #[inline]
    pub fn heap_end(&self, node: NodeId) -> GAddr {
        GAddr((node as u64 + 1) * NODE_HEAP_BYTES)
    }

    /// The home node of an address.
    ///
    /// Panics on an address outside every node's heap segment: in release
    /// builds a silent modulo/truncation here would mis-home the block and
    /// corrupt the directory, so the check is a real assert, not a
    /// `debug_assert`.
    #[inline]
    pub fn home_of(&self, addr: GAddr) -> NodeId {
        let n = (addr.0 / NODE_HEAP_BYTES) as usize;
        assert!(n < self.nodes, "address {addr:?} outside any node heap (nodes={})", self.nodes);
        n as NodeId
    }

    /// The home node of a block.
    #[inline]
    pub fn home_of_block(&self, block: BlockId) -> NodeId {
        self.home_of(block.base(self.block_size))
    }

    /// The block containing `addr` under this layout's block size.
    #[inline]
    pub fn block_of(&self, addr: GAddr) -> BlockId {
        addr.block(self.block_size)
    }
}

/// A sparse block→home remap table: the serialized form of a placement
/// overlay.
///
/// The text format is one `block home` pair per line (block number and node
/// id, base 10), with `#` comments and blank lines ignored — the format
/// `prescient-trace emit-remap` writes and `MachineConfig` loads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HomeMap {
    entries: BTreeMap<BlockId, NodeId>,
}

impl HomeMap {
    /// An empty map.
    pub fn new() -> HomeMap {
        HomeMap::default()
    }

    /// Map `block` to `home` (replacing any earlier entry).
    pub fn insert(&mut self, block: BlockId, home: NodeId) {
        self.entries.insert(block, home);
    }

    /// The remapped home of `block`, if any.
    pub fn get(&self, block: BlockId) -> Option<NodeId> {
        self.entries.get(&block).copied()
    }

    /// Number of remapped blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in block order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, NodeId)> + '_ {
        self.entries.iter().map(|(b, h)| (*b, *h))
    }

    /// Parse the text format. Homes are validated against `nodes`.
    pub fn parse(text: &str, nodes: usize) -> Result<HomeMap, String> {
        let mut map = HomeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let (b, h) = (it.next(), it.next());
            if it.next().is_some() {
                return Err(format!("remap line {}: expected `block home`", lineno + 1));
            }
            let block = b
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("remap line {}: bad block number", lineno + 1))?;
            let home = h
                .and_then(|s| s.parse::<u16>().ok())
                .ok_or_else(|| format!("remap line {}: bad home node", lineno + 1))?;
            if (home as usize) >= nodes {
                return Err(format!(
                    "remap line {}: home {} out of range (nodes={})",
                    lineno + 1,
                    home,
                    nodes
                ));
            }
            map.insert(BlockId(block), home);
        }
        Ok(map)
    }

    /// Serialize to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# block home\n");
        for (b, h) in self.iter() {
            out.push_str(&format!("{} {}\n", b.0, h));
        }
        out
    }
}

/// One node's live view of the block→home mapping: the segment-derived
/// default ([`GlobalLayout`]) composed with an optional rotate shift (naive
/// round-robin placement, for placement experiments) and a sparse overlay
/// (offline remap entries plus homes learned from forwards/migrations).
///
/// The identity view (no shift, empty overlay) short-circuits to the plain
/// segment divide, so compiled-in-but-disabled placement costs one relaxed
/// atomic load per lookup.
#[derive(Debug)]
pub struct HomeView {
    base: GlobalLayout,
    shift: u16,
    /// True while `shift == 0` and the overlay is empty.
    identity: AtomicBool,
    overlay: RwLock<BTreeMap<BlockId, NodeId>>,
}

impl HomeView {
    /// The identity view over `base`.
    pub fn identity(base: GlobalLayout) -> HomeView {
        HomeView::with_placement(base, 0, HomeMap::new())
    }

    /// A view with a rotate shift and an initial overlay.
    pub fn with_placement(base: GlobalLayout, shift: u16, overlay: HomeMap) -> HomeView {
        assert!((shift as usize) < base.nodes, "rotate shift {shift} out of range");
        let identity = shift == 0 && overlay.is_empty();
        HomeView {
            base,
            shift,
            identity: AtomicBool::new(identity),
            overlay: RwLock::new(overlay.entries),
        }
    }

    /// The underlying segment layout.
    pub fn layout(&self) -> &GlobalLayout {
        &self.base
    }

    /// The configured rotate shift.
    pub fn shift(&self) -> u16 {
        self.shift
    }

    /// The segment-derived (allocation-time) home of `block`.
    #[inline]
    pub fn base_home(&self, block: BlockId) -> NodeId {
        self.base.home_of_block(block)
    }

    /// This view's current home of `block`.
    #[inline]
    pub fn home_of_block(&self, block: BlockId) -> NodeId {
        if self.identity.load(Ordering::Relaxed) {
            return self.base.home_of_block(block);
        }
        if let Some(h) = self.overlay.read().unwrap().get(&block) {
            return *h;
        }
        self.rotated(block)
    }

    /// The shift-rotated default home of `block` (ignores the overlay).
    #[inline]
    fn rotated(&self, block: BlockId) -> NodeId {
        let b = self.base.home_of_block(block) as usize;
        ((b + self.shift as usize) % self.base.nodes) as NodeId
    }

    /// True iff this view maps `block` exactly like the segment layout
    /// *because placement is not acting on it*: no shift and no overlay
    /// entry. The first-touch fast path (auto-RW materialization of a
    /// node's own home blocks) is gated on this, so enabling placement
    /// changes first-touch behavior uniformly per block rather than
    /// depending on where an overlay happens to point.
    #[inline]
    pub fn is_identity_block(&self, block: BlockId) -> bool {
        if self.identity.load(Ordering::Relaxed) {
            return true;
        }
        self.shift == 0 && !self.overlay.read().unwrap().contains_key(&block)
    }

    /// Record that `block` is now homed at `home` (migration commit on
    /// either end, or a forward bounce teaching the requester).
    pub fn set(&self, block: BlockId, home: NodeId) {
        assert!((home as usize) < self.base.nodes, "home {home} out of range");
        self.overlay.write().unwrap().insert(block, home);
        self.identity.store(false, Ordering::Relaxed);
    }

    /// Snapshot the overlay (checkpoint capture).
    pub fn snapshot(&self) -> HomeMap {
        HomeMap { entries: self.overlay.read().unwrap().clone() }
    }

    /// Replace the overlay wholesale (checkpoint restore).
    pub fn restore(&self, map: &HomeMap) {
        let identity = self.shift == 0 && map.is_empty();
        *self.overlay.write().unwrap() = map.entries.clone();
        self.identity.store(identity, Ordering::Relaxed);
    }

    /// Number of overlay entries.
    pub fn overlay_len(&self) -> usize {
        self.overlay.read().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_partition_the_space() {
        let l = GlobalLayout::new(4, 64);
        assert_eq!(l.home_of(l.heap_base(0)), 0);
        assert_eq!(l.home_of(l.heap_base(3)), 3);
        assert_eq!(l.home_of(GAddr(NODE_HEAP_BYTES + 8)), 1);
    }

    #[test]
    fn node0_base_skips_null_block() {
        let l = GlobalLayout::new(2, 32);
        assert!(l.heap_base(0).0 >= 32);
        assert!(!l.heap_base(0).is_null());
    }

    #[test]
    fn block_home_matches_addr_home() {
        let l = GlobalLayout::new(8, 128);
        for n in 0..8u16 {
            let a = l.heap_base(n).add(12345 * 128);
            assert_eq!(l.home_of(a), n);
            assert_eq!(l.home_of_block(l.block_of(a)), n);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_size() {
        GlobalLayout::new(2, 48);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node_count() {
        GlobalLayout::new(65, 32);
    }

    #[test]
    #[should_panic(expected = "outside any node heap")]
    fn out_of_range_address_panics_not_mishomes() {
        let l = GlobalLayout::new(4, 64);
        // One byte past the last node's heap: must panic (also in release
        // builds), never silently return a bogus home.
        let _ = l.home_of(GAddr(4 * NODE_HEAP_BYTES));
    }

    #[test]
    fn homemap_parse_roundtrip() {
        let text = "# comment\n12 3\n\n99 0  # trailing comment\n";
        let m = HomeMap::parse(text, 4).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(BlockId(12)), Some(3));
        assert_eq!(m.get(BlockId(99)), Some(0));
        assert_eq!(m.get(BlockId(1)), None);
        let again = HomeMap::parse(&m.to_text(), 4).unwrap();
        assert_eq!(again, m);
    }

    #[test]
    fn homemap_rejects_bad_lines() {
        assert!(HomeMap::parse("12", 4).is_err());
        assert!(HomeMap::parse("12 3 9", 4).is_err());
        assert!(HomeMap::parse("x 3", 4).is_err());
        assert!(HomeMap::parse("12 4", 4).is_err(), "home out of range");
    }

    #[test]
    fn homeview_identity_matches_layout() {
        let l = GlobalLayout::new(4, 64);
        let v = HomeView::identity(l);
        for n in 0..4u16 {
            let b = l.block_of(l.heap_base(n));
            assert_eq!(v.home_of_block(b), n);
            assert!(v.is_identity_block(b));
        }
    }

    #[test]
    fn homeview_rotate_and_overlay() {
        let l = GlobalLayout::new(4, 64);
        let mut m = HomeMap::new();
        let b0 = l.block_of(l.heap_base(0));
        m.insert(b0, 2);
        let v = HomeView::with_placement(l, 1, m);
        // Overlay wins over the rotate default.
        assert_eq!(v.home_of_block(b0), 2);
        // Rotate applies where the overlay is silent.
        let b3 = l.block_of(l.heap_base(3));
        assert_eq!(v.home_of_block(b3), 0);
        assert!(!v.is_identity_block(b0));
        assert!(!v.is_identity_block(b3));
        // Learned homes stick.
        v.set(b3, 3);
        assert_eq!(v.home_of_block(b3), 3);
    }

    #[test]
    fn homeview_snapshot_restore() {
        let l = GlobalLayout::new(4, 64);
        let v = HomeView::identity(l);
        let b = l.block_of(l.heap_base(1));
        v.set(b, 3);
        assert!(!v.is_identity_block(b));
        let snap = v.snapshot();
        v.set(b, 2);
        v.restore(&snap);
        assert_eq!(v.home_of_block(b), 3);
        v.restore(&HomeMap::new());
        assert_eq!(v.home_of_block(b), 1);
        assert!(v.is_identity_block(b));
    }
}
