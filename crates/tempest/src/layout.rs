//! Global address-space layout: which node is each block's *home*.
//!
//! Stache maps each shared cache block to a home node, where the block
//! initially resides and where its directory entry is kept (§3.1). We carve
//! the 64-bit address space into one large *heap segment per node*; a
//! block's home is the node whose segment contains it.
//!
//! This makes data distribution a pure allocation decision: the C\*\*
//! runtime places each aggregate partition (and each dynamically allocated
//! tree node) in the heap of the node that should own it, so "home" and
//! "owner of the partition" coincide — just as the paper's page-granularity
//! distribution achieves.

use crate::{BlockId, GAddr, NodeId};

/// Size of each node's heap segment in bytes of address space.
///
/// This is virtual naming space, not physical memory: blocks are
/// materialized lazily on first touch.
pub const NODE_HEAP_BYTES: u64 = 1 << 32; // 4 GiB of naming space per node

/// The global address-space layout of one machine.
#[derive(Clone, Copy, Debug)]
pub struct GlobalLayout {
    /// Number of nodes in the machine.
    pub nodes: usize,
    /// Cache-block size in bytes (power of two; the paper uses 32–1024).
    pub block_size: usize,
}

impl GlobalLayout {
    /// Create a layout. `block_size` must be a power of two ≥ 8 and `nodes`
    /// must be between 1 and [`crate::MAX_NODES`].
    pub fn new(nodes: usize, block_size: usize) -> GlobalLayout {
        assert!((1..=crate::MAX_NODES).contains(&nodes), "node count {nodes} out of range");
        assert!(
            block_size.is_power_of_two() && block_size >= 8,
            "block size {block_size} must be a power of two >= 8"
        );
        GlobalLayout { nodes, block_size }
    }

    /// First usable address of `node`'s heap segment.
    ///
    /// Node 0's segment skips its first block so that address 0 can serve
    /// as the [`GAddr::NULL`] sentinel.
    #[inline]
    pub fn heap_base(&self, node: NodeId) -> GAddr {
        let base = node as u64 * NODE_HEAP_BYTES;
        if node == 0 {
            GAddr(base + self.block_size as u64)
        } else {
            GAddr(base)
        }
    }

    /// Exclusive upper bound of `node`'s heap segment.
    #[inline]
    pub fn heap_end(&self, node: NodeId) -> GAddr {
        GAddr((node as u64 + 1) * NODE_HEAP_BYTES)
    }

    /// The home node of an address.
    #[inline]
    pub fn home_of(&self, addr: GAddr) -> NodeId {
        let n = (addr.0 / NODE_HEAP_BYTES) as usize;
        debug_assert!(n < self.nodes, "address {addr:?} outside any node heap");
        n as NodeId
    }

    /// The home node of a block.
    #[inline]
    pub fn home_of_block(&self, block: BlockId) -> NodeId {
        self.home_of(block.base(self.block_size))
    }

    /// The block containing `addr` under this layout's block size.
    #[inline]
    pub fn block_of(&self, addr: GAddr) -> BlockId {
        addr.block(self.block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_partition_the_space() {
        let l = GlobalLayout::new(4, 64);
        assert_eq!(l.home_of(l.heap_base(0)), 0);
        assert_eq!(l.home_of(l.heap_base(3)), 3);
        assert_eq!(l.home_of(GAddr(NODE_HEAP_BYTES + 8)), 1);
    }

    #[test]
    fn node0_base_skips_null_block() {
        let l = GlobalLayout::new(2, 32);
        assert!(l.heap_base(0).0 >= 32);
        assert!(!l.heap_base(0).is_null());
    }

    #[test]
    fn block_home_matches_addr_home() {
        let l = GlobalLayout::new(8, 128);
        for n in 0..8u16 {
            let a = l.heap_base(n).add(12345 * 128);
            assert_eq!(l.home_of(a), n);
            assert_eq!(l.home_of_block(l.block_of(a)), n);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_block_size() {
        GlobalLayout::new(2, 48);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_node_count() {
        GlobalLayout::new(65, 32);
    }
}
