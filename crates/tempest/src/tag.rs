//! Fine-grain access-control tags.
//!
//! Tempest attaches an access tag to every cache block present on a node.
//! Accesses are checked against the tag; an inappropriate access (a read of
//! an `Invalid` block, a write to an `Invalid` or `ReadOnly` block) *faults*
//! and is vectored to the node's user-level protocol handler, exactly as in
//! Blizzard (§3.1 of the paper).

/// The access-control state of one cache block on one node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Tag {
    /// No valid copy. Any access faults.
    #[default]
    Invalid,
    /// A valid read-only copy. Reads succeed at full speed; writes fault.
    ReadOnly,
    /// A valid writable copy (this node is the exclusive owner). All
    /// accesses succeed at full speed.
    ReadWrite,
}

impl Tag {
    /// May this block be read without faulting?
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(self, Tag::Invalid)
    }

    /// May this block be written without faulting?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, Tag::ReadWrite)
    }
}

/// The two kinds of shared-memory access, used when classifying faults and
/// when recording communication-schedule entries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl Access {
    /// Does `tag` permit this access?
    #[inline]
    pub fn permitted(self, tag: Tag) -> bool {
        match self {
            Access::Read => tag.readable(),
            Access::Write => tag.writable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissions() {
        assert!(!Tag::Invalid.readable());
        assert!(!Tag::Invalid.writable());
        assert!(Tag::ReadOnly.readable());
        assert!(!Tag::ReadOnly.writable());
        assert!(Tag::ReadWrite.readable());
        assert!(Tag::ReadWrite.writable());
    }

    #[test]
    fn access_check() {
        assert!(Access::Read.permitted(Tag::ReadOnly));
        assert!(!Access::Write.permitted(Tag::ReadOnly));
        assert!(Access::Write.permitted(Tag::ReadWrite));
        assert!(!Access::Read.permitted(Tag::Invalid));
    }
}
