//! The socket transport: a fabric whose nodes are split across two TCP
//! connection ends, so two OS processes can each host half of a machine.
//!
//! Each side hosts a contiguous [`NodeRange`]. A batch addressed inside
//! the local range takes a per-node channel exactly like the
//! [`crate::fabric::ChannelTransport`]; a batch addressed outside it is
//! encoded as a length-prefixed frame (see [`crate::wire`]) and written
//! to the peer stream, where a reader thread decodes it and delivers it
//! to the destination's local channel. Self-sends therefore never touch
//! the wire *or* the fault layer — the check sits in [`crate::fabric::Net`],
//! above the transport, identical on every backend.
//!
//! Two construction modes:
//!
//! * [`pair_with`] — a **loopback pair** inside one process: all `n`
//!   endpoints are returned, but every batch crossing the configured
//!   split traverses a real TCP socket, full codec and framing included.
//!   This is what the backend-equivalence suite and the perf gate run,
//!   since the machine layer's barrier/allreduce/recovery facilities are
//!   shared-memory and cannot span processes.
//! * [`SocketHost::accept`] / [`connect`] — a **genuine two-process**
//!   fabric: each process builds only its own range's endpoints after a
//!   rendezvous handshake keyed by node range. The `socket_smoke` bench
//!   binary drives protocol traffic across two processes this way.
//!
//! Teardown accounting matches the in-process backends: a batch that
//! cannot be delivered because its destination inbox is gone is counted
//! via [`FabricCtl::count_teardown_drop`], whether the failure happens at
//! the sender (local channel closed, peer stream closed) or on the
//! receiving side's reader thread (local delivery after the endpoint
//! dropped). Either way each lost envelope is counted exactly once.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use crate::fabric::{
    make_net, BatchConfig, Endpoint, FabricCtl, Transport, Undeliverable, WireBatch,
};
use crate::faults::{FaultHook, FaultPlan, FaultState};
use crate::stats::FaultStats;
use crate::wire::{read_frame, read_hello, write_frame, write_hello, WireCodec};
use crate::{NodeId, MAX_NODES};

/// A contiguous range of node ids hosted by one connection end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRange {
    /// First node of the range.
    pub start: NodeId,
    /// Number of nodes in the range.
    pub len: u16,
}

impl NodeRange {
    /// The range `start..start + len`.
    pub fn new(start: NodeId, len: u16) -> NodeRange {
        NodeRange { start, len }
    }

    /// One past the last node.
    pub fn end(&self) -> NodeId {
        self.start + self.len
    }

    /// Is `node` inside the range?
    pub fn contains(&self, node: NodeId) -> bool {
        node >= self.start && node < self.end()
    }
}

/// The transport of one connection end: local nodes by channel, the rest
/// by frame over the peer stream.
struct SocketTransport<M> {
    total: usize,
    range: NodeRange,
    local: Arc<[Sender<WireBatch<M>>]>,
    writer: Mutex<BufWriter<TcpStream>>,
}

impl<M: Send + WireCodec> Transport<M> for SocketTransport<M> {
    fn deliver(&self, dst: NodeId, batch: WireBatch<M>) -> Result<(), Undeliverable> {
        if self.range.contains(dst) {
            return self.local[(dst - self.range.start) as usize]
                .send(batch)
                .map_err(|_| Undeliverable);
        }
        let mut w = self.writer.lock();
        write_frame(&mut *w, dst, &batch).and_then(|_| w.flush()).map_err(|_| Undeliverable)
    }

    fn nodes(&self) -> usize {
        self.total
    }
}

/// Owns a socket fabric's connection plumbing: keeps the reader threads
/// and stream handles alive while the machine runs, and tears them down
/// (mark closing, shut the streams, join the readers) on drop. Hold it
/// for as long as any endpoint of the fabric is in use.
pub struct SocketGuard {
    ctl: Arc<FabricCtl>,
    streams: Vec<TcpStream>,
    readers: Vec<JoinHandle<()>>,
}

impl SocketGuard {
    /// The fabric's shared teardown state.
    pub fn ctl(&self) -> &Arc<FabricCtl> {
        &self.ctl
    }

    /// Tear the connection down: signal teardown, shut both directions of
    /// every stream (unblocking the readers), and join the readers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.ctl.mark_closing();
        for s in &self.streams {
            let _ = s.shutdown(Shutdown::Both);
        }
        for j in self.readers.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for SocketGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Build one connection end: the endpoints of `range` plus the reader
/// thread pumping inbound frames into their channels.
fn build_side<M: Send + WireCodec + 'static>(
    total: usize,
    range: NodeRange,
    stream: TcpStream,
    faults: Option<Arc<dyn FaultHook<M>>>,
    batch: BatchConfig,
    ctl: Arc<FabricCtl>,
) -> io::Result<(Vec<Endpoint<M>>, JoinHandle<()>, TcpStream)> {
    stream.set_nodelay(true)?;
    let rstream = stream.try_clone()?;
    let wstream = stream.try_clone()?;
    let mut txs = Vec::with_capacity(range.len as usize);
    let mut rxs = Vec::with_capacity(range.len as usize);
    for _ in 0..range.len {
        let (tx, rx) = unbounded::<WireBatch<M>>();
        txs.push(tx);
        rxs.push(rx);
    }
    let local: Arc<[Sender<WireBatch<M>>]> = txs.into();
    let transport: Arc<dyn Transport<M>> = Arc::new(SocketTransport {
        total,
        range,
        local: Arc::clone(&local),
        writer: Mutex::new(BufWriter::new(wstream)),
    });
    let reader_ctl = Arc::clone(&ctl);
    let reader = std::thread::Builder::new()
        .name(format!("sock-rx-{}-{}", range.start, range.end()))
        .spawn(move || {
            let mut r = BufReader::new(rstream);
            loop {
                match read_frame::<M, _>(&mut r) {
                    Ok(Some((dst, batch))) => {
                        if !range.contains(dst) {
                            eprintln!(
                                "socket fabric: peer sent a frame for node {dst}, \
                                 outside local range {}..{}",
                                range.start,
                                range.end()
                            );
                            continue;
                        }
                        let n = batch.msgs.len() as u64;
                        if local[(dst - range.start) as usize].send(batch).is_err() {
                            // The endpoint is gone; same accounting as a
                            // failed in-process delivery.
                            reader_ctl.count_teardown_drop(n, dst);
                        }
                    }
                    Ok(None) => break, // peer closed cleanly between frames
                    Err(e) => {
                        if !reader_ctl.is_closing() && !reader_ctl.is_aborting() {
                            eprintln!("socket fabric reader: {e}");
                        }
                        break;
                    }
                }
            }
        })
        .expect("spawn socket reader");
    let eps = rxs
        .into_iter()
        .enumerate()
        .map(|(i, rx)| {
            let me = range.start + i as NodeId;
            let net = make_net(
                me,
                total,
                Arc::clone(&transport),
                Arc::clone(&ctl),
                faults.clone(),
                batch,
            );
            Endpoint::from_parts(me, rx, net)
        })
        .collect();
    Ok((eps, reader, stream))
}

/// Build a loopback socket-pair fabric inside one process: `n` endpoints
/// where nodes `0..split` and `split..n` sit on opposite ends of a real
/// TCP connection over `127.0.0.1`. Traffic within a half stays on
/// channels; traffic across the split is framed, written, read back and
/// decoded — the full socket path, minus the second process.
pub fn pair_with<M: Send + WireCodec + 'static>(
    n: usize,
    split: usize,
    faults: Option<Arc<dyn FaultHook<M>>>,
    batch: BatchConfig,
) -> io::Result<(Vec<Endpoint<M>>, SocketGuard)> {
    assert!(n <= MAX_NODES, "egress dirty mask caps the fabric at {MAX_NODES} nodes");
    assert!(split > 0 && split < n, "split must partition 0..{n} into two non-empty halves");
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let a = TcpStream::connect(addr)?;
    let (b, _) = listener.accept()?;
    let ctl = Arc::new(FabricCtl::default());
    let lo = NodeRange::new(0, split as u16);
    let hi = NodeRange::new(split as u16, (n - split) as u16);
    let (mut eps, rd_lo, st_lo) = build_side(n, lo, a, faults.clone(), batch, Arc::clone(&ctl))?;
    let (eps_hi, rd_hi, st_hi) = build_side(n, hi, b, faults, batch, Arc::clone(&ctl))?;
    eps.extend(eps_hi);
    Ok((eps, SocketGuard { ctl, streams: vec![st_lo, st_hi], readers: vec![rd_lo, rd_hi] }))
}

/// [`pair_with`] over the fault layer: chaos plans work on the socket
/// backend exactly as in-process, because faults fire at egress-flush
/// time, above the transport.
pub fn pair_faulty_with<M: Send + Clone + WireCodec + 'static>(
    n: usize,
    split: usize,
    plan: FaultPlan,
    batch: BatchConfig,
) -> io::Result<(Vec<Endpoint<M>>, Arc<FaultStats>, SocketGuard)> {
    let faults = Arc::new(FaultState::new(n, plan));
    let stats = Arc::clone(faults.stats());
    let (eps, guard) = pair_with(n, split, Some(faults as Arc<dyn FaultHook<M>>), batch)?;
    Ok((eps, stats, guard))
}

/// The listening side of a genuine two-process rendezvous.
pub struct SocketHost {
    listener: TcpListener,
}

impl SocketHost {
    /// Bind the rendezvous listener (use port 0 to let the OS pick, then
    /// pass [`SocketHost::local_addr`] to the peer process).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<SocketHost> {
        Ok(SocketHost { listener: TcpListener::bind(addr)? })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept one peer and handshake. `range` is the node range *this*
    /// process hosts; the peer must host exactly the complement of
    /// `0..total`. Returns this side's endpoints only.
    pub fn accept<M: Send + WireCodec + 'static>(
        self,
        total: usize,
        range: NodeRange,
        batch: BatchConfig,
    ) -> io::Result<(Vec<Endpoint<M>>, SocketGuard)> {
        let (stream, _) = self.listener.accept()?;
        handshake_and_build(stream, total, range, batch)
    }
}

/// The connecting side of a two-process rendezvous: retries until the
/// host is listening (up to `wait`), then handshakes. `range` is the
/// node range *this* process hosts.
pub fn connect<M: Send + WireCodec + 'static>(
    addr: &str,
    total: usize,
    range: NodeRange,
    batch: BatchConfig,
    wait: Duration,
) -> io::Result<(Vec<Endpoint<M>>, SocketGuard)> {
    let deadline = Instant::now() + wait;
    let stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(e),
        }
    };
    handshake_and_build(stream, total, range, batch)
}

fn handshake_and_build<M: Send + WireCodec + 'static>(
    stream: TcpStream,
    total: usize,
    range: NodeRange,
    batch: BatchConfig,
) -> io::Result<(Vec<Endpoint<M>>, SocketGuard)> {
    assert!(total <= MAX_NODES, "egress dirty mask caps the fabric at {MAX_NODES} nodes");
    write_hello(&mut &stream, total as u16, range.start, range.len)?;
    let (p_total, p_start, p_len) = read_hello(&mut &stream)?;
    let peer = NodeRange::new(p_start, p_len);
    validate_peer(total as u16, range, p_total, peer)?;
    let ctl = Arc::new(FabricCtl::default());
    let (eps, reader, stream) = build_side(total, range, stream, None, batch, Arc::clone(&ctl))?;
    Ok((eps, SocketGuard { ctl, streams: vec![stream], readers: vec![reader] }))
}

/// The rendezvous key: both sides must agree on the machine size and
/// their ranges must exactly partition it.
fn validate_peer(total: u16, ours: NodeRange, p_total: u16, peer: NodeRange) -> io::Result<()> {
    let bad = |msg: String| Err(io::Error::new(io::ErrorKind::InvalidData, msg));
    if p_total != total {
        return bad(format!(
            "machine size mismatch: peer hosts a {p_total}-node machine, we {total}"
        ));
    }
    let (lo, hi) = if ours.start <= peer.start { (ours, peer) } else { (peer, ours) };
    if lo.start != 0 || lo.end() != hi.start || hi.end() != total {
        return bad(format!(
            "node ranges {}..{} and {}..{} do not partition 0..{total}",
            ours.start,
            ours.end(),
            peer.start,
            peer.end()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{Envelope, TryRecv};
    use crate::wire::{put_u64, WireDecoder, WireError};

    // u64 implements WireCodec in crate::wire's test module; that impl is
    // not visible here, so give the tests their own payload type.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct P(u64);

    impl WireCodec for P {
        fn encode(&self, out: &mut Vec<u8>) {
            put_u64(out, self.0);
        }
        fn decode(d: &mut WireDecoder<'_>) -> Result<P, WireError> {
            d.take_u64().map(P)
        }
    }

    #[test]
    fn cross_split_traffic_keeps_per_link_fifo() {
        let (eps, _guard) = pair_with::<P>(4, 2, None, BatchConfig::new(8)).unwrap();
        for i in 0..300 {
            eps[0].net().send(3, P(i));
        }
        eps[0].net().flush_all();
        for i in 0..300 {
            let env = eps[3].recv().unwrap();
            assert_eq!((env.src, env.dst), (0, 3));
            assert_eq!(env.msg, P(i));
        }
    }

    #[test]
    fn singleton_batches_cross_the_wire_as_singletons() {
        let (eps, _guard) = pair_with::<P>(2, 1, None, BatchConfig::off()).unwrap();
        eps[0].net().send(1, P(7));
        eps[0].net().flush_all();
        let env = eps[1].recv().unwrap();
        assert_eq!(env.msg, P(7));
    }

    #[test]
    fn self_sends_skip_wire_and_fault_layer_on_socket_backend() {
        // Drop every inter-node message: self-sends must still arrive
        // (unbuffered, unfaulted, never framed) while cross-split sends
        // all die in the fault layer before reaching the stream.
        let plan = FaultPlan::new(1).dropping(1000);
        let (eps, stats, _guard) = pair_faulty_with::<P>(2, 1, plan, BatchConfig::new(4)).unwrap();
        for i in 0..50 {
            eps[1].net().send(1, P(i)); // self-send on the remote half
            eps[1].net().send(0, P(1000 + i)); // cross-split, will be dropped
        }
        eps[1].net().flush_all();
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        assert_eq!(got, (0..50).map(P).collect::<Vec<_>>());
        assert_eq!(stats.total().dropped, 50);
        // Nothing survived to cross the wire.
        std::thread::sleep(Duration::from_millis(50));
        assert!(matches!(eps[0].try_recv(), TryRecv::Empty));
    }

    #[test]
    fn teardown_drops_counted_when_remote_endpoint_gone() {
        // The sender's write succeeds (the stream is alive); the loss is
        // detected by the receiving side's reader thread and must be
        // counted on the shared ctl, exactly like an in-process drop.
        let (mut eps, guard) = pair_with::<P>(2, 1, None, BatchConfig::off()).unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let net0 = e0.net().clone();
        net0.ctl().mark_closing();
        drop(e1);
        net0.send(1, P(42));
        net0.flush_all();
        let deadline = Instant::now() + Duration::from_secs(5);
        while guard.ctl().teardown_drops() < 1 {
            assert!(Instant::now() < deadline, "teardown drop never counted");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(guard.ctl().teardown_drops(), 1);
        drop(e0);
    }

    #[test]
    fn two_process_style_rendezvous_rejects_mismatched_ranges() {
        let host = SocketHost::bind("127.0.0.1:0").unwrap();
        let addr = host.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            // Peer claims 1..4 of a 5-node machine: does not complement 0..2 of 4.
            connect::<P>(&addr, 5, NodeRange::new(1, 3), BatchConfig::off(), Duration::from_secs(5))
        });
        let host_res = host.accept::<P>(4, NodeRange::new(0, 2), BatchConfig::off());
        assert!(host_res.is_err(), "host must reject a mismatched peer");
        assert!(t.join().unwrap().is_err(), "peer must reject a mismatched host");
    }

    #[test]
    fn two_process_style_rendezvous_carries_traffic_both_ways() {
        let host = SocketHost::bind("127.0.0.1:0").unwrap();
        let addr = host.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (eps, guard) = connect::<P>(
                &addr,
                4,
                NodeRange::new(2, 2),
                BatchConfig::new(8),
                Duration::from_secs(5),
            )
            .unwrap();
            // Echo every message from node 0 back to it, +1000.
            for _ in 0..100 {
                let Envelope { src, msg, .. } = eps[0].recv().unwrap();
                assert_eq!(src, 0);
                eps[0].net().send(0, P(msg.0 + 1000));
            }
            eps[0].net().flush_all();
            // Hold the connection open until the peer read everything.
            let Envelope { msg, .. } = eps[1].recv().unwrap();
            assert_eq!(msg, P(0xF1));
            (eps, guard)
        });
        let (eps, _guard) = host.accept::<P>(4, NodeRange::new(0, 2), BatchConfig::new(8)).unwrap();
        for i in 0..100 {
            eps[0].net().send(2, P(i));
        }
        eps[0].net().flush_all();
        for i in 0..100 {
            let env = eps[0].recv().unwrap();
            assert_eq!((env.src, env.msg), (2, P(i + 1000)));
        }
        eps[1].net().send(3, P(0xF1));
        eps[1].net().flush_all();
        let (peer_eps, mut peer_guard) = t.join().unwrap();
        peer_guard.shutdown();
        drop(peer_eps);
    }

    #[test]
    fn wire_counters_still_fire_on_socket_backend() {
        let (eps, guard) = pair_with::<P>(2, 1, None, BatchConfig::new(4)).unwrap();
        for i in 0..8 {
            eps[0].net().send(1, P(i));
        }
        eps[0].net().flush_all();
        for _ in 0..8 {
            eps[1].recv().unwrap();
        }
        let w = guard.ctl().wire();
        assert_eq!(w.envelopes, 8);
        assert!(w.batches >= 2);
    }
}
