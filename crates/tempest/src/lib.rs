//! # prescient-tempest
//!
//! Fine-grain distributed-shared-memory *substrate*, modeled on the Tempest
//! parallel-programming interface and its Blizzard implementation on the
//! Thinking Machines CM-5 (Reinhardt, Larus & Wood, ISCA '94; Schoinas et
//! al., ASPLOS VI).
//!
//! Tempest provides mechanisms, not policy:
//!
//! * a **global address space** carved into fixed-size *cache blocks*
//!   (32–1024 bytes), each with a *home node* ([`layout`]),
//! * **fine-grain access control**: every shared-memory access checks a
//!   per-block tag ([`tag::Tag`]); inappropriate accesses *fault* into a
//!   user-level protocol handler (the original Blizzard-S inserted the same
//!   software checks before shared loads and stores by editing executables —
//!   our explicit check is the identical mechanism),
//! * **messaging** between nodes ([`fabric`]), playing the role of the CM-5
//!   data network; a message's payload is interpreted by the receiving
//!   node's protocol handler thread, mirroring Tempest active messages,
//! * per-node **block storage** ([`mem`]) backing both home memory and the
//!   remote-block cache (the "stache" region),
//! * a deterministic **virtual-time cost model** ([`cost`]) that converts
//!   observed protocol events (local hits, remote misses, bulk transfers,
//!   barrier gaps) into CM-5-calibrated time so the paper's execution-time
//!   breakdowns can be regenerated on stock hardware, and
//! * **statistics** ([`stats`]) and a virtual-time-aware **barrier**
//!   ([`barrier`]).
//!
//! Coherence *policy* lives above this crate: `prescient-stache` implements
//! the default sequentially-consistent write-invalidate protocol and
//! `prescient-core` implements the paper's predictive protocol on top of it.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod barrier;
pub mod cost;
pub mod fabric;
pub mod faults;
pub mod layout;
pub mod mem;
pub mod metrics;
pub mod nodeset;
pub mod prim;
pub mod socket;
pub mod stats;
pub mod tag;
pub mod trace;
pub mod wire;

pub use addr::{BlockId, GAddr};
pub use barrier::{Aborted, VBarrier};
pub use cost::CostModel;
pub use fabric::{
    BatchConfig, ChannelTransport, Endpoint, Envelope, Fabric, FabricCtl, ShardEndpoint,
    ShardTransport, Transport, TryRecv, Undeliverable, WireBatch, WirePayload,
};
pub use faults::{
    CrashPlan, FaultHook, FaultPlan, FifoMode, PartitionScope, PartitionSpec, SplitMix64,
};
pub use layout::{GlobalLayout, HomeMap, HomeView};
pub use mem::{Fault, MemCheckpoint, MemError, NodeMem};
pub use metrics::{LatencyHist, MetricsConfig, MetricsHub, MetricsServer, PhaseRecord};
pub use nodeset::NodeSet;
pub use prim::Prim;
pub use socket::{NodeRange, SocketGuard};
pub use stats::{FaultStats, NodeStats, TimeBreakdown, WireSnapshot};
pub use tag::Tag;
pub use trace::{EventKind, TraceConfig, TraceDump, TraceEvent, Tracer};
pub use wire::{WireCodec, WireDecoder, WireError};

/// Identifies one node (processor) of the emulated machine.
///
/// The paper's machine is a 32-processor CM-5; [`NodeSet`] supports up to 64
/// nodes, which bounds `NodeId` to `0..64`.
pub type NodeId = u16;

/// Maximum number of nodes supported by the substrate (bounded by the
/// [`NodeSet`] bitmask width).
pub const MAX_NODES: usize = 64;
