//! The message fabric: the emulated interconnection network.
//!
//! Plays the role of the CM-5 data network. Each node owns one inbox; any
//! node (compute or protocol-handler thread) may send to any inbox.
//! Messages from a single sender to a single receiver arrive in order
//! (point-to-point FIFO), which the coherence protocols rely on — e.g. a
//! data grant sent to a node is observed before a later recall of the same
//! block.
//!
//! The fabric is generic in its payload type: Tempest itself does not know
//! the coherence vocabulary, just as the real Tempest interface shipped
//! uninterpreted active messages to user-level handlers.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::NodeId;

/// One in-flight message.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol payload.
    pub msg: M,
}

/// A cloneable handle that can inject messages into any node's inbox on
/// behalf of node `me`.
pub struct Net<M> {
    me: NodeId,
    txs: Arc<[Sender<Envelope<M>>]>,
}

impl<M> Clone for Net<M> {
    fn clone(&self) -> Self {
        Net { me: self.me, txs: Arc::clone(&self.txs) }
    }
}

impl<M: Send> Net<M> {
    /// The node this handle sends as.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> usize {
        self.txs.len()
    }

    /// Send `msg` to `dst` (self-sends are allowed and used by the
    /// protocols to keep one code path for local and remote faults).
    pub fn send(&self, dst: NodeId, msg: M) {
        let env = Envelope { src: self.me, dst, msg };
        // A send can only fail after the destination endpoint was dropped,
        // which happens during machine teardown; losing messages then is
        // harmless.
        let _ = self.txs[dst as usize].send(env);
    }
}

/// A node's receiving endpoint plus its sending handle.
pub struct Endpoint<M> {
    /// This endpoint's node id.
    pub me: NodeId,
    rx: Receiver<Envelope<M>>,
    net: Net<M>,
}

impl<M: Send> Endpoint<M> {
    /// Block until a message arrives. Returns `None` when the fabric shut
    /// down (all senders dropped).
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// The sending handle for this node.
    pub fn net(&self) -> &Net<M> {
        &self.net
    }
}

/// Construct a fabric for `n` nodes, returning one endpoint per node.
pub struct Fabric;

impl Fabric {
    /// Build the endpoints. Endpoint `i` receives everything addressed to
    /// node `i`.
    pub fn new<M: Send>(n: usize) -> Vec<Endpoint<M>> {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<M>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs: Arc<[Sender<Envelope<M>>]> = txs.into();
        rxs.into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                me: i as NodeId,
                rx,
                net: Net { me: i as NodeId, txs: Arc::clone(&txs) },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_fifo() {
        let eps = Fabric::new::<u32>(2);
        let (a, b) = (&eps[0], &eps[1]);
        for i in 0..100 {
            a.net().send(1, i);
        }
        for i in 0..100 {
            let env = b.recv().unwrap();
            assert_eq!(env.src, 0);
            assert_eq!(env.msg, i);
        }
    }

    #[test]
    fn self_send() {
        let eps = Fabric::new::<&'static str>(1);
        eps[0].net().send(0, "hello");
        assert_eq!(eps[0].recv().unwrap().msg, "hello");
    }

    #[test]
    fn cross_thread() {
        let mut eps = Fabric::new::<u64>(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            for i in 0..50 {
                e1.net().send(2, 100 + i);
            }
        });
        let t0 = std::thread::spawn(move || {
            for i in 0..50 {
                e0.net().send(2, i);
            }
        });
        let mut from0 = vec![];
        let mut from1 = vec![];
        for _ in 0..100 {
            let env = e2.recv().unwrap();
            if env.src == 0 {
                from0.push(env.msg);
            } else {
                from1.push(env.msg);
            }
        }
        t0.join().unwrap();
        t1.join().unwrap();
        // Per-sender FIFO even under interleaving.
        assert_eq!(from0, (0..50).collect::<Vec<_>>());
        assert_eq!(from1, (100..150).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_empty() {
        let eps = Fabric::new::<u8>(1);
        assert!(eps[0].try_recv().is_none());
    }
}
