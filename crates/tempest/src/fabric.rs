//! The message fabric: the emulated interconnection network.
//!
//! Plays the role of the CM-5 data network. Each node owns one inbox; any
//! node (compute or protocol-handler thread) may send to any inbox.
//! Messages from a single sender to a single receiver arrive in order
//! (point-to-point FIFO), which the coherence protocols rely on — e.g. a
//! data grant sent to a node is observed before a later recall of the same
//! block. An optional fault layer (see [`crate::faults`]) can delay,
//! duplicate, or drop messages between distinct nodes according to a
//! seeded, deterministic plan.
//!
//! The fabric is generic in its payload type: Tempest itself does not know
//! the coherence vocabulary, just as the real Tempest interface shipped
//! uninterpreted active messages to user-level handlers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

use crate::faults::{FaultPlan, FaultState};
use crate::stats::FaultStats;
use crate::NodeId;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol payload.
    pub msg: M,
}

/// Shared teardown state of one fabric. A send can only fail after the
/// destination endpoint was dropped; that is legitimate during machine
/// teardown but a protocol bug at any other time, so the machine layer
/// marks the fabric as closing before dropping endpoints and the fabric
/// counts (and, in debug builds, asserts on) drops.
#[derive(Debug, Default)]
pub struct FabricCtl {
    closing: AtomicBool,
    teardown_drops: AtomicU64,
}

impl FabricCtl {
    /// Declare that teardown has begun: endpoints may now disappear and
    /// sends to them be dropped without it being a bug.
    pub fn mark_closing(&self) {
        self.closing.store(true, Ordering::Release);
    }

    /// Has teardown begun?
    pub fn is_closing(&self) -> bool {
        self.closing.load(Ordering::Acquire)
    }

    /// Number of messages dropped because their destination endpoint was
    /// already gone.
    pub fn teardown_drops(&self) -> u64 {
        self.teardown_drops.load(Ordering::Relaxed)
    }
}

/// A cloneable handle that can inject messages into any node's inbox on
/// behalf of node `me`.
pub struct Net<M> {
    me: NodeId,
    txs: Arc<[Sender<Envelope<M>>]>,
    ctl: Arc<FabricCtl>,
    faults: Option<Arc<FaultState<M>>>,
}

impl<M> Clone for Net<M> {
    fn clone(&self) -> Self {
        Net {
            me: self.me,
            txs: Arc::clone(&self.txs),
            ctl: Arc::clone(&self.ctl),
            faults: self.faults.clone(),
        }
    }
}

impl<M: Send> Net<M> {
    /// The node this handle sends as.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> usize {
        self.txs.len()
    }

    /// The fabric's shared teardown state.
    pub fn ctl(&self) -> &Arc<FabricCtl> {
        &self.ctl
    }

    /// Send `msg` to `dst` (self-sends are allowed and used by the
    /// protocols to keep one code path for local and remote faults). On a
    /// faulty fabric the message may be delayed, duplicated, or dropped —
    /// except self-sends, which are always delivered intact.
    pub fn send(&self, dst: NodeId, msg: M)
    where
        M: Clone,
    {
        let env = Envelope { src: self.me, dst, msg };
        match &self.faults {
            Some(f) => f.process(env, &mut |e| self.deliver(e)),
            None => self.deliver(env),
        }
    }

    fn deliver(&self, env: Envelope<M>) {
        let dst = env.dst as usize;
        if self.txs[dst].send(env).is_err() {
            // The destination endpoint is gone. Legitimate only once the
            // machine has signalled teardown.
            self.ctl.teardown_drops.fetch_add(1, Ordering::Relaxed);
            debug_assert!(
                self.ctl.is_closing(),
                "message to node {dst} dropped before teardown was signalled"
            );
        }
    }
}

/// Result of a non-blocking receive: distinguishes "no message yet" from
/// "fabric gone", so protocol loops can stop instead of spinning on a dead
/// channel.
#[derive(Debug)]
pub enum TryRecv<M> {
    /// A message arrived.
    Msg(Envelope<M>),
    /// The inbox is currently empty.
    Empty,
    /// All senders dropped; no message will ever arrive again.
    Closed,
}

/// A node's receiving endpoint plus its sending handle.
pub struct Endpoint<M> {
    /// This endpoint's node id.
    pub me: NodeId,
    rx: Receiver<Envelope<M>>,
    net: Net<M>,
}

impl<M: Send> Endpoint<M> {
    /// Block until a message arrives. Returns `None` when the fabric shut
    /// down (all senders dropped).
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> TryRecv<M> {
        match self.rx.try_recv() {
            Ok(env) => TryRecv::Msg(env),
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Closed,
        }
    }

    /// The sending handle for this node.
    pub fn net(&self) -> &Net<M> {
        &self.net
    }

    /// The fabric's shared teardown state.
    pub fn ctl(&self) -> &Arc<FabricCtl> {
        self.net.ctl()
    }
}

/// Construct a fabric for `n` nodes, returning one endpoint per node.
pub struct Fabric;

impl Fabric {
    /// Build the endpoints. Endpoint `i` receives everything addressed to
    /// node `i`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new<M: Send>(n: usize) -> Vec<Endpoint<M>> {
        Fabric::build(n, None).0
    }

    /// Build a fabric whose inter-node links run through the fault layer
    /// described by `plan`. Also returns the per-link fault counters.
    pub fn new_faulty<M: Send + Clone>(
        n: usize,
        plan: FaultPlan,
    ) -> (Vec<Endpoint<M>>, Arc<FaultStats>) {
        let faults = Arc::new(FaultState::new(n, plan));
        let stats = Arc::clone(faults.stats());
        let (eps, _) = Fabric::build(n, Some(faults));
        (eps, stats)
    }

    fn build<M: Send>(
        n: usize,
        faults: Option<Arc<FaultState<M>>>,
    ) -> (Vec<Endpoint<M>>, Arc<FabricCtl>) {
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope<M>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let txs: Arc<[Sender<Envelope<M>>]> = txs.into();
        let ctl = Arc::new(FabricCtl::default());
        let eps = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| Endpoint {
                me: i as NodeId,
                rx,
                net: Net {
                    me: i as NodeId,
                    txs: Arc::clone(&txs),
                    ctl: Arc::clone(&ctl),
                    faults: faults.clone(),
                },
            })
            .collect();
        (eps, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_fifo() {
        let eps = Fabric::new::<u32>(2);
        let (a, b) = (&eps[0], &eps[1]);
        for i in 0..100 {
            a.net().send(1, i);
        }
        for i in 0..100 {
            let env = b.recv().unwrap();
            assert_eq!(env.src, 0);
            assert_eq!(env.msg, i);
        }
    }

    #[test]
    fn self_send() {
        let eps = Fabric::new::<&'static str>(1);
        eps[0].net().send(0, "hello");
        assert_eq!(eps[0].recv().unwrap().msg, "hello");
    }

    #[test]
    fn cross_thread() {
        let mut eps = Fabric::new::<u64>(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            for i in 0..50 {
                e1.net().send(2, 100 + i);
            }
        });
        let t0 = std::thread::spawn(move || {
            for i in 0..50 {
                e0.net().send(2, i);
            }
        });
        let mut from0 = vec![];
        let mut from1 = vec![];
        for _ in 0..100 {
            let env = e2.recv().unwrap();
            if env.src == 0 {
                from0.push(env.msg);
            } else {
                from1.push(env.msg);
            }
        }
        t0.join().unwrap();
        t1.join().unwrap();
        // Per-sender FIFO even under interleaving.
        assert_eq!(from0, (0..50).collect::<Vec<_>>());
        assert_eq!(from1, (100..150).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_closed() {
        let eps = Fabric::new::<u8>(2);
        assert!(matches!(eps[0].try_recv(), TryRecv::Empty));
        eps[1].net().send(0, 9);
        assert!(matches!(eps[0].try_recv(), TryRecv::Msg(Envelope { msg: 9, .. })));
        assert!(matches!(eps[0].try_recv(), TryRecv::Empty));
        // Every endpoint's net holds all senders, so Closed only shows up
        // once every net is gone; split the receiver out to observe it.
        let mut eps = eps;
        let Endpoint { rx, .. } = eps.remove(0);
        drop(eps);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn teardown_drops_are_counted_after_closing() {
        let mut eps = Fabric::new::<u8>(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let net0 = e0.net().clone();
        net0.ctl().mark_closing();
        drop(e1);
        net0.send(1, 42);
        assert_eq!(net0.ctl().teardown_drops(), 1);
        drop(e0);
    }

    #[test]
    fn faulty_fabric_preserving_keeps_per_link_fifo() {
        let plan = FaultPlan::new(77).delaying(200, 4).duplicating(100);
        let (eps, stats) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..500 {
            eps[0].net().send(1, i);
        }
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        let mut dedup = got.clone();
        dedup.dedup();
        let mut sorted = dedup.clone();
        sorted.sort_unstable();
        assert_eq!(dedup, sorted, "preserving mode must keep FIFO per link");
        let s = stats.link(0, 1).snapshot();
        assert!(s.delayed > 0 && s.duplicated > 0, "plan must have fired: {s:?}");
    }

    #[test]
    fn faulty_fabric_duplicates_arrive() {
        let plan = FaultPlan::new(13).duplicating(1000); // every message doubled
        let (eps, stats) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..10 {
            eps[0].net().send(1, i);
        }
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        let expect: Vec<u32> = (0..10).flat_map(|i| [i, i]).collect();
        assert_eq!(got, expect);
        assert_eq!(stats.link(0, 1).snapshot().duplicated, 10);
    }

    #[test]
    fn faulty_fabric_never_touches_self_sends() {
        let plan = FaultPlan::new(1).dropping(1000);
        let (eps, stats) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..50 {
            eps[0].net().send(0, i);
        }
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[0].try_recv() {
            got.push(env.msg);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(stats.total().dropped, 0);
    }

    #[test]
    fn faulty_fabric_violating_mode_reorders() {
        let plan = FaultPlan::new(5).delaying(400, 6).fifo_violating();
        let (eps, _) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..1000 {
            eps[0].net().send(1, i);
        }
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "violating mode must produce at least one overtake");
    }
}
