//! The message fabric: the emulated interconnection network.
//!
//! Plays the role of the CM-5 data network. Each node owns one inbox; any
//! node (compute or protocol-handler thread) may send to any inbox.
//! Messages from a single sender to a single receiver arrive in order
//! (point-to-point FIFO), which the coherence protocols rely on — e.g. a
//! data grant sent to a node is observed before a later recall of the same
//! block. An optional fault layer (see [`crate::faults`]) can delay,
//! duplicate, or drop messages between distinct nodes according to a
//! seeded, deterministic plan.
//!
//! The fabric is generic in its payload type: Tempest itself does not know
//! the coherence vocabulary, just as the real Tempest interface shipped
//! uninterpreted active messages to user-level handlers.
//!
//! # Egress aggregation
//!
//! The wire unit is not the [`Envelope`] but the [`WireBatch`]: each
//! [`Net`] keeps a small per-destination egress buffer, and consecutive
//! sends to the same node pack into one batch — one channel operation and
//! at most one receiver wakeup for the whole group. This is the transport
//! analogue of the protocol-level block coalescing of §3.4: per-message
//! startup cost was the paper's motivating overhead, and it dominates here
//! too once pre-sending works (a pre-send fan-out emits long runs of bulk
//! messages to the same target back-to-back).
//!
//! A buffer flushes when it reaches [`BatchConfig::max_batch`] envelopes,
//! and *must* be flushed explicitly ([`Net::flush_all`]) at every protocol
//! quiescence point — before a thread blocks in [`Endpoint::recv`] (done
//! automatically), before barrier entry, and before any wait for a reply
//! whose request may still sit in the buffer. The rule that makes this
//! deadlock-free: **a thread never blocks while its node's egress is
//! dirty**. Batching never reorders within a link (buffers are per
//! destination and drain in push order, with the buffer lock held across
//! the wire send), so point-to-point FIFO is preserved by construction;
//! the fault layer runs per-envelope *inside* the flush, so chaos
//! semantics and per-link fault counters are unchanged. Logical traffic
//! counters (`msgs`, bytes, blocks) keep counting envelopes; the batch
//! layer only adds the [`FabricCtl::wire`] counters on top.
//!
//! # Transports
//!
//! Everything above — egress buffering, the fault layer, tracing,
//! teardown accounting — is backend-independent. The only thing that
//! varies is how a finished [`WireBatch`] reaches its destination inbox,
//! and that is the [`Transport`] trait. Three backends implement it:
//!
//! * [`ChannelTransport`] — one channel per node, one protocol thread per
//!   node (the original model; see [`Fabric::new`]).
//! * [`ShardTransport`] — `S` channels for `n` nodes, node `i`'s inbox
//!   multiplexed onto shard `i mod S`, so `S` shard loops service all
//!   protocol handlers (see [`Fabric::new_sharded`] and
//!   [`ShardEndpoint`]). This is what lets paper-scale node counts run on
//!   a bounded thread count.
//! * the socket transport (see [`crate::socket`]) — a node range is local
//!   (per-node channels) and everything else crosses a TCP stream as
//!   length-prefixed frames (see [`crate::wire`]).
//!
//! Because the fault layer sits above the trait, a chaos plan produces
//! the identical surviving envelope sequence on every backend.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::faults::{FaultHook, FaultPlan, FaultState};
use crate::stats::{FaultStats, WireSnapshot};
use crate::trace::{pack_peer_count, EventKind, Tracer};
use crate::NodeId;

/// One in-flight message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol payload.
    pub msg: M,
}

/// What actually crosses a channel: every envelope a single flush of one
/// (src, dst) egress buffer produced, in send order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireBatch<M> {
    /// The node all payloads were sent by.
    pub src: NodeId,
    /// Fabric-unique batch id (monotonic over the fabric's lifetime), so a
    /// trace can correlate each flush with the drain that consumed it.
    pub id: u64,
    /// The payloads, in per-link FIFO order.
    pub msgs: WirePayload<M>,
}

/// A wire batch's payloads. Singletons — the demand request/reply
/// ping-pong, which no amount of batching can aggregate — are carried
/// inline with zero heap allocation; only genuine aggregation pays for a
/// `Vec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePayload<M> {
    /// Exactly one envelope (allocation-free).
    One(M),
    /// Two or more envelopes, in send order.
    Many(Vec<M>),
}

impl<M> WirePayload<M> {
    /// Number of envelopes aboard.
    pub fn len(&self) -> usize {
        match self {
            WirePayload::One(_) => 1,
            WirePayload::Many(v) => v.len(),
        }
    }

    /// A wire batch is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Egress aggregation policy of a fabric.
///
/// `max_batch` is the force-flush threshold of each per-destination egress
/// buffer; `1` disables aggregation (every envelope becomes its own wire
/// batch, the pre-batching behavior). The `PRESCIENT_BATCH` environment
/// variable overrides the default for every fabric built without an
/// explicit config — the CI chaos matrix uses it to force batching on and
/// off ("0", "1" or "off" disable; any other integer sets the threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush an egress buffer once it holds this many envelopes.
    pub max_batch: usize,
}

impl BatchConfig {
    /// Default force-flush threshold (chosen by the batch-size ablation in
    /// EXPERIMENTS.md; see `ablation_batching`).
    pub const DEFAULT_MAX: usize = 16;

    /// A policy flushing at `max_batch` envelopes (clamped to at least 1).
    pub fn new(max_batch: usize) -> BatchConfig {
        BatchConfig { max_batch: max_batch.max(1) }
    }

    /// Aggregation disabled: one wire batch per envelope.
    pub fn off() -> BatchConfig {
        BatchConfig { max_batch: 1 }
    }

    /// Is aggregation actually on?
    pub fn is_batching(&self) -> bool {
        self.max_batch > 1
    }

    /// Parse a `PRESCIENT_BATCH` value: `"off"`, `"0"` or `"1"` disable
    /// aggregation; any other integer sets the flush threshold.
    pub fn parse(s: &str) -> Result<BatchConfig, String> {
        match s.trim() {
            "off" | "0" | "1" => Ok(BatchConfig::off()),
            t => t.parse::<usize>().map(BatchConfig::new).map_err(|_| {
                format!("PRESCIENT_BATCH: expected an integer threshold or \"off\", got {s:?}")
            }),
        }
    }

    /// The `PRESCIENT_BATCH` override, if set. Panics on an unparsable
    /// value: a knob that falls back silently is worse than one that
    /// refuses — a typo in a CI matrix would quietly benchmark the
    /// default policy while claiming otherwise.
    pub fn from_env() -> Option<BatchConfig> {
        let v = std::env::var("PRESCIENT_BATCH").ok()?;
        match BatchConfig::parse(&v) {
            Ok(b) => Some(b),
            Err(e) => panic!("{e}"),
        }
    }

    /// The env override if present, else the built-in default.
    pub fn default_for_fabric() -> BatchConfig {
        BatchConfig::from_env().unwrap_or_default()
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { max_batch: Self::DEFAULT_MAX }
    }
}

/// Shared teardown state of one fabric plus the wire-level counters. A
/// send can only fail after the destination endpoint was dropped; that is
/// legitimate during machine teardown but a protocol bug at any other
/// time, so the machine layer marks the fabric as closing before dropping
/// endpoints and the fabric counts (and, in debug builds, asserts on)
/// drops.
#[derive(Debug, Default)]
pub struct FabricCtl {
    closing: AtomicBool,
    aborting: AtomicBool,
    teardown_drops: AtomicU64,
    wire_batches: AtomicU64,
    wire_msgs: AtomicU64,
    /// Occupancy histogram of successful batches (same buckets as
    /// [`WireSnapshot::BUCKETS`]).
    wire_hist: [AtomicU64; WireSnapshot::NUM_BUCKETS],
    /// Batch-id source. Separate from `wire_batches`, which only counts
    /// *successful* sends: ids are claimed before the channel send so a
    /// teardown drop burns its id rather than reusing it.
    batch_seq: AtomicU64,
}

impl FabricCtl {
    /// Declare that teardown has begun: endpoints may now disappear and
    /// sends to them be dropped without it being a bug.
    pub fn mark_closing(&self) {
        self.closing.store(true, Ordering::Release);
    }

    /// Has teardown begun?
    pub fn is_closing(&self) -> bool {
        self.closing.load(Ordering::Acquire)
    }

    /// Declare the run dead: a node panicked, an unrecoverable crash
    /// fired, or the watchdog gave up. Retry loops that would otherwise
    /// re-arm their timeouts forever (fetch, pre-send ack wait) check this
    /// and unwind with [`crate::Aborted`] instead.
    pub fn abort(&self) {
        self.aborting.store(true, Ordering::Release);
    }

    /// Has the run been declared dead?
    pub fn is_aborting(&self) -> bool {
        self.aborting.load(Ordering::Acquire)
    }

    /// Number of messages dropped because their destination endpoint was
    /// already gone.
    pub fn teardown_drops(&self) -> u64 {
        self.teardown_drops.load(Ordering::Relaxed)
    }

    /// Account for `n` envelopes that could not be delivered to `dst`
    /// because its inbox no longer exists. Every backend — channel send,
    /// shard send, socket writer *and* the socket reader thread on the
    /// receiving side — funnels its delivery failures through here, so
    /// the accounting and the debug-build assertion are
    /// backend-independent.
    pub fn count_teardown_drop(&self, n: u64, dst: NodeId) {
        self.teardown_drops.fetch_add(n, Ordering::Relaxed);
        debug_assert!(
            self.is_closing(),
            "message to node {dst} dropped before teardown was signalled"
        );
    }

    /// Wire-level transport counters so far: batches put on channels and
    /// the envelopes they carried. Unlike the logical traffic counters
    /// these depend on thread timing (how full a buffer was when a flush
    /// hit it), so they are reported but never equality-gated.
    pub fn wire(&self) -> WireSnapshot {
        let mut hist = [0u64; WireSnapshot::NUM_BUCKETS];
        for (h, c) in hist.iter_mut().zip(&self.wire_hist) {
            *h = c.load(Ordering::Relaxed);
        }
        WireSnapshot {
            batches: self.wire_batches.load(Ordering::Relaxed),
            envelopes: self.wire_msgs.load(Ordering::Relaxed),
            hist,
        }
    }
}

/// Delivery failure: the destination inbox no longer exists. Legitimate
/// only during teardown; the caller accounts for the loss via
/// [`FabricCtl::count_teardown_drop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Undeliverable;

/// Where finished wire batches go. Implementations only move an opaque
/// [`WireBatch`] to the inbox of `dst`; egress buffering, fault
/// injection, tracing, and teardown accounting all happen in [`Net`]
/// *above* this trait, so protocol behavior is backend-independent by
/// construction.
pub trait Transport<M: Send>: Send + Sync {
    /// Deliver `batch` to node `dst`'s inbox, preserving per-link order.
    fn deliver(&self, dst: NodeId, batch: WireBatch<M>) -> Result<(), Undeliverable>;

    /// Number of node inboxes reachable through this transport.
    fn nodes(&self) -> usize;
}

/// The original backend: one unbounded channel per node, each drained by
/// that node's own protocol thread.
pub struct ChannelTransport<M> {
    txs: Box<[Sender<WireBatch<M>>]>,
}

impl<M: Send> Transport<M> for ChannelTransport<M> {
    fn deliver(&self, dst: NodeId, batch: WireBatch<M>) -> Result<(), Undeliverable> {
        self.txs[dst as usize].send(batch).map_err(|_| Undeliverable)
    }

    fn nodes(&self) -> usize {
        self.txs.len()
    }
}

/// The sharded backend: `S` channels for `n` nodes, node `i` assigned to
/// shard `i mod S`. One shard loop (see [`ShardEndpoint`]) services the
/// protocol handlers of all its members, so a 64-node machine needs `S`
/// protocol threads instead of 64 — the futex-wakeup churn of the
/// 2-threads-per-node model was the scaling ceiling this removes.
/// Per-link FIFO still holds: all traffic for a given destination lands
/// on one channel, in send order per sender, with a single consumer.
pub struct ShardTransport<M> {
    txs: Box<[Sender<ShardFrame<M>>]>,
    nodes: usize,
}

/// A frame on a shard inbox: the destination member plus its batch. The
/// shard loop demuxes on the [`NodeId`] to pick the member's handler.
type ShardFrame<M> = (NodeId, WireBatch<M>);

impl<M> ShardTransport<M> {
    /// The shard that hosts `dst`'s inbox.
    fn shard_of(&self, dst: NodeId) -> usize {
        dst as usize % self.txs.len()
    }
}

impl<M: Send> Transport<M> for ShardTransport<M> {
    fn deliver(&self, dst: NodeId, batch: WireBatch<M>) -> Result<(), Undeliverable> {
        self.txs[self.shard_of(dst)].send((dst, batch)).map_err(|_| Undeliverable)
    }

    fn nodes(&self) -> usize {
        self.nodes
    }
}

/// The per-destination egress buffers of one node, shared by every clone
/// of its [`Net`] (both the compute and the protocol-handler thread).
struct Egress<M> {
    bufs: Box<[Mutex<Vec<M>>]>,
    max: usize,
    /// Bitmask of destinations with buffered envelopes (MAX_NODES ≤ 64),
    /// so the flush-before-block fast path is one load when clean. All
    /// transitions happen under the corresponding buffer lock.
    dirty: AtomicU64,
}

/// A cloneable handle that can inject messages into any node's inbox on
/// behalf of node `me`.
pub struct Net<M> {
    me: NodeId,
    transport: Arc<dyn Transport<M>>,
    ctl: Arc<FabricCtl>,
    faults: Option<Arc<dyn FaultHook<M>>>,
    egress: Arc<Egress<M>>,
    tracer: Tracer,
}

impl<M> Clone for Net<M> {
    fn clone(&self) -> Self {
        Net {
            me: self.me,
            transport: Arc::clone(&self.transport),
            ctl: Arc::clone(&self.ctl),
            faults: self.faults.clone(),
            egress: Arc::clone(&self.egress),
            tracer: self.tracer.clone(),
        }
    }
}

/// Assemble a [`Net`] over an arbitrary transport (crate-internal: the
/// public surface is the [`Fabric`] constructors and [`crate::socket`]).
pub(crate) fn make_net<M: Send + 'static>(
    me: NodeId,
    n: usize,
    transport: Arc<dyn Transport<M>>,
    ctl: Arc<FabricCtl>,
    faults: Option<Arc<dyn FaultHook<M>>>,
    batch: BatchConfig,
) -> Net<M> {
    Net {
        me,
        transport,
        ctl,
        faults,
        egress: Arc::new(Egress {
            bufs: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            max: batch.max_batch,
            dirty: AtomicU64::new(0),
        }),
        tracer: Tracer::off(),
    }
}

impl<M: Send> Net<M> {
    /// The node this handle sends as.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes on the fabric.
    pub fn nodes(&self) -> usize {
        self.transport.nodes()
    }

    /// The fabric's shared teardown state.
    pub fn ctl(&self) -> &Arc<FabricCtl> {
        &self.ctl
    }

    /// This node's tracing handle (the disabled handle unless the machine
    /// layer installed one via [`Endpoint::set_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Queue `msg` for `dst` (self-sends are allowed and used by the
    /// protocols to keep one code path for local and remote faults). The
    /// envelope leaves the node when its buffer reaches the batch
    /// threshold or at the next flush — callers must [`Net::flush_all`]
    /// before blocking on a reply ([`Endpoint::recv`] does so itself).
    /// On a faulty fabric the message may be delayed, duplicated, or
    /// dropped at flush time — except self-sends, which go straight on
    /// the wire, unbuffered and unfaulted (the fault layer's "local
    /// hand-off" rule): a node can always reach its own handler — e.g. a
    /// shutdown self-send — even when nothing will flush it again.
    pub fn send(&self, dst: NodeId, msg: M) {
        if dst == self.me {
            self.send_wire(dst, WirePayload::One(msg));
            return;
        }
        let mut buf = self.egress.bufs[dst as usize].lock();
        buf.push(msg);
        if buf.len() >= self.egress.max {
            self.flush_locked(dst, &mut buf);
        } else {
            self.egress.dirty.fetch_or(1 << dst, Ordering::Relaxed);
        }
    }

    /// Discard everything the fault layer is holding (delayed/stalled
    /// traffic) on every link. See [`FaultHook::purge`]: the recovery
    /// protocol calls this at a quiescent cut, where held messages belong
    /// to the rolled-back execution. No-op on a clean fabric.
    pub fn purge_faults(&self) {
        if let Some(f) = &self.faults {
            f.purge();
        }
    }

    /// Flush the egress buffer of one destination.
    pub fn flush(&self, dst: NodeId) {
        let mut buf = self.egress.bufs[dst as usize].lock();
        self.flush_locked(dst, &mut buf);
    }

    /// Flush every dirty egress buffer. O(1) when nothing is buffered.
    pub fn flush_all(&self) {
        let mut dirty = self.egress.dirty.load(Ordering::Relaxed);
        while dirty != 0 {
            let dst = dirty.trailing_zeros() as NodeId;
            dirty &= dirty - 1;
            self.flush(dst);
        }
    }

    /// Drain one buffer into a wire batch. The buffer lock is held across
    /// the channel send so two threads of one node can never reorder the
    /// link (take-buffer / put-on-wire is atomic per destination).
    fn flush_locked(&self, dst: NodeId, buf: &mut Vec<M>) {
        self.egress.dirty.fetch_and(!(1 << dst), Ordering::Relaxed);
        if buf.is_empty() {
            return;
        }
        // `drain` (not `mem::take`) keeps the buffer's capacity, so a
        // steady-state link allocates only when it genuinely aggregates
        // (≥ 2 envelopes); the singleton ping-pong path allocates nothing.
        let survivors = match &self.faults {
            None if buf.len() == 1 => WirePayload::One(buf.pop().expect("len checked")),
            #[allow(clippy::drain_collect)] // mem::take would surrender the capacity
            None => WirePayload::Many(buf.drain(..).collect()),
            Some(f) => {
                // The fault layer sees individual envelopes, exactly as
                // before batching: the k-th send on a link keeps the k-th
                // fate from the seeded stream, counters fire per envelope,
                // a delay holds back everything behind it (preserving
                // mode) while drops and duplicates act on single
                // envelopes. Whatever survives goes out as one batch.
                let mut out = Vec::with_capacity(buf.len());
                for msg in buf.drain(..) {
                    f.process(Envelope { src: self.me, dst, msg }, &self.tracer, &mut |e| {
                        debug_assert_eq!(e.dst, dst, "fault layer must not reroute");
                        out.push(e.msg);
                    });
                }
                match out.len() {
                    0 => return,
                    1 => WirePayload::One(out.pop().expect("len checked")),
                    _ => WirePayload::Many(out),
                }
            }
        };
        self.send_wire(dst, survivors);
    }

    fn send_wire(&self, dst: NodeId, msgs: WirePayload<M>) {
        let n = msgs.len() as u64;
        let id = self.ctl.batch_seq.fetch_add(1, Ordering::Relaxed);
        if self.transport.deliver(dst, WireBatch { src: self.me, id, msgs }).is_err() {
            // The destination inbox is gone. Legitimate only once the
            // machine has signalled teardown.
            self.ctl.count_teardown_drop(n, dst);
        } else {
            self.ctl.wire_batches.fetch_add(1, Ordering::Relaxed);
            self.ctl.wire_msgs.fetch_add(n, Ordering::Relaxed);
            self.ctl.wire_hist[WireSnapshot::bucket_index(n)].fetch_add(1, Ordering::Relaxed);
            self.tracer.emit(EventKind::WireFlush, pack_peer_count(dst, n), id);
        }
    }
}

/// Result of a non-blocking receive: distinguishes "no message yet" from
/// "fabric gone", so protocol loops can stop instead of spinning on a dead
/// channel.
#[derive(Debug)]
pub enum TryRecv<M> {
    /// A message arrived.
    Msg(Envelope<M>),
    /// The inbox is currently empty.
    Empty,
    /// All senders dropped; no message will ever arrive again.
    Closed,
}

/// A node's receiving endpoint plus its sending handle.
///
/// Receives are batch-drained: one channel operation moves a whole
/// [`WireBatch`] into an internal ring, and subsequent `recv`/`try_recv`
/// calls pop envelopes from the ring without touching the channel.
pub struct Endpoint<M> {
    /// This endpoint's node id.
    pub me: NodeId,
    rx: Receiver<WireBatch<M>>,
    ring: Mutex<VecDeque<Envelope<M>>>,
    net: Net<M>,
}

impl<M: Send> Endpoint<M> {
    /// Block until a message arrives. Returns `None` when the fabric shut
    /// down (all senders dropped). Before actually blocking, flushes this
    /// node's own egress buffers — the quiescence rule that keeps batching
    /// deadlock-free (nothing this node produced can be stuck behind a
    /// partial batch while it sleeps).
    pub fn recv(&self) -> Option<Envelope<M>> {
        if let Some(env) = self.pop_ring() {
            return Some(env);
        }
        loop {
            match self.rx.try_recv() {
                Ok(batch) => {
                    if let Some(env) = self.accept(batch) {
                        return Some(env);
                    }
                }
                Err(TryRecvError::Disconnected) => return None,
                Err(TryRecvError::Empty) => {
                    self.net.flush_all();
                    match self.rx.recv() {
                        Ok(batch) => {
                            if let Some(env) = self.accept(batch) {
                                return Some(env);
                            }
                        }
                        Err(_) => return None,
                    }
                }
            }
        }
    }

    /// Non-blocking receive: pops the ring first, then at most one channel
    /// operation. Does *not* flush the egress (it never blocks).
    pub fn try_recv(&self) -> TryRecv<M> {
        if let Some(env) = self.pop_ring() {
            return TryRecv::Msg(env);
        }
        match self.rx.try_recv() {
            Ok(batch) => match self.accept(batch) {
                Some(env) => TryRecv::Msg(env),
                None => TryRecv::Empty,
            },
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Closed,
        }
    }

    fn pop_ring(&self) -> Option<Envelope<M>> {
        self.ring.lock().pop_front()
    }

    /// Unpack a wire batch into the ring and pop its first envelope.
    /// Singletons skip the ring entirely when it is empty (the common
    /// demand ping-pong case).
    fn accept(&self, batch: WireBatch<M>) -> Option<Envelope<M>> {
        let src = batch.src;
        self.net.tracer.emit(
            EventKind::WireRecv,
            pack_peer_count(src, batch.msgs.len() as u64),
            batch.id,
        );
        let mut ring = self.ring.lock();
        match batch.msgs {
            WirePayload::One(msg) if ring.is_empty() => Some(Envelope { src, dst: self.me, msg }),
            WirePayload::One(msg) => {
                ring.push_back(Envelope { src, dst: self.me, msg });
                ring.pop_front()
            }
            WirePayload::Many(msgs) => {
                ring.extend(msgs.into_iter().map(|msg| Envelope { src, dst: self.me, msg }));
                ring.pop_front()
            }
        }
    }

    /// The sending handle for this node.
    pub fn net(&self) -> &Net<M> {
        &self.net
    }

    /// Install this node's tracing handle. Must run before [`Endpoint::net`]
    /// is cloned into the protocol layer — clones taken earlier keep the
    /// handle they were built with (the disabled one).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.net.tracer = tracer;
    }

    /// The fabric's shared teardown state.
    pub fn ctl(&self) -> &Arc<FabricCtl> {
        self.net.ctl()
    }

    /// Crate-internal assembly, shared by [`Fabric::build`] and the
    /// socket backend.
    pub(crate) fn from_parts(me: NodeId, rx: Receiver<WireBatch<M>>, net: Net<M>) -> Endpoint<M> {
        Endpoint { me, rx, ring: Mutex::new(VecDeque::new()), net }
    }
}

/// The receiving end of one shard of a sharded fabric: the multiplexed
/// inboxes of every node assigned to this shard, plus those nodes'
/// sending handles. One OS thread drains it and dispatches each envelope
/// to the owning member's protocol handler — the replacement for the
/// thread-per-node receive loop.
///
/// The quiescence rule generalizes: before the shard loop blocks, it
/// flushes the egress of *every* member, since any member's partial
/// batch may hold the message some other node is waiting for.
pub struct ShardEndpoint<M> {
    shard: usize,
    rx: Receiver<ShardFrame<M>>,
    ring: Mutex<VecDeque<Envelope<M>>>,
    /// Nodes hosted by this shard, ascending; `nets` runs parallel.
    members: Vec<NodeId>,
    nets: Vec<Net<M>>,
}

impl<M: Send> ShardEndpoint<M> {
    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The nodes whose inboxes this shard services, ascending.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    fn local_idx(&self, node: NodeId) -> usize {
        self.members.binary_search(&node).expect("node is not hosted by this shard")
    }

    /// The sending handle of member `node`.
    pub fn net(&self, node: NodeId) -> &Net<M> {
        &self.nets[self.local_idx(node)]
    }

    /// Install member `node`'s tracing handle. As with
    /// [`Endpoint::set_tracer`], must run before that member's net is
    /// cloned into the protocol layer.
    pub fn set_tracer(&mut self, node: NodeId, tracer: Tracer) {
        let i = self.local_idx(node);
        self.nets[i].tracer = tracer;
    }

    /// The fabric's shared teardown state.
    pub fn ctl(&self) -> &Arc<FabricCtl> {
        self.nets[0].ctl()
    }

    /// Flush every member's egress buffers — the shard-loop form of the
    /// never-block-dirty rule.
    pub fn flush_members(&self) {
        for net in &self.nets {
            net.flush_all();
        }
    }

    /// Block until a message for any member arrives; `env.dst` says which
    /// member. Returns `None` when the fabric shut down. Flushes every
    /// member's egress before actually blocking.
    pub fn recv(&self) -> Option<Envelope<M>> {
        if let Some(env) = self.pop_ring() {
            return Some(env);
        }
        loop {
            match self.rx.try_recv() {
                Ok((dst, batch)) => {
                    if let Some(env) = self.accept(dst, batch) {
                        return Some(env);
                    }
                }
                Err(TryRecvError::Disconnected) => return None,
                Err(TryRecvError::Empty) => {
                    self.flush_members();
                    match self.rx.recv() {
                        Ok((dst, batch)) => {
                            if let Some(env) = self.accept(dst, batch) {
                                return Some(env);
                            }
                        }
                        Err(_) => return None,
                    }
                }
            }
        }
    }

    /// Non-blocking receive across all members (never flushes).
    pub fn try_recv(&self) -> TryRecv<M> {
        if let Some(env) = self.pop_ring() {
            return TryRecv::Msg(env);
        }
        match self.rx.try_recv() {
            Ok((dst, batch)) => match self.accept(dst, batch) {
                Some(env) => TryRecv::Msg(env),
                None => TryRecv::Empty,
            },
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Closed,
        }
    }

    fn pop_ring(&self) -> Option<Envelope<M>> {
        self.ring.lock().pop_front()
    }

    fn accept(&self, dst: NodeId, batch: WireBatch<M>) -> Option<Envelope<M>> {
        let src = batch.src;
        // The WireRecv event belongs to the *destination member's* trace
        // stream, exactly as in the per-node backend.
        self.net(dst).tracer.emit(
            EventKind::WireRecv,
            pack_peer_count(src, batch.msgs.len() as u64),
            batch.id,
        );
        let mut ring = self.ring.lock();
        match batch.msgs {
            WirePayload::One(msg) if ring.is_empty() => Some(Envelope { src, dst, msg }),
            WirePayload::One(msg) => {
                ring.push_back(Envelope { src, dst, msg });
                ring.pop_front()
            }
            WirePayload::Many(msgs) => {
                ring.extend(msgs.into_iter().map(|msg| Envelope { src, dst, msg }));
                ring.pop_front()
            }
        }
    }
}

/// Construct a fabric for `n` nodes, returning one endpoint per node.
pub struct Fabric;

impl Fabric {
    /// Build the endpoints with the default (env-overridable) batch
    /// policy. Endpoint `i` receives everything addressed to node `i`.
    #[allow(clippy::new_ret_no_self)]
    pub fn new<M: Send + 'static>(n: usize) -> Vec<Endpoint<M>> {
        Fabric::new_with(n, BatchConfig::default_for_fabric())
    }

    /// Build the endpoints with an explicit batch policy.
    pub fn new_with<M: Send + 'static>(n: usize, batch: BatchConfig) -> Vec<Endpoint<M>> {
        Fabric::build(n, None, batch).0
    }

    /// Build a fabric whose inter-node links run through the fault layer
    /// described by `plan`, with the default (env-overridable) batch
    /// policy. Also returns the per-link fault counters.
    pub fn new_faulty<M: Send + Clone + 'static>(
        n: usize,
        plan: FaultPlan,
    ) -> (Vec<Endpoint<M>>, Arc<FaultStats>) {
        Fabric::new_faulty_with(n, plan, BatchConfig::default_for_fabric())
    }

    /// Build a faulty fabric with an explicit batch policy. The `Clone`
    /// bound lives here, not on [`Net::send`]: only the duplication fault
    /// ever clones a payload, so clean fabrics carry non-`Clone` types.
    pub fn new_faulty_with<M: Send + Clone + 'static>(
        n: usize,
        plan: FaultPlan,
        batch: BatchConfig,
    ) -> (Vec<Endpoint<M>>, Arc<FaultStats>) {
        let faults = Arc::new(FaultState::new(n, plan));
        let stats = Arc::clone(faults.stats());
        let (eps, _) = Fabric::build(n, Some(faults as Arc<dyn FaultHook<M>>), batch);
        (eps, stats)
    }

    /// Build a sharded fabric: `n` node inboxes multiplexed onto
    /// `shards` shard endpoints (clamped to `1..=n`), default batch
    /// policy. Node `i` is serviced by shard `i mod shards`.
    pub fn new_sharded<M: Send + 'static>(n: usize, shards: usize) -> Vec<ShardEndpoint<M>> {
        Fabric::new_sharded_with(n, shards, BatchConfig::default_for_fabric())
    }

    /// Sharded fabric with an explicit batch policy.
    pub fn new_sharded_with<M: Send + 'static>(
        n: usize,
        shards: usize,
        batch: BatchConfig,
    ) -> Vec<ShardEndpoint<M>> {
        Fabric::build_sharded(n, shards, None, batch)
    }

    /// Sharded fabric whose inter-node links run through the fault layer.
    pub fn new_sharded_faulty_with<M: Send + Clone + 'static>(
        n: usize,
        shards: usize,
        plan: FaultPlan,
        batch: BatchConfig,
    ) -> (Vec<ShardEndpoint<M>>, Arc<FaultStats>) {
        let faults = Arc::new(FaultState::new(n, plan));
        let stats = Arc::clone(faults.stats());
        let eps = Fabric::build_sharded(n, shards, Some(faults as Arc<dyn FaultHook<M>>), batch);
        (eps, stats)
    }

    fn build<M: Send + 'static>(
        n: usize,
        faults: Option<Arc<dyn FaultHook<M>>>,
        batch: BatchConfig,
    ) -> (Vec<Endpoint<M>>, Arc<FabricCtl>) {
        assert!(n <= 64, "egress dirty mask caps the fabric at 64 nodes");
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<WireBatch<M>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let transport: Arc<dyn Transport<M>> =
            Arc::new(ChannelTransport { txs: txs.into_boxed_slice() });
        let ctl = Arc::new(FabricCtl::default());
        let eps = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let net = make_net(
                    i as NodeId,
                    n,
                    Arc::clone(&transport),
                    Arc::clone(&ctl),
                    faults.clone(),
                    batch,
                );
                Endpoint::from_parts(i as NodeId, rx, net)
            })
            .collect();
        (eps, ctl)
    }

    fn build_sharded<M: Send + 'static>(
        n: usize,
        shards: usize,
        faults: Option<Arc<dyn FaultHook<M>>>,
        batch: BatchConfig,
    ) -> Vec<ShardEndpoint<M>> {
        assert!(n <= 64, "egress dirty mask caps the fabric at 64 nodes");
        assert!(n > 0, "a fabric needs at least one node");
        let shards = shards.clamp(1, n);
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = unbounded::<ShardFrame<M>>();
            txs.push(tx);
            rxs.push(rx);
        }
        let transport: Arc<dyn Transport<M>> =
            Arc::new(ShardTransport { txs: txs.into_boxed_slice(), nodes: n });
        let ctl = Arc::new(FabricCtl::default());
        let mut eps: Vec<ShardEndpoint<M>> = rxs
            .into_iter()
            .enumerate()
            .map(|(s, rx)| ShardEndpoint {
                shard: s,
                rx,
                ring: Mutex::new(VecDeque::new()),
                members: Vec::new(),
                nets: Vec::new(),
            })
            .collect();
        for i in 0..n {
            let net = make_net(
                i as NodeId,
                n,
                Arc::clone(&transport),
                Arc::clone(&ctl),
                faults.clone(),
                batch,
            );
            let ep = &mut eps[i % shards];
            ep.members.push(i as NodeId);
            ep.nets.push(net);
        }
        eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_fifo() {
        let eps = Fabric::new_with::<u32>(2, BatchConfig::new(16));
        let (a, b) = (&eps[0], &eps[1]);
        for i in 0..100 {
            a.net().send(1, i);
        }
        a.net().flush_all();
        for i in 0..100 {
            let env = b.recv().unwrap();
            assert_eq!(env.src, 0);
            assert_eq!(env.msg, i);
        }
    }

    #[test]
    fn self_send() {
        // Self-sends bypass the egress buffer and go straight on the
        // wire: visible via try_recv (which never flushes) with no
        // explicit flush — a node can always reach its own handler.
        let eps = Fabric::new::<&'static str>(1);
        eps[0].net().send(0, "hello");
        assert!(matches!(eps[0].try_recv(), TryRecv::Msg(env) if env.msg == "hello"));
    }

    #[test]
    fn non_clone_payloads_on_clean_fabric() {
        // `Net::send` must not demand `Clone`: only the fault layer clones.
        struct Token(#[allow(dead_code)] Box<u64>);
        let eps = Fabric::new::<Token>(2);
        eps[0].net().send(1, Token(Box::new(7)));
        eps[0].net().flush_all();
        assert!(matches!(eps[1].try_recv(), TryRecv::Msg(_)));
    }

    #[test]
    fn threshold_forces_flush_without_explicit_call() {
        let eps = Fabric::new_with::<u32>(2, BatchConfig::new(4));
        for i in 0..4 {
            eps[0].net().send(1, i);
        }
        // Exactly one wire batch of 4 must already be on the channel.
        let w = eps[0].ctl().wire();
        assert_eq!((w.batches, w.envelopes), (1, 4));
        for i in 0..4 {
            assert!(matches!(eps[1].try_recv(), TryRecv::Msg(Envelope { msg, .. }) if msg == i));
        }
    }

    #[test]
    fn wire_counters_track_batches_and_occupancy() {
        let eps = Fabric::new_with::<u32>(2, BatchConfig::new(64));
        for i in 0..10 {
            eps[0].net().send(1, i);
        }
        eps[0].net().flush_all();
        eps[0].net().flush_all(); // idempotent: clean buffers send nothing
        let w = eps[0].ctl().wire();
        assert_eq!((w.batches, w.envelopes), (1, 10));
        assert_eq!(w.mean_occupancy(), 10.0);
    }

    #[test]
    fn batches_interleave_per_link_fifo_across_sources() {
        let eps = Fabric::new_with::<u32>(3, BatchConfig::new(8));
        for i in 0..20 {
            eps[0].net().send(2, i);
            eps[1].net().send(2, 100 + i);
        }
        eps[0].net().flush_all();
        eps[1].net().flush_all();
        let (mut from0, mut from1) = (vec![], vec![]);
        while let TryRecv::Msg(env) = eps[2].try_recv() {
            if env.src == 0 {
                from0.push(env.msg)
            } else {
                from1.push(env.msg)
            }
        }
        assert_eq!(from0, (0..20).collect::<Vec<_>>());
        assert_eq!(from1, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread() {
        let mut eps = Fabric::new::<u64>(3);
        let e2 = eps.pop().unwrap();
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let t1 = std::thread::spawn(move || {
            for i in 0..50 {
                e1.net().send(2, 100 + i);
            }
            e1.net().flush_all();
        });
        let t0 = std::thread::spawn(move || {
            for i in 0..50 {
                e0.net().send(2, i);
            }
            e0.net().flush_all();
        });
        let mut from0 = vec![];
        let mut from1 = vec![];
        for _ in 0..100 {
            let env = e2.recv().unwrap();
            if env.src == 0 {
                from0.push(env.msg);
            } else {
                from1.push(env.msg);
            }
        }
        t0.join().unwrap();
        t1.join().unwrap();
        // Per-sender FIFO even under interleaving.
        assert_eq!(from0, (0..50).collect::<Vec<_>>());
        assert_eq!(from1, (100..150).collect::<Vec<_>>());
    }

    #[test]
    fn try_recv_distinguishes_empty_from_closed() {
        let eps = Fabric::new::<u8>(2);
        assert!(matches!(eps[0].try_recv(), TryRecv::Empty));
        eps[1].net().send(0, 9);
        eps[1].net().flush_all();
        assert!(matches!(eps[0].try_recv(), TryRecv::Msg(Envelope { msg: 9, .. })));
        assert!(matches!(eps[0].try_recv(), TryRecv::Empty));
        // Every endpoint's net holds all senders, so Closed only shows up
        // once every net is gone; split the receiver out to observe it.
        let mut eps = eps;
        let Endpoint { rx, .. } = eps.remove(0);
        drop(eps);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }

    #[test]
    fn teardown_drops_are_counted_after_closing() {
        let mut eps = Fabric::new::<u8>(2);
        let e1 = eps.pop().unwrap();
        let e0 = eps.pop().unwrap();
        let net0 = e0.net().clone();
        net0.ctl().mark_closing();
        drop(e1);
        net0.send(1, 42);
        net0.flush_all();
        assert_eq!(net0.ctl().teardown_drops(), 1);
        drop(e0);
    }

    #[test]
    fn faulty_fabric_preserving_keeps_per_link_fifo() {
        let plan = FaultPlan::new(77).delaying(200, 4).duplicating(100);
        let (eps, stats) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..500 {
            eps[0].net().send(1, i);
        }
        eps[0].net().flush_all();
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        let mut dedup = got.clone();
        dedup.dedup();
        let mut sorted = dedup.clone();
        sorted.sort_unstable();
        assert_eq!(dedup, sorted, "preserving mode must keep FIFO per link");
        let s = stats.link(0, 1).snapshot();
        assert!(s.delayed > 0 && s.duplicated > 0, "plan must have fired: {s:?}");
    }

    #[test]
    fn batched_faulty_fabric_same_faults_as_unbatched() {
        // Same seed, same send sequence: the k-th send on the link draws
        // the k-th fate regardless of how sends pack into wire batches —
        // the surviving envelope sequence is bit-identical.
        let plan = FaultPlan::chaos(0xC0FFEE);
        let mut runs = Vec::new();
        for max in [1usize, 4, 16, 64] {
            let (eps, stats) = Fabric::new_faulty_with::<u32>(2, plan, BatchConfig::new(max));
            for i in 0..800 {
                eps[0].net().send(1, i);
            }
            eps[0].net().flush_all();
            let mut got = Vec::new();
            while let TryRecv::Msg(env) = eps[1].try_recv() {
                got.push(env.msg);
            }
            let s = stats.link(0, 1).snapshot();
            runs.push((got, (s.delayed, s.duplicated, s.dropped)));
        }
        for r in &runs[1..] {
            assert_eq!(r, &runs[0], "fault fates must not depend on batch size");
        }
        assert!(runs[0].1 .0 > 0 && runs[0].1 .2 > 0, "chaos plan must fire: {:?}", runs[0].1);
    }

    #[test]
    fn faulty_fabric_duplicates_arrive() {
        let plan = FaultPlan::new(13).duplicating(1000); // every message doubled
        let (eps, stats) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..10 {
            eps[0].net().send(1, i);
        }
        eps[0].net().flush_all();
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        let expect: Vec<u32> = (0..10).flat_map(|i| [i, i]).collect();
        assert_eq!(got, expect);
        assert_eq!(stats.link(0, 1).snapshot().duplicated, 10);
    }

    #[test]
    fn faulty_fabric_never_touches_self_sends() {
        let plan = FaultPlan::new(1).dropping(1000);
        let (eps, stats) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..50 {
            eps[0].net().send(0, i);
        }
        eps[0].net().flush_all();
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[0].try_recv() {
            got.push(env.msg);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(stats.total().dropped, 0);
    }

    #[test]
    fn sharded_fabric_keeps_per_link_fifo() {
        // 5 nodes on 2 shards: shard 0 hosts {0,2,4}, shard 1 hosts {1,3}.
        let eps = Fabric::new_sharded_with::<u32>(5, 2, BatchConfig::new(8));
        assert_eq!(eps[0].members(), &[0, 2, 4]);
        assert_eq!(eps[1].members(), &[1, 3]);
        for i in 0..200 {
            eps[0].net(0).send(3, i);
            eps[0].net(2).send(3, 1000 + i);
        }
        eps[0].flush_members();
        let (mut from0, mut from2) = (vec![], vec![]);
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            assert_eq!(env.dst, 3, "only node 3 was addressed");
            if env.src == 0 {
                from0.push(env.msg)
            } else {
                from2.push(env.msg)
            }
        }
        assert_eq!(from0, (0..200).collect::<Vec<_>>());
        assert_eq!(from2, (1000..1200).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_self_send_reaches_own_shard_unflushed() {
        let eps = Fabric::new_sharded::<&'static str>(4, 2);
        eps[1].net(1).send(1, "wake");
        assert!(
            matches!(eps[1].try_recv(), TryRecv::Msg(env) if env.msg == "wake" && env.dst == 1)
        );
    }

    #[test]
    fn sharded_teardown_drops_are_counted_after_closing() {
        // Mirror of teardown_drops_are_counted_after_closing for the
        // sharded backend: once a shard's endpoint is gone, sends to any
        // of its members count as teardown drops on the shared ctl.
        let mut eps = Fabric::new_sharded::<u8>(4, 2);
        let shard1 = eps.pop().unwrap();
        let shard0 = eps.pop().unwrap();
        let net0 = shard0.net(0).clone();
        net0.ctl().mark_closing();
        drop(shard1); // nodes 1 and 3 disappear
        net0.send(1, 42);
        net0.send(3, 43);
        net0.flush_all();
        assert_eq!(net0.ctl().teardown_drops(), 2);
        net0.send(2, 44); // same-shard member still reachable
        net0.flush_all();
        assert_eq!(net0.ctl().teardown_drops(), 2);
        drop(shard0);
    }

    #[test]
    fn sharded_faulty_fabric_never_touches_self_sends() {
        let plan = FaultPlan::new(1).dropping(1000);
        let (eps, stats) = Fabric::new_sharded_faulty_with::<u32>(4, 2, plan, BatchConfig::new(8));
        for i in 0..50 {
            eps[0].net(2).send(2, i);
        }
        eps[0].flush_members();
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[0].try_recv() {
            assert_eq!(env.dst, 2);
            got.push(env.msg);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        assert_eq!(stats.total().dropped, 0);
    }

    #[test]
    fn sharded_chaos_matches_per_node_chaos() {
        // Same seed, same send sequence: the surviving envelope sequence
        // on a link must not depend on the backend, because the fault
        // layer sits above the transport.
        let run_per_node = || {
            let (eps, _) =
                Fabric::new_faulty_with::<u32>(2, FaultPlan::chaos(0xFAB), BatchConfig::new(4));
            for i in 0..600 {
                eps[0].net().send(1, i);
            }
            eps[0].net().flush_all();
            let mut got = Vec::new();
            while let TryRecv::Msg(env) = eps[1].try_recv() {
                got.push(env.msg);
            }
            got
        };
        let run_sharded = |shards| {
            let (eps, _) = Fabric::new_sharded_faulty_with::<u32>(
                2,
                shards,
                FaultPlan::chaos(0xFAB),
                BatchConfig::new(4),
            );
            for i in 0..600 {
                eps[0].net(0).send(1, i);
            }
            eps[0].flush_members();
            let sink = if shards == 1 { &eps[0] } else { &eps[1] };
            let mut got = Vec::new();
            while let TryRecv::Msg(env) = sink.try_recv() {
                got.push(env.msg);
            }
            got
        };
        let baseline = run_per_node();
        assert!(!baseline.is_empty());
        assert_eq!(run_sharded(1), baseline);
        assert_eq!(run_sharded(2), baseline);
    }

    #[test]
    fn batch_parse_rejects_garbage() {
        assert!(BatchConfig::parse("16").is_ok());
        assert_eq!(BatchConfig::parse("off").unwrap(), BatchConfig::off());
        assert!(BatchConfig::parse("banana").is_err());
        assert!(BatchConfig::parse("-3").is_err());
        assert!(BatchConfig::parse("1.5").is_err());
    }

    #[test]
    fn faulty_fabric_violating_mode_reorders() {
        let plan = FaultPlan::new(5).delaying(400, 6).fifo_violating();
        let (eps, _) = Fabric::new_faulty::<u32>(2, plan);
        for i in 0..1000 {
            eps[0].net().send(1, i);
        }
        eps[0].net().flush_all();
        let mut got = Vec::new();
        while let TryRecv::Msg(env) = eps[1].try_recv() {
            got.push(env.msg);
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "violating mode must produce at least one overtake");
    }
}
