//! A virtual-time-aware global barrier.
//!
//! Parallel phases are separated by barriers (§1). Besides rendezvousing
//! the compute threads, the barrier aggregates each participant's virtual
//! clock: everyone leaves at `max(arrival times) + barrier cost`, and each
//! node learns its own stall gap, which the runtime books as
//! synchronization time. This is how the reproduction observes the paper's
//! §5.1 effect — pre-sending evens out remote-wait imbalance and thereby
//! shrinks synchronization time on lightly loaded processors.
//!
//! Barrier entry is a protocol *quiescence point*: with the fabric's
//! egress aggregation (see [`crate::fabric`]), a participant must flush
//! its node's egress buffers before calling [`VBarrier::wait`] — a thread
//! never blocks while its node's egress is dirty. The barrier itself is
//! fabric-agnostic (it rendezvouses any set of threads), so the runtime's
//! `NodeCtx` owns that flush, not this type.

use parking_lot::{Condvar, Mutex};

/// The sentinel a poisoned barrier throws: when one participant dies
/// (panic, injected crash without a checkpoint, watchdog abort), every
/// thread blocked at — or later arriving at — a poisoned [`VBarrier`]
/// unwinds with this payload instead of waiting forever for a party that
/// will never come. The machine runner downcasts it to keep teardown
/// diagnostics quiet (the *first* panic is the story; `Aborted` unwinds
/// are collateral).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

/// Result of one barrier episode for one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierOut {
    /// Maximum arrival virtual time over all participants.
    pub max_arrival_ns: u64,
    /// This participant's stall: `max_arrival_ns - own arrival`.
    pub stall_ns: u64,
}

struct Inner {
    arrived: usize,
    generation: u64,
    cur_max: u64,
    published_max: u64,
    poisoned: bool,
}

/// A reusable barrier for a fixed set of participants.
pub struct VBarrier {
    n: usize,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl VBarrier {
    /// Create a barrier for `n` participants.
    pub fn new(n: usize) -> VBarrier {
        assert!(n >= 1);
        VBarrier {
            n,
            inner: Mutex::new(Inner {
                arrived: 0,
                generation: 0,
                cur_max: 0,
                published_max: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Arrive with one's current virtual time; blocks until all `n`
    /// participants have arrived.
    ///
    /// # Panics
    ///
    /// Unwinds with the [`Aborted`] sentinel if the barrier is (or
    /// becomes) poisoned — a participant died and the rendezvous can never
    /// complete.
    pub fn wait(&self, arrival_ns: u64) -> BarrierOut {
        let mut g = self.inner.lock();
        if g.poisoned {
            drop(g);
            std::panic::panic_any(Aborted);
        }
        g.cur_max = g.cur_max.max(arrival_ns);
        g.arrived += 1;
        if g.arrived == self.n {
            g.published_max = g.cur_max;
            g.cur_max = 0;
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
        } else {
            let gen = g.generation;
            while g.generation == gen && !g.poisoned {
                self.cv.wait(&mut g);
            }
            if g.generation == gen {
                drop(g);
                std::panic::panic_any(Aborted); // woke by poison, not release
            }
        }
        let max = g.published_max;
        BarrierOut { max_arrival_ns: max, stall_ns: max - arrival_ns }
    }

    /// Mark the barrier unusable and wake every blocked participant: each
    /// unwinds with [`Aborted`], as does any later arrival. Called when a
    /// participant dies (panic isolation, watchdog abort) so the survivors
    /// tear down instead of hanging.
    pub fn poison(&self) {
        let mut g = self.inner.lock();
        g.poisoned = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_party() {
        let b = VBarrier::new(1);
        let out = b.wait(42);
        assert_eq!(out.max_arrival_ns, 42);
        assert_eq!(out.stall_ns, 0);
    }

    #[test]
    fn aggregates_max_across_threads() {
        let b = Arc::new(VBarrier::new(4));
        let mut handles = vec![];
        for i in 0..4u64 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.wait(i * 10)));
        }
        let outs: Vec<BarrierOut> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for out in &outs {
            assert_eq!(out.max_arrival_ns, 30);
        }
        let mut stalls: Vec<u64> = outs.iter().map(|o| o.stall_ns).collect();
        stalls.sort_unstable();
        assert_eq!(stalls, vec![0, 10, 20, 30]);
    }

    #[test]
    fn poison_wakes_blocked_waiters_with_aborted() {
        let b = Arc::new(VBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b2.wait(0)))
        });
        // Give the waiter time to block, then poison instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison();
        let err = waiter.join().unwrap().expect_err("waiter must unwind");
        assert!(err.downcast_ref::<Aborted>().is_some(), "payload must be the Aborted sentinel");
        // Later arrivals abort immediately too.
        let late = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait(0)));
        assert!(late.is_err());
    }

    #[test]
    fn reusable_across_generations() {
        let b = Arc::new(VBarrier::new(2));
        let b2 = Arc::clone(&b);
        let t = std::thread::spawn(move || {
            let mut outs = vec![];
            for round in 0..10u64 {
                outs.push(b2.wait(round * 2));
            }
            outs
        });
        let mut outs = vec![];
        for round in 0..10u64 {
            outs.push(b.wait(round * 3));
        }
        let theirs = t.join().unwrap();
        for round in 0..10usize {
            let expect = (round as u64 * 2).max(round as u64 * 3);
            assert_eq!(outs[round].max_arrival_ns, expect);
            assert_eq!(theirs[round].max_arrival_ns, expect);
        }
    }
}
