//! Deterministic fault injection for the message fabric.
//!
//! A [`FaultPlan`] describes, per (src, dst) link, how often messages are
//! delayed, duplicated, or dropped. Decisions are drawn from a per-link
//! [`SplitMix64`] stream seeded from the plan's seed, so the *schedule* of
//! fault decisions (the fate of the k-th send on each link) is reproducible
//! from the seed alone. Which protocol message happens to be the k-th send
//! on a link still depends on thread interleaving — the plan makes the
//! adversary deterministic, not the execution.
//!
//! Two delay disciplines are supported (the distinction the chaos tests use
//! to document each protocol's ordering requirements):
//!
//! * [`FifoMode::Preserving`] — a delayed message stalls the *whole link*:
//!   later messages on the same link queue behind it, so point-to-point
//!   FIFO order is preserved. Duplicates are delivered back-to-back.
//!   Stache's directory protocol tolerates this mode (plus drops and
//!   duplicates) given the seqno/retry machinery in `prescient-stache`.
//! * [`FifoMode::Violating`] — a delayed message is held *individually*
//!   while later messages overtake it. This breaks the point-to-point FIFO
//!   guarantee Stache's grant/recall ordering relies on; it exists so tests
//!   can demonstrate which invariants the protocol actually needs.
//!
//! Delays are measured in subsequent *send events on the same link*: a
//! message delayed by `k` is released once `k` further sends hit that link.
//! This keeps the fault layer free of wall-clock time (fully deterministic
//! given a send sequence) and guarantees that retransmissions — which are
//! themselves sends — eventually flush a stalled link.
//!
//! Self-sends (`src == dst`) are never faulted: they model a node's local
//! hand-off to its own protocol handler, not network traffic, and the
//! protocols rely on them for shutdown and home-local grants.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fabric::Envelope;
use crate::stats::FaultStats;
use crate::trace::{pack_counts, EventKind, Tracer};

/// Fate code a [`EventKind::FaultInject`] trace event carries: delayed.
pub const FATE_DELAY: u64 = 1;
/// Fate code: duplicated.
pub const FATE_DUP: u64 = 2;
/// Fate code: dropped.
pub const FATE_DROP: u64 = 3;
/// Fate code: a previously held message was released.
pub const FATE_RELEASE: u64 = 4;

/// A small, fast, seedable PRNG (SplitMix64). Used instead of an external
/// RNG crate so fault schedules are stable across toolchains and the fabric
/// keeps zero extra dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Bernoulli draw with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next_u64() % 1000 < u64::from(per_mille)
    }

    /// Uniform draw in `1..=max` (returns 1 when `max <= 1`).
    pub fn up_to(&mut self, max: u32) -> u32 {
        if max <= 1 {
            1
        } else {
            1 + (self.next_u64() % u64::from(max)) as u32
        }
    }
}

/// Ordering discipline of injected delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoMode {
    /// A delayed message stalls its whole link; point-to-point FIFO holds.
    Preserving,
    /// A delayed message is overtaken by later ones; FIFO is violated.
    Violating,
}

/// A seeded, deterministic description of the faults to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-link decision streams.
    pub seed: u64,
    /// Probability (per mille) that a message is delayed.
    pub delay_per_mille: u16,
    /// Maximum delay, in subsequent send events on the same link.
    pub max_delay: u32,
    /// Probability (per mille) that a message is duplicated.
    pub dup_per_mille: u16,
    /// Probability (per mille) that a message is dropped.
    pub drop_per_mille: u16,
    /// Delay ordering discipline.
    pub fifo: FifoMode,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for the builders).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_per_mille: 0,
            max_delay: 0,
            dup_per_mille: 0,
            drop_per_mille: 0,
            fifo: FifoMode::Preserving,
        }
    }

    /// The default chaos mix: FIFO-preserving delays, duplicates, and drops.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed).delaying(100, 3).duplicating(60).dropping(25)
    }

    /// Delay messages with the given probability, up to `max_delay` link
    /// send events.
    pub fn delaying(mut self, per_mille: u16, max_delay: u32) -> FaultPlan {
        self.delay_per_mille = per_mille;
        self.max_delay = max_delay;
        self
    }

    /// Duplicate messages with the given probability.
    pub fn duplicating(mut self, per_mille: u16) -> FaultPlan {
        self.dup_per_mille = per_mille;
        self
    }

    /// Drop messages with the given probability.
    pub fn dropping(mut self, per_mille: u16) -> FaultPlan {
        self.drop_per_mille = per_mille;
        self
    }

    /// Switch delays to the FIFO-violating discipline.
    pub fn fifo_violating(mut self) -> FaultPlan {
        self.fifo = FifoMode::Violating;
        self
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.delay_per_mille > 0 || self.dup_per_mille > 0 || self.drop_per_mille > 0
    }
}

/// Per-message fate drawn from a link's decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Deliver,
    Drop,
    Duplicate,
    Delay(u32),
}

fn decide(rng: &mut SplitMix64, plan: &FaultPlan) -> Decision {
    if rng.chance(plan.drop_per_mille) {
        Decision::Drop
    } else if rng.chance(plan.dup_per_mille) {
        Decision::Duplicate
    } else if rng.chance(plan.delay_per_mille) {
        Decision::Delay(rng.up_to(plan.max_delay))
    } else {
        Decision::Deliver
    }
}

/// The object-safe face of the fault layer, as the fabric's flush path
/// sees it. Only [`FaultState`] implements it, and only for `M: Clone` —
/// the duplication fault must clone payloads — so a clean fabric (no
/// fault layer installed) places no `Clone` bound on its payload type.
pub trait FaultHook<M>: Send + Sync {
    /// Pass one envelope through the layer; `deliver` is invoked for every
    /// copy that comes out (possibly zero, possibly several including
    /// releases of previously held messages). `tracer` is the sending
    /// node's tracing handle; injected fates are emitted on it as
    /// [`EventKind::FaultInject`] events.
    fn process(&self, env: Envelope<M>, tracer: &Tracer, deliver: &mut dyn FnMut(Envelope<M>));
}

impl<M: Send + Clone> FaultHook<M> for FaultState<M> {
    fn process(&self, env: Envelope<M>, tracer: &Tracer, deliver: &mut dyn FnMut(Envelope<M>)) {
        FaultState::process(self, env, tracer, deliver)
    }
}

/// Mutable per-link state: the decision stream plus held (delayed) traffic.
struct Link<M> {
    rng: SplitMix64,
    /// Send events seen on this link.
    events: u64,
    /// FIFO-preserving mode: event count until which the link is stalled.
    stall_until: u64,
    /// Held messages. In `Preserving` mode the per-entry release event is
    /// unused (the whole queue releases at `stall_until`); in `Violating`
    /// mode each entry carries its own release event.
    held: VecDeque<(u64, Envelope<M>)>,
}

/// The fault layer of one fabric: per-link decision streams, held traffic,
/// and counters.
pub struct FaultState<M> {
    plan: FaultPlan,
    n: usize,
    links: Vec<Mutex<Link<M>>>,
    stats: Arc<FaultStats>,
}

impl<M: Clone> FaultState<M> {
    /// Build the fault layer for an `n`-node fabric.
    pub fn new(n: usize, plan: FaultPlan) -> FaultState<M> {
        let mut links = Vec::with_capacity(n * n);
        for i in 0..n * n {
            // Mix the link index into the seed so links get distinct streams.
            let mut seeder =
                SplitMix64::new(plan.seed ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            links.push(Mutex::new(Link {
                rng: SplitMix64::new(seeder.next_u64()),
                events: 0,
                stall_until: 0,
                held: VecDeque::new(),
            }));
        }
        FaultState { plan, n, links, stats: Arc::new(FaultStats::new(n)) }
    }

    /// The plan this layer was built with.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Per-link fault counters.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// Pass one envelope through the fault layer. `deliver` is invoked for
    /// every copy that comes out (possibly zero, possibly several including
    /// releases of previously held messages). Called with the link lock
    /// held, so per-link delivery order is atomic. Injected fates (and
    /// releases of held traffic) are emitted on `tracer` — the sending
    /// node's handle — as [`EventKind::FaultInject`] events.
    pub fn process(&self, env: Envelope<M>, tracer: &Tracer, deliver: &mut dyn FnMut(Envelope<M>)) {
        if env.src == env.dst {
            deliver(env); // local hand-off, never faulted
            return;
        }
        let dst = env.dst;
        let idx = env.src as usize * self.n + dst as usize;
        let lf = self.stats.link(env.src, dst);
        let mut l = self.links[idx].lock();
        l.events += 1;
        match decide(&mut l.rng, &self.plan) {
            Decision::Drop => {
                lf.count_dropped();
                tracer.emit(EventKind::FaultInject, u64::from(dst), pack_counts(FATE_DROP, 0));
            }
            Decision::Delay(k) => {
                lf.count_delayed();
                tracer.emit(
                    EventKind::FaultInject,
                    u64::from(dst),
                    pack_counts(FATE_DELAY, u64::from(k)),
                );
                let release = l.events + u64::from(k);
                match self.plan.fifo {
                    FifoMode::Preserving => {
                        l.stall_until = l.stall_until.max(release);
                        l.held.push_back((0, env));
                    }
                    FifoMode::Violating => l.held.push_back((release, env)),
                }
            }
            d @ (Decision::Deliver | Decision::Duplicate) => {
                let dup = d == Decision::Duplicate;
                if dup {
                    lf.count_duplicated();
                    tracer.emit(EventKind::FaultInject, u64::from(dst), pack_counts(FATE_DUP, 0));
                }
                // While the link is stalled in FIFO-preserving mode, even
                // undelayed messages must queue behind the held ones.
                let stalled = self.plan.fifo == FifoMode::Preserving && !l.held.is_empty();
                if stalled {
                    if dup {
                        l.held.push_back((0, env.clone()));
                    }
                    l.held.push_back((0, env));
                } else {
                    if dup {
                        deliver(env.clone());
                    }
                    deliver(env);
                }
            }
        }
        // Release whatever is due.
        let mut released = 0u64;
        match self.plan.fifo {
            FifoMode::Preserving => {
                if l.events >= l.stall_until {
                    while let Some((_, e)) = l.held.pop_front() {
                        lf.count_released();
                        released += 1;
                        deliver(e);
                    }
                }
            }
            FifoMode::Violating => {
                let mut i = 0;
                while i < l.held.len() {
                    if l.held[i].0 <= l.events {
                        let (_, e) = l.held.remove(i).expect("index in bounds");
                        lf.count_released();
                        released += 1;
                        deliver(e);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if released > 0 {
            tracer.emit(
                EventKind::FaultInject,
                u64::from(dst),
                pack_counts(FATE_RELEASE, released),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u16, dst: u16, msg: u32) -> Envelope<u32> {
        Envelope { src, dst, msg }
    }

    fn run_plan(plan: FaultPlan, count: u32) -> Vec<u32> {
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..count {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        out
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let out = run_plan(FaultPlan::new(7), 50);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_fate() {
        let plan = FaultPlan::chaos(1234);
        assert_eq!(run_plan(plan, 500), run_plan(plan, 500));
    }

    #[test]
    fn preserving_mode_keeps_order() {
        let plan = FaultPlan::new(99).delaying(300, 4).duplicating(150);
        let out = run_plan(plan, 1000);
        // Duplicates are adjacent and delays stall the link, so the
        // delivered sequence (with duplicates collapsed) is sorted.
        let mut dedup = out.clone();
        dedup.dedup();
        let mut sorted = dedup.clone();
        sorted.sort_unstable();
        assert_eq!(dedup, sorted, "FIFO-preserving delivery must stay ordered");
    }

    #[test]
    fn violating_mode_reorders() {
        let plan = FaultPlan::new(5).delaying(400, 6).fifo_violating();
        let out = run_plan(plan, 1000);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_ne!(out, sorted, "expected at least one overtake");
    }

    #[test]
    fn drops_are_counted_and_lost() {
        let plan = FaultPlan::new(11).dropping(500);
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..1000 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let dropped = fs.stats().link(0, 1).snapshot().dropped;
        assert!(dropped > 300, "a 50% drop rate must drop plenty, got {dropped}");
        assert_eq!(out.len() as u64, 1000 - dropped);
    }

    #[test]
    fn self_sends_bypass_faults() {
        let fs = FaultState::new(2, FaultPlan::new(3).dropping(1000));
        let mut out = Vec::new();
        for i in 0..100 {
            fs.process(env(1, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        assert_eq!(out.len(), 100);
        assert_eq!(fs.stats().total().dropped, 0);
    }

    #[test]
    fn delayed_messages_eventually_release() {
        let plan = FaultPlan::new(21).delaying(500, 3);
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..200 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let s = fs.stats().link(0, 1).snapshot();
        assert!(s.delayed > 0);
        // Everything delayed so far has either been released or is still
        // held awaiting further traffic; pushing more traffic flushes it.
        for i in 200..400 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let s = fs.stats().link(0, 1).snapshot();
        assert!(s.released >= s.delayed.saturating_sub(3), "stalls must flush under traffic");
    }
}
