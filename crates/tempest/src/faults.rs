//! Deterministic fault injection for the message fabric.
//!
//! A [`FaultPlan`] describes, per (src, dst) link, how often messages are
//! delayed, duplicated, or dropped. Decisions are drawn from a per-link
//! [`SplitMix64`] stream seeded from the plan's seed, so the *schedule* of
//! fault decisions (the fate of the k-th send on each link) is reproducible
//! from the seed alone. Which protocol message happens to be the k-th send
//! on a link still depends on thread interleaving — the plan makes the
//! adversary deterministic, not the execution.
//!
//! Two delay disciplines are supported (the distinction the chaos tests use
//! to document each protocol's ordering requirements):
//!
//! * [`FifoMode::Preserving`] — a delayed message stalls the *whole link*:
//!   later messages on the same link queue behind it, so point-to-point
//!   FIFO order is preserved. Duplicates are delivered back-to-back.
//!   Stache's directory protocol tolerates this mode (plus drops and
//!   duplicates) given the seqno/retry machinery in `prescient-stache`.
//! * [`FifoMode::Violating`] — a delayed message is held *individually*
//!   while later messages overtake it. This breaks the point-to-point FIFO
//!   guarantee Stache's grant/recall ordering relies on; it exists so tests
//!   can demonstrate which invariants the protocol actually needs.
//!
//! Delays are measured in subsequent *send events on the same link*: a
//! message delayed by `k` is released once `k` further sends hit that link.
//! This keeps the fault layer free of wall-clock time (fully deterministic
//! given a send sequence) and guarantees that retransmissions — which are
//! themselves sends — eventually flush a stalled link.
//!
//! Self-sends (`src == dst`) are never faulted: they model a node's local
//! hand-off to its own protocol handler, not network traffic, and the
//! protocols rely on them for shutdown and home-local grants.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fabric::Envelope;
use crate::stats::FaultStats;
use crate::trace::{pack_counts, EventKind, Tracer};

/// Fate code a [`EventKind::FaultInject`] trace event carries: delayed.
pub const FATE_DELAY: u64 = 1;
/// Fate code: duplicated.
pub const FATE_DUP: u64 = 2;
/// Fate code: dropped.
pub const FATE_DROP: u64 = 3;
/// Fate code: a previously held message was released.
pub const FATE_RELEASE: u64 = 4;
/// Fate code: dropped because the link was inside a partition window.
pub const FATE_PARTITION: u64 = 5;

/// A small, fast, seedable PRNG (SplitMix64). Used instead of an external
/// RNG crate so fault schedules are stable across toolchains and the fabric
/// keeps zero extra dependencies.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Bernoulli draw with probability `per_mille`/1000.
    pub fn chance(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next_u64() % 1000 < u64::from(per_mille)
    }

    /// Uniform draw in `1..=max` (returns 1 when `max <= 1`).
    pub fn up_to(&mut self, max: u32) -> u32 {
        if max <= 1 {
            1
        } else {
            1 + (self.next_u64() % u64::from(max)) as u32
        }
    }
}

/// Which links a [`PartitionSpec`] severs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScope {
    /// Every inter-node link: a full network partition.
    All,
    /// Every link into or out of one node: that node is isolated.
    Node(u16),
    /// The two directed links between a pair of nodes.
    Pair(u16, u16),
}

impl PartitionScope {
    /// Does this scope sever the directed link `src -> dst`?
    pub fn severs(&self, src: u16, dst: u16) -> bool {
        match *self {
            PartitionScope::All => true,
            PartitionScope::Node(n) => src == n || dst == n,
            PartitionScope::Pair(a, b) => (src, dst) == (a, b) || (src, dst) == (b, a),
        }
    }
}

/// A deterministic link partition: every message on a severed link is
/// dropped while the link's send-event counter is inside
/// `[from_event, until_event)`. Windows are measured in per-link send
/// events — the same wall-clock-free discipline delays use — so the
/// partition schedule is reproducible from the plan alone. An
/// `until_event` of `u64::MAX` severs the links for the rest of the run
/// (the watchdog's deadlock fixture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Which links are severed.
    pub scope: PartitionScope,
    /// First per-link send event inside the window.
    pub from_event: u64,
    /// First per-link send event past the window.
    pub until_event: u64,
}

impl PartitionSpec {
    /// Sever every inter-node link from the first send onward, forever.
    pub fn total() -> PartitionSpec {
        PartitionSpec { scope: PartitionScope::All, from_event: 0, until_event: u64::MAX }
    }

    /// Isolate one node for the whole run.
    pub fn isolate(node: u16) -> PartitionSpec {
        PartitionSpec { scope: PartitionScope::Node(node), from_event: 0, until_event: u64::MAX }
    }

    /// Restrict the window to `[from, until)` per-link send events.
    pub fn during(mut self, from: u64, until: u64) -> PartitionSpec {
        self.from_event = from;
        self.until_event = until;
        self
    }

    /// Is the directed link `src -> dst` severed at send event `event`?
    pub fn active(&self, src: u16, dst: u16, event: u64) -> bool {
        self.scope.severs(src, dst) && event >= self.from_event && event < self.until_event
    }
}

/// A seeded whole-node crash: "crash node `node` at its `at_version`-th
/// phase execution". Defined beside the message-fault plan because it is
/// the same kind of object — a deterministic adversary schedule — but
/// *consumed* above the fabric: the runtime fires it at the phase
/// boundary, where a barrier-consistent checkpoint makes the crash
/// recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The node that crashes.
    pub node: u16,
    /// The per-node phase-execution ordinal (1-based, counted at
    /// `phase_begin`) whose completion the crash destroys.
    pub at_version: u64,
}

impl CrashPlan {
    /// Crash `node` at its `at_version`-th phase execution.
    pub fn new(node: u16, at_version: u64) -> CrashPlan {
        CrashPlan { node, at_version }
    }

    /// Parse a `PRESCIENT_CRASH` value: `"node@version"` (e.g. `2@5`
    /// crashes node 2 at its 5th phase execution). Empty, `0` or `off`
    /// means no crash (`Ok(None)`).
    pub fn parse(s: &str) -> Result<Option<CrashPlan>, String> {
        let v = s.trim();
        if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") {
            return Ok(None);
        }
        let (node, version) = v
            .split_once('@')
            .ok_or_else(|| format!("PRESCIENT_CRASH must be \"node@version\", got {v:?}"))?;
        let node: u16 = node
            .trim()
            .parse()
            .map_err(|_| format!("PRESCIENT_CRASH node must be a u16, got {v:?}"))?;
        let at_version: u64 = version
            .trim()
            .parse()
            .map_err(|_| format!("PRESCIENT_CRASH version must be a u64, got {v:?}"))?;
        Ok(Some(CrashPlan { node, at_version }))
    }

    /// The `PRESCIENT_CRASH` environment override, if set. Unset, empty,
    /// or `0`/`off` means no crash; anything else malformed panics with
    /// the expected format — a mistyped crash plan must never silently
    /// run a fault-free experiment.
    pub fn from_env() -> Option<CrashPlan> {
        let v = std::env::var("PRESCIENT_CRASH").ok()?;
        match CrashPlan::parse(&v) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Ordering discipline of injected delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoMode {
    /// A delayed message stalls its whole link; point-to-point FIFO holds.
    Preserving,
    /// A delayed message is overtaken by later ones; FIFO is violated.
    Violating,
}

/// A seeded, deterministic description of the faults to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-link decision streams.
    pub seed: u64,
    /// Probability (per mille) that a message is delayed.
    pub delay_per_mille: u16,
    /// Maximum delay, in subsequent send events on the same link.
    pub max_delay: u32,
    /// Probability (per mille) that a message is duplicated.
    pub dup_per_mille: u16,
    /// Probability (per mille) that a message is dropped.
    pub drop_per_mille: u16,
    /// Delay ordering discipline.
    pub fifo: FifoMode,
    /// Optional link partition: severed links drop every message inside
    /// the event window.
    pub partition: Option<PartitionSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base for the builders).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_per_mille: 0,
            max_delay: 0,
            dup_per_mille: 0,
            drop_per_mille: 0,
            fifo: FifoMode::Preserving,
            partition: None,
        }
    }

    /// The default chaos mix: FIFO-preserving delays, duplicates, and drops.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed).delaying(100, 3).duplicating(60).dropping(25)
    }

    /// Delay messages with the given probability, up to `max_delay` link
    /// send events.
    pub fn delaying(mut self, per_mille: u16, max_delay: u32) -> FaultPlan {
        self.delay_per_mille = per_mille;
        self.max_delay = max_delay;
        self
    }

    /// Duplicate messages with the given probability.
    pub fn duplicating(mut self, per_mille: u16) -> FaultPlan {
        self.dup_per_mille = per_mille;
        self
    }

    /// Drop messages with the given probability.
    pub fn dropping(mut self, per_mille: u16) -> FaultPlan {
        self.drop_per_mille = per_mille;
        self
    }

    /// Switch delays to the FIFO-violating discipline.
    pub fn fifo_violating(mut self) -> FaultPlan {
        self.fifo = FifoMode::Violating;
        self
    }

    /// Sever links per `spec` (drop-all inside its event window).
    pub fn partitioned(mut self, spec: PartitionSpec) -> FaultPlan {
        self.partition = Some(spec);
        self
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.delay_per_mille > 0
            || self.dup_per_mille > 0
            || self.drop_per_mille > 0
            || self.partition.is_some()
    }
}

/// Per-message fate drawn from a link's decision stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    Deliver,
    Drop,
    Duplicate,
    Delay(u32),
}

fn decide(rng: &mut SplitMix64, plan: &FaultPlan) -> Decision {
    if rng.chance(plan.drop_per_mille) {
        Decision::Drop
    } else if rng.chance(plan.dup_per_mille) {
        Decision::Duplicate
    } else if rng.chance(plan.delay_per_mille) {
        Decision::Delay(rng.up_to(plan.max_delay))
    } else {
        Decision::Deliver
    }
}

/// The object-safe face of the fault layer, as the fabric's flush path
/// sees it. Only [`FaultState`] implements it, and only for `M: Clone` —
/// the duplication fault must clone payloads — so a clean fabric (no
/// fault layer installed) places no `Clone` bound on its payload type.
pub trait FaultHook<M>: Send + Sync {
    /// Pass one envelope through the layer; `deliver` is invoked for every
    /// copy that comes out (possibly zero, possibly several including
    /// releases of previously held messages). `tracer` is the sending
    /// node's tracing handle; injected fates are emitted on it as
    /// [`EventKind::FaultInject`] events.
    fn process(&self, env: Envelope<M>, tracer: &Tracer, deliver: &mut dyn FnMut(Envelope<M>));

    /// Discard every message the layer is currently holding (delayed or
    /// stalled traffic). Called by the recovery protocol at a quiescent
    /// cut, where any held message is semantically dead: replaying the
    /// phase regenerates whatever traffic is still needed. Default: no-op
    /// (a layer that holds nothing has nothing to purge).
    fn purge(&self) {}
}

impl<M: Send + Clone> FaultHook<M> for FaultState<M> {
    fn process(&self, env: Envelope<M>, tracer: &Tracer, deliver: &mut dyn FnMut(Envelope<M>)) {
        FaultState::process(self, env, tracer, deliver)
    }

    fn purge(&self) {
        FaultState::purge(self)
    }
}

/// Mutable per-link state: the decision stream plus held (delayed) traffic.
struct Link<M> {
    rng: SplitMix64,
    /// Send events seen on this link.
    events: u64,
    /// FIFO-preserving mode: event count until which the link is stalled.
    stall_until: u64,
    /// Held messages. In `Preserving` mode the per-entry release event is
    /// unused (the whole queue releases at `stall_until`); in `Violating`
    /// mode each entry carries its own release event.
    held: VecDeque<(u64, Envelope<M>)>,
}

/// The fault layer of one fabric: per-link decision streams, held traffic,
/// and counters.
pub struct FaultState<M> {
    plan: FaultPlan,
    n: usize,
    links: Vec<Mutex<Link<M>>>,
    stats: Arc<FaultStats>,
}

impl<M: Clone> FaultState<M> {
    /// Build the fault layer for an `n`-node fabric.
    pub fn new(n: usize, plan: FaultPlan) -> FaultState<M> {
        let mut links = Vec::with_capacity(n * n);
        for i in 0..n * n {
            // Mix the link index into the seed so links get distinct streams.
            let mut seeder =
                SplitMix64::new(plan.seed ^ (i as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            links.push(Mutex::new(Link {
                rng: SplitMix64::new(seeder.next_u64()),
                events: 0,
                stall_until: 0,
                held: VecDeque::new(),
            }));
        }
        FaultState { plan, n, links, stats: Arc::new(FaultStats::new(n)) }
    }

    /// The plan this layer was built with.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Per-link fault counters.
    pub fn stats(&self) -> &Arc<FaultStats> {
        &self.stats
    }

    /// Pass one envelope through the fault layer. `deliver` is invoked for
    /// every copy that comes out (possibly zero, possibly several including
    /// releases of previously held messages). Called with the link lock
    /// held, so per-link delivery order is atomic. Injected fates (and
    /// releases of held traffic) are emitted on `tracer` — the sending
    /// node's handle — as [`EventKind::FaultInject`] events.
    pub fn process(&self, env: Envelope<M>, tracer: &Tracer, deliver: &mut dyn FnMut(Envelope<M>)) {
        if env.src == env.dst {
            deliver(env); // local hand-off, never faulted
            return;
        }
        let dst = env.dst;
        let idx = env.src as usize * self.n + dst as usize;
        let lf = self.stats.link(env.src, dst);
        let mut l = self.links[idx].lock();
        l.events += 1;
        // Partition windows override the probabilistic fates: a severed
        // link drops everything. The message still consumes its draw from
        // the decision stream, so fates outside the window stay exactly
        // the unpartitioned plan's (the k-th send keeps the k-th fate).
        if let Some(p) = &self.plan.partition {
            if p.active(env.src, dst, l.events - 1) {
                let _ = decide(&mut l.rng, &self.plan);
                lf.count_dropped();
                tracer.emit(EventKind::FaultInject, u64::from(dst), pack_counts(FATE_PARTITION, 0));
                return;
            }
        }
        match decide(&mut l.rng, &self.plan) {
            Decision::Drop => {
                lf.count_dropped();
                tracer.emit(EventKind::FaultInject, u64::from(dst), pack_counts(FATE_DROP, 0));
            }
            Decision::Delay(k) => {
                lf.count_delayed();
                tracer.emit(
                    EventKind::FaultInject,
                    u64::from(dst),
                    pack_counts(FATE_DELAY, u64::from(k)),
                );
                let release = l.events + u64::from(k);
                match self.plan.fifo {
                    FifoMode::Preserving => {
                        l.stall_until = l.stall_until.max(release);
                        l.held.push_back((0, env));
                    }
                    FifoMode::Violating => l.held.push_back((release, env)),
                }
            }
            d @ (Decision::Deliver | Decision::Duplicate) => {
                let dup = d == Decision::Duplicate;
                if dup {
                    lf.count_duplicated();
                    tracer.emit(EventKind::FaultInject, u64::from(dst), pack_counts(FATE_DUP, 0));
                }
                // While the link is stalled in FIFO-preserving mode, even
                // undelayed messages must queue behind the held ones.
                let stalled = self.plan.fifo == FifoMode::Preserving && !l.held.is_empty();
                if stalled {
                    if dup {
                        l.held.push_back((0, env.clone()));
                    }
                    l.held.push_back((0, env));
                } else {
                    if dup {
                        deliver(env.clone());
                    }
                    deliver(env);
                }
            }
        }
        // Release whatever is due.
        let mut released = 0u64;
        match self.plan.fifo {
            FifoMode::Preserving => {
                if l.events >= l.stall_until {
                    while let Some((_, e)) = l.held.pop_front() {
                        lf.count_released();
                        released += 1;
                        deliver(e);
                    }
                }
            }
            FifoMode::Violating => {
                let mut i = 0;
                while i < l.held.len() {
                    if l.held[i].0 <= l.events {
                        let (_, e) = l.held.remove(i).expect("index in bounds");
                        lf.count_released();
                        released += 1;
                        deliver(e);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if released > 0 {
            tracer.emit(
                EventKind::FaultInject,
                u64::from(dst),
                pack_counts(FATE_RELEASE, released),
            );
        }
    }

    /// Discard all held traffic on every link and un-stall the links. See
    /// [`FaultHook::purge`]: at a recovery cut every held message belongs
    /// to the rolled-back execution, so dropping the queues (without
    /// counting releases) leaves the fault layer as if those sends never
    /// happened.
    pub fn purge(&self) {
        for link in &self.links {
            let mut l = link.lock();
            l.held.clear();
            l.stall_until = l.events;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u16, dst: u16, msg: u32) -> Envelope<u32> {
        Envelope { src, dst, msg }
    }

    fn run_plan(plan: FaultPlan, count: u32) -> Vec<u32> {
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..count {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        out
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let out = run_plan(FaultPlan::new(7), 50);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_fate() {
        let plan = FaultPlan::chaos(1234);
        assert_eq!(run_plan(plan, 500), run_plan(plan, 500));
    }

    #[test]
    fn preserving_mode_keeps_order() {
        let plan = FaultPlan::new(99).delaying(300, 4).duplicating(150);
        let out = run_plan(plan, 1000);
        // Duplicates are adjacent and delays stall the link, so the
        // delivered sequence (with duplicates collapsed) is sorted.
        let mut dedup = out.clone();
        dedup.dedup();
        let mut sorted = dedup.clone();
        sorted.sort_unstable();
        assert_eq!(dedup, sorted, "FIFO-preserving delivery must stay ordered");
    }

    #[test]
    fn violating_mode_reorders() {
        let plan = FaultPlan::new(5).delaying(400, 6).fifo_violating();
        let out = run_plan(plan, 1000);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_ne!(out, sorted, "expected at least one overtake");
    }

    #[test]
    fn drops_are_counted_and_lost() {
        let plan = FaultPlan::new(11).dropping(500);
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..1000 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let dropped = fs.stats().link(0, 1).snapshot().dropped;
        assert!(dropped > 300, "a 50% drop rate must drop plenty, got {dropped}");
        assert_eq!(out.len() as u64, 1000 - dropped);
    }

    #[test]
    fn self_sends_bypass_faults() {
        let fs = FaultState::new(2, FaultPlan::new(3).dropping(1000));
        let mut out = Vec::new();
        for i in 0..100 {
            fs.process(env(1, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        assert_eq!(out.len(), 100);
        assert_eq!(fs.stats().total().dropped, 0);
    }

    #[test]
    fn partition_window_drops_everything_inside_it() {
        // Sever the link for send events [10, 20); everything else flows.
        let plan = FaultPlan::new(0).partitioned(PartitionSpec {
            scope: PartitionScope::All,
            from_event: 10,
            until_event: 20,
        });
        let out = run_plan(plan, 50);
        let expected: Vec<u32> = (0..50).filter(|&i| !(10..20).contains(&i)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn partition_scopes() {
        assert!(PartitionScope::All.severs(0, 1));
        assert!(PartitionScope::Node(2).severs(2, 5));
        assert!(PartitionScope::Node(2).severs(5, 2));
        assert!(!PartitionScope::Node(2).severs(0, 1));
        assert!(PartitionScope::Pair(1, 3).severs(3, 1));
        assert!(!PartitionScope::Pair(1, 3).severs(1, 2));
        let total = PartitionSpec::total();
        assert!(total.active(0, 1, 0) && total.active(7, 3, u64::MAX - 1));
    }

    #[test]
    fn partition_does_not_perturb_fates_outside_the_window() {
        // Same seed, one plan with a window that closes after 5 events:
        // fates from event 5 on must be identical to the unpartitioned
        // plan's (the partition never consumes the decision stream).
        let base = FaultPlan::new(77).delaying(200, 3).duplicating(100).dropping(50);
        let part = base.partitioned(PartitionSpec {
            scope: PartitionScope::All,
            from_event: 0,
            until_event: 5,
        });
        let a = run_plan(base, 300);
        let b = run_plan(part, 300);
        let a_tail: Vec<u32> = a.into_iter().filter(|&m| m >= 5).collect();
        assert_eq!(a_tail, b, "post-window fates must match the unpartitioned stream");
    }

    #[test]
    fn purge_discards_held_traffic() {
        let plan = FaultPlan::new(21).delaying(900, 50);
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..20 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let s = fs.stats().link(0, 1).snapshot();
        assert!(s.delayed > s.released, "fixture needs messages still held");
        fs.purge();
        // New traffic flows without flushing stale holds first.
        let mut after = Vec::new();
        for i in 100..110 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| after.push(e.msg));
        }
        assert!(after.iter().all(|&m| m >= 100), "purged messages must never reappear");
    }

    #[test]
    fn crash_plan_env_parsing() {
        // from_env reads the process environment; exercise the parser via
        // a scoped set/remove (tests in this crate run single-threaded on
        // env mutation by convention).
        std::env::set_var("PRESCIENT_CRASH", "3@7");
        assert_eq!(CrashPlan::from_env(), Some(CrashPlan::new(3, 7)));
        std::env::set_var("PRESCIENT_CRASH", "off");
        assert_eq!(CrashPlan::from_env(), None);
        std::env::remove_var("PRESCIENT_CRASH");
        assert_eq!(CrashPlan::from_env(), None);
    }

    #[test]
    fn delayed_messages_eventually_release() {
        let plan = FaultPlan::new(21).delaying(500, 3);
        let fs = FaultState::new(2, plan);
        let mut out = Vec::new();
        for i in 0..200 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let s = fs.stats().link(0, 1).snapshot();
        assert!(s.delayed > 0);
        // Everything delayed so far has either been released or is still
        // held awaiting further traffic; pushing more traffic flushes it.
        for i in 200..400 {
            fs.process(env(0, 1, i), &Tracer::off(), &mut |e| out.push(e.msg));
        }
        let s = fs.stats().link(0, 1).snapshot();
        assert!(s.released >= s.delayed.saturating_sub(3), "stalls must flush under traffic");
    }
}
