//! Per-node event counters, per-link fault counters, and the execution-time
//! breakdown.
//!
//! The paper's performance graphs (Figures 5–7) split each bar into three
//! sections: *remote data wait*, *predictive protocol* (pre-send phase), and
//! *compute + synch*. [`TimeBreakdown`] carries exactly those sections (with
//! compute and synch kept separate so the synchronization effect in §5.1 can
//! be observed); [`NodeStats`] counts the underlying protocol events.
//! [`FaultStats`] counts, per (src, dst) link, what the fabric's fault layer
//! (`crate::faults`) did to traffic.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::NodeId;

/// Event counters for one node. All counters are cumulative over the run and
/// safe to update from both the compute and the protocol-handler thread.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Shared-memory loads issued by the compute thread.
    pub reads: AtomicU64,
    /// Shared-memory stores issued by the compute thread.
    pub writes: AtomicU64,
    /// Read faults that required a remote request.
    pub read_misses: AtomicU64,
    /// Write faults that required a remote request (including upgrades).
    pub write_misses: AtomicU64,
    /// Misses that needed extra hops (recall from an owner or an
    /// invalidation round) — the expensive 3/4-message transfers of §3.2.
    pub slow_misses: AtomicU64,
    /// Invalidation requests this node serviced.
    pub invals_in: AtomicU64,
    /// Recall/downgrade requests this node serviced.
    pub recalls_in: AtomicU64,
    /// Protocol messages this node sent (all kinds).
    pub msgs_out: AtomicU64,
    /// Blocks this node pre-sent as a home node.
    pub presend_blocks_out: AtomicU64,
    /// Bulk messages used for those pre-sends (≤ blocks; smaller when
    /// coalescing merges neighbors).
    pub presend_msgs_out: AtomicU64,
    /// Bytes this node pre-sent.
    pub presend_bytes_out: AtomicU64,
    /// Blocks installed on this node by pre-sends from other homes.
    pub presend_blocks_in: AtomicU64,
    /// Schedule entries recorded at this node (as home).
    pub sched_records: AtomicU64,
    /// Faulting accesses that found the block already installed by a
    /// pre-send earlier in the same phase — should stay 0 on a fault-free
    /// fabric; a diagnostic.
    pub presend_races: AtomicU64,
    /// Coherence requests this node's compute thread re-issued after a
    /// reply timeout.
    pub retries: AtomicU64,
    /// Pre-send bulk messages this node retransmitted after an ack timeout.
    pub presend_retries: AtomicU64,
    /// Duplicate or stale requests (seqno not newer than the last accepted
    /// one from that requester) this home ignored.
    pub dup_reqs_in: AtomicU64,
    /// Stale protocol messages (recall data, invalidation acks, recalls of
    /// blocks no longer held) ignored because their operation id did not
    /// match any operation in flight.
    pub stale_msgs_in: AtomicU64,
    /// Grants discarded because their seqno no longer matched the fetch
    /// in flight (a retry had superseded them).
    pub stale_grants_in: AtomicU64,
    /// Pre-send installs rejected because they arrived outside their
    /// pre-send window (stale duplicates of acknowledged pushes).
    pub presend_stale_in: AtomicU64,
    /// Pushes this home dropped at the pass-2 revalidation because the
    /// directory state had changed since pass 1 recorded them (entry went
    /// busy, or a demand request won the block in between).
    pub presend_aborted: AtomicU64,
    /// Data bytes installed into this node's memory from protocol messages
    /// (grants, recalled data, pre-send payloads).
    pub data_bytes_in: AtomicU64,
    /// Useless pre-sends charged to this node as a home: copies it pushed
    /// that were torn down or overwritten without ever being accessed.
    pub presend_useless: AtomicU64,
    /// Times the degradation policy flushed one of this home's phase
    /// schedules and fell back to plain Stache.
    pub degrade_events: AtomicU64,
    /// Barrier-consistent checkpoints this node captured.
    pub checkpoints: AtomicU64,
    /// Bytes of block data captured into those checkpoints.
    pub checkpoint_bytes: AtomicU64,
    /// Rollback-to-checkpoint recoveries this node participated in.
    pub recoveries: AtomicU64,
    /// Phase executions this node re-ran after a rollback.
    pub replays: AtomicU64,
    /// Blocks this node migrated away while serving as their home (online
    /// placement, phase-boundary home migration).
    pub migrations: AtomicU64,
    /// Requests this node bounced to a block's new home via a forwarding
    /// stub left behind by a migration.
    pub forwards: AtomicU64,
    /// Blocks homed at this node by a placement overlay (offline remap or
    /// scatter) rather than by the segment-derived default.
    pub remapped_blocks: AtomicU64,
    /// Delta chunks this node pushed to other owners during commutative
    /// merge windows (initial sends only; retransmissions are not
    /// re-counted, so the total is deterministic on every fabric).
    pub merge_chunks_out: AtomicU64,
}

impl NodeStats {
    /// Increment a counter by 1.
    #[inline]
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            reads: g(&self.reads),
            writes: g(&self.writes),
            read_misses: g(&self.read_misses),
            write_misses: g(&self.write_misses),
            slow_misses: g(&self.slow_misses),
            invals_in: g(&self.invals_in),
            recalls_in: g(&self.recalls_in),
            msgs_out: g(&self.msgs_out),
            presend_blocks_out: g(&self.presend_blocks_out),
            presend_msgs_out: g(&self.presend_msgs_out),
            presend_bytes_out: g(&self.presend_bytes_out),
            presend_blocks_in: g(&self.presend_blocks_in),
            sched_records: g(&self.sched_records),
            presend_races: g(&self.presend_races),
            retries: g(&self.retries),
            presend_retries: g(&self.presend_retries),
            dup_reqs_in: g(&self.dup_reqs_in),
            stale_msgs_in: g(&self.stale_msgs_in),
            stale_grants_in: g(&self.stale_grants_in),
            presend_stale_in: g(&self.presend_stale_in),
            presend_aborted: g(&self.presend_aborted),
            data_bytes_in: g(&self.data_bytes_in),
            presend_useless: g(&self.presend_useless),
            degrade_events: g(&self.degrade_events),
            checkpoints: g(&self.checkpoints),
            checkpoint_bytes: g(&self.checkpoint_bytes),
            recoveries: g(&self.recoveries),
            replays: g(&self.replays),
            migrations: g(&self.migrations),
            forwards: g(&self.forwards),
            remapped_blocks: g(&self.remapped_blocks),
            merge_chunks_out: g(&self.merge_chunks_out),
        }
    }

    /// Overwrite every counter with the values in `s` — the rollback path:
    /// restoring the checkpoint-time snapshot makes a recovered replay
    /// account its protocol events exactly once, so blocks-moved equality
    /// with the fault-free run is exact rather than approximate.
    pub fn restore(&self, s: &StatsSnapshot) {
        let p = |c: &AtomicU64, v: u64| c.store(v, Ordering::Relaxed);
        p(&self.reads, s.reads);
        p(&self.writes, s.writes);
        p(&self.read_misses, s.read_misses);
        p(&self.write_misses, s.write_misses);
        p(&self.slow_misses, s.slow_misses);
        p(&self.invals_in, s.invals_in);
        p(&self.recalls_in, s.recalls_in);
        p(&self.msgs_out, s.msgs_out);
        p(&self.presend_blocks_out, s.presend_blocks_out);
        p(&self.presend_msgs_out, s.presend_msgs_out);
        p(&self.presend_bytes_out, s.presend_bytes_out);
        p(&self.presend_blocks_in, s.presend_blocks_in);
        p(&self.sched_records, s.sched_records);
        p(&self.presend_races, s.presend_races);
        p(&self.retries, s.retries);
        p(&self.presend_retries, s.presend_retries);
        p(&self.dup_reqs_in, s.dup_reqs_in);
        p(&self.stale_msgs_in, s.stale_msgs_in);
        p(&self.stale_grants_in, s.stale_grants_in);
        p(&self.presend_stale_in, s.presend_stale_in);
        p(&self.presend_aborted, s.presend_aborted);
        p(&self.data_bytes_in, s.data_bytes_in);
        p(&self.presend_useless, s.presend_useless);
        p(&self.degrade_events, s.degrade_events);
        p(&self.checkpoints, s.checkpoints);
        p(&self.checkpoint_bytes, s.checkpoint_bytes);
        p(&self.recoveries, s.recoveries);
        p(&self.replays, s.replays);
        p(&self.migrations, s.migrations);
        p(&self.forwards, s.forwards);
        p(&self.remapped_blocks, s.remapped_blocks);
        p(&self.merge_chunks_out, s.merge_chunks_out);
    }
}

/// Plain-value copy of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on NodeStats
pub struct StatsSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub read_misses: u64,
    pub write_misses: u64,
    pub slow_misses: u64,
    pub invals_in: u64,
    pub recalls_in: u64,
    pub msgs_out: u64,
    pub presend_blocks_out: u64,
    pub presend_msgs_out: u64,
    pub presend_bytes_out: u64,
    pub presend_blocks_in: u64,
    pub sched_records: u64,
    pub presend_races: u64,
    pub retries: u64,
    pub presend_retries: u64,
    pub dup_reqs_in: u64,
    pub stale_msgs_in: u64,
    pub stale_grants_in: u64,
    pub presend_stale_in: u64,
    pub presend_aborted: u64,
    pub data_bytes_in: u64,
    pub presend_useless: u64,
    pub degrade_events: u64,
    pub checkpoints: u64,
    pub checkpoint_bytes: u64,
    pub recoveries: u64,
    pub replays: u64,
    pub migrations: u64,
    pub forwards: u64,
    pub remapped_blocks: u64,
    pub merge_chunks_out: u64,
}

macro_rules! per_field {
    ($a:ident, $b:ident, $op:tt) => {
        StatsSnapshot {
            reads: $a.reads $op $b.reads,
            writes: $a.writes $op $b.writes,
            read_misses: $a.read_misses $op $b.read_misses,
            write_misses: $a.write_misses $op $b.write_misses,
            slow_misses: $a.slow_misses $op $b.slow_misses,
            invals_in: $a.invals_in $op $b.invals_in,
            recalls_in: $a.recalls_in $op $b.recalls_in,
            msgs_out: $a.msgs_out $op $b.msgs_out,
            presend_blocks_out: $a.presend_blocks_out $op $b.presend_blocks_out,
            presend_msgs_out: $a.presend_msgs_out $op $b.presend_msgs_out,
            presend_bytes_out: $a.presend_bytes_out $op $b.presend_bytes_out,
            presend_blocks_in: $a.presend_blocks_in $op $b.presend_blocks_in,
            sched_records: $a.sched_records $op $b.sched_records,
            presend_races: $a.presend_races $op $b.presend_races,
            retries: $a.retries $op $b.retries,
            presend_retries: $a.presend_retries $op $b.presend_retries,
            dup_reqs_in: $a.dup_reqs_in $op $b.dup_reqs_in,
            stale_msgs_in: $a.stale_msgs_in $op $b.stale_msgs_in,
            stale_grants_in: $a.stale_grants_in $op $b.stale_grants_in,
            presend_stale_in: $a.presend_stale_in $op $b.presend_stale_in,
            presend_aborted: $a.presend_aborted $op $b.presend_aborted,
            data_bytes_in: $a.data_bytes_in $op $b.data_bytes_in,
            presend_useless: $a.presend_useless $op $b.presend_useless,
            degrade_events: $a.degrade_events $op $b.degrade_events,
            checkpoints: $a.checkpoints $op $b.checkpoints,
            checkpoint_bytes: $a.checkpoint_bytes $op $b.checkpoint_bytes,
            recoveries: $a.recoveries $op $b.recoveries,
            replays: $a.replays $op $b.replays,
            migrations: $a.migrations $op $b.migrations,
            forwards: $a.forwards $op $b.forwards,
            remapped_blocks: $a.remapped_blocks $op $b.remapped_blocks,
            merge_chunks_out: $a.merge_chunks_out $op $b.merge_chunks_out,
        }
    };
}

impl StatsSnapshot {
    /// Total misses (read + write).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses satisfied locally (the quantity the predictive
    /// protocol raises — abstract's "number of shared-data requests
    /// satisfied locally").
    pub fn local_fraction(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            1.0 - self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    /// Serializers (the run-report JSON, the trace analyzer) iterate this
    /// instead of hand-listing fields, so a new counter shows up
    /// everywhere by editing `NodeStats` + this table only.
    pub fn fields(&self) -> [(&'static str, u64); 32] {
        [
            ("reads", self.reads),
            ("writes", self.writes),
            ("read_misses", self.read_misses),
            ("write_misses", self.write_misses),
            ("slow_misses", self.slow_misses),
            ("invals_in", self.invals_in),
            ("recalls_in", self.recalls_in),
            ("msgs_out", self.msgs_out),
            ("presend_blocks_out", self.presend_blocks_out),
            ("presend_msgs_out", self.presend_msgs_out),
            ("presend_bytes_out", self.presend_bytes_out),
            ("presend_blocks_in", self.presend_blocks_in),
            ("sched_records", self.sched_records),
            ("presend_races", self.presend_races),
            ("retries", self.retries),
            ("presend_retries", self.presend_retries),
            ("dup_reqs_in", self.dup_reqs_in),
            ("stale_msgs_in", self.stale_msgs_in),
            ("stale_grants_in", self.stale_grants_in),
            ("presend_stale_in", self.presend_stale_in),
            ("presend_aborted", self.presend_aborted),
            ("data_bytes_in", self.data_bytes_in),
            ("presend_useless", self.presend_useless),
            ("degrade_events", self.degrade_events),
            ("checkpoints", self.checkpoints),
            ("checkpoint_bytes", self.checkpoint_bytes),
            ("recoveries", self.recoveries),
            ("replays", self.replays),
            ("migrations", self.migrations),
            ("forwards", self.forwards),
            ("remapped_blocks", self.remapped_blocks),
            ("merge_chunks_out", self.merge_chunks_out),
        ]
    }

    /// Every counter as a `(name, &mut value)` pair, in the same order as
    /// [`StatsSnapshot::fields`]. Deserializers (the metrics JSONL parser)
    /// iterate this, so the two tables cannot drift apart silently: a
    /// counter added to one but not the other fails the round-trip test.
    pub fn fields_mut(&mut self) -> [(&'static str, &mut u64); 32] {
        [
            ("reads", &mut self.reads),
            ("writes", &mut self.writes),
            ("read_misses", &mut self.read_misses),
            ("write_misses", &mut self.write_misses),
            ("slow_misses", &mut self.slow_misses),
            ("invals_in", &mut self.invals_in),
            ("recalls_in", &mut self.recalls_in),
            ("msgs_out", &mut self.msgs_out),
            ("presend_blocks_out", &mut self.presend_blocks_out),
            ("presend_msgs_out", &mut self.presend_msgs_out),
            ("presend_bytes_out", &mut self.presend_bytes_out),
            ("presend_blocks_in", &mut self.presend_blocks_in),
            ("sched_records", &mut self.sched_records),
            ("presend_races", &mut self.presend_races),
            ("retries", &mut self.retries),
            ("presend_retries", &mut self.presend_retries),
            ("dup_reqs_in", &mut self.dup_reqs_in),
            ("stale_msgs_in", &mut self.stale_msgs_in),
            ("stale_grants_in", &mut self.stale_grants_in),
            ("presend_stale_in", &mut self.presend_stale_in),
            ("presend_aborted", &mut self.presend_aborted),
            ("data_bytes_in", &mut self.data_bytes_in),
            ("presend_useless", &mut self.presend_useless),
            ("degrade_events", &mut self.degrade_events),
            ("checkpoints", &mut self.checkpoints),
            ("checkpoint_bytes", &mut self.checkpoint_bytes),
            ("recoveries", &mut self.recoveries),
            ("replays", &mut self.replays),
            ("migrations", &mut self.migrations),
            ("forwards", &mut self.forwards),
            ("remapped_blocks", &mut self.remapped_blocks),
            ("merge_chunks_out", &mut self.merge_chunks_out),
        ]
    }

    /// Element-wise sum, for machine-wide totals.
    pub fn merge(&self, o: &StatsSnapshot) -> StatsSnapshot {
        per_field!(self, o, +)
    }

    /// Element-wise difference (`self - o`), for per-run deltas from
    /// cumulative counters.
    pub fn sub(&self, o: &StatsSnapshot) -> StatsSnapshot {
        per_field!(self, o, -)
    }
}

/// Fault counters for one (src, dst) link of the fabric.
#[derive(Debug, Default)]
pub struct LinkFaults {
    delayed: AtomicU64,
    duplicated: AtomicU64,
    dropped: AtomicU64,
    released: AtomicU64,
}

impl LinkFaults {
    /// Count one delayed message.
    pub fn count_delayed(&self) {
        self.delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one duplicated message.
    pub fn count_duplicated(&self) {
        self.duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one dropped message.
    pub fn count_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one held message released back onto the link.
    pub fn count_released(&self) {
        self.released.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-value copy of the counters.
    pub fn snapshot(&self) -> LinkFaultsSnapshot {
        LinkFaultsSnapshot {
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`LinkFaults`]. Messages held by a stalled link at
/// teardown show up as `delayed - released` (plus any message queued behind
/// them, which is also counted as released when the stall flushes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct LinkFaultsSnapshot {
    pub delayed: u64,
    pub duplicated: u64,
    pub dropped: u64,
    pub released: u64,
}

impl LinkFaultsSnapshot {
    /// Element-wise sum.
    pub fn merge(&self, o: &LinkFaultsSnapshot) -> LinkFaultsSnapshot {
        LinkFaultsSnapshot {
            delayed: self.delayed + o.delayed,
            duplicated: self.duplicated + o.duplicated,
            dropped: self.dropped + o.dropped,
            released: self.released + o.released,
        }
    }
}

/// Per-link fault counters for a whole fabric (row-major: `src * n + dst`).
#[derive(Debug)]
pub struct FaultStats {
    n: usize,
    links: Vec<LinkFaults>,
}

impl FaultStats {
    /// Zeroed counters for an `n`-node fabric.
    pub fn new(n: usize) -> FaultStats {
        FaultStats { n, links: (0..n * n).map(|_| LinkFaults::default()).collect() }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Counters of the (src, dst) link.
    pub fn link(&self, src: NodeId, dst: NodeId) -> &LinkFaults {
        &self.links[src as usize * self.n + dst as usize]
    }

    /// Sum over all links.
    pub fn total(&self) -> LinkFaultsSnapshot {
        self.links.iter().fold(LinkFaultsSnapshot::default(), |acc, l| acc.merge(&l.snapshot()))
    }
}

/// Wire-level transport counters of one fabric: how many [`WireBatch`]es
/// crossed the channels and how many envelopes they carried in total
/// (see [`FabricCtl::wire`]). Mean occupancy — envelopes per batch — is
/// the aggregation payoff: 1.0 means batching bought nothing.
///
/// Unlike the logical traffic counters these numbers depend on thread
/// timing (how full a buffer happened to be when a flush hit it), so they
/// are reported for trend-watching but never equality-gated.
///
/// [`WireBatch`]: crate::fabric::WireBatch
/// [`FabricCtl::wire`]: crate::fabric::FabricCtl::wire
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Wire batches put on channels.
    pub batches: u64,
    /// Envelopes those batches carried.
    pub envelopes: u64,
    /// Occupancy histogram: batches bucketed by envelope count. Bucket
    /// edges are [`WireSnapshot::BUCKETS`]; the last bucket is open-ended.
    pub hist: [u64; WireSnapshot::NUM_BUCKETS],
}

impl WireSnapshot {
    /// Number of occupancy buckets.
    pub const NUM_BUCKETS: usize = 8;

    /// Upper edge (inclusive) of each occupancy bucket: a batch of `n`
    /// envelopes lands in the first bucket with edge ≥ `n`; larger batches
    /// land in the open-ended last bucket ("65+").
    pub const BUCKETS: [u64; WireSnapshot::NUM_BUCKETS] = [1, 2, 4, 8, 16, 32, 64, u64::MAX];

    /// Human label of a bucket, for reports.
    pub fn bucket_label(i: usize) -> &'static str {
        ["1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"][i]
    }

    /// Index of the bucket a batch of `n` envelopes falls into.
    pub fn bucket_index(n: u64) -> usize {
        Self::BUCKETS.iter().position(|&edge| n <= edge).unwrap_or(Self::NUM_BUCKETS - 1)
    }

    /// Envelopes per batch (1.0 for an idle fabric, so a no-traffic run
    /// still reads as "no aggregation win" rather than dividing by zero).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            1.0
        } else {
            self.envelopes as f64 / self.batches as f64
        }
    }

    /// Element-wise sum.
    pub fn merge(&self, o: &WireSnapshot) -> WireSnapshot {
        let mut hist = self.hist;
        for (h, x) in hist.iter_mut().zip(o.hist) {
            *h += x;
        }
        WireSnapshot {
            batches: self.batches + o.batches,
            envelopes: self.envelopes + o.envelopes,
            hist,
        }
    }

    /// Element-wise difference (`self - o`), for before/after deltas.
    pub fn sub(&self, o: &WireSnapshot) -> WireSnapshot {
        let mut hist = self.hist;
        for (h, x) in hist.iter_mut().zip(o.hist) {
            *h -= x;
        }
        WireSnapshot {
            batches: self.batches - o.batches,
            envelopes: self.envelopes - o.envelopes,
            hist,
        }
    }
}

/// Virtual-time breakdown of one node's execution, mirroring the paper's
/// stacked bars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Computation: arithmetic plus local (hit) shared-memory accesses.
    pub compute_ns: u64,
    /// Time blocked waiting for non-local memory accesses ("Remote data
    /// wait" in the figures).
    pub wait_ns: u64,
    /// Time spent in the pre-send phase of the predictive protocol.
    pub presend_ns: u64,
    /// Time stalled at barriers waiting for other nodes.
    pub synch_ns: u64,
}

impl TimeBreakdown {
    /// Total virtual time.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.wait_ns + self.presend_ns + self.synch_ns
    }

    /// The paper's third bar segment: compute and synchronization combined.
    pub fn compute_synch_ns(&self) -> u64 {
        self.compute_ns + self.synch_ns
    }

    /// Element-wise sum.
    pub fn merge(&self, o: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute_ns: self.compute_ns + o.compute_ns,
            wait_ns: self.wait_ns + o.wait_ns,
            presend_ns: self.presend_ns + o.presend_ns,
            synch_ns: self.synch_ns + o.synch_ns,
        }
    }

    /// Element-wise difference (`self - o`), for per-phase deltas from the
    /// cumulative per-node breakdown.
    pub fn sub(&self, o: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute_ns: self.compute_ns - o.compute_ns,
            wait_ns: self.wait_ns - o.wait_ns,
            presend_ns: self.presend_ns - o.presend_ns,
            synch_ns: self.synch_ns - o.synch_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let s = NodeStats::default();
        NodeStats::bump(&s.reads);
        NodeStats::bump(&s.reads);
        NodeStats::bump(&s.read_misses);
        NodeStats::add(&s.msgs_out, 5);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.misses(), 1);
        assert_eq!(snap.msgs_out, 5);
        let twice = snap.merge(&snap);
        assert_eq!(twice.reads, 4);
        assert_eq!(twice.msgs_out, 10);
    }

    #[test]
    fn sub_gives_deltas() {
        let s = NodeStats::default();
        NodeStats::add(&s.retries, 3);
        NodeStats::add(&s.msgs_out, 10);
        let before = s.snapshot();
        NodeStats::add(&s.retries, 2);
        NodeStats::add(&s.dup_reqs_in, 7);
        let after = s.snapshot();
        let d = after.sub(&before);
        assert_eq!(d.retries, 2);
        assert_eq!(d.dup_reqs_in, 7);
        assert_eq!(d.msgs_out, 0);
    }

    #[test]
    fn restore_overwrites_every_counter() {
        let s = NodeStats::default();
        NodeStats::add(&s.reads, 10);
        NodeStats::add(&s.msgs_out, 4);
        let at_cut = s.snapshot();
        NodeStats::add(&s.reads, 99);
        NodeStats::bump(&s.checkpoints);
        NodeStats::add(&s.checkpoint_bytes, 1024);
        s.restore(&at_cut);
        assert_eq!(s.snapshot(), at_cut, "rollback must restore the exact cut");
    }

    #[test]
    fn local_fraction() {
        let mut snap = StatsSnapshot::default();
        assert_eq!(snap.local_fraction(), 1.0);
        snap.reads = 10;
        snap.read_misses = 2;
        assert!((snap.local_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fault_stats_per_link() {
        let f = FaultStats::new(3);
        f.link(0, 1).count_dropped();
        f.link(0, 1).count_dropped();
        f.link(2, 0).count_delayed();
        assert_eq!(f.link(0, 1).snapshot().dropped, 2);
        assert_eq!(f.link(1, 0).snapshot().dropped, 0);
        let t = f.total();
        assert_eq!((t.dropped, t.delayed), (2, 1));
    }

    #[test]
    fn wire_occupancy_buckets() {
        assert_eq!(WireSnapshot::bucket_index(1), 0);
        assert_eq!(WireSnapshot::bucket_index(2), 1);
        assert_eq!(WireSnapshot::bucket_index(3), 2);
        assert_eq!(WireSnapshot::bucket_index(4), 2);
        assert_eq!(WireSnapshot::bucket_index(5), 3);
        assert_eq!(WireSnapshot::bucket_index(16), 4);
        assert_eq!(WireSnapshot::bucket_index(64), 6);
        assert_eq!(WireSnapshot::bucket_index(65), 7);
        assert_eq!(WireSnapshot::bucket_index(1_000_000), 7);
        let mut a = WireSnapshot { batches: 2, envelopes: 5, hist: [0; 8] };
        a.hist[0] = 1;
        a.hist[2] = 1;
        let sum = a.merge(&a);
        assert_eq!(sum.hist[0], 2);
        assert_eq!(sum.sub(&a), a);
    }

    #[test]
    fn breakdown_totals() {
        let t = TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 5, synch_ns: 7 };
        assert_eq!(t.total_ns(), 42);
        assert_eq!(t.compute_synch_ns(), 17);
        assert_eq!(t.merge(&t).total_ns(), 84);
    }
}
