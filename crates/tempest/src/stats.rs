//! Per-node event counters and the execution-time breakdown.
//!
//! The paper's performance graphs (Figures 5–7) split each bar into three
//! sections: *remote data wait*, *predictive protocol* (pre-send phase), and
//! *compute + synch*. [`TimeBreakdown`] carries exactly those sections (with
//! compute and synch kept separate so the synchronization effect in §5.1 can
//! be observed); [`NodeStats`] counts the underlying protocol events.

use std::sync::atomic::{AtomicU64, Ordering};

/// Event counters for one node. All counters are cumulative over the run and
/// safe to update from both the compute and the protocol-handler thread.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Shared-memory loads issued by the compute thread.
    pub reads: AtomicU64,
    /// Shared-memory stores issued by the compute thread.
    pub writes: AtomicU64,
    /// Read faults that required a remote request.
    pub read_misses: AtomicU64,
    /// Write faults that required a remote request (including upgrades).
    pub write_misses: AtomicU64,
    /// Misses that needed extra hops (recall from an owner or an
    /// invalidation round) — the expensive 3/4-message transfers of §3.2.
    pub slow_misses: AtomicU64,
    /// Invalidation requests this node serviced.
    pub invals_in: AtomicU64,
    /// Recall/downgrade requests this node serviced.
    pub recalls_in: AtomicU64,
    /// Protocol messages this node sent (all kinds).
    pub msgs_out: AtomicU64,
    /// Blocks this node pre-sent as a home node.
    pub presend_blocks_out: AtomicU64,
    /// Bulk messages used for those pre-sends (≤ blocks; smaller when
    /// coalescing merges neighbors).
    pub presend_msgs_out: AtomicU64,
    /// Bytes this node pre-sent.
    pub presend_bytes_out: AtomicU64,
    /// Blocks installed on this node by pre-sends from other homes.
    pub presend_blocks_in: AtomicU64,
    /// Schedule entries recorded at this node (as home).
    pub sched_records: AtomicU64,
    /// Faulting accesses that found the block already installed by a
    /// pre-send earlier in the same phase — should stay 0; a diagnostic.
    pub presend_races: AtomicU64,
}

impl NodeStats {
    /// Increment a counter by 1.
    #[inline]
    pub fn bump(c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            reads: g(&self.reads),
            writes: g(&self.writes),
            read_misses: g(&self.read_misses),
            write_misses: g(&self.write_misses),
            slow_misses: g(&self.slow_misses),
            invals_in: g(&self.invals_in),
            recalls_in: g(&self.recalls_in),
            msgs_out: g(&self.msgs_out),
            presend_blocks_out: g(&self.presend_blocks_out),
            presend_msgs_out: g(&self.presend_msgs_out),
            presend_bytes_out: g(&self.presend_bytes_out),
            presend_blocks_in: g(&self.presend_blocks_in),
            sched_records: g(&self.sched_records),
            presend_races: g(&self.presend_races),
        }
    }
}

/// Plain-value copy of [`NodeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on NodeStats
pub struct StatsSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub read_misses: u64,
    pub write_misses: u64,
    pub slow_misses: u64,
    pub invals_in: u64,
    pub recalls_in: u64,
    pub msgs_out: u64,
    pub presend_blocks_out: u64,
    pub presend_msgs_out: u64,
    pub presend_bytes_out: u64,
    pub presend_blocks_in: u64,
    pub sched_records: u64,
    pub presend_races: u64,
}

impl StatsSnapshot {
    /// Total misses (read + write).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of accesses satisfied locally (the quantity the predictive
    /// protocol raises — abstract's "number of shared-data requests
    /// satisfied locally").
    pub fn local_fraction(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            1.0 - self.misses() as f64 / self.accesses() as f64
        }
    }

    /// Element-wise sum, for machine-wide totals.
    pub fn merge(&self, o: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads + o.reads,
            writes: self.writes + o.writes,
            read_misses: self.read_misses + o.read_misses,
            write_misses: self.write_misses + o.write_misses,
            slow_misses: self.slow_misses + o.slow_misses,
            invals_in: self.invals_in + o.invals_in,
            recalls_in: self.recalls_in + o.recalls_in,
            msgs_out: self.msgs_out + o.msgs_out,
            presend_blocks_out: self.presend_blocks_out + o.presend_blocks_out,
            presend_msgs_out: self.presend_msgs_out + o.presend_msgs_out,
            presend_bytes_out: self.presend_bytes_out + o.presend_bytes_out,
            presend_blocks_in: self.presend_blocks_in + o.presend_blocks_in,
            sched_records: self.sched_records + o.sched_records,
            presend_races: self.presend_races + o.presend_races,
        }
    }
}

/// Virtual-time breakdown of one node's execution, mirroring the paper's
/// stacked bars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeBreakdown {
    /// Computation: arithmetic plus local (hit) shared-memory accesses.
    pub compute_ns: u64,
    /// Time blocked waiting for non-local memory accesses ("Remote data
    /// wait" in the figures).
    pub wait_ns: u64,
    /// Time spent in the pre-send phase of the predictive protocol.
    pub presend_ns: u64,
    /// Time stalled at barriers waiting for other nodes.
    pub synch_ns: u64,
}

impl TimeBreakdown {
    /// Total virtual time.
    pub fn total_ns(&self) -> u64 {
        self.compute_ns + self.wait_ns + self.presend_ns + self.synch_ns
    }

    /// The paper's third bar segment: compute and synchronization combined.
    pub fn compute_synch_ns(&self) -> u64 {
        self.compute_ns + self.synch_ns
    }

    /// Element-wise sum.
    pub fn merge(&self, o: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute_ns: self.compute_ns + o.compute_ns,
            wait_ns: self.wait_ns + o.wait_ns,
            presend_ns: self.presend_ns + o.presend_ns,
            synch_ns: self.synch_ns + o.synch_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let s = NodeStats::default();
        NodeStats::bump(&s.reads);
        NodeStats::bump(&s.reads);
        NodeStats::bump(&s.read_misses);
        NodeStats::add(&s.msgs_out, 5);
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.misses(), 1);
        assert_eq!(snap.msgs_out, 5);
        let twice = snap.merge(&snap);
        assert_eq!(twice.reads, 4);
        assert_eq!(twice.msgs_out, 10);
    }

    #[test]
    fn local_fraction() {
        let mut snap = StatsSnapshot::default();
        assert_eq!(snap.local_fraction(), 1.0);
        snap.reads = 10;
        snap.read_misses = 2;
        assert!((snap.local_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn breakdown_totals() {
        let t = TimeBreakdown { compute_ns: 10, wait_ns: 20, presend_ns: 5, synch_ns: 7 };
        assert_eq!(t.total_ns(), 42);
        assert_eq!(t.compute_synch_ns(), 17);
        assert_eq!(t.merge(&t).total_ns(), 84);
    }
}
