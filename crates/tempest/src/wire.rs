//! Wire encoding for the socket transport: length-prefixed frames
//! carrying [`WireBatch`]es between processes.
//!
//! The in-process backends move batches by pointer; the socket backend
//! (see [`crate::socket`]) must serialize them. The encoding is a small
//! hand-rolled little-endian format rather than an external serializer so
//! the fabric stays dependency-free and the frame layout is a documented
//! part of the transport contract:
//!
//! ```text
//! frame   := len:u32  body           (len = body length in bytes)
//! body    := dst:u16  src:u16  id:u64  count:u32  msg*count
//! ```
//!
//! `count == 1` decodes to the [`WirePayload::One`] singleton fast path,
//! so an encode/decode round trip preserves not just the envelope
//! sequence but the allocation behavior of the receive path. Message
//! payloads implement [`WireCodec`]; Tempest itself stays generic and the
//! protocol crate provides the codec for its own vocabulary.
//!
//! A tiny rendezvous handshake (see [`write_hello`] / [`read_hello`])
//! opens every connection: magic, format version, machine size, and the
//! node range the peer hosts, so two half-machines can refuse to pair
//! with a mismatched partner before any protocol traffic flows.

use std::io::{self, Read, Write};

use crate::fabric::{WireBatch, WirePayload};
use crate::NodeId;

/// Hard upper bound on a frame body, as a corruption guard: a mangled
/// length prefix fails fast instead of attempting a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// First bytes of every connection: "PReScient Wire".
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"PRSW";

/// Bumped whenever the frame or message encoding changes shape.
pub const HANDSHAKE_VERSION: u16 = 1;

/// Decode-side failure. Encoding is infallible; decoding faces a byte
/// stream that may be truncated, trailing, or corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// The buffer held this many bytes beyond the decoded value.
    Trailing(usize),
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Which encoded type rejected the tag.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length field exceeded [`MAX_FRAME`].
    Oversize(usize),
    /// A frame claimed zero envelopes (a wire batch is never empty).
    EmptyBatch,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire data truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after decoded value"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag byte {tag:#04x}"),
            WireError::Oversize(n) => write!(f, "length field {n} exceeds frame cap"),
            WireError::EmptyBatch => write!(f, "frame claims an empty wire batch"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A type that can cross the socket transport. Implementations must
/// round-trip: `decode(encode(m)) == m` for every reachable value.
pub trait WireCodec: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `d`.
    fn decode(d: &mut WireDecoder<'_>) -> Result<Self, WireError>;
}

/// Cursor over a received byte buffer.
#[derive(Debug)]
pub struct WireDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireDecoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> WireDecoder<'a> {
        WireDecoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Next byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    /// Next little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    /// Next little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    /// Next `u32`-length-prefixed byte string (the [`put_blob`] inverse).
    pub fn take_blob(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.take_u32()? as usize;
        if n > MAX_FRAME {
            return Err(WireError::Oversize(n));
        }
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Require full consumption — a decoded value that leaves bytes
    /// behind means the two sides disagree on the encoding.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u32`-length-prefixed byte string.
pub fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Encode one frame (length prefix included) into a fresh buffer.
pub fn encode_frame<M: WireCodec>(dst: NodeId, batch: &WireBatch<M>) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&[0u8; 4]); // length prefix, patched below
    put_u16(&mut out, dst);
    put_u16(&mut out, batch.src);
    put_u64(&mut out, batch.id);
    match &batch.msgs {
        WirePayload::One(m) => {
            put_u32(&mut out, 1);
            m.encode(&mut out);
        }
        WirePayload::Many(v) => {
            put_u32(&mut out, v.len() as u32);
            for m in v {
                m.encode(&mut out);
            }
        }
    }
    let body_len = out.len() - 4;
    if body_len > MAX_FRAME {
        return Err(WireError::Oversize(body_len).into());
    }
    out[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    Ok(out)
}

/// Write one frame to `w` (no flush — the caller owns buffering policy).
pub fn write_frame<M: WireCodec, W: Write>(
    w: &mut W,
    dst: NodeId,
    batch: &WireBatch<M>,
) -> io::Result<()> {
    w.write_all(&encode_frame(dst, batch)?)
}

/// Parse one frame body (the bytes after the length prefix).
pub fn decode_frame_body<M: WireCodec>(body: &[u8]) -> Result<(NodeId, WireBatch<M>), WireError> {
    let mut d = WireDecoder::new(body);
    let dst = d.take_u16()?;
    let src = d.take_u16()?;
    let id = d.take_u64()?;
    let count = d.take_u32()? as usize;
    if count == 0 {
        return Err(WireError::EmptyBatch);
    }
    let msgs = if count == 1 {
        WirePayload::One(M::decode(&mut d)?)
    } else {
        let mut v = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            v.push(M::decode(&mut d)?);
        }
        WirePayload::Many(v)
    };
    d.finish()?;
    Ok((dst, WireBatch { src, id, msgs }))
}

/// Read one frame from `r`. `Ok(None)` is a clean end of stream (the
/// peer shut the connection down between frames); EOF inside a frame is
/// an error.
pub fn read_frame<M: WireCodec, R: Read>(r: &mut R) -> io::Result<Option<(NodeId, WireBatch<M>)>> {
    let mut lenb = [0u8; 4];
    if !read_exact_or_eof(r, &mut lenb)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(lenb) as usize;
    if !(16..=MAX_FRAME).contains(&len) {
        return Err(WireError::Oversize(len).into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(decode_frame_body(&body)?))
}

/// Like `read_exact`, but a clean EOF before the first byte returns
/// `Ok(false)` instead of an error.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "mid-frame EOF")),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Send the rendezvous hello: who we are and which nodes we host.
pub fn write_hello<W: Write>(w: &mut W, total: u16, start: u16, len: u16) -> io::Result<()> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&HANDSHAKE_MAGIC);
    put_u16(&mut out, HANDSHAKE_VERSION);
    put_u16(&mut out, total);
    put_u16(&mut out, start);
    put_u16(&mut out, len);
    w.write_all(&out)?;
    w.flush()
}

/// Receive and validate the peer's hello; returns `(total, start, len)`.
pub fn read_hello<R: Read>(r: &mut R) -> io::Result<(u16, u16, u16)> {
    let mut buf = [0u8; 12];
    r.read_exact(&mut buf)?;
    if buf[..4] != HANDSHAKE_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad rendezvous magic"));
    }
    let mut d = WireDecoder::new(&buf[4..]);
    let version = d.take_u16().map_err(io::Error::from)?;
    if version != HANDSHAKE_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wire version mismatch: peer {version}, ours {HANDSHAKE_VERSION}"),
        ));
    }
    let total = d.take_u16().map_err(io::Error::from)?;
    let start = d.take_u16().map_err(io::Error::from)?;
    let len = d.take_u16().map_err(io::Error::from)?;
    Ok((total, start, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    impl WireCodec for u64 {
        fn encode(&self, out: &mut Vec<u8>) {
            put_u64(out, *self);
        }
        fn decode(d: &mut WireDecoder<'_>) -> Result<u64, WireError> {
            d.take_u64()
        }
    }

    fn roundtrip(batch: &WireBatch<u64>) -> (NodeId, WireBatch<u64>) {
        let bytes = encode_frame(3, batch).unwrap();
        let mut r = std::io::Cursor::new(bytes);
        read_frame::<u64, _>(&mut r).unwrap().unwrap()
    }

    #[test]
    fn frame_roundtrip_singleton_stays_singleton() {
        let b = WireBatch { src: 7, id: 99, msgs: WirePayload::One(0xDEAD_BEEF) };
        let (dst, got) = roundtrip(&b);
        assert_eq!(dst, 3);
        assert_eq!((got.src, got.id), (7, 99));
        assert!(matches!(got.msgs, WirePayload::One(0xDEAD_BEEF)));
    }

    #[test]
    fn frame_roundtrip_many_preserves_order() {
        let b = WireBatch { src: 1, id: 5, msgs: WirePayload::Many((0..100).collect()) };
        let (_, got) = roundtrip(&b);
        match got.msgs {
            WirePayload::Many(v) => assert_eq!(v, (0..100).collect::<Vec<u64>>()),
            WirePayload::One(_) => panic!("100 envelopes decoded as a singleton"),
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let b = WireBatch { src: 0, id: 0, msgs: WirePayload::One(1u64) };
        let bytes = encode_frame(1, &b).unwrap();
        let mut empty = std::io::Cursor::new(&[][..]);
        assert!(read_frame::<u64, _>(&mut empty).unwrap().is_none());
        let mut cut = std::io::Cursor::new(&bytes[..bytes.len() - 3]);
        assert!(read_frame::<u64, _>(&mut cut).is_err());
    }

    #[test]
    fn corrupt_length_and_empty_batch_rejected() {
        let mut giant = Vec::new();
        put_u32(&mut giant, (MAX_FRAME + 1) as u32);
        giant.extend_from_slice(&[0u8; 32]);
        assert!(read_frame::<u64, _>(&mut std::io::Cursor::new(giant)).is_err());

        let mut body = Vec::new();
        put_u16(&mut body, 0);
        put_u16(&mut body, 0);
        put_u64(&mut body, 0);
        put_u32(&mut body, 0); // zero envelopes
        assert_eq!(decode_frame_body::<u64>(&body), Err(WireError::EmptyBatch));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let b = WireBatch { src: 0, id: 0, msgs: WirePayload::One(1u64) };
        let mut bytes = encode_frame(0, &b).unwrap();
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap());
        bytes[..4].copy_from_slice(&(len + 1).to_le_bytes());
        bytes.push(0xFF);
        assert!(read_frame::<u64, _>(&mut std::io::Cursor::new(bytes)).is_err());
    }

    #[test]
    fn hello_roundtrip_and_magic_check() {
        let mut buf = Vec::new();
        write_hello(&mut buf, 8, 4, 4).unwrap();
        assert_eq!(read_hello(&mut std::io::Cursor::new(&buf)).unwrap(), (8, 4, 4));
        buf[0] ^= 0xFF;
        assert!(read_hello(&mut std::io::Cursor::new(&buf)).is_err());
    }
}
