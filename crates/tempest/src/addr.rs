//! Global addresses and cache-block identifiers.
//!
//! The shared address space is a flat 64-bit space. It is carved into
//! fixed-size *cache blocks* — the granularity at which Tempest performs
//! access control and at which the coherence protocols move data. The paper
//! evaluates block sizes between 32 and 1024 bytes; [`crate::layout`] decides
//! which node is each block's *home*.

use std::fmt;

/// A global (shared) address.
///
/// All shared data — aggregate elements, tree nodes, molecule records — is
/// named by a `GAddr`. Local, private data never enters this space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GAddr(pub u64);

impl GAddr {
    /// The null address. Address 0 is never allocated, so `GAddr::NULL`
    /// serves as the "no pointer" sentinel in shared data structures
    /// (e.g. absent quad-tree or oct-tree children).
    pub const NULL: GAddr = GAddr(0);

    /// Returns `true` if this is the null sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The block containing this address, for a given block size.
    ///
    /// `block_size` must be a power of two.
    #[inline]
    pub fn block(self, block_size: usize) -> BlockId {
        debug_assert!(block_size.is_power_of_two());
        BlockId(self.0 >> block_size.trailing_zeros())
    }

    /// Byte offset of this address within its block.
    #[inline]
    pub fn offset_in_block(self, block_size: usize) -> usize {
        debug_assert!(block_size.is_power_of_two());
        (self.0 & (block_size as u64 - 1)) as usize
    }

    /// The address `bytes` past this one.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> GAddr {
        GAddr(self.0 + bytes)
    }
}

impl fmt::Debug for GAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{:#x}", self.0)
    }
}

/// Identifies one cache block: the block *number* (`address / block_size`).
///
/// A `BlockId` is only meaningful together with the machine's block size,
/// which is fixed for the lifetime of a machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The first address covered by this block.
    #[inline]
    pub fn base(self, block_size: usize) -> GAddr {
        GAddr(self.0 << block_size.trailing_zeros())
    }

    /// The block immediately after this one in the address space.
    ///
    /// Consecutive blocks matter to the predictive protocol, which coalesces
    /// runs of neighboring blocks into single bulk messages (§3.4).
    #[inline]
    pub fn next(self) -> BlockId {
        BlockId(self.0 + 1)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address() {
        let a = GAddr(0x1000);
        assert_eq!(a.block(32), BlockId(0x1000 / 32));
        assert_eq!(a.block(1024), BlockId(4));
        assert_eq!(a.offset_in_block(32), 0);
        assert_eq!(GAddr(0x1007).offset_in_block(32), 7);
    }

    #[test]
    fn block_base_roundtrip() {
        for bs in [32usize, 64, 128, 256, 512, 1024] {
            let a = GAddr(123456);
            let b = a.block(bs);
            let base = b.base(bs);
            assert!(base.0 <= a.0 && a.0 < base.0 + bs as u64);
            assert_eq!(base.offset_in_block(bs), 0);
        }
    }

    #[test]
    fn null_sentinel() {
        assert!(GAddr::NULL.is_null());
        assert!(!GAddr(8).is_null());
    }

    #[test]
    fn neighboring_blocks() {
        assert_eq!(BlockId(7).next(), BlockId(8));
    }

    #[test]
    fn add_advances() {
        assert_eq!(GAddr(16).add(16), GAddr(32));
    }
}
