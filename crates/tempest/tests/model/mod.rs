//! Reference model for [`NodeMem`]: the seed implementation's
//! `HashMap<BlockId, LocalBlock>` semantics, kept as an executable oracle.
//! The flat segment-indexed paged arena must be observationally equivalent
//! to this model under any access sequence.
//!
//! Shared by the seeded twin (`mem_model.rs`) and the proptest driver
//! (`proptest_mem.rs`).

use std::collections::HashMap;

use prescient_tempest::tag::Access;
use prescient_tempest::{BlockId, Fault, GAddr, GlobalLayout, MemError, NodeId, NodeMem, Tag};

/// One operation against both stores.
#[derive(Debug, Clone)]
pub enum Op {
    /// Protocol installs a copy: `(block, fill seed, tag, pre-send?)`.
    Install(BlockId, u8, Tag, bool),
    /// Protocol retags a copy (grant/downgrade/invalidate).
    SetTag(BlockId, Tag),
    /// Compute-thread load: `(block, offset, length)`.
    Read(BlockId, usize, usize),
    /// Compute-thread store: `(block, offset, length, fill seed)`.
    Write(BlockId, usize, usize, u8),
    /// Protocol snapshots the block for a data reply.
    Snapshot(BlockId),
    /// Recall/invalidate clears the unread-pre-send bit.
    ClearUnused(BlockId),
}

/// The fill pattern `Install`/`Write` use, distinct per seed and offset.
pub fn pattern(seed: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| seed.wrapping_mul(31).wrapping_add(i as u8)).collect()
}

struct Entry {
    data: Vec<u8>,
    tag: Tag,
    unused: bool,
}

/// The seed store: a hash map from block id to a boxed block.
pub struct RefStore {
    layout: GlobalLayout,
    me: NodeId,
    map: HashMap<BlockId, Entry>,
}

impl RefStore {
    pub fn new(layout: GlobalLayout, me: NodeId) -> RefStore {
        RefStore { layout, me, map: HashMap::new() }
    }

    fn is_home(&self, block: BlockId) -> bool {
        self.layout.home_of_block(block) == self.me
    }

    fn materialize(&mut self, block: BlockId) -> &mut Entry {
        let home = self.is_home(block);
        let bs = self.layout.block_size;
        self.map.entry(block).or_insert_with(|| Entry {
            data: vec![0u8; bs],
            tag: if home { Tag::ReadWrite } else { Tag::Invalid },
            unused: false,
        })
    }

    pub fn probe(&self, block: BlockId) -> Tag {
        match self.map.get(&block) {
            Some(e) => e.tag,
            None if self.is_home(block) => Tag::ReadWrite,
            None => Tag::Invalid,
        }
    }

    pub fn install(&mut self, block: BlockId, data: &[u8], tag: Tag, presend: bool) -> bool {
        let e = self.materialize(block);
        let wasted = e.unused;
        e.data.copy_from_slice(data);
        e.tag = tag;
        e.unused = presend;
        wasted
    }

    pub fn set_tag(&mut self, block: BlockId, tag: Tag) {
        // Tag only: the unread-pre-send bit survives a retag (a granted
        // upgrade does not mean the pre-sent data was read).
        self.materialize(block).tag = tag;
    }

    pub fn read_in_block(&mut self, addr: GAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let bs = self.layout.block_size;
        let block = addr.block(bs);
        let off = addr.offset_in_block(bs);
        if off + buf.len() > bs {
            return Err(MemError::CrossesBoundary { addr, len: buf.len() });
        }
        let observed = self.probe(block);
        if !observed.readable() {
            return Err(Fault { block, access: Access::Read, observed }.into());
        }
        let e = self.materialize(block);
        e.unused = false;
        buf.copy_from_slice(&e.data[off..off + buf.len()]);
        Ok(())
    }

    pub fn write_in_block(&mut self, addr: GAddr, bytes: &[u8]) -> Result<(), MemError> {
        let bs = self.layout.block_size;
        let block = addr.block(bs);
        let off = addr.offset_in_block(bs);
        if off + bytes.len() > bs {
            return Err(MemError::CrossesBoundary { addr, len: bytes.len() });
        }
        let observed = self.probe(block);
        if !observed.writable() {
            return Err(Fault { block, access: Access::Write, observed }.into());
        }
        let e = self.materialize(block);
        e.unused = false;
        e.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    pub fn snapshot(&self, block: BlockId) -> Vec<u8> {
        match self.map.get(&block) {
            Some(e) => e.data.clone(),
            None => vec![0u8; self.layout.block_size],
        }
    }

    pub fn presend_unused(&self, block: BlockId) -> bool {
        self.map.get(&block).is_some_and(|e| e.unused)
    }

    pub fn clear_presend_unused(&mut self, block: BlockId) {
        if let Some(e) = self.map.get_mut(&block) {
            e.unused = false;
        }
    }

    pub fn resident_blocks(&self) -> usize {
        self.map.len()
    }

    pub fn unused_presends(&self) -> usize {
        self.map.values().filter(|e| e.unused).count()
    }

    pub fn blocks(&self) -> Vec<(BlockId, Tag)> {
        let mut v: Vec<_> = self.map.iter().map(|(b, e)| (*b, e.tag)).collect();
        v.sort_by_key(|(b, _)| *b);
        v
    }
}

/// Apply `op` to both stores and check every observable agrees.
pub fn apply_and_check(mem: &mut NodeMem, model: &mut RefStore, op: &Op) {
    let bs = mem.layout().block_size;
    match *op {
        Op::Install(block, seed, tag, presend) => {
            let data = pattern(seed, bs);
            let wasted_mem = mem.install(block, &data, tag, presend);
            let wasted_model = model.install(block, &data, tag, presend);
            assert_eq!(wasted_mem, wasted_model, "useless-pre-send signal diverged at {block:?}");
        }
        Op::SetTag(block, tag) => {
            mem.set_tag(block, tag);
            model.set_tag(block, tag);
        }
        Op::Read(block, off, len) => {
            let addr = GAddr(block.0 * bs as u64 + off as u64);
            let mut got = vec![0u8; len];
            let mut want = vec![0u8; len];
            let rm = mem.read_in_block(addr, &mut got);
            let rr = model.read_in_block(addr, &mut want);
            assert_eq!(rm, rr, "read outcome diverged at {addr:?}+{len}");
            if rm.is_ok() {
                assert_eq!(got, want, "read bytes diverged at {addr:?}+{len}");
            }
        }
        Op::Write(block, off, len, seed) => {
            let addr = GAddr(block.0 * bs as u64 + off as u64);
            let bytes = pattern(seed, len);
            let rm = mem.write_in_block(addr, &bytes);
            let rr = model.write_in_block(addr, &bytes);
            assert_eq!(rm, rr, "write outcome diverged at {addr:?}+{len}");
        }
        Op::Snapshot(block) => {
            let snap = mem.snapshot(block);
            assert_eq!(&snap[..], &model.snapshot(block)[..], "snapshot diverged at {block:?}");
        }
        Op::ClearUnused(block) => {
            mem.clear_presend_unused(block);
            model.clear_presend_unused(block);
        }
    }
    // Observables that must agree after every single step.
    let probed = match *op {
        Op::Install(b, ..)
        | Op::SetTag(b, _)
        | Op::Read(b, ..)
        | Op::Write(b, ..)
        | Op::Snapshot(b)
        | Op::ClearUnused(b) => b,
    };
    assert_eq!(mem.probe(probed), model.probe(probed), "probe diverged at {probed:?}");
    assert_eq!(
        mem.presend_unused(probed),
        model.presend_unused(probed),
        "unread-pre-send bit diverged at {probed:?}"
    );
    assert_eq!(mem.resident_blocks(), model.resident_blocks(), "residency diverged");
    assert_eq!(mem.unused_presends(), model.unused_presends(), "unused count diverged");
}

/// Final whole-store comparison: the dense iteration must enumerate exactly
/// the model's blocks with matching tags and bytes.
pub fn check_final(mem: &NodeMem, model: &RefStore) {
    let mut got: Vec<(BlockId, Tag)> = mem.iter_blocks().collect();
    got.sort_by_key(|(b, _)| *b);
    assert_eq!(got, model.blocks(), "materialized block enumeration diverged");
    for (block, _) in got {
        assert_eq!(
            mem.data(block).unwrap(),
            &model.snapshot(block)[..],
            "stored bytes diverged at {block:?}"
        );
    }
}
