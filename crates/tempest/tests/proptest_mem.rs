//! Property-based observational equivalence: the flat segment-indexed paged
//! arena behind [`NodeMem`] behaves exactly like the seed implementation's
//! `HashMap<BlockId, LocalBlock>` store (`model::RefStore`) under arbitrary
//! access sequences — same tags, same bytes, same fault/boundary errors,
//! same useless-pre-send signals, same residency accounting.
//!
//! The deterministic seeded twin lives in `mem_model.rs`; this driver lets
//! proptest explore and shrink op sequences.

mod model;

use model::{apply_and_check, check_final, Op, RefStore};
use prescient_tempest::{BlockId, GlobalLayout, NodeMem, Tag};
use proptest::prelude::*;

/// Blocks per heap segment for 32-byte blocks (`NODE_HEAP_BYTES / 32`).
const BLOCKS_PER_SEG: u64 = (1u64 << 32) / 32;

/// A block in one of the 4 node segments, with slot indices clustered
/// around arena page boundaries (pages hold 256 blocks).
fn block_strategy() -> impl Strategy<Value = BlockId> {
    let offset = prop_oneof![
        Just(0u64),
        Just(1),
        Just(2),
        Just(127),
        Just(255),
        Just(256),
        Just(257),
        Just(300),
        Just(511),
        Just(512),
    ];
    (0u64..4, offset).prop_map(|(seg, off)| BlockId(seg * BLOCKS_PER_SEG + off))
}

fn tag_strategy() -> impl Strategy<Value = Tag> {
    prop_oneof![Just(Tag::Invalid), Just(Tag::ReadOnly), Just(Tag::ReadWrite)]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (block_strategy(), any::<u8>(), tag_strategy(), any::<bool>())
            .prop_map(|(b, s, t, p)| Op::Install(b, s, t, p)),
        1 => (block_strategy(), tag_strategy()).prop_map(|(b, t)| Op::SetTag(b, t)),
        // Lengths beyond the 32-byte block exercise the boundary-crossing
        // error path on both sides.
        3 => (block_strategy(), 0usize..32, 1usize..40).prop_map(|(b, o, l)| Op::Read(b, o, l)),
        2 => (block_strategy(), 0usize..32, 1usize..40, any::<u8>())
            .prop_map(|(b, o, l, s)| Op::Write(b, o, l, s)),
        1 => block_strategy().prop_map(Op::Snapshot),
        1 => block_strategy().prop_map(Op::ClearUnused),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every observable of the arena matches the HashMap reference model
    /// after every step of a random op sequence, and the final dense
    /// enumeration matches block-for-block.
    #[test]
    fn flat_arena_is_observationally_equivalent_to_hashmap_store(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let layout = GlobalLayout::new(4, 32);
        let mut mem = NodeMem::new(layout, 1);
        let mut model = RefStore::new(layout, 1);
        for op in &ops {
            apply_and_check(&mut mem, &mut model, op);
        }
        check_final(&mem, &model);
    }
}
