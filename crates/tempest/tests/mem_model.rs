//! Seeded observational-equivalence torture: the flat paged arena vs the
//! seed's `HashMap` block store (`model::RefStore`) under long pseudo-random
//! access sequences.
//!
//! This is the deterministic twin of `proptest_mem.rs` — same oracle, fixed
//! seeds, no external crates — so the equivalence claim is exercised even
//! where the proptest harness is unavailable.

mod model;

use model::{apply_and_check, check_final, Op, RefStore};
use prescient_tempest::{BlockId, GlobalLayout, NodeMem, Tag};

/// xorshift64*: tiny, deterministic, good enough to mix op choices.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Block pool: several blocks in every node's heap segment, with slot
/// indices straddling arena page boundaries (pages hold 256 blocks).
fn block_pool(layout: GlobalLayout) -> Vec<BlockId> {
    let blocks_per_seg = (1u64 << 32) / layout.block_size as u64;
    let offsets = [0u64, 1, 2, 127, 255, 256, 257, 300, 511, 512];
    (0..layout.nodes as u64)
        .flat_map(|seg| offsets.iter().map(move |o| BlockId(seg * blocks_per_seg + o)))
        .collect()
}

fn random_op(rng: &mut Rng, pool: &[BlockId], bs: usize) -> Op {
    let block = pool[rng.below(pool.len() as u64) as usize];
    let tag = match rng.below(3) {
        0 => Tag::Invalid,
        1 => Tag::ReadOnly,
        _ => Tag::ReadWrite,
    };
    match rng.below(10) {
        0..=1 => Op::Install(block, rng.next() as u8, tag, rng.below(2) == 0),
        2 => Op::SetTag(block, tag),
        // Lengths beyond the block size exercise the boundary-crossing
        // error path on both sides.
        3..=5 => Op::Read(block, rng.below(bs as u64) as usize, 1 + rng.below(40) as usize),
        6..=7 => Op::Write(
            block,
            rng.below(bs as u64) as usize,
            1 + rng.below(40) as usize,
            rng.next() as u8,
        ),
        8 => Op::Snapshot(block),
        _ => Op::ClearUnused(block),
    }
}

#[test]
fn arena_matches_hashmap_model_under_seeded_torture() {
    let layout = GlobalLayout::new(4, 32);
    let pool = block_pool(layout);
    for seed in [0xDEAD_BEEFu64, 0x5EED_0001, 0x5EED_0002, 0xFACE_FEED] {
        let mut rng = Rng(seed);
        let mut mem = NodeMem::new(layout, 1);
        let mut model = RefStore::new(layout, 1);
        for _ in 0..4000 {
            let op = random_op(&mut rng, &pool, layout.block_size);
            apply_and_check(&mut mem, &mut model, &op);
        }
        check_final(&mem, &model);
    }
}

/// Same torture at a different block size (page geometry shifts: 64-byte
/// blocks halve the blocks-per-segment count and move every boundary).
#[test]
fn arena_matches_hashmap_model_64b_blocks() {
    let layout = GlobalLayout::new(3, 64);
    let pool = block_pool(layout);
    let mut rng = Rng(0xB10C_64B1_0C64_B10C);
    let mut mem = NodeMem::new(layout, 0);
    let mut model = RefStore::new(layout, 0);
    for _ in 0..4000 {
        let op = random_op(&mut rng, &pool, layout.block_size);
        apply_and_check(&mut mem, &mut model, &op);
    }
    check_final(&mem, &model);
}
