//! Property tests for the substrate primitives: NodeSet vs a model set,
//! address/block math, allocator invariants, and Prim roundtrips.

use std::collections::BTreeSet;

use prescient_tempest::{
    BatchConfig, Fabric, FaultPlan, GAddr, GlobalLayout, NodeMem, NodeSet, Prim, TryRecv,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn nodeset_matches_btreeset_model(ops in proptest::collection::vec((0u16..64, any::<bool>()), 0..200)) {
        let mut s = NodeSet::EMPTY;
        let mut model = BTreeSet::new();
        for (n, insert) in ops {
            if insert {
                s.insert(n);
                model.insert(n);
            } else {
                s.remove(n);
                model.remove(&n);
            }
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.is_empty(), model.is_empty());
        }
        let collected: Vec<u16> = s.iter().collect();
        let expected: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(collected, expected, "iteration ascending and complete");
    }

    #[test]
    fn nodeset_algebra_matches_model(
        a in proptest::collection::btree_set(0u16..64, 0..32),
        b in proptest::collection::btree_set(0u16..64, 0..32),
    ) {
        let sa: NodeSet = a.iter().copied().collect();
        let sb: NodeSet = b.iter().copied().collect();
        let union: BTreeSet<u16> = a.union(&b).copied().collect();
        let inter: BTreeSet<u16> = a.intersection(&b).copied().collect();
        let minus: BTreeSet<u16> = a.difference(&b).copied().collect();
        prop_assert_eq!(sa.union(sb).iter().collect::<BTreeSet<_>>(), union);
        prop_assert_eq!(sa.intersect(sb).iter().collect::<BTreeSet<_>>(), inter);
        prop_assert_eq!(sa.minus(sb).iter().collect::<BTreeSet<_>>(), minus);
    }

    #[test]
    fn block_math_consistent(
        addr in 1u64..(1 << 40),
        shift in 3u32..11, // block sizes 8..1024
    ) {
        let bs = 1usize << shift;
        let a = GAddr(addr);
        let b = a.block(bs);
        let base = b.base(bs);
        prop_assert!(base.0 <= a.0);
        prop_assert!(a.0 < base.0 + bs as u64);
        prop_assert_eq!(base.offset_in_block(bs), 0);
        prop_assert_eq!(a.offset_in_block(bs) as u64, a.0 - base.0);
        // Neighboring block bases differ by exactly the block size.
        prop_assert_eq!(b.next().base(bs).0, base.0 + bs as u64);
    }

    #[test]
    fn allocator_never_overlaps_or_straddles(
        sizes in proptest::collection::vec((1u64..100, 0u32..4), 1..40),
        shift in 5u32..9,
    ) {
        let bs = 1usize << shift;
        let layout = GlobalLayout::new(3, bs);
        let mut mem = NodeMem::new(layout, 1);
        let mut regions: Vec<(u64, u64)> = Vec::new();
        for (bytes, align_pow) in sizes {
            let align = 1u64 << align_pow;
            let a = mem.alloc(bytes, align);
            prop_assert_eq!(a.0 % align, 0, "alignment respected");
            prop_assert_eq!(layout.home_of(a), 1, "allocation homed locally");
            // Small allocations never straddle a block boundary.
            if bytes as usize <= bs {
                let end = a.0 + bytes - 1;
                prop_assert_eq!(a.block(bs), GAddr(end).block(bs), "no straddle");
            }
            for &(s, e) in &regions {
                prop_assert!(a.0 + bytes <= s || a.0 >= e, "no overlap");
            }
            regions.push((a.0, a.0 + bytes));
        }
    }

    #[test]
    fn prim_f64_roundtrip(v in any::<f64>()) {
        let mut buf = [0u8; 8];
        v.store(&mut buf);
        let back = f64::load(&buf);
        // NaN-safe comparison via bits.
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn prim_u64_i64_roundtrip(v in any::<u64>(), w in any::<i64>()) {
        let mut buf = [0u8; 8];
        v.store(&mut buf);
        prop_assert_eq!(u64::load(&buf), v);
        w.store(&mut buf);
        prop_assert_eq!(i64::load(&buf), w);
    }

    /// A batched faulty fabric in FIFO-preserving mode keeps per-link
    /// order (after collapsing back-to-back duplicates, survivors are
    /// strictly ascending), delivers only messages that were sent, and —
    /// because fault fates are drawn per-envelope at flush time — the
    /// per-link survivor sequence is bit-identical to an unbatched
    /// (`max_batch = 1`) fabric with the same seed and send sequence.
    #[test]
    fn batched_faulty_fabric_keeps_per_link_fifo(
        seed in any::<u64>(),
        batch in 1usize..=64,
        delay_pm in 0u16..300,
        dup_pm in 0u16..200,
        drop_pm in 0u16..150,
        count in 1u64..160,
    ) {
        let plan = FaultPlan::new(seed)
            .delaying(delay_pm, 4)
            .duplicating(dup_pm)
            .dropping(drop_pm);
        // Two sources fan in to one destination; the payload tags the
        // source so each link's stream can be recovered at the receiver.
        let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
        for max in [1usize, batch] {
            let (eps, _stats) = Fabric::new_faulty_with::<u64>(3, plan, BatchConfig::new(max));
            for seq in 0..count {
                eps[0].net().send(2, seq);
                eps[1].net().send(2, (1 << 32) | seq);
            }
            eps[0].net().flush_all();
            eps[1].net().flush_all();
            let mut per_src = vec![Vec::new(), Vec::new()];
            while let TryRecv::Msg(env) = eps[2].try_recv() {
                per_src[(env.msg >> 32) as usize].push(env.msg & 0xffff_ffff);
            }
            for stream in &mut per_src {
                // Preserving mode delivers duplicates back-to-back on
                // their link, so collapsing adjacent repeats leaves the
                // surviving sends, which must still be in send order.
                stream.dedup();
                let mut sorted = stream.clone();
                sorted.sort_unstable();
                prop_assert_eq!(stream.as_slice(), sorted.as_slice(), "per-link FIFO must survive batching");
                prop_assert!(stream.iter().all(|&q| q < count), "only sent messages arrive");
            }
            runs.push(per_src);
        }
        prop_assert_eq!(&runs[0], &runs[1], "survivors must not depend on batch size");
    }
}
