//! Socket-transport encoding of the protocol vocabulary.
//!
//! Implements [`WireCodec`] for [`Msg`], so a stache machine can run on
//! the socket backend (`prescient_tempest::socket`). The encoding is
//! positional little-endian with the variant tag being the stable
//! [`Msg::kind_code`] (the same byte the trace stream uses), `Option`
//! data payloads as a presence byte plus a length-prefixed blob, and the
//! user-message block list as a count-prefixed sequence of
//! `(block, blob)` pairs.
//!
//! Two properties the backend-equivalence suite relies on:
//!
//! * **Round trip**: `decode(encode(m)) == m` for every reachable
//!   message, including empty data blobs and full [`crate::msg::UserMsg`]
//!   payloads (checked exhaustively by the unit tests below and by
//!   `proptest_wire.rs` over arbitrary payloads).
//! * **Sharing is re-established, not preserved**: `Arc` payloads are
//!   snapshotted into bytes at the sender and re-wrapped at the receiver,
//!   which is exactly the semantics a process boundary forces anyway.

use std::sync::Arc;

use prescient_tempest::wire::{
    put_blob, put_u16, put_u32, put_u64, put_u8, WireCodec, WireDecoder, WireError,
};
use prescient_tempest::{BlockId, NodeSet};

use crate::msg::{Msg, UserMsg};

fn put_opt_blob(out: &mut Vec<u8>, data: &Option<Arc<[u8]>>) {
    match data {
        None => put_u8(out, 0),
        Some(d) => {
            put_u8(out, 1);
            put_blob(out, d);
        }
    }
}

fn take_opt_blob(d: &mut WireDecoder<'_>) -> Result<Option<Arc<[u8]>>, WireError> {
    match d.take_u8()? {
        0 => Ok(None),
        1 => Ok(Some(Arc::from(d.take_blob()?))),
        tag => Err(WireError::BadTag { what: "Option<data>", tag }),
    }
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, v as u8);
}

fn take_bool(d: &mut WireDecoder<'_>) -> Result<bool, WireError> {
    match d.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(WireError::BadTag { what: "bool", tag }),
    }
}

impl WireCodec for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u8(out, self.kind_code() as u8);
        match self {
            Msg::GetShared { block, seq } | Msg::GetExcl { block, seq } => {
                put_u64(out, block.0);
                put_u64(out, *seq);
            }
            Msg::Recall { block, inval, op } => {
                put_u64(out, block.0);
                put_bool(out, *inval);
                put_u64(out, *op);
            }
            Msg::RecallData { block, data, op, unused } => {
                put_u64(out, block.0);
                put_opt_blob(out, data);
                put_u64(out, *op);
                put_bool(out, *unused);
            }
            Msg::Invalidate { block, op } => {
                put_u64(out, block.0);
                put_u64(out, *op);
            }
            Msg::InvalAck { block, op, unused } => {
                put_u64(out, block.0);
                put_u64(out, *op);
                put_bool(out, *unused);
            }
            Msg::Grant { block, excl, data, extra_hops, recorded, seq } => {
                put_u64(out, block.0);
                put_bool(out, *excl);
                put_opt_blob(out, data);
                put_u32(out, *extra_hops);
                put_bool(out, *recorded);
                put_u64(out, *seq);
            }
            Msg::User(u) => {
                put_u16(out, u.code);
                put_u64(out, u.a);
                put_u64(out, u.b);
                put_u64(out, u.block.0);
                put_u64(out, u.set.0);
                put_u16(out, u.node);
                put_u32(out, u.blocks.len() as u32);
                for (b, bytes) in u.blocks.iter() {
                    put_u64(out, b.0);
                    put_blob(out, bytes);
                }
            }
            Msg::Forward { block, new_home, excl, seq } => {
                put_u64(out, block.0);
                put_u16(out, *new_home);
                put_bool(out, *excl);
                put_u64(out, *seq);
            }
            Msg::Migrate { block, excl, owner, sharers, data, sched, op } => {
                put_u64(out, block.0);
                put_bool(out, *excl);
                put_u16(out, *owner);
                put_u64(out, sharers.0);
                put_opt_blob(out, data);
                put_u32(out, sched.len() as u32);
                for w in sched.iter() {
                    put_u64(out, *w);
                }
                put_u64(out, *op);
            }
            Msg::MigrateAck { block, op } => {
                put_u64(out, block.0);
                put_u64(out, *op);
            }
            Msg::Shutdown | Msg::Fence => {}
        }
    }

    fn decode(d: &mut WireDecoder<'_>) -> Result<Msg, WireError> {
        let tag = d.take_u8()?;
        Ok(match tag {
            1 => Msg::GetShared { block: BlockId(d.take_u64()?), seq: d.take_u64()? },
            2 => Msg::GetExcl { block: BlockId(d.take_u64()?), seq: d.take_u64()? },
            3 => Msg::Recall {
                block: BlockId(d.take_u64()?),
                inval: take_bool(d)?,
                op: d.take_u64()?,
            },
            4 => Msg::RecallData {
                block: BlockId(d.take_u64()?),
                data: take_opt_blob(d)?,
                op: d.take_u64()?,
                unused: take_bool(d)?,
            },
            5 => Msg::Invalidate { block: BlockId(d.take_u64()?), op: d.take_u64()? },
            6 => Msg::InvalAck {
                block: BlockId(d.take_u64()?),
                op: d.take_u64()?,
                unused: take_bool(d)?,
            },
            7 => Msg::Grant {
                block: BlockId(d.take_u64()?),
                excl: take_bool(d)?,
                data: take_opt_blob(d)?,
                extra_hops: d.take_u32()?,
                recorded: take_bool(d)?,
                seq: d.take_u64()?,
            },
            8 => {
                let code = d.take_u16()?;
                let a = d.take_u64()?;
                let b = d.take_u64()?;
                let block = BlockId(d.take_u64()?);
                let set = NodeSet(d.take_u64()?);
                let node = d.take_u16()?;
                let count = d.take_u32()? as usize;
                let mut blocks = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let b = BlockId(d.take_u64()?);
                    let bytes: Arc<[u8]> = Arc::from(d.take_blob()?);
                    blocks.push((b, bytes));
                }
                Msg::User(UserMsg { code, a, b, block, set, node, blocks: blocks.into() })
            }
            9 => Msg::Shutdown,
            10 => Msg::Fence,
            11 => Msg::Forward {
                block: BlockId(d.take_u64()?),
                new_home: d.take_u16()?,
                excl: take_bool(d)?,
                seq: d.take_u64()?,
            },
            12 => {
                let block = BlockId(d.take_u64()?);
                let excl = take_bool(d)?;
                let owner = d.take_u16()?;
                let sharers = NodeSet(d.take_u64()?);
                let data = take_opt_blob(d)?;
                let count = d.take_u32()? as usize;
                let mut sched = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    sched.push(d.take_u64()?);
                }
                Msg::Migrate {
                    block,
                    excl,
                    owner,
                    sharers,
                    data,
                    sched: sched.into(),
                    op: d.take_u64()?,
                }
            }
            13 => Msg::MigrateAck { block: BlockId(d.take_u64()?), op: d.take_u64()? },
            tag => return Err(WireError::BadTag { what: "Msg", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prescient_tempest::fabric::{WireBatch, WirePayload};
    use prescient_tempest::wire::{decode_frame_body, encode_frame};

    fn roundtrip(m: &Msg) -> Msg {
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let mut d = WireDecoder::new(&buf);
        let got = Msg::decode(&mut d).expect("decode");
        d.finish().expect("no trailing bytes");
        got
    }

    fn sample_msgs() -> Vec<Msg> {
        let data: Arc<[u8]> = Arc::from(&b"block-bytes-0123"[..]);
        let empty: Arc<[u8]> = Arc::from(&[][..]);
        vec![
            Msg::GetShared { block: BlockId(7), seq: 3 },
            Msg::GetExcl { block: BlockId(u64::MAX), seq: u64::MAX },
            Msg::Recall { block: BlockId(1), inval: true, op: 42 },
            Msg::Recall { block: BlockId(2), inval: false, op: 0 },
            Msg::RecallData { block: BlockId(3), data: Some(data.clone()), op: 5, unused: true },
            Msg::RecallData { block: BlockId(4), data: None, op: 6, unused: false },
            Msg::RecallData { block: BlockId(5), data: Some(empty.clone()), op: 7, unused: false },
            Msg::Invalidate { block: BlockId(8), op: 9 },
            Msg::InvalAck { block: BlockId(10), op: 11, unused: true },
            Msg::Grant {
                block: BlockId(12),
                excl: true,
                data: Some(data.clone()),
                extra_hops: 3,
                recorded: true,
                seq: 99,
            },
            Msg::Grant {
                block: BlockId(13),
                excl: false,
                data: None,
                extra_hops: 0,
                recorded: false,
                seq: 100,
            },
            Msg::User(UserMsg::simple(21, 1234)),
            Msg::User(UserMsg {
                code: 5,
                a: 1,
                b: 2,
                block: BlockId(3),
                set: NodeSet(0b1011),
                node: 63,
                blocks: vec![(BlockId(1), data.clone()), (BlockId(2), empty)].into(),
            }),
            Msg::Forward { block: BlockId(14), new_home: 3, excl: true, seq: 55 },
            Msg::Migrate {
                block: BlockId(15),
                excl: false,
                owner: 0,
                sharers: NodeSet(0b0110),
                data: Some(data.clone()),
                sched: Arc::from(&[1u64, u64::MAX, 0][..]),
                op: 8,
            },
            Msg::Migrate {
                block: BlockId(16),
                excl: true,
                owner: 2,
                sharers: NodeSet::EMPTY,
                data: None,
                sched: Arc::from(&[][..]),
                op: 9,
            },
            Msg::MigrateAck { block: BlockId(17), op: 10 },
            Msg::Shutdown,
            Msg::Fence,
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for m in sample_msgs() {
            assert_eq!(roundtrip(&m), m, "round trip must be identity for {m:?}");
        }
    }

    #[test]
    fn frames_of_msgs_roundtrip_including_singletons() {
        let msgs = sample_msgs();
        // Singleton fast path.
        let one = WireBatch { src: 2, id: 77, msgs: WirePayload::One(msgs[0].clone()) };
        let bytes = encode_frame(5, &one).unwrap();
        let (dst, got) = decode_frame_body::<Msg>(&bytes[4..]).unwrap();
        assert_eq!(dst, 5);
        assert_eq!(got, one);
        assert!(matches!(got.msgs, WirePayload::One(_)));
        // Aggregated batch.
        let many = WireBatch { src: 0, id: 1, msgs: WirePayload::Many(msgs.clone()) };
        let bytes = encode_frame(1, &many).unwrap();
        let (_, got) = decode_frame_body::<Msg>(&bytes[4..]).unwrap();
        assert_eq!(got, many);
    }

    #[test]
    fn corrupt_tag_is_rejected() {
        let mut buf = Vec::new();
        Msg::Fence.encode(&mut buf);
        buf[0] = 200;
        let mut d = WireDecoder::new(&buf);
        assert_eq!(Msg::decode(&mut d), Err(WireError::BadTag { what: "Msg", tag: 200 }));
    }

    #[test]
    fn truncated_grant_is_rejected() {
        let mut buf = Vec::new();
        Msg::Grant {
            block: BlockId(1),
            excl: true,
            data: Some(Arc::from(&b"xyz"[..])),
            extra_hops: 1,
            recorded: false,
            seq: 4,
        }
        .encode(&mut buf);
        for cut in 1..buf.len() {
            let mut d = WireDecoder::new(&buf[..cut]);
            assert!(Msg::decode(&mut d).is_err(), "prefix of {cut} bytes must not decode");
        }
    }
}
