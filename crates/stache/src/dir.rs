//! Home-node directory state.
//!
//! The home node of each block tracks who holds copies: either nobody (the
//! block is *uncached*, only home memory is current), a set of read-only
//! *sharers*, or a single remote *exclusive owner*. A handler that must wait
//! for remote action (a recall or an invalidation round) parks the entry in
//! a transient [`Busy`] state and queues later requests; handlers therefore
//! never block, which keeps the two-threads-per-node emulation deadlock-free.
//!
//! Invariants maintained by the engine:
//!
//! * `Uncached` ⇔ home tag is `ReadWrite` and no remote copies exist;
//! * `Shared(S)`, `S ≠ ∅` ⇔ home tag is `ReadOnly`, every `s ∈ S` holds (or
//!   is being sent) a `ReadOnly` copy; the home is never a member of `S`;
//! * `Exclusive(o)` ⇔ home tag is `Invalid`, `o ≠ home` holds (or is being
//!   sent) the only writable copy and home memory may be stale.

use std::collections::{HashMap, VecDeque};

use prescient_tempest::{BlockId, NodeId, NodeSet};

/// Stable directory states of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirState {
    /// No remote copies; home memory is current and writable at home.
    #[default]
    Uncached,
    /// Remote read-only copies at the given (non-empty, home-excluded) set.
    Shared(NodeSet),
    /// A single remote node holds the writable copy; home memory is stale.
    Exclusive(NodeId),
}

/// A queued coherence request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReq {
    /// Requesting node.
    pub requester: NodeId,
    /// Wants a writable copy.
    pub excl: bool,
    /// The home's hooks recorded this request (schedule building).
    pub recorded: bool,
}

/// Transient state of an in-flight multi-hop operation.
#[derive(Debug)]
pub enum Busy {
    /// Waiting for `RecallData` from the current exclusive owner; the
    /// queued request is then granted.
    Recall {
        /// Request to grant once data returns.
        req: PendingReq,
        /// Owner being recalled (for diagnostics).
        owner: NodeId,
    },
    /// Waiting for `remaining` invalidation acknowledgements; the queued
    /// request is then granted.
    Invals {
        /// Request to grant once all acks arrive.
        req: PendingReq,
        /// Outstanding acks.
        remaining: u32,
    },
}

/// Directory entry for one home block.
#[derive(Debug, Default)]
pub struct DirEntry {
    /// Stable state.
    pub state: DirState,
    /// In-flight operation, if any. While busy, new requests queue in
    /// `waiters`.
    pub busy: Option<Busy>,
    /// Requests queued behind the busy operation, FIFO.
    pub waiters: VecDeque<PendingReq>,
}

impl DirEntry {
    /// Is a multi-hop operation in flight?
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }
}

/// The home directory: entries exist only for blocks that ever left the
/// default `Uncached` state.
pub type DirMap = HashMap<BlockId, DirEntry>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uncached_idle() {
        let e = DirEntry::default();
        assert_eq!(e.state, DirState::Uncached);
        assert!(!e.is_busy());
        assert!(e.waiters.is_empty());
    }

    #[test]
    fn busy_flag() {
        let mut e = DirEntry::default();
        e.busy = Some(Busy::Invals {
            req: PendingReq { requester: 1, excl: true, recorded: false },
            remaining: 3,
        });
        assert!(e.is_busy());
    }
}
