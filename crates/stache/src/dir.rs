//! Home-node directory state.
//!
//! The home node of each block tracks who holds copies: either nobody (the
//! block is *uncached*, only home memory is current), a set of read-only
//! *sharers*, or a single remote *exclusive owner*. A handler that must wait
//! for remote action (a recall or an invalidation round) parks the entry in
//! a transient [`Busy`] state and queues later requests; handlers therefore
//! never block, which keeps the two-threads-per-node emulation deadlock-free.
//!
//! Invariants maintained by the engine:
//!
//! * `Uncached` ⇔ home tag is `ReadWrite` and no remote copies exist;
//! * `Shared(S)`, `S ≠ ∅` ⇔ home tag is `ReadOnly`, every `s ∈ S` holds (or
//!   is being sent) a `ReadOnly` copy; the home is never a member of `S`;
//! * `Exclusive(o)` ⇔ home tag is `Invalid`, `o ≠ home` holds (or is being
//!   sent) the only writable copy and home memory may be stale.
//!
//! On top of the per-block entries, [`Directory`] keeps the home's
//! reliability state: the last accepted sequence number per requester
//! (duplicate-request suppression) and the allocator for recall /
//! invalidation operation ids (stale-reply suppression). See
//! [`crate::msg`] for how both travel.

use std::collections::{HashMap, VecDeque};

use prescient_tempest::{BlockId, NodeId, NodeSet};

/// Stable directory states of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirState {
    /// No remote copies; home memory is current and writable at home.
    #[default]
    Uncached,
    /// Remote read-only copies at the given (non-empty, home-excluded) set.
    Shared(NodeSet),
    /// A single remote node holds the writable copy; home memory is stale.
    Exclusive(NodeId),
}

/// A queued coherence request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingReq {
    /// Requesting node.
    pub requester: NodeId,
    /// Wants a writable copy.
    pub excl: bool,
    /// The home's hooks recorded this request (schedule building).
    pub recorded: bool,
    /// Sequence number the eventual grant must echo. Updated in place when
    /// the requester retries while the request is parked, so the grant
    /// matches the requester's latest attempt.
    pub seq: u64,
}

/// Transient state of an in-flight multi-hop operation.
#[derive(Debug)]
pub enum Busy {
    /// Waiting for `RecallData` from the current exclusive owner; the
    /// queued request is then granted.
    Recall {
        /// Request to grant once data returns.
        req: PendingReq,
        /// Owner being recalled.
        owner: NodeId,
        /// Id of this recall round; stale replies are ignored.
        op: u64,
    },
    /// Waiting for invalidation acknowledgements from `pending`; the
    /// queued request is then granted.
    Invals {
        /// Request to grant once all acks arrive.
        req: PendingReq,
        /// Sharers whose acks are still outstanding (tracked as a set, not
        /// a count, so duplicated acks cannot double-decrement).
        pending: NodeSet,
        /// Id of this invalidation round; stale acks are ignored.
        op: u64,
    },
}

/// Directory entry for one home block.
#[derive(Debug, Default)]
pub struct DirEntry {
    /// Stable state.
    pub state: DirState,
    /// In-flight operation, if any. While busy, new requests queue in
    /// `waiters`.
    pub busy: Option<Busy>,
    /// Requests queued behind the busy operation, FIFO.
    pub waiters: VecDeque<PendingReq>,
}

impl DirEntry {
    /// Is a multi-hop operation in flight?
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }
}

/// The home directory: per-block entries (existing only for blocks that
/// ever left the default `Uncached` state) plus the home's reliability
/// bookkeeping.
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<BlockId, DirEntry>,
    /// Last accepted request seq per requester. A node issues at most one
    /// coherence request at a time, so one watermark per requester is
    /// enough to reject duplicates and overtaken retransmissions.
    last_seq: HashMap<NodeId, u64>,
    next_op: u64,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory { entries: HashMap::new(), last_seq: HashMap::new(), next_op: 1 }
    }

    /// The entry for `block`, created in its default (`Uncached`, idle)
    /// state if absent.
    pub fn entry(&mut self, block: BlockId) -> &mut DirEntry {
        self.entries.entry(block).or_default()
    }

    /// The entry for `block`, if it ever left the default state.
    pub fn get(&self, block: BlockId) -> Option<&DirEntry> {
        self.entries.get(&block)
    }

    /// Mutable view of an existing entry.
    pub fn get_mut(&mut self, block: BlockId) -> Option<&mut DirEntry> {
        self.entries.get_mut(&block)
    }

    /// Forget the entry for `block` (home migration: the directory role
    /// moves to another node). The seq watermarks stay — they belong to
    /// this node, not to any block.
    pub fn remove(&mut self, block: BlockId) -> Option<DirEntry> {
        self.entries.remove(&block)
    }

    /// Admit a request with sequence number `seq` from `requester`:
    /// returns `true` (and advances the watermark) iff it is newer than
    /// everything accepted from that requester so far. Duplicates and
    /// originals overtaken by their own retry return `false`.
    pub fn accept_seq(&mut self, requester: NodeId, seq: u64) -> bool {
        let last = self.last_seq.entry(requester).or_insert(0);
        if seq > *last {
            *last = seq;
            true
        } else {
            false
        }
    }

    /// Allocate a home-unique id for a recall / invalidation round.
    pub fn alloc_op(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        op
    }

    /// Iterate over all materialized entries (diagnostics, invariant
    /// checking).
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &DirEntry)> {
        self.entries.iter().map(|(b, e)| (*b, e))
    }

    /// Capture the directory's full logical state at a quiescent cut.
    ///
    /// # Panics
    ///
    /// Panics if any entry is busy or has queued waiters: a barrier is a
    /// protocol quiescence point, so an in-flight multi-hop operation at
    /// checkpoint time is a protocol bug, not a checkpointable state.
    pub fn checkpoint(&self) -> DirCheckpoint {
        let entries = self
            .entries
            .iter()
            .map(|(b, e)| {
                assert!(
                    !e.is_busy() && e.waiters.is_empty(),
                    "directory entry {b:?} busy at a checkpoint cut"
                );
                (*b, e.state)
            })
            .collect();
        DirCheckpoint {
            entries,
            last_seq: self.last_seq.iter().map(|(n, s)| (*n, *s)).collect(),
            next_op: self.next_op,
        }
    }

    /// Roll the directory back to a previously captured cut: entry states,
    /// per-requester seq watermarks, and the op-id allocator all rewind.
    pub fn restore(&mut self, ckpt: &DirCheckpoint) {
        self.entries.clear();
        for (b, state) in &ckpt.entries {
            self.entries
                .insert(*b, DirEntry { state: *state, busy: None, waiters: VecDeque::new() });
        }
        self.last_seq = ckpt.last_seq.iter().copied().collect();
        self.next_op = ckpt.next_op;
    }
}

/// One home's directory shard at a consistent cut: the stable state of
/// every materialized entry (no transients — the cut is quiescent), the
/// per-requester sequence watermarks, and the operation-id allocator.
///
/// The watermarks and allocator are what make the restored directory safe
/// on a still-noisy fabric: they are rolled back *together with* every
/// requester's seq counter (see `NodeCheckpoint`), so replayed requests
/// carry seqs the restored watermarks accept, while any pre-rollback
/// message that survives the recovery drain is rejected as stale.
#[derive(Debug, Clone)]
pub struct DirCheckpoint {
    entries: Vec<(BlockId, DirState)>,
    last_seq: Vec<(NodeId, u64)>,
    next_op: u64,
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default)]

    use super::*;

    #[test]
    fn default_is_uncached_idle() {
        let e = DirEntry::default();
        assert_eq!(e.state, DirState::Uncached);
        assert!(!e.is_busy());
        assert!(e.waiters.is_empty());
    }

    #[test]
    fn busy_flag() {
        let mut e = DirEntry::default();
        e.busy = Some(Busy::Invals {
            req: PendingReq { requester: 1, excl: true, recorded: false, seq: 1 },
            pending: NodeSet::single(2),
            op: 1,
        });
        assert!(e.is_busy());
    }

    #[test]
    fn seq_watermark_rejects_duplicates() {
        let mut d = Directory::new();
        assert!(d.accept_seq(3, 1));
        assert!(!d.accept_seq(3, 1), "exact duplicate rejected");
        assert!(d.accept_seq(3, 5), "retry with a fresh seq accepted");
        assert!(!d.accept_seq(3, 4), "overtaken original rejected");
        assert!(d.accept_seq(4, 1), "watermarks are per requester");
    }

    #[test]
    fn ops_are_unique() {
        let mut d = Directory::new();
        let a = d.alloc_op();
        let b = d.alloc_op();
        assert_ne!(a, b);
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut d = Directory::new();
        d.entry(BlockId(1)).state = DirState::Shared(NodeSet::single(2));
        d.entry(BlockId(9)).state = DirState::Exclusive(3);
        assert!(d.accept_seq(2, 7));
        let op_before = d.alloc_op();
        let ckpt = d.checkpoint();

        // Diverge: new entry, watermark moves, more ops burned.
        d.entry(BlockId(5)).state = DirState::Exclusive(1);
        assert!(d.accept_seq(2, 20));
        d.alloc_op();
        d.alloc_op();

        d.restore(&ckpt);
        assert_eq!(d.get(BlockId(1)).unwrap().state, DirState::Shared(NodeSet::single(2)));
        assert_eq!(d.get(BlockId(9)).unwrap().state, DirState::Exclusive(3));
        assert!(d.get(BlockId(5)).is_none(), "post-cut entries must be forgotten");
        assert!(!d.accept_seq(2, 7), "restored watermark still rejects the old seq");
        assert!(d.accept_seq(2, 8), "but accepts the next one");
        assert_eq!(d.alloc_op(), op_before + 1, "op allocator rewinds");
    }

    #[test]
    #[should_panic(expected = "busy at a checkpoint cut")]
    fn checkpoint_panics_on_busy_entry() {
        let mut d = Directory::new();
        d.entry(BlockId(4)).busy = Some(Busy::Recall {
            req: PendingReq { requester: 1, excl: false, recorded: false, seq: 1 },
            owner: 2,
            op: 1,
        });
        let _ = d.checkpoint();
    }
}
