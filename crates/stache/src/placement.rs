//! Online home placement: traffic counting, the migration decision policy,
//! and forwarding-stub bookkeeping.
//!
//! When placement is enabled, every home-side request acceptance records a
//! weighted score for the requester (`2` for a writable request, `1` for a
//! read-only one — writers weigh double so a producer strictly dominates
//! the tie a producer/consumer pair would otherwise present). At a phase
//! boundary the migration driver calls [`Placement::decide`]: a block
//! migrates to requester `d` iff `d` is not already the home, `d`'s score
//! meets an absolute floor, `d` *strictly* dominates every other requester
//! (ties stay put — hysteresis), and `d`'s share of the block's total
//! traffic meets a percentage floor. Scores accumulate across windows and
//! are cleared per block when it migrates, so slow-building dominance still
//! crosses the thresholds eventually.
//!
//! After a block moves, the old home keeps a *forwarding stub*: a request
//! from a node whose home view is stale bounces exactly once via
//! [`crate::msg::Msg::Forward`], teaching the requester the new home.
//! Stubs are part of checkpoints — a crash rolled back across a migration
//! must also roll back the stub table, or replayed requests would chase
//! homes that no longer exist.

use std::collections::{BTreeMap, HashMap, HashSet};

use prescient_tempest::{BlockId, NodeId};

/// Thresholds of the migration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementConfig {
    /// Absolute weighted-score floor the dominant requester must reach
    /// before its block is considered at all.
    pub min_count: u64,
    /// Share (percent of the block's total weighted traffic) the dominant
    /// requester must hold.
    pub dominance_pct: u64,
    /// Upper bound on blocks one node migrates away per window (bounds the
    /// barrier-stretch a migration window can cause).
    pub max_per_window: usize,
}

impl Default for PlacementConfig {
    fn default() -> PlacementConfig {
        PlacementConfig { min_count: 8, dominance_pct: 60, max_per_window: 4096 }
    }
}

/// Per-node online-placement state, owned by the node whose home shard it
/// describes (lives behind a mutex in `NodeShared`).
#[derive(Debug)]
pub struct Placement {
    /// Policy thresholds.
    pub cfg: PlacementConfig,
    /// Blocks this node used to home: where they live now.
    stubs: HashMap<BlockId, NodeId>,
    /// Weighted request score per (home block, requester).
    traffic: HashMap<BlockId, HashMap<NodeId, u64>>,
    /// Migrations this node has *applied* as the new home, keyed by
    /// (old home, op): duplicates re-ack without re-applying.
    applied: HashSet<(NodeId, u64)>,
    /// Id allocator for migrations this node initiates.
    next_op: u64,
}

impl Placement {
    /// Fresh state with the given thresholds.
    pub fn new(cfg: PlacementConfig) -> Placement {
        Placement {
            cfg,
            stubs: HashMap::new(),
            traffic: HashMap::new(),
            applied: HashSet::new(),
            next_op: 1,
        }
    }

    /// Record an accepted home-side request for `block` from `requester`.
    pub fn record(&mut self, block: BlockId, requester: NodeId, excl: bool) {
        let w = if excl { 2 } else { 1 };
        *self.traffic.entry(block).or_default().entry(requester).or_insert(0) += w;
    }

    /// Where a no-longer-homed block went, if this node holds a stub.
    pub fn stub(&self, block: BlockId) -> Option<NodeId> {
        self.stubs.get(&block).copied()
    }

    /// Install a forwarding stub (this node just gave `block` away).
    pub fn set_stub(&mut self, block: BlockId, new_home: NodeId) {
        self.stubs.insert(block, new_home);
    }

    /// Drop a stub (this node just became `block`'s home again).
    pub fn clear_stub(&mut self, block: BlockId) {
        self.stubs.remove(&block);
    }

    /// Forget accumulated traffic for `block` (it just migrated; the new
    /// home starts a fresh tally).
    pub fn clear_traffic(&mut self, block: BlockId) {
        self.traffic.remove(&block);
    }

    /// First sighting of migration (`from`, `op`)? Returns `false` for a
    /// retransmission that was already applied.
    pub fn note_applied(&mut self, from: NodeId, op: u64) -> bool {
        self.applied.insert((from, op))
    }

    /// Allocate an id for a migration this node initiates.
    pub fn alloc_op(&mut self) -> u64 {
        let op = self.next_op;
        self.next_op += 1;
        op
    }

    /// Pick the blocks to migrate away from node `me` this window:
    /// deterministic (ascending block id), capped at
    /// [`PlacementConfig::max_per_window`]. Does *not* mutate any state —
    /// the driver clears traffic / installs stubs as each migration is
    /// actually carried out.
    pub fn decide(&self, me: NodeId) -> Vec<(BlockId, NodeId)> {
        let ordered: BTreeMap<&BlockId, &HashMap<NodeId, u64>> = self.traffic.iter().collect();
        let mut picks = Vec::new();
        for (&block, scores) in ordered {
            if picks.len() >= self.cfg.max_per_window {
                break;
            }
            let total: u64 = scores.values().sum();
            // Dominant requester: strictly greater than every other score
            // (a tie means no dominance, the block stays).
            let Some((&best, &best_score)) =
                scores.iter().max_by_key(|&(n, s)| (*s, std::cmp::Reverse(*n)))
            else {
                continue;
            };
            let strict = scores.iter().all(|(&n, &s)| n == best || s < best_score);
            if best != me
                && strict
                && best_score >= self.cfg.min_count
                && best_score * 100 >= self.cfg.dominance_pct * total
            {
                picks.push((block, best));
            }
        }
        picks
    }

    /// Capture the full placement state at a quiescent cut.
    pub fn checkpoint(&self) -> PlacementCheckpoint {
        PlacementCheckpoint {
            stubs: self.stubs.iter().map(|(b, n)| (*b, *n)).collect(),
            traffic: self
                .traffic
                .iter()
                .map(|(b, m)| (*b, m.iter().map(|(n, s)| (*n, *s)).collect()))
                .collect(),
            applied: self.applied.iter().copied().collect(),
            next_op: self.next_op,
        }
    }

    /// Roll the placement state back to a captured cut (crash recovery:
    /// stubs, traffic tallies, idempotency memory, and the op allocator
    /// rewind together with the directory they describe).
    pub fn restore(&mut self, ckpt: &PlacementCheckpoint) {
        self.stubs = ckpt.stubs.iter().copied().collect();
        self.traffic =
            ckpt.traffic.iter().map(|(b, m)| (*b, m.iter().copied().collect())).collect();
        self.applied = ckpt.applied.iter().copied().collect();
        self.next_op = ckpt.next_op;
    }
}

/// One node's placement state at a barrier-consistent cut.
#[derive(Debug, Clone, Default)]
pub struct PlacementCheckpoint {
    stubs: Vec<(BlockId, NodeId)>,
    traffic: Vec<(BlockId, Vec<(NodeId, u64)>)>,
    applied: Vec<(NodeId, u64)>,
    next_op: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(min_count: u64, dominance_pct: u64) -> PlacementConfig {
        PlacementConfig { min_count, dominance_pct, max_per_window: 4096 }
    }

    #[test]
    fn dominant_remote_requester_wins() {
        let mut p = Placement::new(cfg(4, 60));
        for _ in 0..4 {
            p.record(BlockId(5), 2, false); // 4 shared from node 2
        }
        p.record(BlockId(5), 1, false); // 1 shared from node 1
        assert_eq!(p.decide(0), vec![(BlockId(5), 2)]);
    }

    #[test]
    fn ties_stay_put() {
        let mut p = Placement::new(cfg(1, 0));
        p.record(BlockId(5), 1, false);
        p.record(BlockId(5), 2, false);
        assert!(p.decide(0).is_empty(), "equal scores must not migrate");
    }

    #[test]
    fn excl_weight_breaks_producer_consumer_tie() {
        let mut p = Placement::new(cfg(2, 0));
        p.record(BlockId(5), 1, true); // writer: weight 2
        p.record(BlockId(5), 2, false); // reader: weight 1
        assert_eq!(p.decide(0), vec![(BlockId(5), 1)], "writer dominates");
    }

    #[test]
    fn home_dominance_blocks_migration() {
        let mut p = Placement::new(cfg(1, 0));
        p.record(BlockId(5), 0, true);
        p.record(BlockId(5), 0, true);
        p.record(BlockId(5), 2, false);
        assert!(p.decide(0).is_empty(), "home's own traffic dominates");
    }

    #[test]
    fn thresholds_gate() {
        let mut p = Placement::new(cfg(10, 60));
        for _ in 0..5 {
            p.record(BlockId(5), 2, false);
        }
        assert!(p.decide(0).is_empty(), "below min_count");

        let mut p = Placement::new(cfg(2, 90));
        for _ in 0..5 {
            p.record(BlockId(5), 2, false);
        }
        for _ in 0..4 {
            p.record(BlockId(5), 1, false);
        }
        assert!(p.decide(0).is_empty(), "5/9 is below 90% dominance");
    }

    #[test]
    fn decide_is_deterministic_and_capped() {
        let mk = || {
            let mut p = Placement::new(PlacementConfig {
                min_count: 1,
                dominance_pct: 0,
                max_per_window: 2,
            });
            for b in [9u64, 3, 7, 1] {
                p.record(BlockId(b), 2, true);
            }
            p
        };
        let picks = mk().decide(0);
        assert_eq!(picks, vec![(BlockId(1), 2), (BlockId(3), 2)], "ascending, capped at 2");
        assert_eq!(picks, mk().decide(0), "deterministic");
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut p = Placement::new(PlacementConfig::default());
        p.record(BlockId(1), 2, true);
        p.set_stub(BlockId(9), 3);
        assert!(p.note_applied(1, 7));
        let op = p.alloc_op();
        let ckpt = p.checkpoint();

        p.record(BlockId(1), 2, true);
        p.set_stub(BlockId(10), 1);
        p.clear_stub(BlockId(9));
        p.alloc_op();

        p.restore(&ckpt);
        assert_eq!(p.stub(BlockId(9)), Some(3));
        assert_eq!(p.stub(BlockId(10)), None);
        assert!(!p.note_applied(1, 7), "idempotency memory survives");
        assert_eq!(p.alloc_op(), op + 1, "op allocator rewinds");
        assert_eq!(p.checkpoint().traffic, ckpt.traffic);
    }
}
