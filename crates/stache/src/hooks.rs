//! The protocol-extension interface.
//!
//! Blizzard's key feature is *user-level* coherence protocols: applications
//! (or, in this paper, the compiler) can customize the memory system. The
//! base Stache engine exposes two extension points, which are all the
//! predictive protocol needs:
//!
//! * every request arriving at a home node is offered to the extension
//!   *before* it is processed — this is where the predictive protocol
//!   records communication-schedule entries (§3.3); and
//! * [`crate::msg::UserMsg`] messages are routed to the extension
//!   unmodified — this is how the pre-send phase's pushes, data transfers
//!   and acknowledgements travel (§3.4).
//!
//! One hooks instance exists per node, mirroring how each node runs its own
//! protocol handlers.

use prescient_tempest::{BlockId, NodeId};

use crate::msg::UserMsg;
use crate::node::NodeShared;

/// Per-node protocol extension.
pub trait Hooks: Send + Sync + 'static {
    /// A request (`GetShared` if `excl` is false, else `GetExcl`) from
    /// `requester` arrived at this home node for `block`. Return `true` if
    /// the extension recorded the request (adds the schedule-building
    /// handler cost to the eventual grant).
    fn on_home_request(
        &self,
        node: &NodeShared,
        block: BlockId,
        requester: NodeId,
        excl: bool,
    ) -> bool;

    /// An extension message arrived from `src`.
    fn on_user(&self, node: &NodeShared, src: NodeId, msg: UserMsg);

    /// A pre-sent copy of `block` was torn down (recalled or invalidated)
    /// without ever being accessed — a *useless* pre-send. Called at the
    /// block's home with the directory lock held; extensions use it to
    /// feed their schedule-health / degradation accounting. Default: no-op.
    fn on_presend_wasted(&self, node: &NodeShared, block: BlockId) {
        let _ = (node, block);
    }

    /// `block`'s home role is migrating away from this node: return the
    /// extension's per-block schedule state as opaque words (shipped in the
    /// `Migrate` message, fed to [`Hooks::import_block_schedule`] at the
    /// new home) and *remove* it locally — this node must not keep acting
    /// on a schedule it no longer homes. Default: nothing to export.
    fn export_block_schedule(&self, node: &NodeShared, block: BlockId) -> Vec<u64> {
        let _ = (node, block);
        Vec::new()
    }

    /// `block` just migrated *to* this node: adopt the schedule words its
    /// previous home exported. Default: no-op.
    fn import_block_schedule(&self, node: &NodeShared, block: BlockId, words: &[u64]) {
        let _ = (node, block, words);
    }
}

/// The null extension: plain Stache, nothing recorded, user messages are a
/// protocol error.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl Hooks for NoHooks {
    fn on_home_request(&self, _: &NodeShared, _: BlockId, _: NodeId, _: bool) -> bool {
        false
    }

    fn on_user(&self, node: &NodeShared, src: NodeId, msg: UserMsg) {
        panic!(
            "node {}: unexpected user message code {} from {} under plain Stache",
            node.me, msg.code, src
        );
    }
}
