//! # prescient-stache
//!
//! **Stache**, Blizzard's default memory-coherence protocol (§3.1 of the
//! paper): transparent, sequentially-consistent shared memory implemented
//! with a directory-based write-invalidate protocol at cache-block
//! granularity.
//!
//! Every shared block is mapped to a *home* node which holds its backing
//! memory and its directory entry. A read access to an `Invalid` block
//! faults into the local protocol handler, which requests a read-only copy
//! from the home; a write access to an `Invalid` or `ReadOnly` block
//! requests a writable copy, and the home first invalidates all outstanding
//! copies to preserve sequential consistency. A data transfer between a
//! producer and a consumer whose home is a third node therefore takes the
//! infamous four messages (§3.2) — the inefficiency the predictive protocol
//! in `prescient-core` attacks.
//!
//! The crate is organized as a small protocol-construction kit (in the
//! spirit of the Teapot protocol language the original authors used):
//!
//! * [`msg`] — the protocol message vocabulary, including an
//!   active-message-style [`msg::UserMsg`] escape hatch through which
//!   protocol *extensions* (the predictive protocol, the write-update
//!   baseline) define their own vocabulary without this crate knowing it;
//! * [`dir`] — home-node directory entries, including the transient "busy"
//!   states and waiter queues that make the handlers non-blocking;
//! * [`node`] — the per-node shared state bundle (block store, directory,
//!   statistics, network handle) and the protocol-handler thread;
//! * [`engine`] — the handlers themselves plus the compute-side fault path
//!   ([`engine::fetch`]);
//! * [`hooks`] — the extension interface: recording of home-node requests
//!   and handling of user messages.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod dir;
pub mod engine;
pub mod hooks;
pub mod msg;
pub mod node;
pub mod placement;
pub mod wire;

pub use check::check_coherence;
pub use dir::{DirCheckpoint, DirEntry, DirState, Directory};
pub use engine::{fetch, run_migration_window, Engine, GrantInfo};
pub use hooks::{Hooks, NoHooks};
pub use msg::{Msg, UserMsg, Wake};
pub use node::{spawn_protocol, spawn_protocol_shard, NodeCheckpoint, NodeShared, RetryConfig};
pub use placement::{Placement, PlacementCheckpoint, PlacementConfig};
