//! Protocol message vocabulary.
//!
//! Two channels exist per node: the fabric inbox, carrying [`Msg`] between
//! protocol handlers, and the *wake* channel, carrying [`Wake`] from a
//! node's protocol-handler thread to its (blocked) compute thread.

use prescient_tempest::{BlockId, NodeId, NodeSet};

/// A message between protocol handlers.
#[derive(Debug)]
pub enum Msg {
    /// Requester → home: ask for a read-only copy of `block`.
    GetShared {
        /// Requested block.
        block: BlockId,
    },
    /// Requester → home: ask for a writable copy of `block`.
    GetExcl {
        /// Requested block.
        block: BlockId,
    },
    /// Home → exclusive owner: give the block back.
    Recall {
        /// Recalled block.
        block: BlockId,
        /// `true`: invalidate the owner's copy; `false`: downgrade it to
        /// read-only (the owner stays a sharer).
        inval: bool,
    },
    /// Owner → home: the recalled block's current data.
    RecallData {
        /// The block.
        block: BlockId,
        /// Its bytes at the owner.
        data: Box<[u8]>,
    },
    /// Home → sharer: drop your read-only copy.
    Invalidate {
        /// The block.
        block: BlockId,
    },
    /// Sharer → home: copy dropped.
    InvalAck {
        /// The block.
        block: BlockId,
    },
    /// Home → requester: access granted. The requester's protocol handler
    /// installs the data (when present) and wakes the compute thread.
    Grant {
        /// The block.
        block: BlockId,
        /// Writable (`true`) or read-only (`false`) grant.
        excl: bool,
        /// Block contents; `None` for upgrades and home-local grants where
        /// the requester already holds current data.
        data: Option<Box<[u8]>>,
        /// Protocol hops beyond the minimal request–response pair (recall
        /// or invalidation rounds); drives the cost model.
        extra_hops: u32,
        /// Whether the home recorded this request in a communication
        /// schedule (predictive protocol active), which adds handler cost.
        recorded: bool,
    },
    /// An extension (user-level protocol) message — Tempest active-message
    /// style: a handler code plus an uninterpreted payload.
    User(UserMsg),
    /// Stop the protocol-handler thread (machine teardown).
    Shutdown,
}

/// Payload of an extension message. The base protocol routes these to the
/// installed [`crate::hooks::Hooks`] without interpreting them.
#[derive(Debug)]
pub struct UserMsg {
    /// Extension-defined handler code.
    pub code: u16,
    /// Small scalar argument (phase ids, counts, ...).
    pub a: u64,
    /// Block argument.
    pub block: BlockId,
    /// Node-set argument (e.g. target readers of a push).
    pub set: NodeSet,
    /// Node argument (e.g. target writer).
    pub node: NodeId,
    /// Bulk data: blocks with their bytes (pre-send / update payloads).
    pub blocks: Vec<(BlockId, Box<[u8]>)>,
}

impl UserMsg {
    /// A user message with a code and scalar only.
    pub fn simple(code: u16, a: u64) -> UserMsg {
        UserMsg {
            code,
            a,
            block: BlockId(0),
            set: NodeSet::EMPTY,
            node: 0,
            blocks: Vec::new(),
        }
    }
}

/// A wake-up delivered from a node's protocol thread to its compute thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A previously requested block was granted and installed.
    Grant {
        /// The block.
        block: BlockId,
        /// Writable grant?
        excl: bool,
        /// Extra protocol hops incurred (cost model input).
        extra_hops: u32,
        /// Data bytes moved (0 for upgrades).
        bytes: usize,
        /// Home recorded the request in a schedule.
        recorded: bool,
    },
    /// Extension wake-up (e.g. one pre-send push acknowledged).
    User {
        /// Extension-defined code.
        code: u16,
        /// Scalar payload.
        a: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_msg_simple() {
        let m = UserMsg::simple(7, 99);
        assert_eq!(m.code, 7);
        assert_eq!(m.a, 99);
        assert!(m.blocks.is_empty());
        assert!(m.set.is_empty());
    }
}
