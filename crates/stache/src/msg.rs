//! Protocol message vocabulary.
//!
//! Two channels exist per node: the fabric inbox, carrying [`Msg`] between
//! protocol handlers, and the *wake* channel, carrying [`Wake`] from a
//! node's protocol-handler thread to its (blocked) compute thread.
//!
//! Two kinds of identifiers make the vocabulary safe on a faulty fabric:
//!
//! * **Sequence numbers** (`seq`): every request a compute thread issues
//!   carries a value from its node's monotonic stream, and each *retry* of
//!   a request draws a fresh one. Homes accept a request only if its seq is
//!   newer than the last one accepted from that requester (duplicates and
//!   out-of-date retransmissions are ignored), and the grant echoes the
//!   seq so the requester can discard grants its own retry has overtaken.
//! * **Operation ids** (`op`): every recall / invalidation round a home
//!   starts is tagged with a home-unique id, echoed by the replies, so the
//!   home ignores replies to rounds that already completed and owners can
//!   answer re-sent recalls idempotently.
//!
//! All payloads are `Clone` because a faulty fabric may duplicate them in
//! flight. Data payloads are `Arc<[u8]>`, snapshotted once at the sender:
//! cloning a message for fan-out, duplication, or retransmission storage
//! bumps a refcount instead of copying block bytes (the zero-copy send
//! path).
//!
//! On the wire, consecutive same-destination messages travel packed in a
//! `WireBatch` (DESIGN.md §2.1). Batching is invisible at this layer —
//! the vocabulary, seq/op identifiers, and per-message cost accounting
//! all operate on individual messages — but it imposes one obligation on
//! senders: a buffered message is not visible to its destination until
//! the sender's egress is flushed, so any thread that is about to block
//! waiting for a *reply* must call `NodeShared::flush_net` first (the
//! engine and pre-send driver do; see `NodeShared::send`).

use std::sync::Arc;

use prescient_tempest::{BlockId, NodeId, NodeSet};

/// A message between protocol handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Requester → home: ask for a read-only copy of `block`.
    GetShared {
        /// Requested block.
        block: BlockId,
        /// Requester's sequence number (fresh per retry).
        seq: u64,
    },
    /// Requester → home: ask for a writable copy of `block`.
    GetExcl {
        /// Requested block.
        block: BlockId,
        /// Requester's sequence number (fresh per retry).
        seq: u64,
    },
    /// Home → exclusive owner: give the block back.
    Recall {
        /// Recalled block.
        block: BlockId,
        /// `true`: invalidate the owner's copy; `false`: downgrade it to
        /// read-only (the owner stays a sharer).
        inval: bool,
        /// Home-unique id of this recall round.
        op: u64,
    },
    /// Owner → home: reply to a recall.
    RecallData {
        /// The block.
        block: BlockId,
        /// Its bytes at the owner; `None` when the owner never received
        /// the granted copy (the grant was lost in flight), in which case
        /// the home's own memory is still current.
        data: Option<Arc<[u8]>>,
        /// Echo of the recall round's id.
        op: u64,
        /// The recalled copy was installed by a pre-send and never
        /// accessed (a useless pre-send, fed to the degradation policy).
        unused: bool,
    },
    /// Home → sharer: drop your read-only copy.
    Invalidate {
        /// The block.
        block: BlockId,
        /// Home-unique id of this invalidation round.
        op: u64,
    },
    /// Sharer → home: copy dropped.
    InvalAck {
        /// The block.
        block: BlockId,
        /// Echo of the invalidation round's id.
        op: u64,
        /// The invalidated copy was an unread pre-send.
        unused: bool,
    },
    /// Home → requester: access granted. The requester's protocol handler
    /// installs the data (when present) and wakes the compute thread.
    Grant {
        /// The block.
        block: BlockId,
        /// Writable (`true`) or read-only (`false`) grant.
        excl: bool,
        /// Block contents; `None` for upgrades and home-local grants where
        /// the requester already holds current data.
        data: Option<Arc<[u8]>>,
        /// Protocol hops beyond the minimal request–response pair (recall
        /// or invalidation rounds); drives the cost model.
        extra_hops: u32,
        /// Whether the home recorded this request in a communication
        /// schedule (predictive protocol active), which adds handler cost.
        recorded: bool,
        /// Echo of the request's sequence number; the requester discards
        /// grants that no longer match its outstanding request.
        seq: u64,
    },
    /// Old home → requester: this node no longer homes `block`; retry the
    /// same request (same `seq`) at `new_home`. Sent by a forwarding stub
    /// left behind by a phase-boundary home migration; the requester's
    /// protocol handler updates its home view and re-sends, so each
    /// stale-view request bounces exactly once per migration hop.
    Forward {
        /// The migrated block.
        block: BlockId,
        /// Where the block lives now.
        new_home: NodeId,
        /// The bounced request wanted a writable copy.
        excl: bool,
        /// Seq of the bounced request, re-used verbatim on the re-send (the
        /// new home has never seen this requester's seq, so it accepts it;
        /// a retry that has since overtaken it is rejected as usual).
        seq: u64,
    },
    /// Old home → new home: hand over the home role for `block` at a phase
    /// boundary. Carries the directory entry (with the old home already
    /// demoted to an ordinary cached copy at its current tag), the home
    /// bytes when they are current, and the block's predictive-schedule
    /// words. Idempotent under retransmission via `op`.
    Migrate {
        /// The migrating block.
        block: BlockId,
        /// Directory state: `true` ⇒ `Exclusive(owner)`.
        excl: bool,
        /// Exclusive owner (meaningful only when `excl`).
        owner: NodeId,
        /// Read-only sharers (meaningful only when `!excl`; may include the
        /// old home's own demoted copy).
        sharers: NodeSet,
        /// Home bytes; `None` when an exclusive owner makes them stale.
        data: Option<Arc<[u8]>>,
        /// Exported predictive-schedule words for this block (empty under
        /// the plain protocol).
        sched: Arc<[u64]>,
        /// Old-home-unique id of this migration; the new home answers
        /// duplicates with a fresh ack without re-applying.
        op: u64,
    },
    /// New home → old home: migration applied (or already applied).
    MigrateAck {
        /// The migrated block.
        block: BlockId,
        /// Echo of the migration id.
        op: u64,
    },
    /// An extension (user-level protocol) message — Tempest active-message
    /// style: a handler code plus an uninterpreted payload.
    User(UserMsg),
    /// Stop the protocol-handler thread (machine teardown).
    Shutdown,
    /// Recovery drain marker. A node self-sends one `Fence` and waits for
    /// the matching [`Wake::Fence`]: because each inbox channel is a FIFO
    /// queue, the marker's arrival proves every wire batch that was ahead
    /// of it in this node's inbox has been handled. Two fence rounds with
    /// barriers between (DESIGN.md §12) drain the channels completely
    /// before checkpoint state is restored.
    Fence,
}

impl Msg {
    /// Stable small code of this message's kind, as carried by
    /// `MsgSend`/`MsgRecv` trace events (and decoded by the
    /// `prescient-trace` analyzer via [`Msg::kind_name`]).
    pub fn kind_code(&self) -> u16 {
        match self {
            Msg::GetShared { .. } => 1,
            Msg::GetExcl { .. } => 2,
            Msg::Recall { .. } => 3,
            Msg::RecallData { .. } => 4,
            Msg::Invalidate { .. } => 5,
            Msg::InvalAck { .. } => 6,
            Msg::Grant { .. } => 7,
            Msg::User(_) => 8,
            Msg::Shutdown => 9,
            Msg::Fence => 10,
            Msg::Forward { .. } => 11,
            Msg::Migrate { .. } => 12,
            Msg::MigrateAck { .. } => 13,
        }
    }

    /// Stable name of a kind code (the inverse of [`Msg::kind_code`];
    /// unknown codes decode as `"?"`).
    pub fn kind_name(code: u16) -> &'static str {
        match code {
            1 => "GetShared",
            2 => "GetExcl",
            3 => "Recall",
            4 => "RecallData",
            5 => "Invalidate",
            6 => "InvalAck",
            7 => "Grant",
            8 => "User",
            9 => "Shutdown",
            10 => "Fence",
            11 => "Forward",
            12 => "Migrate",
            13 => "MigrateAck",
            _ => "?",
        }
    }

    /// The message-specific scalar a `MsgSend`/`MsgRecv` trace event
    /// carries as its second argument: the block for coherence traffic,
    /// the extension scalar (e.g. a push id) for user messages.
    pub fn trace_aux(&self) -> u64 {
        match self {
            Msg::GetShared { block, .. }
            | Msg::GetExcl { block, .. }
            | Msg::Recall { block, .. }
            | Msg::RecallData { block, .. }
            | Msg::Invalidate { block, .. }
            | Msg::InvalAck { block, .. }
            | Msg::Grant { block, .. }
            | Msg::Forward { block, .. }
            | Msg::Migrate { block, .. }
            | Msg::MigrateAck { block, .. } => block.0,
            Msg::User(u) => u.a,
            Msg::Shutdown | Msg::Fence => 0,
        }
    }
}

/// Payload of an extension message. The base protocol routes these to the
/// installed [`crate::hooks::Hooks`] without interpreting them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserMsg {
    /// Extension-defined handler code.
    pub code: u16,
    /// Small scalar argument (phase ids, counts, push ids, ...).
    pub a: u64,
    /// Second scalar argument (epoch stamps, waste counts, ...).
    pub b: u64,
    /// Block argument.
    pub block: BlockId,
    /// Node-set argument (e.g. target readers of a push).
    pub set: NodeSet,
    /// Node argument (e.g. target writer).
    pub node: NodeId,
    /// Bulk data: blocks with their bytes (pre-send / update payloads).
    /// Doubly shared: the outer `Arc` lets the per-target fan-out and the
    /// retransmission store reuse one payload list, and each block's bytes
    /// are themselves an `Arc` snapshot.
    pub blocks: Arc<[(BlockId, Arc<[u8]>)]>,
}

impl UserMsg {
    /// A user message with a code and scalar only.
    pub fn simple(code: u16, a: u64) -> UserMsg {
        UserMsg {
            code,
            a,
            b: 0,
            block: BlockId(0),
            set: NodeSet::EMPTY,
            node: 0,
            blocks: Arc::new([]),
        }
    }
}

/// A wake-up delivered from a node's protocol thread to its compute thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A previously requested block was granted and installed.
    Grant {
        /// The block.
        block: BlockId,
        /// Writable grant?
        excl: bool,
        /// Extra protocol hops incurred (cost model input).
        extra_hops: u32,
        /// Data bytes moved (0 for upgrades).
        bytes: usize,
        /// Home recorded the request in a schedule.
        recorded: bool,
        /// Sequence number of the request this grant answers; the fetch
        /// loop discards wake-ups from superseded attempts.
        seq: u64,
    },
    /// Extension wake-up (e.g. one pre-send push acknowledged).
    User {
        /// Extension-defined code.
        code: u16,
        /// Scalar payload.
        a: u64,
        /// Second scalar payload.
        b: u64,
    },
    /// The recovery drain marker ([`Msg::Fence`]) this node self-sent has
    /// come back through the inbox: everything queued ahead of it has been
    /// handled.
    Fence,
    /// A [`Msg::MigrateAck`] arrived for a migration this node initiated;
    /// the migration driver (blocked at the phase boundary) checks it off.
    MigrateAck {
        /// The migrated block.
        block: BlockId,
        /// The migration id being acknowledged.
        op: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_msg_simple() {
        let m = UserMsg::simple(7, 99);
        assert_eq!(m.code, 7);
        assert_eq!(m.a, 99);
        assert_eq!(m.b, 0);
        assert!(m.blocks.is_empty());
        assert!(m.set.is_empty());
    }
}
