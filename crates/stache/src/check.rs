//! Whole-machine coherence invariant checking.
//!
//! Intended to run while the machine is *quiesced* (all compute threads at
//! a barrier, all protocol queues drained — e.g. between
//! [`prescient runtime runs`](crate) or at test checkpoints). Verifies, for
//! every block any node holds:
//!
//! * the home directory entry is stable (no busy op, no waiters);
//! * `Uncached` ⇒ home tag is `ReadWrite` (or `ReadOnly` after a tolerant
//!   home read) and no remote copy is readable;
//! * `Shared(S)` ⇒ home tag is readable but not writable is allowed to be
//!   `ReadOnly`; every readable remote copy belongs to `S`; no remote copy
//!   is writable; **every read-only copy's bytes equal the home bytes**;
//! * `Exclusive(o)` ⇒ home tag is `Invalid`, `o` holds the only writable
//!   copy, and no third node holds a readable copy.
//!
//! The single-writer/multi-reader property plus data agreement is exactly
//! what sequential consistency needs from the protocol layer; the
//! `self-grant` regression this suite guards against was a violation of
//! the `Exclusive` clause.

use std::sync::Arc;

use prescient_tempest::tag::Tag;
use prescient_tempest::BlockId;

use crate::dir::DirState;
use crate::node::NodeShared;

/// Check every coherence invariant across `nodes` (one entry per node, in
/// id order). Returns a list of human-readable violations (empty = clean).
///
/// The caller must guarantee quiescence; otherwise transient states will
/// be reported as violations.
pub fn check_coherence(nodes: &[Arc<NodeShared>]) -> Vec<String> {
    let mut violations = Vec::new();
    let n = nodes.len();

    // Collect the tag of every materialized block on every node.
    let mut tags: Vec<Vec<(BlockId, Tag)>> = Vec::with_capacity(n);
    for node in nodes {
        let mem = node.mem.lock();
        tags.push(mem.iter_blocks().collect());
    }

    // Union of all blocks seen anywhere.
    let mut all_blocks: Vec<BlockId> = tags.iter().flatten().map(|(b, _)| *b).collect();
    all_blocks.sort_unstable();
    all_blocks.dedup();

    for block in all_blocks {
        // Resolve the live home: start from node 0's view and follow
        // forwarding stubs (the stub at the current home is always cleared
        // on arrival, so the chain terminates).
        let home = {
            let mut h = nodes[0].homes.home_of_block(block);
            let mut hops = 0;
            while let Some(next) =
                nodes[h as usize].placement.as_ref().and_then(|p| p.lock().stub(block))
            {
                h = next;
                hops += 1;
                if hops > n {
                    violations.push(format!("{block:?}: forwarding-stub chain does not resolve"));
                    break;
                }
            }
            h
        };
        let home_node = &nodes[home as usize];
        // Placement-acted blocks relax the home-tag side of the invariants:
        // a freshly migrated-in home's own copy starts Invalid even while
        // its home memory is current.
        let identity = home_node.homes.is_identity_block(block);
        let state = {
            let dir = home_node.dir.lock();
            match dir.get(block) {
                Some(e) => {
                    if e.is_busy() {
                        violations.push(format!("{block:?}: home {home} entry busy at quiescence"));
                    }
                    if !e.waiters.is_empty() {
                        violations.push(format!(
                            "{block:?}: home {home} has queued waiters at quiescence"
                        ));
                    }
                    e.state
                }
                None => DirState::Uncached,
            }
        };
        let tag_of = |p: usize| -> Tag {
            tags[p].iter().find(|(b, _)| *b == block).map(|(_, t)| *t).unwrap_or(Tag::Invalid)
        };
        let home_tag = {
            let mem = home_node.mem.lock();
            mem.probe(block)
        };

        match state {
            DirState::Uncached => {
                if !home_tag.readable() && identity {
                    violations
                        .push(format!("{block:?}: Uncached but home {home} tag is {home_tag:?}"));
                }
                for p in 0..n {
                    if p != home as usize && tag_of(p).readable() {
                        violations.push(format!(
                            "{block:?}: Uncached but node {p} holds a {:?} copy",
                            tag_of(p)
                        ));
                    }
                }
            }
            DirState::Shared(s) => {
                if home_tag.writable() || (!home_tag.readable() && identity) {
                    violations
                        .push(format!("{block:?}: Shared but home {home} tag is {home_tag:?}"));
                }
                let home_data = home_node.mem.lock().data(block).map(<[u8]>::to_vec);
                #[allow(clippy::needless_range_loop)]
                for p in 0..n {
                    if p == home as usize {
                        continue;
                    }
                    let t = tag_of(p);
                    if t.writable() {
                        violations
                            .push(format!("{block:?}: Shared but node {p} holds a writable copy"));
                    }
                    if t.readable() && !s.contains(p as u16) {
                        violations.push(format!(
                            "{block:?}: node {p} holds a readable copy but is not in sharers {s:?}"
                        ));
                    }
                    if t.readable() {
                        // Data agreement: every valid copy equals home memory.
                        let copy = nodes[p].mem.lock().data(block).map(<[u8]>::to_vec);
                        if let (Some(h), Some(c)) = (&home_data, &copy) {
                            if h != c {
                                violations.push(format!(
                                    "{block:?}: node {p}'s read-only copy diverges from home data"
                                ));
                            }
                        }
                    }
                }
            }
            DirState::Exclusive(o) => {
                if home_tag.readable() {
                    violations.push(format!(
                        "{block:?}: Exclusive({o}) but home {home} tag is {home_tag:?}"
                    ));
                }
                if !tag_of(o as usize).writable() {
                    violations.push(format!(
                        "{block:?}: Exclusive({o}) but owner's tag is {:?}",
                        tag_of(o as usize)
                    ));
                }
                for p in 0..n {
                    if p != o as usize && tag_of(p).readable() {
                        violations.push(format!(
                            "{block:?}: Exclusive({o}) but node {p} holds a {:?} copy",
                            tag_of(p)
                        ));
                    }
                }
            }
        }
    }
    violations
}
