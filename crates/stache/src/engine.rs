//! The Stache protocol handlers and the compute-side fault path.
//!
//! All coherence traffic — including a node's faults on its *own* home
//! blocks — travels as messages through the fabric and is processed by
//! protocol-handler threads, so there is exactly one code path. Handlers
//! never block: multi-hop operations (recalls, invalidation rounds) park
//! the directory entry in a transient [`Busy`] state and queue later
//! requests.
//!
//! Message patterns (§3.1–3.2 of the paper):
//!
//! * 2-hop read: requester → home (`GetShared`), home → requester
//!   (`Grant` + data);
//! * 4-hop producer/consumer transfer: consumer → home (`GetShared`),
//!   home → producer (`Recall`), producer → home (`RecallData`),
//!   home → consumer (`Grant`) — the write-invalidate inefficiency the
//!   predictive protocol removes;
//! * write to shared data: home sends `Invalidate` to every sharer and
//!   grants only after all `InvalAck`s (sequential consistency).
//!
//! # Fault tolerance
//!
//! The handlers survive message delay, duplication, and loss on any
//! inter-node link, provided each link delivers what it does deliver in
//! FIFO order (`FifoMode::Preserving`; see DESIGN.md for why Stache
//! fundamentally needs point-to-point ordering between a grant and a later
//! recall/invalidation of the same block). The machinery:
//!
//! * requests carry per-requester **seqnos**; homes drop anything not newer
//!   than the last accepted seq from that requester, so duplicates and
//!   overtaken retransmissions are idempotent;
//! * the compute-side [`fetch`] re-issues its request (with a fresh seq)
//!   when no grant arrives within [`crate::node::RetryConfig::timeout`];
//!   grants echo the seq, and installs are gated on the seq still being
//!   the outstanding one, so a superseded grant can never clobber memory;
//! * recall / invalidation rounds carry home-unique **op ids**; owners
//!   answer re-sent recalls from a recorded reply (idempotent even for
//!   modified data), sharers ack invalidations unconditionally, and the
//!   home ignores replies whose op does not match the round in flight;
//! * a retry or duplicate request arriving at a busy entry **nudges** the
//!   stalled round (re-sends the outstanding `Recall`/`Invalidate`s),
//!   which both recovers dropped messages and generates the link traffic
//!   that flushes event-count-based delays.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use prescient_tempest::tag::Tag;
use prescient_tempest::trace::pack_peer_count;
use prescient_tempest::{BlockId, NodeId, NodeSet, NodeStats};

use crate::dir::{Busy, DirEntry, DirState, Directory, PendingReq};
use crate::hooks::Hooks;
use crate::msg::{Msg, Wake};
use crate::node::{NodeShared, RecallReply};

/// Outcome of one granted fetch, as seen by the compute thread; input to
/// the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantInfo {
    /// Protocol hops beyond the minimal request–response pair.
    pub extra_hops: u32,
    /// Data bytes moved (0 for upgrades / home-local grants).
    pub bytes: usize,
    /// The home recorded the request into a communication schedule.
    pub recorded: bool,
    /// Times the request was re-issued before being granted (0 on a
    /// healthy fabric).
    pub retries: u32,
}

/// The per-node protocol engine: Stache handlers plus the extension hooks.
pub struct Engine {
    hooks: Arc<dyn Hooks>,
}

impl Engine {
    /// Create an engine with the given extension.
    pub fn new(hooks: Arc<dyn Hooks>) -> Engine {
        Engine { hooks }
    }

    /// Handle one message; returns `false` on shutdown.
    pub fn handle(&self, n: &NodeShared, src: NodeId, msg: Msg) -> bool {
        match msg {
            Msg::GetShared { block, seq } => self.on_request(n, src, block, false, seq),
            Msg::GetExcl { block, seq } => self.on_request(n, src, block, true, seq),
            Msg::Recall { block, inval, op } => self.on_recall(n, src, block, inval, op),
            Msg::RecallData { block, data, op, unused } => {
                self.on_recall_data(n, src, block, data, op, unused)
            }
            Msg::Invalidate { block, op } => self.on_invalidate(n, src, block, op),
            Msg::InvalAck { block, op, unused } => self.on_inval_ack(n, src, block, op, unused),
            Msg::Grant { block, excl, data, extra_hops, recorded, seq } => {
                self.on_grant(n, src, block, excl, data, extra_hops, recorded, seq)
            }
            Msg::Forward { block, new_home, excl, seq } => {
                self.on_forward(n, block, new_home, excl, seq)
            }
            Msg::Migrate { block, excl, owner, sharers, data, sched, op } => {
                self.on_migrate(n, src, block, excl, owner, sharers, data, sched, op)
            }
            // The migration driver (blocked at the phase boundary) does the
            // bookkeeping; the handler only relays.
            Msg::MigrateAck { block, op } => n.wake(Wake::MigrateAck { block, op }),
            Msg::User(um) => self.hooks.on_user(n, src, um),
            Msg::Shutdown => return false,
            // Recovery drain marker: its arrival proves everything queued
            // ahead of it in this inbox has been handled; tell the waiting
            // compute thread.
            Msg::Fence => n.wake(Wake::Fence),
        }
        true
    }

    /// A `GetShared`/`GetExcl` arrived at this home node.
    fn on_request(&self, n: &NodeShared, src: NodeId, block: BlockId, excl: bool, seq: u64) {
        // Before anything else: if this node gave the block away, bounce
        // the stale-view request to the new home. Checked ahead of the seq
        // watermark so the forwarded re-send (same seq) is still fresh when
        // it arrives where it belongs.
        if let Some(pl) = &n.placement {
            if let Some(new_home) = pl.lock().stub(block) {
                NodeStats::bump(&n.stats.forwards);
                n.tracer().emit(
                    prescient_tempest::trace::EventKind::Forward,
                    block.0,
                    pack_peer_count(new_home, u64::from(src)),
                );
                n.send(src, Msg::Forward { block, new_home, excl, seq });
                return;
            }
        }
        debug_assert_eq!(n.homes.home_of_block(block), n.me, "request routed to non-home");
        let mut dir = n.dir.lock();
        if !dir.accept_seq(src, seq) {
            // Duplicate or overtaken retransmission. Idempotent: the
            // original was (or will be) served. Still nudge a stalled
            // round — the duplicate proves the requester is waiting.
            NodeStats::bump(&n.stats.dup_reqs_in);
            self.nudge(n, &dir, block);
            return;
        }
        // A fresh seq from a requester that is already parked here is a
        // retry: refresh the seq its grant must echo, don't re-queue.
        if let Some(e) = dir.get_mut(block) {
            let mut parked = false;
            if let Some(Busy::Recall { req, .. } | Busy::Invals { req, .. }) = &mut e.busy {
                if req.requester == src {
                    debug_assert_eq!(req.excl, excl, "retry changed its kind");
                    req.seq = seq;
                    parked = true;
                }
            }
            if !parked {
                if let Some(w) = e.waiters.iter_mut().find(|w| w.requester == src) {
                    debug_assert_eq!(w.excl, excl, "retry changed its kind");
                    w.seq = seq;
                    parked = true;
                }
            }
            if parked {
                self.nudge(n, &dir, block);
                return;
            }
        }
        // Genuinely new request: feed the placement policy's traffic tally
        // (duplicates and parked retries above must not double-count).
        if let Some(pl) = &n.placement {
            pl.lock().record(block, src, excl);
        }
        let recorded = self.hooks.on_home_request(n, block, src, excl);
        let req = PendingReq { requester: src, excl, recorded, seq };
        if dir.entry(block).is_busy() {
            dir.entry(block).waiters.push_back(req);
            self.nudge(n, &dir, block);
            return;
        }
        self.dispatch(n, &mut dir, block, req);
        self.drain(n, &mut dir, block);
    }

    /// Re-send the messages of a stalled multi-hop round, if any. Safe to
    /// call at any time: receivers answer re-sent recalls/invalidations
    /// idempotently and the home filters replies by op id. Doubles as the
    /// liveness engine under event-count-based delays — every nudge is
    /// link traffic that advances stalled links.
    fn nudge(&self, n: &NodeShared, dir: &Directory, block: BlockId) {
        let Some(e) = dir.get(block) else { return };
        match &e.busy {
            Some(Busy::Recall { req, owner, op }) => {
                n.send(*owner, Msg::Recall { block, inval: req.excl, op: *op });
            }
            Some(Busy::Invals { pending, op, .. }) => {
                for s in pending.iter() {
                    n.send(s, Msg::Invalidate { block, op: *op });
                }
            }
            None => {}
        }
    }

    /// Process one request against a non-busy entry. May leave the entry
    /// busy. Caller holds the dir lock.
    fn dispatch(&self, n: &NodeShared, dir: &mut Directory, block: BlockId, req: PendingReq) {
        debug_assert!(!dir.entry(block).is_busy());
        let state = dir.entry(block).state;
        match state {
            DirState::Uncached => {
                let e = dir.entry(block);
                if req.requester == n.me {
                    // Home fault on an uncached block: without placement,
                    // only reachable from the pre-send driver's ensure step
                    // or a retry whose original grant already completed, and
                    // the tag is already adequate. A placement-acted block
                    // never materializes `ReadWrite` on first touch, so the
                    // home's own copy may be genuinely cold — make the tag
                    // writable (uncached means no remote copies exist).
                    if !n.homes.is_identity_block(block) {
                        n.mem.lock().set_tag(block, Tag::ReadWrite);
                    }
                    self.grant(n, block, req, false, 0);
                } else if req.excl {
                    n.mem.lock().set_tag(block, Tag::Invalid);
                    e.state = DirState::Exclusive(req.requester);
                    self.grant(n, block, req, true, 0);
                } else {
                    n.mem.lock().set_tag(block, Tag::ReadOnly);
                    e.state = DirState::Shared(NodeSet::single(req.requester));
                    self.grant(n, block, req, true, 0);
                }
            }
            DirState::Shared(s) => {
                if !req.excl {
                    if req.requester == n.me {
                        // Home tag is ReadOnly in Shared: readable already —
                        // except on a freshly migrated-in home, whose own
                        // copy starts Invalid while home memory is current.
                        if !n.homes.is_identity_block(block) {
                            n.mem.lock().set_tag(block, Tag::ReadOnly);
                        }
                        self.grant(n, block, req, false, 0);
                    } else {
                        if s.contains(req.requester) {
                            // Already a sharer (raced with a pre-send, or
                            // retrying a lost grant): re-send the data;
                            // harmless and diagnostic-counted.
                            NodeStats::bump(&n.stats.presend_races);
                        }
                        dir.entry(block).state =
                            DirState::Shared(s.union(NodeSet::single(req.requester)));
                        self.grant(n, block, req, true, 0);
                    }
                } else {
                    let upgrade = s.contains(req.requester);
                    let others = s.without(req.requester);
                    if others.is_empty() {
                        let e = dir.entry(block);
                        self.finalize_excl(n, e, block, req, upgrade, 0);
                    } else {
                        let op = dir.alloc_op();
                        for o in others.iter() {
                            n.send(o, Msg::Invalidate { block, op });
                        }
                        let e = dir.entry(block);
                        e.busy = Some(Busy::Invals { req, pending: others, op });
                        // Whether the requester keeps a copy (upgrade) is
                        // re-derived at completion from the residual set.
                        e.state = DirState::Shared(if upgrade {
                            NodeSet::single(req.requester)
                        } else {
                            NodeSet::EMPTY
                        });
                    }
                }
            }
            DirState::Exclusive(owner) if owner == req.requester => {
                // The owner re-requesting its own block means its grant
                // was lost in flight (an owner holding the block never
                // faults), so it never wrote and home memory is current:
                // serve the retry directly from home memory.
                let e = dir.entry(block);
                if req.excl {
                    self.grant(n, block, req, true, 0);
                } else {
                    // A shared retry while Exclusive(requester) is
                    // unreachable under FIFO delivery (a fetch retries
                    // with its original kind) but safe to serve: downgrade
                    // the never-consumed grant.
                    n.mem.lock().set_tag(block, Tag::ReadOnly);
                    e.state = DirState::Shared(NodeSet::single(req.requester));
                    self.grant(n, block, req, true, 0);
                }
            }
            DirState::Exclusive(owner) => {
                let op = dir.alloc_op();
                n.send(owner, Msg::Recall { block, inval: req.excl, op });
                dir.entry(block).busy = Some(Busy::Recall { req, owner, op });
            }
        }
    }

    /// Complete an exclusive grant once no conflicting copies remain.
    /// `upgrade`: the requester already holds current data.
    fn finalize_excl(
        &self,
        n: &NodeShared,
        e: &mut DirEntry,
        block: BlockId,
        req: PendingReq,
        upgrade: bool,
        extra_hops: u32,
    ) {
        if req.requester == n.me {
            n.mem.lock().set_tag(block, Tag::ReadWrite);
            e.state = DirState::Uncached;
            self.grant_nodata(n, block, req, extra_hops);
        } else {
            e.state = DirState::Exclusive(req.requester);
            if upgrade {
                n.mem.lock().set_tag(block, Tag::Invalid);
                self.grant_nodata(n, block, req, extra_hops);
            } else {
                let mut mem = n.mem.lock();
                let data = mem.snapshot(block);
                mem.set_tag(block, Tag::Invalid);
                drop(mem);
                n.send(
                    req.requester,
                    Msg::Grant {
                        block,
                        excl: true,
                        data: Some(data),
                        extra_hops,
                        recorded: req.recorded,
                        seq: req.seq,
                    },
                );
            }
        }
    }

    /// Grant a request. `with_data`: ship the home's current block bytes.
    fn grant(
        &self,
        n: &NodeShared,
        block: BlockId,
        req: PendingReq,
        with_data: bool,
        extra_hops: u32,
    ) {
        let data = if with_data { Some(n.mem.lock().snapshot(block)) } else { None };
        n.send(
            req.requester,
            Msg::Grant {
                block,
                excl: req.excl,
                data,
                extra_hops,
                recorded: req.recorded,
                seq: req.seq,
            },
        );
    }

    fn grant_nodata(&self, n: &NodeShared, block: BlockId, req: PendingReq, extra_hops: u32) {
        n.send(
            req.requester,
            Msg::Grant {
                block,
                excl: req.excl,
                data: None,
                extra_hops,
                recorded: req.recorded,
                seq: req.seq,
            },
        );
    }

    /// Serve queued requests until the entry goes busy again or the queue
    /// empties. Caller holds the dir lock.
    fn drain(&self, n: &NodeShared, dir: &mut Directory, block: BlockId) {
        loop {
            let e = dir.entry(block);
            if e.is_busy() {
                break;
            }
            let Some(next) = e.waiters.pop_front() else { break };
            self.dispatch(n, dir, block, next);
        }
    }

    /// Owner side of a recall: give the block back to the home.
    ///
    /// Idempotent: if this node no longer holds the block, the recorded
    /// reply for the same round is re-shipped (the first reply was lost);
    /// if no reply was ever produced for this round, the node never
    /// received the granted copy in the first place (the grant was lost)
    /// and it answers `None`, telling the home its own memory is current.
    fn on_recall(&self, n: &NodeShared, home: NodeId, block: BlockId, inval: bool, op: u64) {
        NodeStats::bump(&n.stats.recalls_in);
        let mut mem = n.mem.lock();
        if mem.probe(block).readable() {
            let unused = mem.presend_unused(block);
            mem.clear_presend_unused(block); // copy is going away; waste is accounted at the home
            let data = mem.snapshot(block);
            mem.set_tag(block, if inval { Tag::Invalid } else { Tag::ReadOnly });
            drop(mem);
            n.recalled.lock().insert(block, RecallReply { op, data: Arc::clone(&data), unused });
            n.send(home, Msg::RecallData { block, data: Some(data), op, unused });
        } else {
            drop(mem);
            let replay = n.recalled.lock().get(&block).filter(|r| r.op == op).cloned();
            match replay {
                Some(r) => n.send(
                    home,
                    Msg::RecallData { block, data: Some(r.data), op, unused: r.unused },
                ),
                None => n.send(home, Msg::RecallData { block, data: None, op, unused: false }),
            }
        }
    }

    /// Home side: recalled data returned; complete the parked request.
    fn on_recall_data(
        &self,
        n: &NodeShared,
        src: NodeId,
        block: BlockId,
        data: Option<Arc<[u8]>>,
        op: u64,
        unused: bool,
    ) {
        let mut dir = n.dir.lock();
        let live = matches!(
            dir.get(block).and_then(|e| e.busy.as_ref()),
            Some(Busy::Recall { op: o, .. }) if *o == op
        );
        if !live {
            // Reply to a round that already completed (duplicate or
            // re-sent recall answered twice).
            NodeStats::bump(&n.stats.stale_msgs_in);
            return;
        }
        let e = dir.get_mut(block).expect("checked above");
        let Some(Busy::Recall { req, owner, .. }) = e.busy.take() else { unreachable!() };
        debug_assert_eq!(owner, src, "recall answered by a non-owner");
        if unused {
            self.hooks.on_presend_wasted(n, block);
        }
        if req.excl {
            // Owner was invalidated. Home memory gets the fresh data (or
            // was already current if the owner never held the copy) but
            // stays Invalid unless the requester is the home itself.
            if req.requester == n.me {
                let mut mem = n.mem.lock();
                match &data {
                    Some(d) => {
                        mem.install(block, &d[..], Tag::ReadWrite, false);
                        NodeStats::add(&n.stats.data_bytes_in, d.len() as u64);
                    }
                    None => mem.set_tag(block, Tag::ReadWrite),
                }
                drop(mem);
                e.state = DirState::Uncached;
                self.grant_nodata(n, block, req, 1);
            } else {
                let payload = match data {
                    Some(d) => {
                        n.mem.lock().install(block, &d[..], Tag::Invalid, false);
                        NodeStats::add(&n.stats.data_bytes_in, d.len() as u64);
                        d
                    }
                    // Owner never received its grant: home memory is
                    // current (tag already Invalid under Exclusive).
                    None => n.mem.lock().snapshot(block),
                };
                e.state = DirState::Exclusive(req.requester);
                n.send(
                    req.requester,
                    Msg::Grant {
                        block,
                        excl: true,
                        data: Some(payload),
                        extra_hops: 1,
                        recorded: req.recorded,
                        seq: req.seq,
                    },
                );
            }
        } else {
            // Downgrade: the owner keeps a read-only copy — unless it
            // never received the block at all (`None` reply).
            match &data {
                Some(d) => {
                    n.mem.lock().install(block, &d[..], Tag::ReadOnly, false);
                    NodeStats::add(&n.stats.data_bytes_in, d.len() as u64);
                }
                None => n.mem.lock().set_tag(block, Tag::ReadOnly),
            }
            let kept = data.is_some();
            if req.requester == n.me {
                if kept {
                    e.state = DirState::Shared(NodeSet::single(owner));
                } else {
                    n.mem.lock().set_tag(block, Tag::ReadWrite);
                    e.state = DirState::Uncached;
                }
                self.grant_nodata(n, block, req, 1);
            } else {
                let mut s = if kept { NodeSet::single(owner) } else { NodeSet::EMPTY };
                s.insert(req.requester);
                e.state = DirState::Shared(s);
                let payload = n.mem.lock().snapshot(block);
                n.send(
                    req.requester,
                    Msg::Grant {
                        block,
                        excl: false,
                        data: Some(payload),
                        extra_hops: 1,
                        recorded: req.recorded,
                        seq: req.seq,
                    },
                );
            }
        }
        self.drain(n, &mut dir, block);
    }

    /// Sharer side of an invalidation. Acks unconditionally (the home
    /// filters by op and pending set); only touches the tag if the node
    /// actually holds a read-only copy, so a stale duplicate can never
    /// destroy a copy granted later.
    fn on_invalidate(&self, n: &NodeShared, home: NodeId, block: BlockId, op: u64) {
        NodeStats::bump(&n.stats.invals_in);
        let mut mem = n.mem.lock();
        // Probe-based (never materializes): a stale duplicate for a block
        // this node no longer (or never) holds must not install anything.
        let held = mem.data(block).is_some() && mem.probe(block) == Tag::ReadOnly;
        let unused = held && mem.presend_unused(block);
        if held {
            mem.set_tag(block, Tag::Invalid);
            mem.clear_presend_unused(block);
        }
        drop(mem);
        n.send(home, Msg::InvalAck { block, op, unused });
    }

    /// Home side: one invalidation acknowledged.
    fn on_inval_ack(&self, n: &NodeShared, src: NodeId, block: BlockId, op: u64, unused: bool) {
        let mut dir = n.dir.lock();
        let accepted = match dir.get_mut(block).and_then(|e| e.busy.as_mut()) {
            Some(Busy::Invals { pending, op: o, .. }) if *o == op && pending.contains(src) => {
                *pending = pending.without(src);
                true
            }
            _ => false,
        };
        if !accepted {
            NodeStats::bump(&n.stats.stale_msgs_in);
            return;
        }
        if unused {
            self.hooks.on_presend_wasted(n, block);
        }
        let done = matches!(
            dir.get(block).and_then(|e| e.busy.as_ref()),
            Some(Busy::Invals { pending, .. }) if pending.is_empty()
        );
        if done {
            let e = dir.get_mut(block).expect("checked above");
            let Some(Busy::Invals { req, .. }) = e.busy.take() else { unreachable!() };
            // All sharers gone; `dispatch` encoded whether the requester
            // kept a copy in the residual Shared set.
            let upgrade = matches!(e.state, DirState::Shared(s) if s.contains(req.requester));
            self.finalize_excl(n, e, block, req, upgrade, 1);
            self.drain(n, &mut dir, block);
        }
    }

    /// Requester side: install the granted copy and wake the compute thread.
    ///
    /// Home-local grants (`src == me`) carry no data and must NOT touch the
    /// tag here: the dispatching handler already set it atomically under
    /// the directory lock, and by the time this (self-queued) message is
    /// processed a later waiter may have been granted the block — flipping
    /// the tag now would resurrect a revoked copy and lose that waiter's
    /// writes. The compute thread's retry loop re-faults if its grant was
    /// overtaken.
    ///
    /// Remote grants install only while their seq is still the node's
    /// outstanding fetch (checked under the `mem` lock, which [`fetch`]
    /// also holds when clearing it): a grant superseded by a retry, or a
    /// duplicate of a consumed grant, must never overwrite memory the
    /// compute thread may already be writing.
    #[allow(clippy::too_many_arguments)]
    fn on_grant(
        &self,
        n: &NodeShared,
        src: NodeId,
        block: BlockId,
        excl: bool,
        data: Option<Arc<[u8]>>,
        extra_hops: u32,
        recorded: bool,
        seq: u64,
    ) {
        let bytes = data.as_ref().map_or(0, |d| d.len());
        if src == n.me {
            debug_assert!(data.is_none(), "local grants never carry data");
        } else {
            let mut mem = n.mem.lock();
            if n.outstanding() != seq {
                drop(mem);
                NodeStats::bump(&n.stats.stale_grants_in);
                return;
            }
            let tag = if excl { Tag::ReadWrite } else { Tag::ReadOnly };
            match data {
                Some(d) => {
                    mem.install(block, &d[..], tag, false);
                    NodeStats::add(&n.stats.data_bytes_in, d.len() as u64);
                }
                None => mem.set_tag(block, tag),
            }
            drop(mem);
            // A fresh copy supersedes any recorded recall reply.
            n.recalled.lock().remove(&block);
        }
        n.wake(Wake::Grant { block, excl, extra_hops, bytes, recorded, seq });
    }

    /// Requester side of a bounce: the old home no longer homes `block`.
    /// Learn the new home and re-send the same request (same seq — the new
    /// home has never seen it, so its watermark accepts it; if the fetch
    /// has since retried with a fresh seq, the new home rejects this one as
    /// overtaken, which is exactly right).
    fn on_forward(&self, n: &NodeShared, block: BlockId, new_home: NodeId, excl: bool, seq: u64) {
        n.homes.set(block, new_home);
        n.send(
            new_home,
            if excl { Msg::GetExcl { block, seq } } else { Msg::GetShared { block, seq } },
        );
    }

    /// New-home side of a migration: adopt the directory entry (with the
    /// old home demoted to an ordinary cached copy at its current tag),
    /// install the home bytes if this node holds none, import the block's
    /// predictive-schedule words, and ack. Idempotent under retransmission.
    #[allow(clippy::too_many_arguments)]
    fn on_migrate(
        &self,
        n: &NodeShared,
        src: NodeId,
        block: BlockId,
        excl: bool,
        owner: NodeId,
        sharers: NodeSet,
        data: Option<Arc<[u8]>>,
        sched: Arc<[u64]>,
        op: u64,
    ) {
        let Some(pl_lock) = &n.placement else {
            // Migration traffic with placement disabled is a configuration
            // bug (all nodes share one machine config); drop it.
            debug_assert!(false, "Migrate received with placement disabled");
            return;
        };
        let mut dir = n.dir.lock();
        let mut pl = pl_lock.lock();
        if !pl.note_applied(src, op) {
            // Retransmission of an applied migration: the ack was lost.
            drop(pl);
            drop(dir);
            NodeStats::bump(&n.stats.stale_msgs_in);
            n.send(src, Msg::MigrateAck { block, op });
            return;
        }
        // This node homes the block now; a stub from a past tenure is void.
        pl.clear_stub(block);
        // Normalize our own membership out of the shipped entry: our copy
        // keeps its current tag, the entry only records the *others*.
        let state = if excl {
            if owner == n.me {
                DirState::Uncached // we hold the writable copy, now as home
            } else {
                DirState::Exclusive(owner)
            }
        } else {
            let others = sharers.without(n.me);
            if others.is_empty() {
                DirState::Uncached
            } else {
                DirState::Shared(others)
            }
        };
        {
            let mut mem = n.mem.lock();
            if let Some(d) = &data {
                if !mem.probe(block).readable() {
                    // Home memory becomes current here; our own copy stays
                    // Invalid (we are not in the entry) until we fault.
                    mem.install(block, &d[..], Tag::Invalid, false);
                    NodeStats::add(&n.stats.data_bytes_in, d.len() as u64);
                }
            }
        }
        dir.entry(block).state = state;
        n.homes.set(block, n.me);
        self.hooks.import_block_schedule(n, block, &sched);
        drop(pl);
        drop(dir);
        n.send(src, Msg::MigrateAck { block, op });
    }
}

/// Phase-boundary migration window, run by the *compute* thread of every
/// node between two barriers (the machine is quiescent: no coherence
/// request is in flight). Decides which of this node's home blocks migrate
/// ([`crate::placement::Placement::decide`]), hands each one to its new
/// home, and blocks until every handover is acknowledged, re-sending on
/// timeout. Returns `(blocks moved, data bytes shipped)`.
///
/// The old home's own copy of a migrated block keeps its tag and bytes —
/// the handover is purely directory-side — so fault counts are identical
/// with migration on or off.
pub fn run_migration_window(
    n: &NodeShared,
    hooks: &dyn Hooks,
    wake_rx: &Receiver<Wake>,
    stash: &mut Vec<Wake>,
) -> (u64, u64) {
    let Some(pl_lock) = &n.placement else { return (0, 0) };
    let picks = pl_lock.lock().decide(n.me);
    if picks.is_empty() {
        return (0, 0);
    }
    let mut pending: HashMap<u64, (NodeId, Msg)> = HashMap::new();
    let mut moved = 0u64;
    let mut bytes = 0u64;
    for (block, dest) in picks {
        let mut dir = n.dir.lock();
        // Defensive: a busy entry at a barrier is a protocol bug, but a
        // skipped migration is always safe — the block just stays put.
        if dir.get(block).is_some_and(|e| e.is_busy() || !e.waiters.is_empty()) {
            continue;
        }
        let state = dir.get(block).map(|e| e.state).unwrap_or_default();
        let mut pl = pl_lock.lock();
        let mem = n.mem.lock();
        // Demote ourselves to an ordinary cached copy at our current tag;
        // the shipped entry records that copy so no future fault is added
        // or removed by the move.
        let my_tag = mem.probe(block);
        let (excl, owner, sharers, data) = match state {
            DirState::Exclusive(w) => (true, w, NodeSet::EMPTY, None),
            DirState::Uncached if my_tag == Tag::ReadWrite => (true, n.me, NodeSet::EMPTY, None),
            DirState::Uncached | DirState::Shared(_) => {
                let s = match state {
                    DirState::Shared(s) => s,
                    _ => NodeSet::EMPTY,
                };
                let s = if my_tag == Tag::ReadOnly { s.union(NodeSet::single(n.me)) } else { s };
                (false, 0, s, Some(mem.snapshot(block)))
            }
        };
        drop(mem);
        let sched: Arc<[u64]> = hooks.export_block_schedule(n, block).into();
        let op = pl.alloc_op();
        // Local handover: forget the entry, leave the forwarding stub,
        // update our view. Our copy's tag and bytes are untouched.
        dir.remove(block);
        pl.set_stub(block, dest);
        pl.clear_traffic(block);
        drop(pl);
        drop(dir);
        n.homes.set(block, dest);
        bytes += data.as_ref().map_or(0, |d| d.len() as u64);
        moved += 1;
        NodeStats::bump(&n.stats.migrations);
        let msg = Msg::Migrate { block, excl, owner, sharers, data, sched, op };
        n.send(dest, msg.clone());
        pending.insert(op, (dest, msg));
    }
    n.flush_net();
    let mut retries: u32 = 0;
    while !pending.is_empty() {
        match wake_rx.recv_timeout(n.retry.timeout) {
            Ok(Wake::MigrateAck { op, .. }) => {
                pending.remove(&op);
            }
            Ok(w @ Wake::User { .. }) => stash.push(w),
            // Straggler grant wakes (outstanding is 0 here) and fence
            // markers are not ours to consume meaningfully.
            Ok(Wake::Grant { .. }) | Ok(Wake::Fence) => {}
            Err(RecvTimeoutError::Timeout) => {
                if n.is_aborting() {
                    std::panic::panic_any(prescient_tempest::Aborted);
                }
                retries += 1;
                NodeStats::bump(&n.stats.retries);
                assert!(
                    retries <= n.retry.max_retries,
                    "node {}: {} migration acks missing after {} retries (machine wedged)",
                    n.me,
                    pending.len(),
                    retries
                );
                for (dest, msg) in pending.values() {
                    n.send(*dest, msg.clone());
                }
                n.flush_net();
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("protocol thread terminated during migration")
            }
        }
    }
    (moved, bytes)
}

/// Compute-side fault path: request `block` from its home and block until
/// granted. Re-issues the request (with a fresh seq) every
/// [`crate::node::RetryConfig::timeout`] without an answer, so lost
/// requests, lost grants, and stalled multi-hop rounds all recover.
///
/// `stash` collects extension wake-ups ([`Wake::User`]) that arrive while
/// we wait (e.g. pre-send acknowledgements addressed to the pre-send
/// driver); the caller processes them afterwards.
pub fn fetch(
    n: &NodeShared,
    wake_rx: &Receiver<Wake>,
    block: BlockId,
    excl: bool,
    stash: &mut Vec<Wake>,
) -> GrantInfo {
    let mut retries: u32 = 0;
    loop {
        // Re-derived every attempt: a Forward bounce updates the view while
        // we wait, so the retry goes straight to the new home.
        let home = n.homes.home_of_block(block);
        let seq = n.next_seq();
        n.set_outstanding(seq);
        n.send(
            home,
            if excl { Msg::GetExcl { block, seq } } else { Msg::GetShared { block, seq } },
        );
        // About to block on the grant: the request (and anything buffered
        // before it) must actually be on the wire.
        n.flush_net();
        loop {
            match wake_rx.recv_timeout(n.retry.timeout) {
                Ok(Wake::Grant { block: b, excl: e, extra_hops, bytes, recorded, seq: s }) => {
                    if s != seq {
                        // A grant from a superseded attempt; the handler
                        // already refused to install it.
                        continue;
                    }
                    debug_assert_eq!(b, block, "grant for a different block");
                    debug_assert_eq!(e, excl, "grant of a different kind");
                    {
                        // Clear under the mem lock: from here on, a late
                        // duplicate of this grant must not install.
                        let _mem = n.mem.lock();
                        n.clear_outstanding();
                    }
                    return GrantInfo { extra_hops, bytes, recorded, retries };
                }
                Ok(w @ Wake::User { .. }) => stash.push(w),
                // A fence marker from a recovery round that this fetch has
                // no business consuming cannot occur (fences are only in
                // flight while every compute thread sits in the recovery
                // protocol, not in a fetch) — but ignoring one is harmless.
                Ok(Wake::Fence) => {}
                // A straggler ack for a migration window that already
                // closed (its retransmission raced the ack).
                Ok(Wake::MigrateAck { .. }) => {}
                Err(RecvTimeoutError::Timeout) => {
                    if n.is_aborting() {
                        // The machine was declared dead (panic isolation /
                        // watchdog): unwind instead of re-arming retries.
                        std::panic::panic_any(prescient_tempest::Aborted);
                    }
                    retries += 1;
                    // Counted at the timeout (not once the grant lands) so
                    // a wedged fetch is visible to the watchdog's report.
                    NodeStats::bump(&n.stats.retries);
                    n.tracer().emit(
                        prescient_tempest::trace::EventKind::Retry,
                        block.0,
                        u64::from(retries),
                    );
                    assert!(
                        retries <= n.retry.max_retries,
                        "node {}: no grant for {:?} after {} retries (machine wedged)",
                        n.me,
                        block,
                        retries - 1
                    );
                    break; // re-issue with a fresh seq
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("protocol thread terminated during fetch")
                }
            }
        }
    }
}
