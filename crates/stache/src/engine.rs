//! The Stache protocol handlers and the compute-side fault path.
//!
//! All coherence traffic — including a node's faults on its *own* home
//! blocks — travels as messages through the fabric and is processed by
//! protocol-handler threads, so there is exactly one code path. Handlers
//! never block: multi-hop operations (recalls, invalidation rounds) park
//! the directory entry in a transient [`Busy`] state and queue later
//! requests.
//!
//! Message patterns (§3.1–3.2 of the paper):
//!
//! * 2-hop read: requester → home (`GetShared`), home → requester
//!   (`Grant` + data);
//! * 4-hop producer/consumer transfer: consumer → home (`GetShared`),
//!   home → producer (`Recall`), producer → home (`RecallData`),
//!   home → consumer (`Grant`) — the write-invalidate inefficiency the
//!   predictive protocol removes;
//! * write to shared data: home sends `Invalidate` to every sharer and
//!   grants only after all `InvalAck`s (sequential consistency).

use std::sync::Arc;

use crossbeam::channel::Receiver;
use prescient_tempest::tag::Tag;
use prescient_tempest::{BlockId, NodeId, NodeSet, NodeStats};

use crate::dir::{Busy, DirEntry, DirState, PendingReq};
use crate::hooks::Hooks;
use crate::msg::{Msg, Wake};
use crate::node::NodeShared;

/// Outcome of one granted fetch, as seen by the compute thread; input to
/// the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantInfo {
    /// Protocol hops beyond the minimal request–response pair.
    pub extra_hops: u32,
    /// Data bytes moved (0 for upgrades / home-local grants).
    pub bytes: usize,
    /// The home recorded the request into a communication schedule.
    pub recorded: bool,
}

/// The per-node protocol engine: Stache handlers plus the extension hooks.
pub struct Engine {
    hooks: Arc<dyn Hooks>,
}

impl Engine {
    /// Create an engine with the given extension.
    pub fn new(hooks: Arc<dyn Hooks>) -> Engine {
        Engine { hooks }
    }

    /// Handle one message; returns `false` on shutdown.
    pub fn handle(&self, n: &NodeShared, src: NodeId, msg: Msg) -> bool {
        match msg {
            Msg::GetShared { block } => {
                let recorded = self.hooks.on_home_request(n, block, src, false);
                self.request(n, block, PendingReq { requester: src, excl: false, recorded });
            }
            Msg::GetExcl { block } => {
                let recorded = self.hooks.on_home_request(n, block, src, true);
                self.request(n, block, PendingReq { requester: src, excl: true, recorded });
            }
            Msg::Recall { block, inval } => self.on_recall(n, src, block, inval),
            Msg::RecallData { block, data } => self.on_recall_data(n, block, data),
            Msg::Invalidate { block } => self.on_invalidate(n, src, block),
            Msg::InvalAck { block } => self.on_inval_ack(n, block),
            Msg::Grant { block, excl, data, extra_hops, recorded } => {
                self.on_grant(n, src, block, excl, data, extra_hops, recorded)
            }
            Msg::User(um) => self.hooks.on_user(n, src, um),
            Msg::Shutdown => return false,
        }
        true
    }

    /// A `GetShared`/`GetExcl` arrived at this home node.
    fn request(&self, n: &NodeShared, block: BlockId, req: PendingReq) {
        debug_assert_eq!(n.layout.home_of_block(block), n.me, "request routed to non-home");
        let mut dir = n.dir.lock();
        let e = dir.entry(block).or_default();
        if e.is_busy() {
            e.waiters.push_back(req);
            return;
        }
        self.dispatch(n, e, block, req);
        Self::drain(self, n, e, block);
    }

    /// Process one request against a non-busy entry. May leave the entry
    /// busy. Caller holds the dir lock.
    fn dispatch(&self, n: &NodeShared, e: &mut DirEntry, block: BlockId, req: PendingReq) {
        debug_assert!(!e.is_busy());
        match e.state {
            DirState::Uncached => {
                if req.requester == n.me {
                    // Home fault on an uncached block: only reachable from
                    // the pre-send driver's ensure step; the tag is already
                    // adequate. Re-grant locally.
                    self.grant(n, e, block, req, false, 0);
                } else if req.excl {
                    n.mem.lock().set_tag(block, Tag::Invalid);
                    e.state = DirState::Exclusive(req.requester);
                    self.grant(n, e, block, req, true, 0);
                } else {
                    n.mem.lock().set_tag(block, Tag::ReadOnly);
                    e.state = DirState::Shared(NodeSet::single(req.requester));
                    self.grant(n, e, block, req, true, 0);
                }
            }
            DirState::Shared(s) => {
                if !req.excl {
                    if req.requester == n.me {
                        // Home tag is ReadOnly in Shared: readable already.
                        self.grant(n, e, block, req, false, 0);
                    } else {
                        if s.contains(req.requester) {
                            // Already a sharer (e.g. raced with a pre-send):
                            // re-send data; harmless and diagnostic-counted.
                            NodeStats::bump(&n.stats.presend_races);
                        }
                        e.state = DirState::Shared(s.union(NodeSet::single(req.requester)));
                        self.grant(n, e, block, req, true, 0);
                    }
                } else {
                    let upgrade = s.contains(req.requester);
                    let others = s.without(req.requester);
                    if others.is_empty() {
                        self.finalize_excl(n, e, block, req, upgrade, 0);
                    } else {
                        for o in others.iter() {
                            n.send(o, Msg::Invalidate { block });
                        }
                        e.busy = Some(Busy::Invals {
                            req,
                            remaining: others.len() as u32,
                        });
                        // `upgrade` is re-derived at completion from whether
                        // the requester kept a copy: sharers other than the
                        // requester were invalidated, so remember it inline.
                        if upgrade {
                            // Stash by re-encoding the state: the requester
                            // remains the only sharer until completion.
                            e.state = DirState::Shared(NodeSet::single(req.requester));
                        } else {
                            e.state = DirState::Shared(NodeSet::EMPTY);
                        }
                    }
                }
            }
            DirState::Exclusive(owner) => {
                debug_assert_ne!(owner, req.requester, "exclusive owner should not fault");
                n.send(owner, Msg::Recall { block, inval: req.excl });
                e.busy = Some(Busy::Recall { req, owner });
            }
        }
    }

    /// Complete an exclusive grant once no conflicting copies remain.
    /// `upgrade`: the requester already holds current data.
    fn finalize_excl(
        &self,
        n: &NodeShared,
        e: &mut DirEntry,
        block: BlockId,
        req: PendingReq,
        upgrade: bool,
        extra_hops: u32,
    ) {
        if req.requester == n.me {
            n.mem.lock().set_tag(block, Tag::ReadWrite);
            e.state = DirState::Uncached;
            self.grant_nodata(n, block, req, extra_hops);
        } else {
            e.state = DirState::Exclusive(req.requester);
            if upgrade {
                n.mem.lock().set_tag(block, Tag::Invalid);
                self.grant_nodata(n, block, req, extra_hops);
            } else {
                let mut mem = n.mem.lock();
                let data = mem.snapshot(block);
                mem.set_tag(block, Tag::Invalid);
                drop(mem);
                n.send(
                    req.requester,
                    Msg::Grant {
                        block,
                        excl: true,
                        data: Some(data),
                        extra_hops,
                        recorded: req.recorded,
                    },
                );
            }
        }
    }

    /// Grant a request. `with_data`: ship the home's current block bytes.
    fn grant(
        &self,
        n: &NodeShared,
        _e: &mut DirEntry,
        block: BlockId,
        req: PendingReq,
        with_data: bool,
        extra_hops: u32,
    ) {
        let data = if with_data { Some(n.mem.lock().snapshot(block)) } else { None };
        n.send(
            req.requester,
            Msg::Grant { block, excl: req.excl, data, extra_hops, recorded: req.recorded },
        );
    }

    fn grant_nodata(&self, n: &NodeShared, block: BlockId, req: PendingReq, extra_hops: u32) {
        n.send(
            req.requester,
            Msg::Grant { block, excl: req.excl, data: None, extra_hops, recorded: req.recorded },
        );
    }

    /// Serve queued requests until the entry goes busy again or the queue
    /// empties. Caller holds the dir lock.
    fn drain(&self, n: &NodeShared, e: &mut DirEntry, block: BlockId) {
        while !e.is_busy() {
            let Some(next) = e.waiters.pop_front() else { break };
            self.dispatch(n, e, block, next);
        }
    }

    /// Owner side of a recall: give the block back to the home.
    fn on_recall(&self, n: &NodeShared, home: NodeId, block: BlockId, inval: bool) {
        let mut mem = n.mem.lock();
        NodeStats::bump(&n.stats.recalls_in);
        debug_assert!(
            mem.probe(block).readable(),
            "node {} recalled for {:?} it does not hold",
            n.me,
            block
        );
        let data = mem.snapshot(block);
        mem.set_tag(block, if inval { Tag::Invalid } else { Tag::ReadOnly });
        drop(mem);
        n.send(home, Msg::RecallData { block, data });
    }

    /// Home side: recalled data returned; complete the parked request.
    fn on_recall_data(&self, n: &NodeShared, block: BlockId, data: Box<[u8]>) {
        let mut dir = n.dir.lock();
        let e = dir.get_mut(&block).expect("recall data for unknown entry");
        let Some(Busy::Recall { req, owner }) = e.busy.take() else {
            panic!("node {}: RecallData for {:?} without recall in flight", n.me, block);
        };
        if req.excl {
            // Owner was invalidated. Home memory gets the fresh data but
            // stays Invalid unless the requester is the home itself.
            if req.requester == n.me {
                n.mem.lock().install(block, &data, Tag::ReadWrite, false);
                e.state = DirState::Uncached;
                self.grant_nodata(n, block, req, 1);
            } else {
                n.mem.lock().install(block, &data, Tag::Invalid, false);
                e.state = DirState::Exclusive(req.requester);
                n.send(
                    req.requester,
                    Msg::Grant {
                        block,
                        excl: true,
                        data: Some(data),
                        extra_hops: 1,
                        recorded: req.recorded,
                    },
                );
            }
        } else {
            // Owner was downgraded and stays a sharer.
            n.mem.lock().install(block, &data, Tag::ReadOnly, false);
            if req.requester == n.me {
                e.state = DirState::Shared(NodeSet::single(owner));
                self.grant_nodata(n, block, req, 1);
            } else {
                let mut s = NodeSet::single(owner);
                s.insert(req.requester);
                e.state = DirState::Shared(s);
                n.send(
                    req.requester,
                    Msg::Grant {
                        block,
                        excl: false,
                        data: Some(data),
                        extra_hops: 1,
                        recorded: req.recorded,
                    },
                );
            }
        }
        self.drain(n, e, block);
    }

    /// Sharer side of an invalidation.
    fn on_invalidate(&self, n: &NodeShared, home: NodeId, block: BlockId) {
        let mut mem = n.mem.lock();
        NodeStats::bump(&n.stats.invals_in);
        mem.set_tag(block, Tag::Invalid);
        drop(mem);
        n.send(home, Msg::InvalAck { block });
    }

    /// Home side: one invalidation acknowledged.
    fn on_inval_ack(&self, n: &NodeShared, block: BlockId) {
        let mut dir = n.dir.lock();
        let e = dir.get_mut(&block).expect("ack for unknown entry");
        let Some(Busy::Invals { req, remaining }) = e.busy.take() else {
            panic!("node {}: InvalAck for {:?} without invals in flight", n.me, block);
        };
        if remaining > 1 {
            e.busy = Some(Busy::Invals { req, remaining: remaining - 1 });
            return;
        }
        // All sharers gone; `dispatch` encoded whether the requester kept a
        // copy in the residual Shared set.
        let upgrade = matches!(e.state, DirState::Shared(s) if s.contains(req.requester));
        self.finalize_excl(n, e, block, req, upgrade, 1);
        self.drain(n, e, block);
    }

    /// Requester side: install the granted copy and wake the compute thread.
    ///
    /// Home-local grants (`src == me`) carry no data and must NOT touch the
    /// tag here: the dispatching handler already set it atomically under
    /// the directory lock, and by the time this (self-queued) message is
    /// processed a later waiter may have been granted the block — flipping
    /// the tag now would resurrect a revoked copy and lose that waiter's
    /// writes. The compute thread's retry loop re-faults if its grant was
    /// overtaken.
    fn on_grant(
        &self,
        n: &NodeShared,
        src: NodeId,
        block: BlockId,
        excl: bool,
        data: Option<Box<[u8]>>,
        extra_hops: u32,
        recorded: bool,
    ) {
        let bytes = data.as_ref().map_or(0, |d| d.len());
        if src == n.me {
            debug_assert!(data.is_none(), "local grants never carry data");
        } else {
            let tag = if excl { Tag::ReadWrite } else { Tag::ReadOnly };
            let mut mem = n.mem.lock();
            match data {
                Some(d) => mem.install(block, &d, tag, false),
                None => mem.set_tag(block, tag),
            }
        }
        n.wake(Wake::Grant { block, excl, extra_hops, bytes, recorded });
    }
}

/// Compute-side fault path: request `block` from its home and block until
/// granted.
///
/// `stash` collects extension wake-ups ([`Wake::User`]) that arrive while
/// we wait (e.g. pre-send acknowledgements addressed to the pre-send
/// driver); the caller processes them afterwards.
pub fn fetch(
    n: &NodeShared,
    wake_rx: &Receiver<Wake>,
    block: BlockId,
    excl: bool,
    stash: &mut Vec<Wake>,
) -> GrantInfo {
    let home = n.layout.home_of_block(block);
    n.send(home, if excl { Msg::GetExcl { block } } else { Msg::GetShared { block } });
    loop {
        let w = wake_rx.recv().expect("protocol thread terminated during fetch");
        match w {
            Wake::Grant { block: b, excl: e, extra_hops, bytes, recorded } => {
                debug_assert_eq!(b, block, "grant for a different block");
                debug_assert_eq!(e, excl, "grant of a different kind");
                return GrantInfo { extra_hops, bytes, recorded };
            }
            Wake::User { .. } => stash.push(w),
        }
    }
}
