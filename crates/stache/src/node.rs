//! Per-node shared state and the protocol-handler thread.
//!
//! Each emulated node runs **two** OS threads, mirroring Blizzard on the
//! CM-5: a *compute* thread executing the application (and blocking on its
//! own access faults) and a *protocol-handler* thread draining the node's
//! network inbox (Blizzard ran handlers from the network interrupt). Both
//! threads share this [`NodeShared`] bundle.
//!
//! Lock ordering: `dir` before extension-internal locks (e.g. the
//! predictive protocol's schedule/health state) before `mem`; `recalled`
//! is a leaf lock never held together with any of them.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use prescient_tempest::fabric::{Endpoint, FabricCtl, Net, ShardEndpoint};
use prescient_tempest::trace::{pack_msg, EventKind, Tracer};
use prescient_tempest::{
    BlockId, CostModel, GlobalLayout, HomeMap, HomeView, MemCheckpoint, NodeId, NodeMem, NodeStats,
};

use crate::dir::{DirCheckpoint, Directory};
use crate::engine::Engine;
use crate::hooks::Hooks;
use crate::msg::{Msg, Wake};
use crate::placement::{Placement, PlacementCheckpoint, PlacementConfig};

/// Compute-side request retry policy. The timeout is wall-clock (it bounds
/// how long a blocked fetch waits for a grant that a faulty fabric may
/// have dropped); its *virtual-time* cost is billed separately as
/// `CostModel::retry_ns` per retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// How long a fetch waits for its grant before re-issuing the request.
    pub timeout: Duration,
    /// Upper bound on re-issues of one fetch before declaring the machine
    /// wedged (panics; only reachable if the fabric drops everything or a
    /// protocol bug loses a request).
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig { timeout: Duration::from_millis(200), max_retries: 50 }
    }
}

/// The recorded reply to the last recall this node answered for a block:
/// re-sent verbatim if the same recall round asks again (its first reply
/// was lost), so recall replies are idempotent and modified data cannot be
/// lost or resurrected by retransmissions.
#[derive(Debug, Clone)]
pub struct RecallReply {
    /// Recall round the reply answered.
    pub op: u64,
    /// Bytes shipped home (shared with the in-flight reply; re-sending is
    /// a refcount bump).
    pub data: Arc<[u8]>,
    /// The copy was an unread pre-send.
    pub unused: bool,
}

/// State shared between a node's compute thread and its protocol-handler
/// thread (and readable by extensions).
pub struct NodeShared {
    /// This node's id.
    pub me: NodeId,
    /// Machine layout (node count, block size, homes).
    pub layout: GlobalLayout,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Request retry policy.
    pub retry: RetryConfig,
    /// This node's live block→home view (shared with the block store).
    /// Identity (homes follow the segment layout) unless a remap overlay
    /// or rotation was configured, or online migration has fired.
    pub homes: Arc<HomeView>,
    /// Online-placement state (traffic tallies, forwarding stubs); `None`
    /// when home migration is disabled.
    pub placement: Option<Mutex<Placement>>,
    /// Block store: home memory plus cached remote blocks.
    pub mem: Mutex<NodeMem>,
    /// Home directory for this node's blocks.
    pub dir: Mutex<Directory>,
    /// Per-block record of the last recall reply sent (see [`RecallReply`]).
    pub recalled: Mutex<HashMap<BlockId, RecallReply>>,
    /// Event counters.
    pub stats: NodeStats,
    /// Next request sequence number (monotonic; 0 is never issued).
    seq: AtomicU64,
    /// Seq of the fetch in flight on the compute thread (0 = none). Grants
    /// that do not match are stale and must not install.
    outstanding: AtomicU64,
    net: Net<Msg>,
    wake_tx: Sender<Wake>,
}

impl NodeShared {
    /// Assemble the shared state for node `me` with the default retry
    /// policy.
    pub fn new(
        layout: GlobalLayout,
        cost: CostModel,
        net: Net<Msg>,
        wake_tx: Sender<Wake>,
    ) -> NodeShared {
        NodeShared::new_with_retry(layout, cost, net, wake_tx, RetryConfig::default())
    }

    /// Assemble the shared state with an explicit retry policy and the
    /// identity home view (no placement).
    pub fn new_with_retry(
        layout: GlobalLayout,
        cost: CostModel,
        net: Net<Msg>,
        wake_tx: Sender<Wake>,
        retry: RetryConfig,
    ) -> NodeShared {
        let homes = Arc::new(HomeView::identity(layout));
        NodeShared::new_with_placement(layout, cost, net, wake_tx, retry, homes, None)
    }

    /// Assemble the shared state with an explicit home view and, when
    /// `placement` is given, online home migration enabled.
    pub fn new_with_placement(
        layout: GlobalLayout,
        cost: CostModel,
        net: Net<Msg>,
        wake_tx: Sender<Wake>,
        retry: RetryConfig,
        homes: Arc<HomeView>,
        placement: Option<PlacementConfig>,
    ) -> NodeShared {
        let me = net.me();
        NodeShared {
            me,
            layout,
            cost,
            retry,
            mem: Mutex::new(NodeMem::with_view(layout, me, Arc::clone(&homes))),
            homes,
            placement: placement.map(|cfg| Mutex::new(Placement::new(cfg))),
            dir: Mutex::new(Directory::new()),
            recalled: Mutex::new(HashMap::new()),
            stats: NodeStats::default(),
            seq: AtomicU64::new(1),
            outstanding: AtomicU64::new(0),
            net,
            wake_tx,
        }
    }

    /// Draw the next request sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Declare `seq` as the fetch in flight.
    pub fn set_outstanding(&self, seq: u64) {
        self.outstanding.store(seq, Ordering::Release);
    }

    /// The fetch in flight (0 = none). To stay race-free against grant
    /// installation, the compute thread clears this while holding the
    /// `mem` lock and the grant handler reads it under the same lock.
    pub fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Clear the fetch in flight. Call with the `mem` lock held (see
    /// [`NodeShared::outstanding`]).
    pub fn clear_outstanding(&self) {
        self.outstanding.store(0, Ordering::Release);
    }

    /// Send a protocol message to `dst`, counting it. The message may sit
    /// in the fabric's per-destination egress buffer until the next flush;
    /// any code that blocks waiting for a *reply* must call
    /// [`NodeShared::flush_net`] after its last send (the protocol thread
    /// itself flushes automatically before blocking on an empty inbox).
    pub fn send(&self, dst: NodeId, msg: Msg) {
        NodeStats::bump(&self.stats.msgs_out);
        self.net.tracer().emit(EventKind::MsgSend, pack_msg(msg.kind_code(), dst), msg.trace_aux());
        self.net.send(dst, msg);
    }

    /// This node's tracing handle (the one its fabric endpoint carries;
    /// disabled unless the machine layer installed a live tracer).
    pub fn tracer(&self) -> &Tracer {
        self.net.tracer()
    }

    /// Push every buffered outgoing message onto the wire (see
    /// [`Net::flush_all`]). Cheap when nothing is buffered.
    pub fn flush_net(&self) {
        self.net.flush_all();
    }

    /// Wake this node's compute thread.
    pub fn wake(&self, w: Wake) {
        // Failure means the compute side hung up (teardown); harmless.
        let _ = self.wake_tx.send(w);
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.layout.nodes
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.layout.block_size
    }

    /// The fabric's shared control block (teardown / abort flags).
    pub fn fabric_ctl(&self) -> &Arc<FabricCtl> {
        self.net.ctl()
    }

    /// Has the machine been declared dead (panic isolation or watchdog)?
    /// Retry loops check this instead of re-arming their timeouts forever.
    pub fn is_aborting(&self) -> bool {
        self.net.ctl().is_aborting()
    }

    /// Discard everything the fabric's fault layer is holding (see
    /// `Net::purge_faults`); part of the recovery drain.
    pub fn purge_faults(&self) {
        self.net.purge_faults();
    }

    /// Capture this node's full protocol state at a quiescent cut: the
    /// block store, the home directory shard, the request-seq counter, and
    /// the recall-reply cache. Every lock is taken briefly and in order
    /// (`dir` before `mem`, `recalled` leaf); at a barrier no other thread
    /// contends.
    pub fn checkpoint(&self) -> NodeCheckpoint {
        let dir = self.dir.lock().checkpoint();
        let mem = self.mem.lock().checkpoint();
        let recalled = self.recalled.lock().iter().map(|(b, r)| (*b, r.clone())).collect();
        NodeCheckpoint {
            mem,
            dir,
            seq: self.seq.load(Ordering::Relaxed),
            recalled,
            overlay: self.homes.snapshot(),
            placement: self.placement.as_ref().map(|p| p.lock().checkpoint()),
        }
    }

    /// Roll this node's protocol state back to a captured cut. Callable
    /// only while the machine is quiescent (the recovery protocol drains
    /// the channels first): the block store, directory shard, seq counter,
    /// and recall-reply cache all rewind together, so replayed requests
    /// re-draw the same seqs the restored watermarks expect.
    pub fn restore(&self, ckpt: &NodeCheckpoint) {
        self.dir.lock().restore(&ckpt.dir);
        self.mem.lock().restore(&ckpt.mem);
        *self.recalled.lock() = ckpt.recalled.iter().cloned().collect();
        self.homes.restore(&ckpt.overlay);
        if let (Some(p), Some(pc)) = (self.placement.as_ref(), ckpt.placement.as_ref()) {
            p.lock().restore(pc);
        }
        self.seq.store(ckpt.seq, Ordering::Relaxed);
        self.outstanding.store(0, Ordering::Release);
    }
}

/// One node's shard of a barrier-consistent checkpoint: block store,
/// directory, request-seq counter, and recall-reply cache, captured
/// together at the cut by [`NodeShared::checkpoint`].
#[derive(Debug, Clone)]
pub struct NodeCheckpoint {
    /// The paged block store (bytes, tags, unread-pre-send bits, allocator).
    pub mem: MemCheckpoint,
    /// The home directory shard (entries, seq watermarks, op allocator).
    pub dir: DirCheckpoint,
    /// The node's request sequence counter at the cut.
    pub seq: u64,
    /// The recall-reply idempotency cache at the cut.
    pub recalled: Vec<(BlockId, RecallReply)>,
    /// This node's home-view overlay at the cut (migrated homes it knew
    /// about); the rotation shift is configuration, not state, and is not
    /// checkpointed.
    pub overlay: HomeMap,
    /// Online-placement state (stubs, traffic, idempotency memory) at the
    /// cut; `None` when migration is disabled.
    pub placement: Option<PlacementCheckpoint>,
}

impl NodeCheckpoint {
    /// Block-data bytes aboard (the checkpoint's dominant cost).
    pub fn bytes(&self) -> u64 {
        self.mem.bytes()
    }
}

/// Start the protocol-handler thread for a node: drains `endpoint`,
/// dispatching every message through the engine until `Msg::Shutdown`.
///
/// On exit the thread marks the fabric as closing before its endpoint is
/// dropped: from the first `Shutdown` onward, in-flight traffic addressed
/// to exited nodes (e.g. duplicates released by the fault layer) is
/// legitimate teardown loss rather than a protocol bug.
pub fn spawn_protocol(
    shared: Arc<NodeShared>,
    endpoint: Endpoint<Msg>,
    hooks: Arc<dyn Hooks>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("proto-{}", shared.me))
        .spawn(move || {
            let engine = Engine::new(hooks);
            while let Some(env) = endpoint.recv() {
                shared.tracer().emit(
                    EventKind::MsgRecv,
                    pack_msg(env.msg.kind_code(), env.src),
                    env.msg.trace_aux(),
                );
                if !engine.handle(&shared, env.src, env.msg) {
                    break;
                }
            }
            // Replies produced while draining the final batch (before the
            // Shutdown envelope) may still sit in the egress; push them
            // out before this endpoint disappears.
            shared.flush_net();
            endpoint.ctl().mark_closing();
        })
        .expect("spawn protocol thread")
}

/// Start one shard loop of a sharded fabric: a single OS thread drains
/// the [`ShardEndpoint`] and dispatches each envelope to the engine of
/// the member node it addresses, replacing one protocol thread per node
/// with one per shard. `members` must match `ep.members()` one-to-one,
/// in the same (ascending) order.
///
/// Teardown semantics mirror the per-node loop exactly: once a member has
/// handled its `Msg::Shutdown`, later envelopes addressed to it are
/// dropped unprocessed (in the per-node model they would sit in a dead
/// thread's inbox), and the loop exits when every member has shut down.
pub fn spawn_protocol_shard(
    members: Vec<(Arc<NodeShared>, Arc<dyn Hooks>)>,
    ep: ShardEndpoint<Msg>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("proto-shard-{}", ep.shard()))
        .spawn(move || {
            let ids: Vec<NodeId> = members.iter().map(|(s, _)| s.me).collect();
            assert_eq!(ids, ep.members(), "members must match the shard endpoint");
            let engines: Vec<(Arc<NodeShared>, Engine)> =
                members.into_iter().map(|(s, h)| (s, Engine::new(h))).collect();
            let mut live = vec![true; engines.len()];
            let mut alive = engines.len();
            while alive > 0 {
                let Some(env) = ep.recv() else { break };
                let idx = ids.binary_search(&env.dst).expect("envelope for a non-member node");
                if !live[idx] {
                    continue;
                }
                let (shared, engine) = &engines[idx];
                shared.tracer().emit(
                    EventKind::MsgRecv,
                    pack_msg(env.msg.kind_code(), env.src),
                    env.msg.trace_aux(),
                );
                if !engine.handle(shared, env.src, env.msg) {
                    live[idx] = false;
                    alive -= 1;
                }
            }
            for (shared, _) in &engines {
                shared.flush_net();
            }
            ep.ctl().mark_closing();
        })
        .expect("spawn shard protocol thread")
}
