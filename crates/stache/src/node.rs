//! Per-node shared state and the protocol-handler thread.
//!
//! Each emulated node runs **two** OS threads, mirroring Blizzard on the
//! CM-5: a *compute* thread executing the application (and blocking on its
//! own access faults) and a *protocol-handler* thread draining the node's
//! network inbox (Blizzard ran handlers from the network interrupt). Both
//! threads share this [`NodeShared`] bundle.
//!
//! Lock ordering: `dir` before `mem`; extension-internal locks (e.g. the
//! schedule store) are leaf locks and are never held while acquiring `dir`
//! or `mem`.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use prescient_tempest::fabric::{Endpoint, Net};
use prescient_tempest::{CostModel, GlobalLayout, NodeId, NodeMem, NodeStats};

use crate::dir::DirMap;
use crate::engine::Engine;
use crate::hooks::Hooks;
use crate::msg::{Msg, Wake};

/// State shared between a node's compute thread and its protocol-handler
/// thread (and readable by extensions).
pub struct NodeShared {
    /// This node's id.
    pub me: NodeId,
    /// Machine layout (node count, block size, homes).
    pub layout: GlobalLayout,
    /// Virtual-time cost constants.
    pub cost: CostModel,
    /// Block store: home memory plus cached remote blocks.
    pub mem: Mutex<NodeMem>,
    /// Home directory for this node's blocks.
    pub dir: Mutex<DirMap>,
    /// Event counters.
    pub stats: NodeStats,
    net: Net<Msg>,
    wake_tx: Sender<Wake>,
}

impl NodeShared {
    /// Assemble the shared state for node `me`.
    pub fn new(
        layout: GlobalLayout,
        cost: CostModel,
        net: Net<Msg>,
        wake_tx: Sender<Wake>,
    ) -> NodeShared {
        let me = net.me();
        NodeShared {
            me,
            layout,
            cost,
            mem: Mutex::new(NodeMem::new(layout, me)),
            dir: Mutex::new(DirMap::new()),
            stats: NodeStats::default(),
            net,
            wake_tx,
        }
    }

    /// Send a protocol message to `dst`, counting it.
    pub fn send(&self, dst: NodeId, msg: Msg) {
        NodeStats::bump(&self.stats.msgs_out);
        self.net.send(dst, msg);
    }

    /// Wake this node's compute thread.
    pub fn wake(&self, w: Wake) {
        // Failure means the compute side hung up (teardown); harmless.
        let _ = self.wake_tx.send(w);
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> usize {
        self.layout.nodes
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.layout.block_size
    }
}

/// Start the protocol-handler thread for a node: drains `endpoint`,
/// dispatching every message through the engine until `Msg::Shutdown`.
pub fn spawn_protocol(
    shared: Arc<NodeShared>,
    endpoint: Endpoint<Msg>,
    hooks: Arc<dyn Hooks>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("proto-{}", shared.me))
        .spawn(move || {
            let engine = Engine::new(hooks);
            while let Some(env) = endpoint.recv() {
                if !engine.handle(&shared, env.src, env.msg) {
                    break;
                }
            }
        })
        .expect("spawn protocol thread")
}
