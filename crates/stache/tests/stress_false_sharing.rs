//! Regression stress for the self-grant/waiter-queue race: three nodes
//! concurrently upgrade distinct words of one falsely shared block, then
//! all read every word back. Before the fix in `Engine::on_grant`, a home
//! node's queued self-grant could resurrect a revoked writable tag after
//! the block had been re-granted to a waiter, silently losing the home's
//! writes.

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use prescient_stache::{fetch, spawn_protocol, Msg, NoHooks, NodeShared, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::{CostModel, GAddr, GlobalLayout, Prim, VBarrier};
use std::sync::Arc;

#[test]
fn false_sharing_stress() {
    for round in 0..6 {
        let nodes = 3;
        let layout = GlobalLayout::new(nodes, 64);
        let mut tns = Vec::new();
        for ep in Fabric::new::<Msg>(nodes) {
            let (tx, rx) = unbounded();
            let shared =
                Arc::new(NodeShared::new(layout, CostModel::default(), ep.net().clone(), tx));
            spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks));
            tns.push((shared, rx));
        }
        let base = tns[2].0.mem.lock().alloc(8 * 4, 8);
        let barrier = Arc::new(VBarrier::new(nodes));
        let fails: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(vec![]));
        std::thread::scope(|s| {
            for (me, (shared, rx)) in tns.iter().enumerate() {
                let shared = Arc::clone(shared);
                let rx: Receiver<Wake> = rx.clone();
                let barrier = Arc::clone(&barrier);
                let fails = Arc::clone(&fails);
                s.spawn(move || {
                    let mut stash = vec![];
                    let w = |sh: &NodeShared, rx: &Receiver<Wake>, stash: &mut Vec<Wake>, a: GAddr, v: u64| {
                        let mut buf = [0u8; 8]; v.store(&mut buf);
                        loop {
                            let res = sh.mem.lock().write_in_block(a, &buf);
                            match res {
                                Ok(()) => break,
                                Err(f) => { fetch(sh, rx, f.fault().block, true, stash); }
                            }
                        }
                    };
                    let r = |sh: &NodeShared, rx: &Receiver<Wake>, stash: &mut Vec<Wake>, a: GAddr| -> u64 {
                        let mut buf = [0u8; 8];
                        loop {
                            let res = sh.mem.lock().read_in_block(a, &mut buf);
                            match res {
                                Ok(()) => return u64::load(&buf),
                                Err(f) => { fetch(sh, rx, f.fault().block, false, stash); }
                            }
                        }
                    };
                    for iter in 0..6u64 {
                        // write phase: node k writes word k
                        w(&shared, &rx, &mut stash, base.add(8 * me as u64), 1000 * iter + me as u64);
                        barrier.wait(0);
                        // read phase: everyone reads all three words
                        for k in 0..3u64 {
                            let got = r(&shared, &rx, &mut stash, base.add(8 * k));
                            let want = 1000 * iter + k;
                            if got != want {
                                fails.lock().push(format!(
                                    "round {round} iter {iter}: node {me} word {k}: got {got} want {want}"
                                ));
                            }
                        }
                        barrier.wait(0);
                    }
                });
            }
        });
        for (shared, _) in &tns {
            shared.send(shared.me, Msg::Shutdown);
        }
        let f = fails.lock();
        assert!(f.is_empty(), "{:#?}", *f);
    }
}
