//! Property-based wire-format torture: arbitrary protocol frames must
//! round-trip the socket encoding bit-exactly, truncated frames must
//! never decode, and the singleton fast path (`WirePayload::One`) must
//! survive the trip. These are the compiled-out twins of the unit tests
//! in `src/wire.rs` — same properties, adversarial inputs.

use std::sync::Arc;

use prescient_stache::{Msg, UserMsg};
use prescient_tempest::fabric::{WireBatch, WirePayload};
use prescient_tempest::wire::{decode_frame_body, encode_frame};
use prescient_tempest::{BlockId, NodeSet};
use proptest::prelude::*;

fn arb_blob() -> impl Strategy<Value = Arc<[u8]>> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(|v| Arc::from(v.into_boxed_slice()))
}

fn arb_user() -> impl Strategy<Value = UserMsg> {
    (
        any::<u16>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u16>(),
        proptest::collection::vec((any::<u64>(), arb_blob()), 0..5),
    )
        .prop_map(|(code, a, b, block, set, node, blocks)| UserMsg {
            code,
            a,
            b,
            block: BlockId(block),
            set: NodeSet(set),
            node,
            blocks: blocks.into_iter().map(|(b, d)| (BlockId(b), d)).collect::<Vec<_>>().into(),
        })
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(b, seq)| Msg::GetShared { block: BlockId(b), seq }),
        (any::<u64>(), any::<u64>()).prop_map(|(b, seq)| Msg::GetExcl { block: BlockId(b), seq }),
        (any::<u64>(), any::<bool>(), any::<u64>()).prop_map(|(b, inval, op)| Msg::Recall {
            block: BlockId(b),
            inval,
            op
        }),
        (any::<u64>(), proptest::option::of(arb_blob()), any::<u64>(), any::<bool>()).prop_map(
            |(b, data, op, unused)| Msg::RecallData { block: BlockId(b), data, op, unused }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(b, op)| Msg::Invalidate { block: BlockId(b), op }),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(b, op, unused)| Msg::InvalAck {
            block: BlockId(b),
            op,
            unused
        }),
        (
            any::<u64>(),
            any::<bool>(),
            proptest::option::of(arb_blob()),
            any::<u32>(),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(|(b, excl, data, extra_hops, recorded, seq)| Msg::Grant {
                block: BlockId(b),
                excl,
                data,
                extra_hops,
                recorded,
                seq
            }),
        arb_user().prop_map(Msg::User),
        Just(Msg::Shutdown),
        Just(Msg::Fence),
    ]
}

/// Arbitrary wire batches, including the singleton fast path. `Many` is
/// drawn with ≥ 2 messages because the wire format *normalizes*: a frame
/// whose count is 1 always decodes to `One` (checked separately below).
fn arb_batch() -> impl Strategy<Value = WireBatch<Msg>> {
    let payload = prop_oneof![
        arb_msg().prop_map(WirePayload::One),
        proptest::collection::vec(arb_msg(), 2..8).prop_map(WirePayload::Many),
    ];
    (any::<u16>(), any::<u64>(), payload).prop_map(|(src, id, msgs)| WireBatch { src, id, msgs })
}

proptest! {
    #[test]
    fn frames_roundtrip_bit_exactly(dst in any::<u16>(), batch in arb_batch()) {
        let bytes = encode_frame(dst, &batch).unwrap();
        let (got_dst, got) = decode_frame_body::<Msg>(&bytes[4..]).unwrap();
        prop_assert_eq!(got_dst, dst);
        if matches!(batch.msgs, WirePayload::One(_)) {
            prop_assert!(
                matches!(got.msgs, WirePayload::One(_)),
                "the singleton fast path must survive the wire"
            );
        }
        prop_assert_eq!(got, batch);
    }

    #[test]
    fn singleton_many_normalizes_to_one(dst in any::<u16>(), msg in arb_msg(), src in any::<u16>(), id in any::<u64>()) {
        let many = WireBatch { src, id, msgs: WirePayload::Many(vec![msg.clone()]) };
        let bytes = encode_frame(dst, &many).unwrap();
        let (_, got) = decode_frame_body::<Msg>(&bytes[4..]).unwrap();
        match got.msgs {
            WirePayload::One(m) => prop_assert_eq!(m, msg),
            WirePayload::Many(_) => prop_assert!(false, "count == 1 must decode as One"),
        }
    }

    #[test]
    fn truncated_frames_never_decode(batch in arb_batch(), cut in any::<proptest::sample::Index>()) {
        let bytes = encode_frame(0, &batch).unwrap();
        let body = &bytes[4..];
        let cut = cut.index(body.len()); // strict prefix: 0 <= cut < len
        prop_assert!(decode_frame_body::<Msg>(&body[..cut]).is_err());
    }
}
