//! End-to-end tests of the Stache write-invalidate protocol on a small
//! emulated machine: coherence, sequential-consistency-visible values, hop
//! accounting, and waiter queueing.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver};
use prescient_stache::{fetch, spawn_protocol, Msg, NoHooks, NodeShared, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::tag::Tag;
use prescient_tempest::{CostModel, GAddr, GlobalLayout, Prim};

struct TestNode {
    shared: Arc<NodeShared>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
}

struct TestMachine {
    nodes: Vec<TestNode>,
    joins: Vec<JoinHandle<()>>,
}

fn machine(n: usize, block_size: usize) -> TestMachine {
    let layout = GlobalLayout::new(n, block_size);
    let cost = CostModel::default();
    let mut nodes = Vec::new();
    let mut joins = Vec::new();
    for ep in Fabric::new::<Msg>(n) {
        let (wake_tx, wake_rx) = unbounded();
        let shared = Arc::new(NodeShared::new(layout, cost, ep.net().clone(), wake_tx));
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks)));
        nodes.push(TestNode { shared, wake_rx, stash: Vec::new() });
    }
    TestMachine { nodes, joins }
}

impl TestMachine {
    fn shutdown(self) {
        for n in &self.nodes {
            n.shared.send(n.shared.me, Msg::Shutdown);
        }
        for j in self.joins {
            j.join().unwrap();
        }
    }
}

/// Retry-loop read through the DSM, mirroring the runtime's access path.
/// Returns the value and the number of faults taken.
fn read_u64(tn: &mut TestNode, addr: GAddr) -> (u64, u32) {
    let mut faults = 0;
    loop {
        let mut buf = [0u8; 8];
        let r = tn.shared.mem.lock().read_in_block(addr, &mut buf);
        match r {
            Ok(()) => return (u64::load(&buf), faults),
            Err(f) => {
                faults += 1;
                fetch(&tn.shared, &tn.wake_rx, f.fault().block, false, &mut tn.stash);
            }
        }
    }
}

fn write_u64(tn: &mut TestNode, addr: GAddr, v: u64) -> u32 {
    let mut faults = 0;
    let mut buf = [0u8; 8];
    v.store(&mut buf);
    loop {
        let r = tn.shared.mem.lock().write_in_block(addr, &buf);
        match r {
            Ok(()) => return faults,
            Err(f) => {
                faults += 1;
                fetch(&tn.shared, &tn.wake_rx, f.fault().block, true, &mut tn.stash);
            }
        }
    }
}

#[test]
fn remote_read_fetches_home_data() {
    let mut m = machine(2, 32);
    // Node 0 writes into its own home memory; node 1 reads it remotely.
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    assert_eq!(write_u64(&mut m.nodes[0], addr, 0xabcd), 0, "home write must hit");
    let (v, faults) = read_u64(&mut m.nodes[1], addr);
    assert_eq!(v, 0xabcd);
    assert_eq!(faults, 1);
    // Second read hits the cached copy.
    let (v2, faults2) = read_u64(&mut m.nodes[1], addr);
    assert_eq!(v2, 0xabcd);
    assert_eq!(faults2, 0);
    m.shutdown();
}

#[test]
fn write_invalidates_remote_readers() {
    let mut m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    write_u64(&mut m.nodes[0], addr, 1);
    // Nodes 1 and 2 cache read-only copies.
    assert_eq!(read_u64(&mut m.nodes[1], addr).0, 1);
    assert_eq!(read_u64(&mut m.nodes[2], addr).0, 1);
    // Home writes a new value: must invalidate both sharers first.
    let faults = write_u64(&mut m.nodes[0], addr, 2);
    assert_eq!(faults, 1, "home write to shared block faults once");
    // Readers fault again and observe the new value.
    let (v1, f1) = read_u64(&mut m.nodes[1], addr);
    let (v2, f2) = read_u64(&mut m.nodes[2], addr);
    assert_eq!((v1, v2), (2, 2));
    assert_eq!((f1, f2), (1, 1));
    let s1 = m.nodes[1].shared.stats.snapshot();
    assert_eq!(s1.invals_in, 1);
    m.shutdown();
}

#[test]
fn producer_consumer_four_hop() {
    // Producer (node 1) and consumer (node 2) of data homed at node 0:
    // each transfer costs extra hops (recall), the §3.2 inefficiency.
    let mut m = machine(3, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    for round in 0..5u64 {
        write_u64(&mut m.nodes[1], addr, round * 10);
        let (v, faults) = read_u64(&mut m.nodes[2], addr);
        assert_eq!(v, round * 10);
        assert_eq!(faults, 1, "every consume misses under write-invalidate");
    }
    // The producer's writes after round 0 must recall/invalidate the
    // consumer's copy each round.
    let s2 = m.nodes[2].shared.stats.snapshot();
    assert!(s2.invals_in + s2.recalls_in >= 4, "consumer copies must be torn down each round");
    m.shutdown();
}

#[test]
fn read_of_exclusive_block_downgrades_owner() {
    let mut m = machine(3, 64);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    write_u64(&mut m.nodes[1], addr, 77); // node 1 becomes exclusive owner
    let (v, _) = read_u64(&mut m.nodes[2], addr);
    assert_eq!(v, 77);
    // Owner was downgraded, not invalidated: its next read hits.
    let (v1, f1) = read_u64(&mut m.nodes[1], addr);
    assert_eq!(v1, 77);
    assert_eq!(f1, 0);
    assert_eq!(m.nodes[1].shared.stats.snapshot().recalls_in, 1);
    m.shutdown();
}

#[test]
fn upgrade_moves_no_data() {
    let mut m = machine(2, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    write_u64(&mut m.nodes[0], addr, 5);
    let (v, _) = read_u64(&mut m.nodes[1], addr);
    assert_eq!(v, 5);
    // Node 1 upgrades its read-only copy to writable: grant without data.
    let mut buf = [0u8; 8];
    9u64.store(&mut buf);
    let fault = m.nodes[1].shared.mem.lock().write_in_block(addr, &buf).unwrap_err();
    let tn = &mut m.nodes[1];
    let info = fetch(&tn.shared, &tn.wake_rx, fault.fault().block, true, &mut tn.stash);
    assert_eq!(info.bytes, 0, "upgrade grant carries no data");
    assert_eq!(write_u64(&mut m.nodes[1], addr, 9), 0);
    assert_eq!(read_u64(&mut m.nodes[0], addr).0, 9);
    m.shutdown();
}

#[test]
fn home_read_of_remote_exclusive_recalls() {
    let mut m = machine(2, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    write_u64(&mut m.nodes[1], addr, 1234); // remote node owns home's block
    assert_eq!(m.nodes[0].shared.mem.lock().probe(addr.block(32)), Tag::Invalid);
    let (v, faults) = read_u64(&mut m.nodes[0], addr);
    assert_eq!(v, 1234);
    assert_eq!(faults, 1, "home read of remotely owned block faults");
    m.shutdown();
}

#[test]
fn contended_exclusive_serializes() {
    // Many nodes hammer exclusive writes to one block; the waiter queue
    // must serialize them and every increment must survive.
    let n = 8;
    let m = machine(n, 32);
    let addr = m.nodes[0].shared.mem.lock().alloc(8, 8);
    let rounds = 20;

    let mut handles = vec![];
    for tn in m.nodes.into_iter() {
        handles.push(std::thread::spawn(move || {
            let mut tn = tn;
            for _ in 0..rounds {
                // read-modify-write; each iteration re-acquires exclusivity
                loop {
                    // hold the mem lock across the RMW so the local copy
                    // can't be recalled mid-update
                    let mut mem = tn.shared.mem.lock();
                    let mut buf = [0u8; 8];
                    if mem.read_in_block(addr, &mut buf).is_ok()
                        && mem.probe(addr.block(32)).writable()
                    {
                        let v = u64::load(&buf) + 1;
                        v.store(&mut buf);
                        mem.write_in_block(addr, &buf).unwrap();
                        break;
                    }
                    drop(mem);
                    fetch(&tn.shared, &tn.wake_rx, addr.block(32), true, &mut tn.stash);
                }
            }
            tn
        }));
    }
    let mut nodes: Vec<TestNode> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let (total, _) = read_u64(&mut nodes[0], addr);
    assert_eq!(total, (n * rounds) as u64);
    for tn in &nodes {
        tn.shared.send(tn.shared.me, Msg::Shutdown);
    }
}

#[test]
fn distinct_blocks_are_independent() {
    let mut m = machine(2, 32);
    let a = m.nodes[0].shared.mem.lock().alloc(8, 8);
    let b = m.nodes[0].shared.mem.lock().alloc(32, 32); // next block
    assert_ne!(a.block(32), b.block(32));
    write_u64(&mut m.nodes[0], a, 1);
    write_u64(&mut m.nodes[1], b, 2);
    assert_eq!(read_u64(&mut m.nodes[1], a).0, 1);
    assert_eq!(read_u64(&mut m.nodes[0], b).0, 2);
    // Writing b again on node 1 must not disturb node 1's copy of a.
    write_u64(&mut m.nodes[1], b, 3);
    assert_eq!(read_u64(&mut m.nodes[1], a).1, 0, "block a still cached");
    m.shutdown();
}

#[test]
fn false_sharing_within_block_pingpongs() {
    // Two nodes write different words of the same 32-byte block: the block
    // must ping-pong (correct but slow — motivates small blocks).
    let mut m = machine(3, 32);
    let base = m.nodes[0].shared.mem.lock().alloc(32, 32);
    let w0 = base;
    let w1 = base.add(8);
    for i in 0..4u64 {
        write_u64(&mut m.nodes[1], w0, i);
        write_u64(&mut m.nodes[2], w1, 100 + i);
    }
    assert_eq!(read_u64(&mut m.nodes[0], w0).0, 3);
    assert_eq!(read_u64(&mut m.nodes[0], w1).0, 103);
    let s1 = m.nodes[1].shared.stats.snapshot();
    assert!(s1.recalls_in + s1.invals_in >= 3, "false sharing forces repeated teardown");
    m.shutdown();
}
