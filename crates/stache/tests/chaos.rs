//! Chaos harness: phase-structured programs run on a fabric that delays,
//! duplicates, and drops messages (seeded, reproducible fault schedules).
//! Every run must observe exactly the values the sequential model
//! predicts, finish (liveness under drops comes from the retry machinery),
//! and leave the machine in a state that passes the whole-machine
//! coherence check — i.e. results are bit-equal to a fault-free run.
//!
//! All tests use [`FifoMode::Preserving`] delays: Stache's grant/recall
//! ordering requires point-to-point FIFO (see `faults.rs` for the tests
//! that document what the `Violating` discipline breaks).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use prescient_stache::{fetch, spawn_protocol, Msg, NoHooks, NodeShared, RetryConfig, Wake};
use prescient_tempest::fabric::Fabric;
use prescient_tempest::{
    CostModel, FaultPlan, FaultStats, GAddr, GlobalLayout, NodeId, Prim, SplitMix64, VBarrier,
};

/// Fast wall-clock retry policy for tests: dropped messages are re-issued
/// quickly so drop-heavy runs stay fast.
fn test_retry() -> RetryConfig {
    RetryConfig { timeout: Duration::from_millis(25), max_retries: 400 }
}

#[derive(Debug, Clone)]
enum Phase {
    /// `(address index, writer node, value)` — one writer per address.
    Writes(Vec<(usize, NodeId, u64)>),
    /// `(address index, reader node)`.
    Reads(Vec<(usize, NodeId)>),
}

/// Deterministic random phase program: alternating write/read rounds over
/// a small address pool, drawn from a seeded stream.
fn random_program(seed: u64, nodes: u16, n_addrs: usize, n_phases: usize) -> Vec<Phase> {
    let mut rng = SplitMix64::new(seed);
    let mut phases = Vec::with_capacity(n_phases);
    for pi in 0..n_phases {
        if pi % 2 == 0 {
            // Distinct addresses, each with one writer.
            let count = 1 + (rng.next_u64() % 5) as usize;
            let mut ws: Vec<(usize, NodeId, u64)> = Vec::new();
            for _ in 0..count {
                let a = (rng.next_u64() % n_addrs as u64) as usize;
                if ws.iter().all(|&(b, _, _)| b != a) {
                    let w = (rng.next_u64() % u64::from(nodes)) as NodeId;
                    ws.push((a, w, rng.next_u64()));
                }
            }
            phases.push(Phase::Writes(ws));
        } else {
            let count = 1 + (rng.next_u64() % 8) as usize;
            let rs = (0..count)
                .map(|_| {
                    let a = (rng.next_u64() % n_addrs as u64) as usize;
                    let r = (rng.next_u64() % u64::from(nodes)) as NodeId;
                    (a, r)
                })
                .collect();
            phases.push(Phase::Reads(rs));
        }
    }
    phases
}

struct TestNode {
    shared: Arc<NodeShared>,
    wake_rx: Receiver<Wake>,
    stash: Vec<Wake>,
}

fn build_machine(
    nodes: usize,
    block_size: usize,
    plan: Option<FaultPlan>,
) -> (Vec<TestNode>, Vec<JoinHandle<()>>, Option<Arc<FaultStats>>) {
    let layout = GlobalLayout::new(nodes, block_size);
    let (eps, fstats) = match plan {
        Some(p) if p.is_active() => {
            let (eps, fs) = Fabric::new_faulty::<Msg>(nodes, p);
            (eps, Some(fs))
        }
        _ => (Fabric::new::<Msg>(nodes), None),
    };
    let mut tns = Vec::new();
    let mut joins = Vec::new();
    for ep in eps {
        let (wake_tx, wake_rx) = unbounded();
        let shared = Arc::new(NodeShared::new_with_retry(
            layout,
            CostModel::default(),
            ep.net().clone(),
            wake_tx,
            test_retry(),
        ));
        joins.push(spawn_protocol(Arc::clone(&shared), ep, Arc::new(NoHooks)));
        tns.push(TestNode { shared, wake_rx, stash: Vec::new() });
    }
    (tns, joins, fstats)
}

/// Outcome of one program run: every read observation in a canonical
/// order, plus protocol-level stat totals for the fault-activity asserts.
struct RunOutcome {
    /// `(phase, addr index, reader, value)` sorted — deterministic given
    /// the program, independent of interleaving.
    observations: Vec<(usize, usize, NodeId, u64)>,
    retries: u64,
    dup_reqs_in: u64,
    faults: Option<Arc<FaultStats>>,
}

/// Run `phases` on a live machine (optionally faulty), check every read
/// against the sequential model and the quiescent machine against the
/// coherence invariants, and return the canonical observations.
fn run_program(
    nodes: usize,
    block_size: usize,
    plan: Option<FaultPlan>,
    phases: Vec<Phase>,
) -> RunOutcome {
    let (mut tns, _joins, faults) = build_machine(nodes, block_size, plan);

    // Address pool: 4 words homed on every node (some share a block).
    let mut addrs: Vec<GAddr> = Vec::new();
    for tn in &tns {
        let base = tn.shared.mem.lock().alloc(8 * 4, 8);
        for k in 0..4 {
            addrs.push(base.add(8 * k));
        }
    }
    let n_addrs = addrs.len();
    let addrs = Arc::new(addrs);

    let phases: Vec<Phase> = phases
        .into_iter()
        .map(|p| match p {
            Phase::Writes(ws) => {
                Phase::Writes(ws.into_iter().map(|(a, w, v)| (a % n_addrs, w, v)).collect())
            }
            Phase::Reads(rs) => {
                Phase::Reads(rs.into_iter().map(|(a, r)| (a % n_addrs, r)).collect())
            }
        })
        .collect();

    // Sequential model: expected memory after each phase.
    let mut model = vec![0u64; n_addrs];
    let mut expects: Vec<Vec<u64>> = Vec::with_capacity(phases.len());
    for p in &phases {
        if let Phase::Writes(ws) = p {
            for &(a, _, v) in ws {
                model[a] = v;
            }
        }
        expects.push(model.clone());
    }

    let barrier = Arc::new(VBarrier::new(nodes));
    #[allow(clippy::type_complexity)]
    let observations: Arc<Mutex<Vec<(usize, usize, NodeId, u64)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let phases = Arc::new(phases);
    let expects = Arc::new(expects);

    std::thread::scope(|scope| {
        for tn in tns.iter_mut() {
            let me = tn.shared.me;
            let phases = Arc::clone(&phases);
            let expects = Arc::clone(&expects);
            let addrs = Arc::clone(&addrs);
            let barrier = Arc::clone(&barrier);
            let observations = Arc::clone(&observations);
            let shared = Arc::clone(&tn.shared);
            let wake_rx = tn.wake_rx.clone();
            scope.spawn(move || {
                let mut stash = Vec::new();
                for (pi, phase) in phases.iter().enumerate() {
                    match phase {
                        Phase::Writes(ws) => {
                            for &(a, w, v) in ws {
                                if w == me {
                                    let mut buf = [0u8; 8];
                                    v.store(&mut buf);
                                    loop {
                                        let r = shared.mem.lock().write_in_block(addrs[a], &buf);
                                        match r {
                                            Ok(()) => break,
                                            Err(f) => {
                                                fetch(&shared, &wake_rx, f.fault().block, true, &mut stash);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        Phase::Reads(rs) => {
                            for &(a, r) in rs {
                                if r == me {
                                    let mut buf = [0u8; 8];
                                    loop {
                                        let res =
                                            shared.mem.lock().read_in_block(addrs[a], &mut buf);
                                        match res {
                                            Ok(()) => break,
                                            Err(f) => {
                                                fetch(&shared, &wake_rx, f.fault().block, false, &mut stash);
                                            }
                                        }
                                    }
                                    let got = u64::load(&buf);
                                    let want = expects[pi][a];
                                    assert_eq!(
                                        got, want,
                                        "phase {pi}: node {me} read addr[{a}] = {got}, expected {want}"
                                    );
                                    observations.lock().push((pi, a, me, got));
                                }
                            }
                        }
                    }
                    barrier.wait(0);
                }
            });
        }
    });

    // Quiescent: every invariant must hold machine-wide.
    let shareds: Vec<_> = tns.iter().map(|tn| Arc::clone(&tn.shared)).collect();
    let violations = prescient_stache::check_coherence(&shareds);
    assert!(violations.is_empty(), "invariant violations: {violations:#?}");

    let (mut retries, mut dup_reqs_in) = (0, 0);
    for tn in &tns {
        let s = tn.shared.stats.snapshot();
        retries += s.retries;
        dup_reqs_in += s.dup_reqs_in;
        tn.shared.send(tn.shared.me, Msg::Shutdown);
    }
    let mut observations = Arc::try_unwrap(observations)
        .unwrap_or_else(|_| panic!("observation log still shared"))
        .into_inner();
    observations.sort_unstable();
    RunOutcome { observations, retries, dup_reqs_in, faults }
}

const NODES: usize = 8;

/// Random programs under the full chaos mix (delay + duplicate + drop,
/// FIFO-preserving): results bit-equal to the fault-free run, coherence
/// intact, and the fault layer demonstrably active.
#[test]
fn random_programs_survive_chaos() {
    for seed in [0xC0FFEE_u64, 17, 9001] {
        let program = random_program(seed, NODES as u16, 32, 14);
        let clean = run_program(NODES, 32, None, program.clone());
        let chaos = run_program(NODES, 32, Some(FaultPlan::chaos(seed)), program);
        assert_eq!(
            clean.observations, chaos.observations,
            "seed {seed}: chaos run diverged from fault-free run"
        );
        let f = chaos.faults.expect("fault layer active").total();
        assert!(
            f.delayed + f.duplicated + f.dropped > 0,
            "seed {seed}: the chaos plan must actually inject faults"
        );
    }
}

/// Every inter-node message duplicated: duplicate fetches must be
/// absorbed by the home's (requester, seq) watermark — no double grant,
/// no directory divergence — and duplicate recalls/grants by op ids and
/// epoch checks. The contended counter is the sharpest probe: a granted
/// duplicate would double-apply an increment or wedge the waiter queue.
#[test]
fn duplicated_requests_are_idempotent() {
    let plan = FaultPlan::new(7).duplicating(1000);
    let (tns, _joins, fstats) = build_machine(NODES, 32, Some(plan));
    let addr = tns[0].shared.mem.lock().alloc(8, 8);
    let rounds = 12u64;

    let mut handles = vec![];
    for tn in tns.into_iter() {
        handles.push(std::thread::spawn(move || {
            let mut tn = tn;
            for _ in 0..rounds {
                loop {
                    let mut mem = tn.shared.mem.lock();
                    let mut buf = [0u8; 8];
                    if mem.read_in_block(addr, &mut buf).is_ok()
                        && mem.probe(addr.block(32)).writable()
                    {
                        let v = u64::load(&buf) + 1;
                        v.store(&mut buf);
                        mem.write_in_block(addr, &buf).unwrap();
                        break;
                    }
                    drop(mem);
                    fetch(&tn.shared, &tn.wake_rx, addr.block(32), true, &mut tn.stash);
                }
            }
            tn
        }));
    }
    let mut tns: Vec<TestNode> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every increment applied exactly once.
    let mut buf = [0u8; 8];
    loop {
        let r = tns[0].shared.mem.lock().read_in_block(addr, &mut buf);
        match r {
            Ok(()) => break,
            Err(f) => {
                let tn = &mut tns[0];
                fetch(&tn.shared, &tn.wake_rx, f.fault().block, true, &mut tn.stash);
            }
        }
    }
    assert_eq!(u64::load(&buf), NODES as u64 * rounds);

    let shareds: Vec<_> = tns.iter().map(|tn| Arc::clone(&tn.shared)).collect();
    let violations = prescient_stache::check_coherence(&shareds);
    assert!(violations.is_empty(), "invariant violations: {violations:#?}");

    let duplicated = fstats.expect("fault layer active").total().duplicated;
    assert!(duplicated > 50, "every message is duplicated, got {duplicated}");
    let dup_reqs: u64 = shareds.iter().map(|s| s.stats.snapshot().dup_reqs_in).sum();
    assert!(dup_reqs > 0, "homes must observe and absorb duplicate requests");
    for tn in &tns {
        tn.shared.send(tn.shared.me, Msg::Shutdown);
    }
}

/// Drop-heavy fabric: liveness comes from timeouts and re-issued
/// requests; the run completes with fault-free-equal results.
#[test]
fn drop_heavy_runs_complete_via_retry() {
    let seed = 0xD20FF_u64;
    let plan = FaultPlan::new(seed).dropping(180).delaying(80, 2);
    let program = random_program(seed, NODES as u16, 24, 10);
    let clean = run_program(NODES, 32, None, program.clone());
    let chaos = run_program(NODES, 32, Some(plan), program);
    assert_eq!(clean.observations, chaos.observations, "drop-heavy run diverged");
    let f = chaos.faults.expect("fault layer active").total();
    assert!(f.dropped > 0, "an 18% drop rate must drop something");
    assert!(
        chaos.retries > 0,
        "dropped requests are only survivable by re-issuing; got {} retries",
        chaos.retries
    );
    assert_eq!(clean.retries, 0, "the fault-free run never needs to retry");
    assert!(clean.dup_reqs_in <= chaos.dup_reqs_in, "retries surface as duplicates at homes");
}

/// Regression cases distilled from chaos-run shrinking: fixed programs and
/// plans that once exposed ordering/dedup bugs stay pinned here.
#[test]
fn regression_duplicated_recall_round() {
    // Producer/consumer of one block homed at a third node, with every
    // message duplicated and mild delays: exercises duplicate recalls and
    // duplicate grants across repeated recall rounds.
    let phases = vec![
        Phase::Writes(vec![(0, 1, 11)]),
        Phase::Reads(vec![(0, 2), (0, 3)]),
        Phase::Writes(vec![(0, 1, 22)]),
        Phase::Reads(vec![(0, 4), (0, 2)]),
        Phase::Writes(vec![(0, 5, 33), (1, 6, 44)]),
        Phase::Reads(vec![(0, 0), (1, 7), (1, 1)]),
    ];
    let plan = FaultPlan::new(3).duplicating(1000).delaying(120, 2);
    let clean = run_program(NODES, 32, None, phases.clone());
    let chaos = run_program(NODES, 32, Some(plan), phases);
    assert_eq!(clean.observations, chaos.observations);
}

#[test]
fn regression_false_sharing_under_drops() {
    // Two writers in different words of one block while the fabric drops:
    // a lost invalidate acknowledgment must not wedge the busy entry.
    let phases = vec![
        Phase::Writes(vec![(0, 1, 1), (1, 2, 2)]),
        Phase::Reads(vec![(0, 3), (1, 3)]),
        Phase::Writes(vec![(0, 2, 3), (1, 1, 4)]),
        Phase::Reads(vec![(0, 1), (1, 2), (0, 5), (1, 6)]),
    ];
    let plan = FaultPlan::new(41).dropping(250);
    let clean = run_program(NODES, 32, None, phases.clone());
    let chaos = run_program(NODES, 32, Some(plan), phases);
    assert_eq!(clean.observations, chaos.observations);
}
